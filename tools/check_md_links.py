#!/usr/bin/env python3
"""Offline markdown link checker for the repo's documentation.

Walks the given markdown files (default: README.md and docs/*.md) and
verifies that

* relative links and images point at files/directories that exist
  (anchors are stripped; ``docs/DATABASE.md#query-language`` checks
  ``docs/DATABASE.md``);
* intra-document anchors (``#section``) match a heading slug in the
  same file, using GitHub's slugging rules (lowercase, punctuation
  dropped, spaces to dashes);
* no link is empty.

External ``http(s)://`` and ``mailto:`` links are *not* fetched — CI
must stay offline/deterministic — they are only checked for obvious
malformation (whitespace).  Exit code is the number of broken links.

Usage::

    python tools/check_md_links.py            # default doc set
    python tools/check_md_links.py FILE...    # explicit files
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterable, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: ``[text](target)`` / ``![alt](target)`` — target up to the first
#: unescaped ``)``; optional ``"title"`` suffixes are stripped below.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+(?:\s+\"[^\"]*\")?)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links → text
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> List[str]:
    slugs: List[str] = []
    in_fence = False
    for line in markdown.splitlines():
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            slugs.append(github_slug(match.group(1)))
    return slugs


def iter_links(markdown: str) -> Iterable[str]:
    in_fence = False
    for line in markdown.splitlines():
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            target = match.group(1).split(' "')[0].strip()
            yield target


def check_file(path: str) -> List[Tuple[str, str]]:
    """Broken links in one markdown file as ``(target, reason)`` pairs."""
    with open(path, encoding="utf-8") as fh:
        markdown = fh.read()
    slugs = heading_slugs(markdown)
    broken: List[Tuple[str, str]] = []
    for target in iter_links(markdown):
        if not target:
            broken.append((target, "empty link"))
        elif target.startswith(("http://", "https://", "mailto:")):
            if any(c.isspace() for c in target):
                broken.append((target, "malformed external link"))
        elif target.startswith("#"):
            if github_slug(target[1:]) not in slugs:
                broken.append((target, "no such heading anchor"))
        else:
            rel = target.split("#", 1)[0]
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), rel)
            )
            if not os.path.exists(resolved):
                broken.append((target, f"missing file: {resolved}"))
    return broken


def default_files() -> List[str]:
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    for name in sorted(os.listdir(docs_dir)):
        if name.endswith(".md"):
            files.append(os.path.join(docs_dir, name))
    return files


def main(argv: List[str]) -> int:
    files = argv or default_files()
    total_broken = 0
    total_links = 0
    for path in files:
        with open(path, encoding="utf-8") as fh:
            total_links += sum(1 for _ in iter_links(fh.read()))
        for target, reason in check_file(path):
            rel_path = os.path.relpath(path, REPO_ROOT)
            print(f"{rel_path}: broken link {target!r} ({reason})")
            total_broken += 1
    checked = [os.path.relpath(p, REPO_ROOT) for p in files]
    print(
        f"checked {total_links} links across {len(checked)} files: "
        f"{total_broken} broken"
    )
    return total_broken


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
