#!/usr/bin/env python
"""CI gate for the measurement fast path's speedup table.

Parses ``benchmarks/output/netsim_fastpath.txt`` (written by
``benchmarks/bench_netsim_fastpath.py``) and fails when the vectorized
batch engine stops paying for itself:

* every microbenchmark row must show >= ``--min-micro`` (default 10x),
* the end-to-end campaign must show >= ``--min-campaign`` (default 3x).

Usage::

    python benchmarks/bench_netsim_fastpath.py --smoke
    python tools/check_fastpath_speedup.py
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import List, Tuple

DEFAULT_TABLE = "benchmarks/output/netsim_fastpath.txt"

_ROW_RE = re.compile(r"^\s+\d+\s+\d+\s+[\d.]+\s+[\d.]+\s+([\d.]+)x\s*$")
_CAMPAIGN_RE = re.compile(r"campaign speedup:\s*([\d.]+)x")


def parse_speedups(text: str) -> Tuple[List[float], float]:
    """(microbench speedups, campaign speedup) from the table text."""
    micro = [
        float(match.group(1))
        for line in text.splitlines()
        if (match := _ROW_RE.match(line))
    ]
    campaign_match = _CAMPAIGN_RE.search(text)
    if not micro:
        raise ValueError("no microbenchmark rows found in table")
    if campaign_match is None:
        raise ValueError("no campaign speedup line found in table")
    return micro, float(campaign_match.group(1))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("table", nargs="?", default=DEFAULT_TABLE)
    parser.add_argument("--min-micro", type=float, default=10.0)
    parser.add_argument("--min-campaign", type=float, default=3.0)
    args = parser.parse_args()

    try:
        with open(args.table, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        print(f"FAIL: cannot read {args.table}: {exc}", file=sys.stderr)
        return 1

    try:
        micro, campaign = parse_speedups(text)
    except ValueError as exc:
        print(f"FAIL: malformed table: {exc}", file=sys.stderr)
        return 1

    ok = True
    worst = min(micro)
    if worst < args.min_micro:
        print(
            f"FAIL: microbenchmark speedup {worst:.1f}x below the "
            f"{args.min_micro:.0f}x floor",
            file=sys.stderr,
        )
        ok = False
    if campaign < args.min_campaign:
        print(
            f"FAIL: campaign speedup {campaign:.1f}x below the "
            f"{args.min_campaign:.0f}x floor",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print(
            f"fast path OK: microbench {worst:.1f}x (worst row), "
            f"campaign {campaign:.1f}x"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
