#!/usr/bin/env python
"""Seeded crash/recovery fuzzing for the docdb storage engine.

Every round this driver:

1. derives a random *workload* (insert_many batches shaped like
   ``StatsRepository.flush``, single inserts, updates, deletes, index
   builds, checkpoints) and a random *crash plan* (kill -9 after the
   Nth WAL append, a torn write of the Nth record, or a crash right
   after a segment rotation) — all pure functions of ``--seed``;
2. runs the workload in a **subprocess** against a durable
   :class:`DocDBClient` with the crash plan installed; the subprocess
   dies with ``os._exit(137)`` at the crash point — a real no-cleanup
   process death, like the §4.2.2 scenario the paper designs for;
3. recovers the directory in-process and asserts the recovered
   database equals the **committed-prefix oracle**: the state produced
   by replaying exactly the operations whose WAL record survived
   (torn records roll back; one batch is all-or-nothing);
4. re-recovers and asserts recovery is idempotent, that indexes were
   rebuilt, and that ``explain()`` runs against recovered state.

Usage::

    python tools/crash_fuzz.py --rounds 25 --seed 42
    python tools/crash_fuzz.py --rounds 25 --seed $GITHUB_RUN_ID \
        --artifact-dir crash-fuzz-failures

Exit status 0 iff every round's oracle held.  On failure the round's
durable directory (WAL segments + snapshots + CHECKPOINT) is copied
under ``--artifact-dir`` for post-mortem (CI uploads it as an
artifact).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import subprocess
import sys
import tempfile
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)

from repro.docdb.client import DocDBClient  # noqa: E402
from repro.suite.faults import CrashPlan  # noqa: E402

DB = "upin"
COLLECTIONS = ("paths_stats", "availableServers")
CRASH_EXIT = 137


# ---------------------------------------------------------------------------
# deterministic workload generation (shared by worker and oracle)
# ---------------------------------------------------------------------------


def generate_ops(seed: int, n_ops: int) -> List[Dict[str, Any]]:
    """A reproducible mixed workload; pure function of ``seed``."""
    rng = random.Random(seed)
    ops: List[Dict[str, Any]] = []
    next_id = 0
    live_ids: List[str] = []
    for i in range(n_ops):
        coll = rng.choice(COLLECTIONS)
        kind = rng.choices(
            ["flush", "insert", "update", "delete", "index", "checkpoint"],
            weights=[5, 2, 3, 2, 1, 1],
        )[0]
        if kind == "flush":
            # One destination's measurement batch (§4.2.2): atomic.
            docs = []
            for _ in range(rng.randint(2, 8)):
                docs.append(
                    {
                        "_id": f"doc_{next_id}",
                        "server_id": rng.randint(1, 5),
                        "timestamp_ms": 1_000_000 + next_id,
                        "latency_ms": round(rng.uniform(5.0, 180.0), 3),
                    }
                )
                live_ids.append(f"doc_{next_id}")
                next_id += 1
            ops.append({"kind": "flush", "coll": coll, "docs": docs})
        elif kind == "insert":
            doc = {
                "_id": f"doc_{next_id}",
                "server_id": rng.randint(1, 5),
                "timestamp_ms": 1_000_000 + next_id,
            }
            live_ids.append(f"doc_{next_id}")
            next_id += 1
            ops.append({"kind": "insert", "coll": coll, "doc": doc})
        elif kind == "update":
            ops.append(
                {
                    "kind": "update",
                    "coll": coll,
                    "filter": {"server_id": rng.randint(1, 5)},
                    "update": rng.choice(
                        [
                            {"$set": {"flag": rng.randint(0, 9)}},
                            {"$inc": {"revisions": 1}},
                        ]
                    ),
                }
            )
        elif kind == "delete":
            victims = rng.sample(live_ids, k=min(len(live_ids), rng.randint(1, 3)))
            ops.append(
                {"kind": "delete", "coll": coll, "filter": {"_id": {"$in": victims}}}
            )
        elif kind == "index":
            ops.append(
                {
                    "kind": "index",
                    "coll": coll,
                    "fields": rng.choice(
                        [
                            [["server_id", 1]],
                            [["server_id", 1], ["timestamp_ms", 1]],
                            [["timestamp_ms", 1]],
                        ]
                    ),
                }
            )
        else:
            ops.append({"kind": "checkpoint"})
    return ops


def apply_op(client: DocDBClient, op: Dict[str, Any], *, durable: bool) -> None:
    """Apply one generated op (worker: durable=True; oracle: False)."""
    if op["kind"] == "checkpoint":
        if durable:
            client.checkpoint()
        return
    coll = client[DB][op["coll"]]
    if op["kind"] == "flush":
        coll.insert_many(op["docs"])
    elif op["kind"] == "insert":
        coll.insert_one(op["doc"])
    elif op["kind"] == "update":
        coll.update_many(op["filter"], op["update"])
    elif op["kind"] == "delete":
        coll.delete_many(op["filter"])
    elif op["kind"] == "index":
        coll.create_index([(f, int(d)) for f, d in op["fields"]])
    else:  # pragma: no cover
        raise ValueError(f"unknown op kind {op['kind']!r}")


# ---------------------------------------------------------------------------
# committed-prefix oracle
# ---------------------------------------------------------------------------


class _CountingWal:
    """Duck-typed WAL stub: counts records the ops *would* emit."""

    def __init__(self) -> None:
        self.appends = 0

    def append(self, op: str, db: str, coll: Optional[str], payload: Dict) -> int:
        self.appends += 1
        return self.appends


def oracle_state(
    ops: List[Dict[str, Any]], committed_records: int
) -> Tuple[Dict[str, Any], int]:
    """State after exactly the ops whose WAL record is ≤ the commit point.

    Returns ``(canonical_dump, ops_applied)``.  Ops that emit no record
    (e.g. an update matching nothing) carry no durable effect, so
    including them at the boundary is state-neutral.
    """
    client = DocDBClient()
    counter = _CountingWal()
    client._wal = counter  # type: ignore[assignment]
    applied = 0
    for op in ops:
        before = counter.appends
        apply_op(client, op, durable=False)
        if counter.appends > committed_records:
            # This op's record never survived: roll it back by rebuilding.
            return _rebuild_prefix(ops, applied)
        applied += 1
        assert counter.appends - before <= 1, "one op must emit at most one record"
    client._wal = None
    return canonical_dump(client), applied


def _rebuild_prefix(
    ops: List[Dict[str, Any]], n_applied: int
) -> Tuple[Dict[str, Any], int]:
    client = DocDBClient()
    for op in ops[:n_applied]:
        apply_op(client, op, durable=False)
    return canonical_dump(client), n_applied


def canonical_dump(client: DocDBClient) -> Dict[str, Any]:
    """Order-independent JSON-able digest of the whole client state.

    Empty, index-free collections are omitted: merely *touching* a
    collection (a no-op ``delete_many``, say) instantiates it in memory
    but emits no WAL record, so it rightly does not survive a crash —
    the durable state is defined by journalled operations only.
    """
    out: Dict[str, Any] = {}
    for db_name in client.list_database_names():
        db = client.database(db_name)
        out[db_name] = {}
        for coll_name in db.list_collection_names():
            coll = db[coll_name]
            if len(coll) == 0 and not coll.index_information():
                continue
            out[db_name][coll_name] = {
                "docs": sorted(
                    json.dumps(d, sort_keys=True) for d in coll.all_documents()
                ),
                "indexes": {
                    name: {
                        "fields": [[f, d] for f, d in info["fields"]],
                        "unique": info["unique"],
                    }
                    for name, info in coll.index_information().items()
                },
            }
        if not out[db_name]:
            del out[db_name]  # database of nothing but untouched shells
    return out


# ---------------------------------------------------------------------------
# round specification
# ---------------------------------------------------------------------------


def make_spec(seed: int, round_index: int, directory: str) -> Dict[str, Any]:
    rng = random.Random((seed * 1_000_003 + round_index) & 0xFFFFFFFF)
    n_ops = rng.randint(12, 40)
    fsync = rng.choice(["always", "batch", "never"])
    segment_bytes = rng.choice([512, 2048, 8192])
    crash_kind = rng.choice(["kill", "kill", "torn", "torn", "rotate"])
    # Records ≤ ops (some ops emit none), so aim low to guarantee firing;
    # a plan that never fires is still checked as a clean-shutdown round.
    target = rng.randint(1, max(1, int(n_ops * 0.6)))
    crash: Dict[str, Any] = {"mode": "exit"}
    if crash_kind == "kill":
        crash["at_append"] = target
    elif crash_kind == "torn":
        crash["torn_at_append"] = target
        crash["torn_fraction"] = rng.choice([0.1, 0.4, 0.5, 0.9])
    else:
        crash["at_rotation"] = rng.randint(1, 3)
    return {
        "dir": directory,
        "ops_seed": (seed * 7_919 + round_index) & 0xFFFFFFFF,
        "n_ops": n_ops,
        "fsync": fsync,
        "segment_bytes": segment_bytes,
        "batch_every": rng.choice([1, 4, 16]),
        "crash": crash,
    }


# ---------------------------------------------------------------------------
# worker (runs in the crashing subprocess)
# ---------------------------------------------------------------------------


def run_worker(spec: Dict[str, Any]) -> int:
    plan = CrashPlan(**spec["crash"])
    client = DocDBClient.open(
        spec["dir"],
        fsync=spec["fsync"],
        segment_bytes=spec["segment_bytes"],
        batch_every=spec["batch_every"],
    )
    assert client.wal is not None
    plan.install(client.wal)
    ops = generate_ops(spec["ops_seed"], spec["n_ops"])
    for op in ops:
        apply_op(client, op, durable=True)
    # Crash never fired: clean shutdown (still a valid recovery case).
    client.close()
    return 0


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def run_round(
    seed: int, round_index: int, base_dir: str, verbose: bool
) -> Tuple[bool, str, Dict[str, Any]]:
    directory = os.path.join(base_dir, f"round-{round_index:03d}")
    os.makedirs(directory, exist_ok=True)
    spec = make_spec(seed, round_index, directory)
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--worker", json.dumps(spec)],
        capture_output=True,
        text=True,
    )
    crash = spec["crash"]
    label = (
        f"round {round_index:3d}: fsync={spec['fsync']:6s} "
        f"seg={spec['segment_bytes']:5d} crash={crash}"
    )
    if proc.returncode not in (0, CRASH_EXIT):
        return False, f"{label} — worker died unexpectedly:\n{proc.stderr}", spec

    try:
        recovered = DocDBClient.open(spec["dir"])
        report = recovered.recovery_report
        assert report is not None
        committed = report.last_lsn
        recovered_dump = canonical_dump(recovered)
        # explain()/planner must run against recovered state, and the
        # recovery epoch bump means no stale cached answer can exist.
        for db_name in recovered.list_database_names():
            db = recovered.database(db_name)
            for coll_name in db.list_collection_names():
                coll = db[coll_name]
                assert len(coll.cache) == 0, "recovered cache must start empty"
                coll.explain({"server_id": 1})
        recovered.close()

        ops = generate_ops(spec["ops_seed"], spec["n_ops"])
        expected_dump, ops_applied = oracle_state(ops, committed)

        # Crash-point accounting: the WAL must contain *exactly* the
        # records the plan allowed through.
        if proc.returncode == CRASH_EXIT:
            if "at_append" in crash:
                assert committed == crash["at_append"], (
                    f"kill after append #{crash['at_append']} must commit "
                    f"exactly that prefix, got {committed}"
                )
            if "torn_at_append" in crash:
                assert committed == crash["torn_at_append"] - 1, (
                    f"torn record #{crash['torn_at_append']} must roll back "
                    f"to {crash['torn_at_append'] - 1}, got {committed}"
                )
                assert report.torn_bytes_truncated > 0, (
                    "torn-write round must truncate a tail"
                )

        if recovered_dump != expected_dump:
            return (
                False,
                f"{label} — recovered state != committed prefix "
                f"(committed lsn {committed}, {ops_applied} ops)",
                spec,
            )

        # Recovery idempotence: a second recovery changes nothing.
        again = DocDBClient.open(spec["dir"])
        again_dump = canonical_dump(again)
        again.close()
        if again_dump != recovered_dump:
            return False, f"{label} — recovery is not idempotent", spec
    except Exception as exc:  # noqa: BLE001 - the driver must report, not die
        return False, f"{label} — {type(exc).__name__}: {exc}", spec

    status = "crashed+recovered" if proc.returncode == CRASH_EXIT else "clean run"
    return True, f"{label} — OK ({status}, lsn {committed})", spec


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=25)
    parser.add_argument("--seed", type=int, default=20231112)
    parser.add_argument(
        "--artifact-dir",
        default=None,
        help="copy each failing round's durable directory here",
    )
    parser.add_argument(
        "--base-dir",
        default=None,
        help="work under this directory instead of a fresh temp dir",
    )
    parser.add_argument("--worker", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker is not None:
        return run_worker(json.loads(args.worker))

    base_dir = args.base_dir or tempfile.mkdtemp(prefix="crash-fuzz-")
    failures = 0
    for i in range(args.rounds):
        ok, message, spec = run_round(args.seed, i, base_dir, verbose=True)
        print(message)
        if not ok:
            failures += 1
            if args.artifact_dir:
                os.makedirs(args.artifact_dir, exist_ok=True)
                target = os.path.join(args.artifact_dir, f"round-{i:03d}")
                shutil.rmtree(target, ignore_errors=True)
                shutil.copytree(spec["dir"], target)
                with open(
                    os.path.join(target, "SPEC.json"), "w", encoding="utf-8"
                ) as fh:
                    json.dump(spec, fh, indent=2, sort_keys=True)
                print(f"  -> failing WAL directory preserved at {target}")
        shutil.rmtree(spec["dir"], ignore_errors=True)
    if not args.base_dir:
        shutil.rmtree(base_dir, ignore_errors=True)
    print(
        f"crash-fuzz: {args.rounds - failures}/{args.rounds} rounds held the "
        f"committed-prefix oracle (seed {args.seed})"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
