#!/usr/bin/env python
"""Recreate the paper's §3.2 initialization: attach your own AS.

Walks the SCIONLab coordinator workflow: create a user AS at an
attachment point, receive an ASN + key pair + PKC signed by the ISD
core, inspect the generated Vagrant file, and immediately use the new
AS to look up and probe paths — plus verify the issued certificate
against the ISD's trust root (TRC).

Run:  python examples/attach_user_as.py
"""

from repro.scion.snet import ScionHost
from repro.scionlab.coordinator import Coordinator
from repro.scionlab.vm import render_vagrantfile
from repro.topology.scionlab import ETHZ_AP, build_scionlab_world


def main() -> None:
    world = build_scionlab_world()
    coordinator = Coordinator(world, seed=7)

    print(f"== creating a user AS at {ETHZ_AP} (ETHZ-AP) ==")
    topology, user = coordinator.create_user_as(
        ETHZ_AP, name="tutorial-as", owner_email="student@example.edu"
    )
    print(f"assigned ASN:          {user.isd_as}")
    print(f"attachment point:      {user.attachment_point}")
    print(f"public-key fingerprint: {user.keypair.public.fingerprint()}")
    print(f"certificate issuer:    {user.certificate.issuer}")

    print("\n== verifying the PKC against the ISD 17 TRC ==")
    store = coordinator.trust_store()
    leaf_key = store.verify_certificate(user.certificate_chain, isd=17)
    assert leaf_key == user.keypair.public
    print("certificate chain verifies against the core AS trust root ✓")

    print("\n== generated Vagrantfile (excerpt) ==")
    vagrant = render_vagrantfile(user.vm_config)
    print("\n".join(vagrant.splitlines()[:12]))
    print("  ...")

    print("\n== first paths from the fresh AS ==")
    host = ScionHost(topology, user.isd_as)
    for dst in ("16-ffaa:0:1002", "19-ffaa:0:1303"):
        paths = host.paths(dst, max_paths=3)
        print(f"to {dst}: {len(paths)} paths, best = {paths[0].hops_display()}")

    print("\n== first ping ==")
    stats = host.ping("19-ffaa:0:1303", "141.44.25.144", count=5)
    print(
        f"{stats.received}/{stats.sent} replies, "
        f"avg {stats.avg_ms:.1f} ms, loss {stats.loss_pct:.0f}%"
    )


if __name__ == "__main__":
    main()
