#!/usr/bin/env python
"""The paper's §6 measurement study, end to end.

Reproduces the full pipeline: seed the ``availableServers`` collection,
collect paths to the five study destinations (Germany, Ireland,
N. Virginia, Singapore, Korea), run the three-measurement campaign, and
print the per-destination analysis tables — the data behind Figures 5-9.

Run:  python examples/measurement_campaign.py [iterations] [db-dir]
"""

import sys

from repro.analysis.bandwidth import bandwidth_by_path, summarize
from repro.analysis.latency import latency_by_path, latency_layers
from repro.analysis.loss import loss_by_path
from repro.analysis.report import format_table
from repro.docdb.client import DocDBClient
from repro.scion.snet import ScionHost
from repro.scionlab.defaults import study_destination_ids
from repro.suite.cli import seed_servers
from repro.suite.collect import PathsCollector
from repro.suite.config import SuiteConfig
from repro.suite.runner import TestRunner


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    db_dir = sys.argv[2] if len(sys.argv) > 2 else None

    client = DocDBClient()
    db = client["upin"]
    print(f"seeded {seed_servers(db)} available servers")

    host = ScionHost.scionlab()
    config = SuiteConfig(
        iterations=iterations, destination_ids=study_destination_ids()
    )

    collection = PathsCollector(host, db, config).collect()
    print(
        f"collected {collection.paths_stored} paths over "
        f"{collection.destinations} destinations"
    )

    report = TestRunner(host, db, config).run()
    print(
        f"campaign: {report.stats_stored} samples "
        f"({report.paths_tested} path tests, {report.measurement_errors} errors, "
        f"{report.sim_seconds / 60:.1f} simulated minutes)\n"
    )

    # -- latency: Ireland (the Fig 5 destination) -----------------------------
    series = latency_by_path(db, 1)
    rows = [
        (s.path_id, s.hop_count, f"{s.stats.mean:.1f}", f"{s.stats.spread:.1f}")
        for s in series
    ]
    print(format_table(
        ["path", "hops", "mean ms", "spread ms"], rows,
        title="Latency per path to AWS Ireland",
    ))
    layers = latency_layers(series)
    print(f"latency layers: {len(layers)} (Europe / via Ohio / via Singapore)\n")

    # -- bandwidth: Magdeburg (the Fig 7 destination) --------------------------
    bw = bandwidth_by_path(db, 3, target_mbps=12.0)
    summary = summarize(bw)
    print(
        "Magdeburg bandwidth (12 Mbps target): "
        f"up64={summary.mean_up_small:.1f} upMTU={summary.mean_up_mtu:.1f} "
        f"down64={summary.mean_down_small:.1f} downMTU={summary.mean_down_mtu:.1f} Mbps"
    )
    print(f"  downstream > upstream: {summary.downstream_beats_upstream}")
    print(f"  MTU > 64B:             {summary.mtu_beats_small}\n")

    # -- loss: N. Virginia (the Fig 9 destination) -------------------------------
    loss = loss_by_path(db, 2)
    worst = sorted(loss, key=lambda s: -s.mean_loss_pct)[:5]
    print(format_table(
        ["path", "mean loss %"],
        [(s.path_id, f"{s.mean_loss_pct:.2f}") for s in worst],
        title="Highest-loss N. Virginia paths",
    ))

    if db_dir:
        client.save_to(db_dir)
        print(f"\ndatabase persisted under {db_dir}")


if __name__ == "__main__":
    main()
