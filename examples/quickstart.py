#!/usr/bin/env python
"""Quickstart: explore the simulated SCIONLab testbed in five minutes.

Mirrors the paper's §3 workflow: check your SCION address, list paths
to a destination (with the extended details the test-suite relies on),
ping over a specific path, and run a bandwidth test — all against the
deterministic in-process SCIONLab world.

Run:  python examples/quickstart.py
"""

from repro import ScionHost
from repro.apps import AddressApp, BwtestApp, PingApp, ShowpathsApp, TracerouteApp

IRELAND = "16-ffaa:0:1002"
IRELAND_ADDR = "16-ffaa:0:1002,[172.31.43.7]"
MAGDEBURG_ADDR = "19-ffaa:0:1303,[141.44.25.144]"


def main() -> None:
    # The canonical world: MY_AS attached at ETHZ-AP (§3.2).
    host = ScionHost.scionlab()

    print("== scion address ==")
    print(AddressApp(host).run().format_text())

    print("\n== scion showpaths --extended (first 5 paths to AWS Ireland) ==")
    showpaths = ShowpathsApp(host).run(IRELAND, max_paths=5, extended=True, probe=True)
    print(showpaths.format_text(extended=True))

    print("\n== scion ping -c 10 over the 2nd-ranked path ==")
    second_path = showpaths.paths()[1]
    report = PingApp(host).run(
        IRELAND_ADDR, count=10, interval="0.1s", path=second_path
    )
    print(report.format_text())

    print("\n== scion traceroute (per-link latency breakdown) ==")
    trace = TracerouteApp(host).run(IRELAND_ADDR)
    print(trace.format_text())

    print("\n== scion-bwtestclient -cs 3,64,?,12Mbps vs 3,MTU,?,12Mbps ==")
    for spec in ("3,64,?,12Mbps", "3,MTU,?,12Mbps"):
        result = BwtestApp(host).run(MAGDEBURG_ADDR, cs=spec)
        print(f"--- {spec} ---")
        print(result.format_text())

    print("\nDone. Everything above is deterministic: rerun and compare.")


if __name__ == "__main__":
    main()
