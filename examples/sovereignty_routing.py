#!/usr/bin/env python
"""User-driven path control with sovereignty constraints.

The paper's goal: "select the best path to give to a user to reach a
destination, following their request on performance or devices to
exclude for geographical or sovereignty reasons".  This example runs a
small campaign, then plays three users with different intents against
the selection engine:

* Alice wants the lowest latency to AWS Ireland but her data must never
  transit the US or Singapore.
* Bob runs VoIP: he cares about latency *consistency* (jitter), the
  §6.1 criterion that rules out the two flappy detour ASes.
* Carol needs downstream bandwidth to Magdeburg and refuses paths
  through the operator GEANT.

Run:  python examples/sovereignty_routing.py
"""

from repro.docdb.client import DocDBClient
from repro.scion.snet import ScionHost
from repro.selection.engine import PathSelector
from repro.selection.request import Metric, UserRequest
from repro.suite.cli import seed_servers
from repro.suite.collect import PathsCollector
from repro.suite.config import SuiteConfig
from repro.suite.runner import TestRunner

IRELAND_ID = 1
MAGDEBURG_ID = 3


def main() -> None:
    client = DocDBClient()
    db = client["upin"]
    seed_servers(db)
    host = ScionHost.scionlab()
    config = SuiteConfig(iterations=4, destination_ids=[IRELAND_ID, MAGDEBURG_ID])
    PathsCollector(host, db, config).collect()
    TestRunner(host, db, config).run()

    selector = PathSelector(db, host.topology)

    print("== Planning: can the domain even PROMISE 'avoid US + SG'? ==")
    from repro.analysis.whatif import ExclusionPolicy, path_diversity

    plan = path_diversity(host, ExclusionPolicy.make(countries=["US", "SG"]))
    ireland_div = plan.diversity_of(IRELAND_ID)
    print(
        f"Ireland keeps {ireland_div.admissible_paths}/{ireland_div.total_paths} "
        f"paths under the policy; {len(plan.unreachable)} destinations become "
        "unreachable (the US/SG servers themselves)."
    )

    print("\n== Alice: lowest latency to Ireland, avoid US + SG ==")
    alice = UserRequest.make(
        IRELAND_ID, Metric.LATENCY, exclude_countries=["US", "SG"]
    )
    print(selector.select(alice).format_text())

    print("\n== Bob: most *consistent* latency to Ireland (VoIP) ==")
    bob = UserRequest.make(IRELAND_ID, Metric.JITTER)
    result = selector.select(bob)
    print(result.format_text())
    best = result.best.aggregate
    print(
        f"(note: jitter-optimal path avoids the flappy detours: "
        f"via Ohio = {'16-ffaa:0:1004' in best.ases}, "
        f"via Singapore = {'16-ffaa:0:1007' in best.ases})"
    )

    print("\n== Carol: max downstream bandwidth to Magdeburg, no GEANT ==")
    carol = UserRequest.make(
        MAGDEBURG_ID, Metric.BANDWIDTH_DOWN, exclude_operators=["GEANT"]
    )
    print(selector.select(carol).format_text())

    print("\n== An impossible intent fails loudly, not silently ==")
    impossible = UserRequest.make(IRELAND_ID, exclude_countries=["IE"])
    print(selector.select(impossible).format_text())

    print("\n== Recommendation menu for Ireland (future-work feature) ==")
    for metric, ranked in selector.recommend(IRELAND_ID).items():
        top = ranked[0]
        print(f"  {metric:15s} -> {top.aggregate.path_id}: {top.explanation}")


if __name__ == "__main__":
    main()
