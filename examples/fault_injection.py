#!/usr/bin/env python
"""Fault-tolerance walkthrough (§4.1.2): the campaign must not die.

Injects all three failure families the paper names — server outages,
bad server responses, and data loss between measurement and storage —
into a multi-iteration campaign, and shows the runner surviving with
bounded, balanced sample loss.  Also demonstrates the transient-
congestion mechanism behind Fig 9.

Run:  python examples/fault_injection.py
"""

from repro.docdb.client import DocDBClient
from repro.netsim.congestion import CongestionEpisode
from repro.netsim.network import ServerHealth
from repro.scion.snet import ScionHost
from repro.suite.cli import seed_servers
from repro.suite.collect import PathsCollector
from repro.suite.config import STATS_COLLECTION, SuiteConfig
from repro.suite.faults import DataLossFault, FaultPlan, ServerOutage
from repro.suite.runner import TestRunner


def main() -> None:
    client = DocDBClient()
    db = client["upin"]
    seed_servers(db)
    host = ScionHost.scionlab()
    config = SuiteConfig(iterations=4, destination_ids=[3, 5], max_retries=0)
    PathsCollector(host, db, config).collect()

    plan = FaultPlan(
        outages=[
            # Magdeburg's bwtest server is down for iteration 1...
            ServerOutage(3, 1, 2, ServerHealth.DOWN),
            # ...and answers garbage in iteration 2.
            ServerOutage(3, 2, 3, ServerHealth.ERROR),
        ],
        # Each per-destination flush has a 25% chance of crashing first.
        data_loss=DataLossFault(probability=0.25, seed=11),
    )

    # A 30-second network congestion episode hits the KISTI core early on.
    host.network.add_episode(
        CongestionEpisode.on_ases(["20-ffaa:0:1401"], 30.0, 60.0, loss=1.0)
    )

    report = TestRunner(host, db, config, faults=plan).run()

    print("campaign completed despite everything:")
    print(f"  iterations finished:  {report.iterations}")
    print(f"  samples stored:       {report.stats_stored}")
    print(f"  samples lost:         {report.stats_lost} (bounded per §4.2.2)")
    print(f"  measurement errors:   {report.measurement_errors}")
    print(f"  injected outages:     {plan.injected_outages}")
    print(f"  injected flush crashes: {plan.injected_losses}")
    print("\nfirst few error-log entries:")
    for line in report.error_log[:6]:
        print(f"  - {line}")

    # The §4.2.2 promise: sample counts stay balanced per path.
    per_path = {}
    for doc in db[STATS_COLLECTION].find():
        per_path[doc["path_id"]] = per_path.get(doc["path_id"], 0) + 1
    by_dest = {}
    for path_id, n in per_path.items():
        by_dest.setdefault(path_id.split("_")[0], set()).add(n)
    print("\nsamples-per-path by destination (balanced within each):")
    for dest, counts in sorted(by_dest.items()):
        print(f"  destination {dest}: {sorted(counts)}")


if __name__ == "__main__":
    main()
