#!/usr/bin/env python
"""The full UPIN loop: explore -> intend -> control -> trace -> verify.

Exercises every §2.1 framework component around the paper's Path
Controller: the Domain Explorer publishes node knowledge, a user's
intent is selected and installed, the Path Tracer observes the actual
forwarding, and the Path Verifier checks the intent — including the
honest "unverifiable" verdict when traffic crosses non-UPIN domains.

Run:  python examples/upin_frontend_demo.py
"""

from repro.docdb.client import DocDBClient
from repro.scion.snet import ScionHost
from repro.selection.request import Metric, UserRequest
from repro.suite.cli import seed_servers
from repro.suite.collect import PathsCollector
from repro.suite.config import SuiteConfig
from repro.suite.runner import TestRunner
from repro.upin.frontend import Frontend


def main() -> None:
    client = DocDBClient()
    db = client["upin"]
    seed_servers(db)
    host = ScionHost.scionlab()
    config = SuiteConfig(iterations=3, destination_ids=[1, 3])
    PathsCollector(host, db, config).collect()
    TestRunner(host, db, config).run()

    # Our UPIN deployment covers the Swiss and EU research ISDs.
    frontend = Frontend(host, db, upin_isds=[17, 19])

    print("== Domain Explorer ==")
    print(frontend.describe_network())
    node = frontend.explorer.node("16-ffaa:0:1002")
    print(
        f"destination knowledge: {node['name']} in {node['city']} "
        f"({node['country']}), operated by {node['operator']}"
    )

    print("\n== Intent 1: Magdeburg, fully inside UPIN domains ==")
    outcome = frontend.submit_intent("alice", UserRequest.make(3, Metric.LATENCY))
    print(outcome.format_text())

    print("\n== Intent 2: Ireland, crosses the non-UPIN AWS ISD ==")
    outcome = frontend.submit_intent(
        "alice", UserRequest.make(1, Metric.LATENCY, exclude_countries=["US", "SG"])
    )
    print(outcome.format_text())
    print(
        "\nThe verifier is honest about its limits (§2.1): hops in ISD 16 "
        "cannot be attested, so the verdict is 'unverifiable', not "
        "'satisfied'."
    )

    print("\n== Installed flows ==")
    for rule in frontend.controller.flows():
        print(
            f"  {rule.user} -> server {rule.server_id} via "
            f"{rule.path.hop_count} hops ({rule.request.metric.value})"
        )


if __name__ == "__main__":
    main()
