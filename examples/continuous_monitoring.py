#!/usr/bin/env python
"""Continuous monitoring: the test-suite as a long-running service.

Act one runs periodic measurement rounds on the simulation clock (the
§4.1.2 "continuous functioning" requirement), lets a congestion
episode hit mid-run, then shows the operator-facing outcome: the
time-series analysis pinpoints the loss window, retention pruning
bounds the database, and a time-windowed selection query routes a
user around the trouble using only fresh samples.

Act two closes the loop: the flow health monitor watches an installed
intent through the scripted outage — congestion breaches the SLO,
K-of-N hysteresis trips, the flow fails over; later an interface
revocation kills the replacement path and forces a second, immediate
failover.  Every decision lands in the ``flow_events`` journal,
including detection→recovery latency.

Run:  python examples/continuous_monitoring.py
"""

from repro.analysis.timeseries import (
    heavy_loss_windows,
    loss_timeline,
    temporal_concentration,
)
from repro.docdb.client import DocDBClient
from repro.monitor.scenario import run_outage_scenario
from repro.netsim.congestion import CongestionEpisode
from repro.scion.snet import ScionHost
from repro.selection.engine import PathSelector
from repro.selection.request import Metric, UserRequest
from repro.suite.cli import seed_servers
from repro.suite.config import STATS_COLLECTION, SuiteConfig
from repro.suite.scheduler import MonitoringScheduler
from repro.suite.storage import prune_stats

MAGDEBURG_ID = 3
PERIOD_S = 300.0  # one monitoring round every 5 simulated minutes


def main() -> None:
    client = DocDBClient()
    db = client["upin"]
    seed_servers(db)
    host = ScionHost.scionlab()
    config = SuiteConfig(iterations=1, destination_ids=[MAGDEBURG_ID])

    # The Magdeburg core gets congested during rounds 3-4.
    host.network.add_episode(
        CongestionEpisode.on_ases(
            ["19-ffaa:0:1301"], 3 * PERIOD_S, 5 * PERIOD_S, loss=1.0
        )
    )

    scheduler = MonitoringScheduler(
        host, db, config, period_s=PERIOD_S, recollect_every=4
    )
    report = scheduler.run(rounds=8)

    print("monitoring rounds:")
    for r in report.rounds:
        print(
            f"  round {r.index}: start {r.started_at_s:7.1f}s "
            f"dur {r.duration_s:5.1f}s stored {r.stats_stored} "
            f"errors {r.errors} recollected={r.recollected}"
        )
    print(f"total samples: {report.stats_stored}")

    # -- pinpoint the congestion period from the data -------------------------
    timeline = loss_timeline(db, MAGDEBURG_ID)
    windows = heavy_loss_windows(timeline)
    concentration = temporal_concentration(timeline, windows)
    print("\ndetected heavy-loss windows:")
    for w in windows:
        print(
            f"  [{w.start_ms / 1000:7.1f}s .. {w.end_ms / 1000:7.1f}s] "
            f"{w.samples} samples over {len(w.affected_paths)} paths"
        )
    print(f"temporal concentration of failures: {concentration:.0%} "
          "(1.0 = a transient period, not broken paths)")

    # -- a user asks for a path DURING the outage ------------------------------
    selector = PathSelector(db, host.topology)
    congested_round_stamp = int((3 * PERIOD_S + 1) * 1000)
    request = UserRequest.make(MAGDEBURG_ID, Metric.LOSS)
    fresh = selector.select(request, since_ms=congested_round_stamp)
    print("\nselection using only samples from the congested period:")
    if fresh.best is not None:
        print(f"  -> {fresh.best.aggregate.path_id}: {fresh.best.explanation}")
    else:
        print("  -> no admissible path (every route crosses the outage)")

    # -- retention: keep only the last 3 rounds ----------------------------------
    cutoff_ms = int(report.rounds[-3].started_at_s * 1000)
    before = db[STATS_COLLECTION].count_documents()
    removed = prune_stats(db[STATS_COLLECTION], before_ms=cutoff_ms)
    print(
        f"\nretention: pruned {removed} of {before} samples "
        f"({db[STATS_COLLECTION].count_documents()} kept)"
    )

    # -- act two: the flow health monitor rides the same kind of loop ---------
    print("\n== flow health monitor: scripted outage ==")
    scenario = run_outage_scenario(rounds=8)
    print(scenario.monitor.format_status())
    print()
    print(scenario.format_summary())
    print()
    print(scenario.journal.failover_report())
    violated = any(
        doc.get("to") == "violated" for doc in scenario.journal.transitions()
    )
    assert violated, "expected an SLO violation in the scripted outage"
    assert scenario.journal.failovers(), "expected at least one failover"
    final = scenario.monitor.tracker.counts_by_state()
    assert final.get("ok", 0) >= 1, "flow should end the episode healthy"
    print("\nmonitor outcome: OK -> VIOLATED -> failed over -> OK  [verified]")


if __name__ == "__main__":
    main()
