"""Scheduled congestion episodes.

The paper's Fig 9 shows a cluster of consecutive N. Virginia paths
measured at **100 % packet loss**; the authors hypothesise that "one or
more of these common nodes experienced a period of congestion" during
the (sequential) measurements.  We model exactly that: an episode pins a
set of ASes (all their links) or individual links to a loss/overload
level during a time window on the simulation clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.topology.entities import LinkSpec
from repro.topology.isd_as import ISDAS


@dataclass(frozen=True)
class CongestionEpisode:
    """A time-windowed capacity/loss disturbance.

    ``loss`` is the extra drop probability applied to every packet
    crossing an affected link while the episode is active (1.0 = total
    blackout, the Fig 9 case).  ``capacity_factor`` scales the remaining
    usable capacity for fluid transfers (0.0 = none).
    """

    start_s: float
    end_s: float
    ases: FrozenSet[ISDAS] = frozenset()
    link_keys: FrozenSet[Tuple[str, int, str, int]] = frozenset()
    loss: float = 1.0
    capacity_factor: float = 0.0
    reason: str = "congestion"

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValidationError("episode must have positive duration")
        if not (0.0 <= self.loss <= 1.0):
            raise ValidationError(f"loss out of range: {self.loss}")
        if not (0.0 <= self.capacity_factor <= 1.0):
            raise ValidationError(f"capacity_factor out of range: {self.capacity_factor}")
        if not self.ases and not self.link_keys:
            raise ValidationError("episode must target at least one AS or link")

    @classmethod
    def on_ases(
        cls,
        ases: Iterable["ISDAS | str"],
        start_s: float,
        end_s: float,
        *,
        loss: float = 1.0,
        capacity_factor: float = 0.0,
        reason: str = "congestion",
    ) -> "CongestionEpisode":
        return cls(
            start_s=start_s,
            end_s=end_s,
            ases=frozenset(ISDAS.parse(a) for a in ases),
            loss=loss,
            capacity_factor=capacity_factor,
            reason=reason,
        )

    @classmethod
    def on_links(
        cls,
        links: Iterable[LinkSpec],
        start_s: float,
        end_s: float,
        *,
        loss: float = 1.0,
        capacity_factor: float = 0.0,
        reason: str = "congestion",
    ) -> "CongestionEpisode":
        return cls(
            start_s=start_s,
            end_s=end_s,
            link_keys=frozenset(l.key() for l in links),
            loss=loss,
            capacity_factor=capacity_factor,
            reason=reason,
        )

    def active_at(self, t_s: float) -> bool:
        return self.start_s <= t_s < self.end_s

    def affects(self, link: LinkSpec) -> bool:
        if link.key() in self.link_keys:
            return True
        return link.a in self.ases or link.b in self.ases


class EpisodeSchedule:
    """The set of episodes a :class:`NetworkSim` consults per transit.

    The schedule carries a monotonically increasing ``epoch`` that bumps
    on every mutation (``add``/``clear``).  Per-link sampling caches key
    their memoized window integrals on it, so a congestion episode added
    mid-run — including the monitor blackholing a link after a
    revocation — invalidates every stale cached answer immediately.
    """

    def __init__(self, episodes: Iterable[CongestionEpisode] = ()) -> None:
        self._episodes = list(episodes)
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Mutation counter consulted by sampling caches."""
        return self._epoch

    def add(self, episode: CongestionEpisode) -> None:
        self._episodes.append(episode)
        self._epoch += 1

    def clear(self) -> None:
        self._episodes.clear()
        self._epoch += 1

    def __len__(self) -> int:
        return len(self._episodes)

    def disturbance(self, link: LinkSpec, t_s: float) -> Tuple[float, float]:
        """Aggregate (extra_loss, capacity_factor) for ``link`` at ``t_s``.

        Overlapping episodes compose: losses combine as independent drop
        events, capacity factors multiply.
        """
        survive = 1.0
        cap = 1.0
        for ep in self._episodes:
            if ep.active_at(t_s) and ep.affects(link):
                survive *= 1.0 - ep.loss
                cap *= ep.capacity_factor
        return 1.0 - survive, cap

    def disturbance_at(
        self, link: LinkSpec, t_array: "np.ndarray"
    ) -> Tuple["np.ndarray", "np.ndarray"]:
        """Vectorized :meth:`disturbance`: per-time (extra_loss, cap_factor).

        ``t_array`` is a numpy float array of simulation times; returns
        two arrays of the same shape.  For any time *t*,
        ``disturbance_at(link, [t])`` equals ``disturbance(link, t)``
        exactly — overlapping episodes compose identically (losses as
        independent drop events, capacity factors multiplicatively).
        Cost is O(active episodes) numpy masks instead of O(times ×
        episodes) Python comparisons.
        """
        t = np.asarray(t_array, dtype=np.float64)
        survive = np.ones_like(t)
        cap = np.ones_like(t)
        for ep in self._episodes:
            if not ep.affects(link):
                continue
            active = (t >= ep.start_s) & (t < ep.end_s)
            if not active.any():
                continue
            survive[active] *= 1.0 - ep.loss
            cap[active] *= ep.capacity_factor
        return 1.0 - survive, cap

    def window_disturbance(
        self, link: LinkSpec, t0_s: float, t1_s: float
    ) -> Tuple[float, float]:
        """Time-weighted (extra_loss, capacity_factor) over a window."""
        if not self._episodes:
            return 0.0, 1.0  # common case: skip the cut-set machinery
        if t1_s <= t0_s:
            return self.disturbance(link, t0_s)
        # Integrate piecewise over episode boundaries.
        cuts = {t0_s, t1_s}
        for ep in self._episodes:
            if ep.affects(link):
                if t0_s < ep.start_s < t1_s:
                    cuts.add(ep.start_s)
                if t0_s < ep.end_s < t1_s:
                    cuts.add(ep.end_s)
        points = sorted(cuts)
        total = t1_s - t0_s
        loss_acc = 0.0
        cap_acc = 0.0
        for lo, hi in zip(points, points[1:]):
            w = (hi - lo) / total
            loss, cap = self.disturbance(link, (lo + hi) / 2.0)
            loss_acc += w * loss
            cap_acc += w * cap
        return loss_acc, cap_acc
