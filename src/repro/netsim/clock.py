"""The simulation clock.

A single :class:`SimClock` instance is shared by the network simulator,
the measurement applications and the test-suite so that measurement
timestamps, utilization processes and congestion episodes all live on
one time axis.  Time is a float in seconds from simulation start.
"""

from __future__ import annotations

from repro.errors import ValidationError


class SimClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start_s: float = 0.0) -> None:
        self._now = float(start_s)

    @property
    def now_s(self) -> float:
        return self._now

    @property
    def now_ms(self) -> int:
        return int(self._now * 1000.0)

    def advance(self, dt_s: float) -> float:
        """Move time forward by ``dt_s`` seconds; returns the new time."""
        if dt_s < 0:
            raise ValidationError(f"cannot move time backwards (dt={dt_s})")
        self._now += dt_s
        return self._now

    def advance_to(self, t_s: float) -> float:
        """Move time forward to the absolute instant ``t_s`` (no-op if past)."""
        if t_s > self._now:
            self._now = t_s
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now:.6f}s)"
