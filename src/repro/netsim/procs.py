"""Stochastic background processes: AR(1) cross-traffic utilization.

Each link direction owns one :class:`UtilizationProcess`.  The process is
sampled on a fixed step grid and generated lazily-but-sequentially, so a
query at simulated time *t* always returns the same value no matter how
many queries happened in between — the property that keeps experiments
deterministic under refactoring.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ValidationError
from repro.netsim.config import UtilizationParams


class UtilizationProcess:
    """Lazily generated, cached AR(1) series clamped to ``[floor, ceil]``."""

    def __init__(self, params: UtilizationParams, rng: np.random.Generator) -> None:
        if not (0.0 <= params.floor <= params.ceil <= 1.0):
            raise ValidationError("utilization bounds must satisfy 0<=floor<=ceil<=1")
        if not (0.0 <= params.rho < 1.0):
            raise ValidationError(f"AR(1) rho must be in [0,1): {params.rho}")
        if params.step_s <= 0:
            raise ValidationError("step_s must be positive")
        self.params = params
        self._rng = rng
        first = params.mean + params.sigma * float(rng.standard_normal())
        self._values: List[float] = [self._clamp(first)]

    def _clamp(self, u: float) -> float:
        return min(max(u, self.params.floor), self.params.ceil)

    def _extend_to(self, k: int) -> None:
        p = self.params
        while len(self._values) <= k:
            prev = self._values[-1]
            nxt = p.mean + p.rho * (prev - p.mean) + p.sigma * float(
                self._rng.standard_normal()
            )
            self._values.append(self._clamp(nxt))

    def value_at(self, t_s: float) -> float:
        """Utilization fraction in ``[floor, ceil]`` at simulated time t."""
        if t_s < 0:
            raise ValidationError(f"negative simulation time: {t_s}")
        k = int(t_s / self.params.step_s)
        self._extend_to(k)
        return self._values[k]

    def mean_over(self, t0_s: float, t1_s: float) -> float:
        """Average utilization over the window ``[t0, t1]``.

        Used by fluid transfers: a 3-second bandwidth test experiences
        the average cross-traffic of its window, not a point sample.
        """
        if t1_s < t0_s:
            raise ValidationError("window end before start")
        k0 = int(t0_s / self.params.step_s)
        k1 = int(t1_s / self.params.step_s)
        self._extend_to(k1)
        window = self._values[k0 : k1 + 1]
        return float(np.mean(window))
