"""Stochastic background processes: AR(1) cross-traffic utilization.

Each link direction owns one :class:`UtilizationProcess`.  The process is
sampled on a fixed step grid and generated lazily-but-sequentially, so a
query at simulated time *t* always returns the same value no matter how
many queries happened in between — the property that keeps experiments
deterministic under refactoring.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.netsim.config import UtilizationParams

#: Minimum number of grid cells generated per extension.  Each process
#: owns its named RNG stream exclusively and always extends sequentially
#: from the current end, so over-extending is invisible: cell *k* holds
#: the same value no matter how eagerly it was generated (a vectorized
#: draw consumes the stream exactly like that many scalar draws).  The
#: chunk just amortises the per-call RNG and list plumbing over the
#: campaign's thousands of tiny window extensions.
EXTEND_CHUNK = 256


class UtilizationProcess:
    """Lazily generated, cached AR(1) series clamped to ``[floor, ceil]``."""

    def __init__(self, params: UtilizationParams, rng: np.random.Generator) -> None:
        if not (0.0 <= params.floor <= params.ceil <= 1.0):
            raise ValidationError("utilization bounds must satisfy 0<=floor<=ceil<=1")
        if not (0.0 <= params.rho < 1.0):
            raise ValidationError(f"AR(1) rho must be in [0,1): {params.rho}")
        if params.step_s <= 0:
            raise ValidationError("step_s must be positive")
        self.params = params
        self._rng = rng
        first = params.mean + params.sigma * float(rng.standard_normal())
        self._values: List[float] = [self._clamp(first)]
        #: Cached ndarray view of ``_values`` (rebuilt after extension) so
        #: the vectorized readers don't re-convert the list per call.
        self._arr: Optional[np.ndarray] = None

    def _clamp(self, u: float) -> float:
        return min(max(u, self.params.floor), self.params.ceil)

    def _extend_to(self, k: int) -> None:
        p = self.params
        n_missing = k + 1 - len(self._values)
        if n_missing <= 0:
            return
        if n_missing < EXTEND_CHUNK:
            n_missing = EXTEND_CHUNK  # over-extend; bit-identical cells
        self._arr = None  # invalidate the ndarray view
        # One vectorized draw consumes the generator's stream exactly
        # like ``n_missing`` scalar ``standard_normal()`` calls (a
        # property of :class:`numpy.random.Generator` the fast path's
        # byte-compat tests rely on), so the grid values stay identical
        # to the old per-step draws while the per-call RNG overhead —
        # the campaign profile's single largest line — disappears.
        noise = (p.sigma * self._rng.standard_normal(n_missing)).tolist()
        prev = self._values[-1]
        mean, rho = p.mean, p.rho
        floor, ceil = p.floor, p.ceil
        append = self._values.append
        for eps in noise:
            nxt = mean + rho * (prev - mean) + eps
            # Inline clamp (bit-identical to min(max(...))), avoiding
            # two builtin calls per grid cell.
            prev = floor if nxt < floor else (ceil if nxt > ceil else nxt)
            append(prev)

    def value_at(self, t_s: float) -> float:
        """Utilization fraction in ``[floor, ceil]`` at simulated time t."""
        if t_s < 0:
            raise ValidationError(f"negative simulation time: {t_s}")
        k = int(t_s / self.params.step_s)
        self._extend_to(k)
        return self._values[k]

    def values_at(self, t_array: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`value_at`: utilization at every time in one go.

        The grid cache is shared with the scalar reader, so for any time
        *t*, ``values_at([t])[0] == value_at(t)`` exactly — the batch
        measurement fast path (:mod:`repro.netsim.batch`) relies on this
        to keep the AR(1) series identical no matter which evaluator
        touched a grid cell first.  Cost is O(max step) amortised plus
        one fancy-index gather, instead of one Python call per sample.
        """
        if isinstance(t_array, np.ndarray) and t_array.dtype == np.float64:
            t = t_array
        else:
            t = np.asarray(t_array, dtype=np.float64)
        if t.size == 0:
            return np.empty(0, dtype=np.float64)
        if float(t.min()) < 0:
            raise ValidationError(f"negative simulation time: {float(t.min())}")
        k = (t / self.params.step_s).astype(np.int64)
        k_min = int(k.min())
        k_max = int(k.max())
        self._extend_to(k_max)
        span = k_max - k_min + 1
        if span <= 4 * t.size:
            # Narrow query (the echo-series case: count samples inside a
            # few-second window).  Gather from a slice of the list so a
            # freshly extended grid doesn't force re-materializing the
            # whole history — that rebuild made interleaved
            # extend/read patterns O(grid²) over a campaign.
            sub = np.asarray(self._values[k_min : k_max + 1], dtype=np.float64)
            return sub[k - k_min]
        if self._arr is None or self._arr.size != len(self._values):
            self._arr = np.asarray(self._values, dtype=np.float64)
        return self._arr[k]

    def mean_over(self, t0_s: float, t1_s: float) -> float:
        """Average utilization over the window ``[t0, t1]``.

        Used by fluid transfers: a 3-second bandwidth test experiences
        the average cross-traffic of its window, not a point sample.
        """
        if t1_s < t0_s:
            raise ValidationError("window end before start")
        k0 = int(t0_s / self.params.step_s)
        k1 = int(t1_s / self.params.step_s)
        self._extend_to(k1)
        window = self._values[k0 : k1 + 1]
        if len(window) < 8:
            # Bit-identical to np.mean for < 8 elements: numpy's
            # pairwise_sum uses a plain sequential loop below its 8-way
            # unroll threshold, i.e. the exact order of Python's sum().
            # Typical bandwidth-test windows are 4 grid cells, so the
            # fluid hot path skips the ufunc dispatch overhead entirely.
            return sum(window) / len(window)
        return float(np.mean(window))
