"""Discrete-event network substrate standing in for the live SCIONLab WAN.

The paper measures a real overlay testbed; offline we reproduce the
*mechanisms* that shaped its results:

* per-link propagation delay derived from great-circle geography
  (dominant latency factor, §6.1),
* stochastic cross-traffic (AR(1) utilization processes) producing
  queueing delay, jitter and sample spread,
* directional link capacities and router packet-per-second limits —
  the sources of the upstream/downstream and 64 B/MTU bandwidth
  structure (Fig 7),
* UDP-overlay encapsulation with fragmentation of MTU-sized SCION
  packets, whose compounding fragment loss under overload produces the
  12 Mbps -> 150 Mbps trend reversal (Fig 8),
* scheduled congestion episodes, reproducing the transient 100 %-loss
  path cluster of Fig 9.

Everything is seeded through :class:`repro.util.rng.RngStreams`.
"""

from repro.netsim.clock import SimClock
from repro.netsim.events import EventQueue
from repro.netsim.config import NetworkConfig
from repro.netsim.packet import (
    OVERLAY_HEADER_BYTES,
    scion_header_bytes,
    wire_size_bytes,
    fragment_count,
)
from repro.netsim.congestion import CongestionEpisode
from repro.netsim.link import LinkDirection, LinkState
from repro.netsim.network import LinkTraversal, NetworkSim, TransferResult

__all__ = [
    "SimClock",
    "EventQueue",
    "NetworkConfig",
    "OVERLAY_HEADER_BYTES",
    "scion_header_bytes",
    "wire_size_bytes",
    "fragment_count",
    "CongestionEpisode",
    "LinkDirection",
    "LinkState",
    "LinkTraversal",
    "NetworkSim",
    "TransferResult",
]
