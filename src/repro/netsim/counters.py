"""Data-plane telemetry counters for the measurement fast path.

One :class:`NetCounters` instance is shared by a :class:`~repro.netsim.
network.NetworkSim` and every :class:`~repro.netsim.link.LinkState` it
owns.  The counters are plain ints — the simulator is single-threaded
per host (parallel campaigns give every destination its own seeded
host), so no locking is needed — and every one of them is a pure
function of ``(world, seed, campaign)``: the determinism suites compare
snapshots byte-for-byte across worker counts.

The canonical ``net_*`` metric names these map onto live in
:mod:`repro.suite.metrics` (``_NET_STAT_NAMES``); the table in
``docs/ARCHITECTURE.md`` is diff-tested against that mapping.
"""

from __future__ import annotations

from typing import Dict


class NetCounters:
    """Counters for probes, sampling caches and the flow ledger."""

    __slots__ = (
        "batch_series",
        "batch_packets",
        "scalar_fallback_series",
        "scalar_probes",
        "sampler_hits",
        "sampler_misses",
        "ledger_pruned_flows",
    )

    def __init__(self) -> None:
        #: Echo series answered by the vectorized batch engine.
        self.batch_series = 0
        #: Echo packets computed inside those batch series.
        self.batch_packets = 0
        #: Echo series that took the scalar per-packet fallback
        #: (``NetworkConfig.scalar_fallback=True``).
        self.scalar_fallback_series = 0
        #: Individual scalar round-trip probes (fallback series packets,
        #: traceroute partial probes, direct ``probe_roundtrip`` calls).
        self.scalar_probes = 0
        #: Per-link sampling-cache hits ((direction, window) integrals).
        self.sampler_hits = 0
        #: Per-link sampling-cache misses (integral computed fresh).
        self.sampler_misses = 0
        #: Expired flow records dropped from the flow ledger.
        self.ledger_pruned_flows = 0

    def snapshot(self) -> Dict[str, int]:
        """Stable-keyed plain dict (the ``--metrics`` wire format)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"NetCounters({inner})"
