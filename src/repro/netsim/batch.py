"""The vectorized measurement fast path: whole echo series in O(links).

The paper's test-suite is measurement-bound: every campaign iteration
runs ``scion ping -c 30 --interval 0.1s`` plus four bwtest transfers
over every retained path to 21 destinations (§3.3, §5.3).  The scalar
data plane walks every :class:`~repro.netsim.network.LinkTraversal`
once *per packet*, making scalar numpy RNG calls per link per direction
— O(count × links) Python work.  :func:`probe_batch` computes the same
series in O(links) numpy operations:

* per-link static terms (propagation, serialization) are computed once;
* cross-traffic utilization is gathered through
  :meth:`~repro.netsim.procs.UtilizationProcess.values_at` (vectorized
  over the shared AR(1) grid cache, so batch and scalar readers see the
  exact same process values);
* per-link jitter is one ``normal(size=count)`` vector and the drop
  decision one vectorized Bernoulli per link/direction;
* cumulative delays propagate by running vector sums, and a first-drop
  mask guarantees a packet dropped at link *k* never contributes
  downstream draws that change observable results (each step's draws
  are fixed-size vectors, so a dropped packet keeps its lane without
  perturbing any other packet's samples).

Determinism contract (property-tested in
``tests/test_netsim_fastpath.py``):

* same seed ⇒ byte-identical series across runs and across 1-vs-8
  parallel workers, in both batch and scalar modes;
* batch and scalar modes agree statistically (matched mean RTT and loss
  fraction on ≥1k-sample series) but **not** sample-for-sample — batch
  draws consume the per-link RNG streams in vector-sized chunks;
* ``NetworkConfig.scalar_fallback=True`` preserves the pre-batch
  packet-at-a-time semantics byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.netsim.packet import PacketSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.network import LinkTraversal, NetworkSim


@dataclass(frozen=True)
class BatchEchoSeries:
    """One vectorized echo series: per-packet send times and RTTs.

    ``rtt_ms`` is aligned with ``send_times_s``; lost probes (dropped on
    either direction, or slower than the SCMP deadline) hold ``NaN``.
    """

    send_times_s: "np.ndarray"
    rtt_ms: "np.ndarray"

    @property
    def count(self) -> int:
        return int(self.rtt_ms.size)

    @property
    def lost_mask(self) -> "np.ndarray":
        return np.isnan(self.rtt_ms)

    @property
    def received(self) -> int:
        return int(np.count_nonzero(~self.lost_mask))

    def received_rtts(self) -> Tuple[float, ...]:
        """Surviving RTTs in send order (the ``PingStats`` payload)."""
        return tuple(float(r) for r in self.rtt_ms[~self.lost_mask])


def roundtrip_steps(
    traversals: Sequence["LinkTraversal"],
) -> Tuple["LinkTraversal", ...]:
    """Forward traversals followed by the reversed return path."""
    back = [step.reversed() for step in reversed(traversals)]
    return tuple(traversals) + tuple(back)


def probe_batch(
    network: "NetworkSim",
    traversals: Sequence["LinkTraversal"],
    packet: PacketSpec,
    count: int,
    interval_s: float,
    t0_s: float,
) -> BatchEchoSeries:
    """Compute an entire SCMP echo series in O(links) numpy operations.

    Packet *i* departs at ``t0_s + i * interval_s``; its arrival time at
    each link is the send time plus the accumulated delay vector so far,
    exactly mirroring the scalar walker's clock arithmetic.  Probes
    slower than ``config.probe_timeout_s`` count as lost, like the real
    ``scion ping`` deadline.
    """
    if not traversals:
        raise ValidationError("empty path")
    if count < 1:
        raise ValidationError(f"echo count must be >= 1: {count}")
    if interval_s <= 0:
        raise ValidationError("echo interval must be positive")

    send_times = t0_s + np.arange(count, dtype=np.float64) * interval_s
    delay_ms = np.zeros(count, dtype=np.float64)
    dropped = np.zeros(count, dtype=bool)

    for step in roundtrip_steps(traversals):
        state = network.link_state(step.link)
        direction = state.direction_from(step.sender)
        t = send_times + delay_ms / 1e3
        step_ms, step_drop = state.transit_batch(
            direction, packet.total_wire_bytes, packet.fragments, t
        )
        # First-drop masking: a packet dropped upstream keeps its lane
        # (the per-step draws are fixed-size vectors) but its RTT is
        # already unobservable, so downstream contributions only need to
        # stay out of *other* packets' lanes — which vector ops give us
        # for free.  Accumulate delay for all lanes; OR in new drops.
        delay_ms = delay_ms + step_ms
        dropped |= step_drop

    rtt = np.where(dropped, np.nan, delay_ms)
    rtt = np.where(rtt > network.config.probe_timeout_s * 1e3, np.nan, rtt)

    network.counters.batch_series += 1
    network.counters.batch_packets += count
    return BatchEchoSeries(send_times_s=send_times, rtt_ms=rtt)
