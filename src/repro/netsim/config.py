"""Tunable parameters of the network substrate.

All knobs live here so experiments can state their world in one place
and tests can build small, fast configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.netsim.packet import DEFAULT_UNDERLAY_MTU
from repro.topology.isd_as import ISDAS


@dataclass
class PpsLimits:
    """Router packet-per-second processing limits for one AS.

    ``send`` bounds packets the AS can emit per second, ``recv`` packets
    it can absorb.  SCIONLab user ASes are software routers inside small
    VMs, so their limits sit far below the hardware-ish defaults — this
    is what caps small-packet bandwidth tests (Fig 7's 64-byte whiskers).
    """

    send: float = 50_000.0
    recv: float = 50_000.0


@dataclass
class UtilizationParams:
    """AR(1) cross-traffic utilization process parameters.

    ``u[k+1] = mean + rho * (u[k] - mean) + sigma * eps``, sampled every
    ``step_s`` simulated seconds, clamped to ``[floor, ceil]``.
    """

    mean: float = 0.25
    rho: float = 0.9
    sigma: float = 0.06
    step_s: float = 1.0
    floor: float = 0.0
    ceil: float = 0.93


@dataclass
class NetworkConfig:
    """Complete parameterisation of :class:`repro.netsim.network.NetworkSim`."""

    #: Root seed for every stochastic stream in the simulator.
    seed: int = 20231112  # SC'23 workshop date

    #: Fibre circuity multiplier applied to great-circle distances.
    circuity: float = 1.4

    #: Baseline per-transit jitter (std-dev, ms) added at each hop.
    base_jitter_ms: float = 0.35

    #: Extra per-transit jitter for specific ASes (paper §6.1 calls out
    #: 16-ffaa:0:1007 and 16-ffaa:0:1004).  Keyed by ISD-AS.
    extra_jitter_ms: Dict[ISDAS, float] = field(default_factory=dict)

    #: Queueing delay scale: queue_ms = scale * rho / (1 - rho).
    queue_scale_ms: float = 0.8

    #: Per-link residual loss applied even when idle.
    default_base_loss: float = 0.0008

    #: Underlay MTU for fragmentation decisions.
    underlay_mtu: int = DEFAULT_UNDERLAY_MTU

    #: Default router pps limits; override per AS for small VMs.
    default_pps: PpsLimits = field(default_factory=PpsLimits)
    pps_overrides: Dict[ISDAS, PpsLimits] = field(default_factory=dict)

    #: Cross-traffic processes per link kind ("core"/"parent"/"peer").
    utilization: Dict[str, UtilizationParams] = field(
        default_factory=lambda: {
            "core": UtilizationParams(mean=0.30, sigma=0.07),
            "parent": UtilizationParams(mean=0.22, sigma=0.06),
            "peer": UtilizationParams(mean=0.20, sigma=0.05),
        }
    )

    #: Relative noise (std dev) on achieved bandwidth of fluid transfers,
    #: modelling measurement granularity of the real bwtester.
    bw_noise_rel: float = 0.04

    #: SCMP probe timeout — probes slower than this count as lost.
    probe_timeout_s: float = 2.0

    #: Route echo series through the scalar per-packet walker instead of
    #: the vectorized batch engine (:mod:`repro.netsim.batch`).  The
    #: scalar path preserves the pre-batch RNG draw order byte-for-byte
    #: (pinned by the seeded study-campaign golden test); batch mode is
    #: the default and is itself seed-deterministic, but consumes the
    #: per-link streams in vector-sized chunks.
    scalar_fallback: bool = False

    def pps_for(self, ia: ISDAS) -> PpsLimits:
        return self.pps_overrides.get(ia, self.default_pps)

    def jitter_for(self, ia: ISDAS) -> float:
        return self.base_jitter_ms + self.extra_jitter_ms.get(ia, 0.0)

    def utilization_for(self, kind: str) -> UtilizationParams:
        return self.utilization.get(kind, UtilizationParams())
