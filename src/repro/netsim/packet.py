"""Wire-format arithmetic: header sizes, overlay encapsulation, fragmentation.

SCIONLab transports SCION packets inside a UDP/IP overlay.  Two
consequences matter for the evaluation:

* **Header overhead grows with path length.**  A SCION header carries one
  8-byte info field per segment and one 12-byte hop field per hop, on top
  of the common and address headers.  Small payloads therefore pay a very
  large relative overhead (the paper's 64-byte tests).
* **MTU-sized payloads fragment in the underlay.**  A 1472-byte SCION
  payload plus SCION and overlay headers exceeds the 1500-byte underlay
  MTU, so the overlay IP layer splits it into fragments.  Losing any
  fragment loses the whole packet — the compounding that flips the
  64 B/MTU ordering between 12 Mbps and 150 Mbps targets (Fig 7 vs 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError

#: UDP/IP overlay encapsulation (IPv4 20 + UDP 8).
OVERLAY_HEADER_BYTES = 28

#: SCION common header + host address header (IPv4 endpoints).
SCION_FIXED_HEADER_BYTES = 36

#: Per path-segment info field.
INFO_FIELD_BYTES = 8

#: Per-hop hop field.
HOP_FIELD_BYTES = 12

#: Underlay (Ethernet/IP) MTU assumed on overlay links.
DEFAULT_UNDERLAY_MTU = 1500

#: Per-fragment IP header repeated on each fragment after the first.
FRAGMENT_HEADER_BYTES = 20

#: SCMP echo header (type/code/checksum/id/seq), mirroring SCMP's 8 bytes.
SCMP_HEADER_BYTES = 8


def scion_header_bytes(n_hops: int, n_segments: int = 2) -> int:
    """Size of the SCION header for a path with ``n_hops`` hop fields.

    ``n_hops`` counts AS-level hops (one hop field per AS traversed);
    ``n_segments`` counts the path segments stitched together (up to 3:
    up, core, down).
    """
    if n_hops < 0 or n_segments < 0:
        raise ValidationError("hop/segment counts must be non-negative")
    return (
        SCION_FIXED_HEADER_BYTES
        + n_segments * INFO_FIELD_BYTES
        + n_hops * HOP_FIELD_BYTES
    )


def wire_size_bytes(payload: int, n_hops: int, n_segments: int = 2) -> int:
    """Total underlay bytes for one SCION packet (before fragmentation)."""
    if payload < 0:
        raise ValidationError(f"negative payload: {payload}")
    return payload + scion_header_bytes(n_hops, n_segments) + OVERLAY_HEADER_BYTES


def fragment_count(wire_bytes: int, underlay_mtu: int = DEFAULT_UNDERLAY_MTU) -> int:
    """Number of underlay fragments a packet of ``wire_bytes`` needs."""
    if underlay_mtu <= FRAGMENT_HEADER_BYTES:
        raise ValidationError(f"absurd underlay MTU: {underlay_mtu}")
    if wire_bytes <= underlay_mtu:
        return 1
    # First fragment carries a full MTU; subsequent ones repeat the IP
    # header, so their payload capacity shrinks.
    remaining = wire_bytes - underlay_mtu
    per_fragment = underlay_mtu - FRAGMENT_HEADER_BYTES
    return 1 + math.ceil(remaining / per_fragment)


@dataclass(frozen=True)
class PacketSpec:
    """A packet class used in a measurement: payload size + path shape."""

    payload_bytes: int
    n_hops: int
    n_segments: int = 2
    underlay_mtu: int = DEFAULT_UNDERLAY_MTU

    # The three wire-arithmetic properties are memoized on the (frozen)
    # instance: the data plane re-reads them for every traversal step,
    # and the integers can never go stale.

    @property
    def wire_bytes(self) -> int:
        cached = self.__dict__.get("_wire_memo")
        if cached is None:
            cached = wire_size_bytes(
                self.payload_bytes, self.n_hops, self.n_segments
            )
            object.__setattr__(self, "_wire_memo", cached)
        return cached

    @property
    def fragments(self) -> int:
        cached = self.__dict__.get("_fragments_memo")
        if cached is None:
            cached = fragment_count(self.wire_bytes, self.underlay_mtu)
            object.__setattr__(self, "_fragments_memo", cached)
        return cached

    @property
    def total_wire_bytes(self) -> int:
        """Wire bytes including repeated fragment headers."""
        cached = self.__dict__.get("_total_wire_memo")
        if cached is None:
            cached = self.wire_bytes + (self.fragments - 1) * FRAGMENT_HEADER_BYTES
            object.__setattr__(self, "_total_wire_memo", cached)
        return cached

    @property
    def goodput_fraction(self) -> float:
        """payload / wire ratio — the efficiency of this packet class."""
        return self.payload_bytes / self.total_wire_bytes
