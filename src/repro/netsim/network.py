"""The network simulator facade: packet probes and fluid transfers.

:class:`NetworkSim` owns one :class:`LinkState` per topology link, a
congestion-episode schedule, a server health directory (for the paper's
fault-tolerance scenarios, §4.1.2) and the shared simulation clock.  The
SCION layer resolves a forwarding path into a list of
:class:`LinkTraversal` records and hands them here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TopologyError, ValidationError
from repro.netsim.clock import SimClock
from repro.netsim.config import NetworkConfig
from repro.netsim.congestion import CongestionEpisode, EpisodeSchedule
from repro.netsim.counters import NetCounters
from repro.netsim.link import LinkState, TransitSample
from repro.netsim.packet import PacketSpec
from repro.topology.entities import LinkSpec
from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS
from repro.util.rng import RngStreams

from repro.netsim import batch


@dataclass(frozen=True)
class LinkTraversal:
    """One step of a forwarding path: cross ``link`` starting at ``sender``."""

    link: LinkSpec
    sender: ISDAS

    def reversed(self) -> "LinkTraversal":
        return LinkTraversal(link=self.link, sender=self.link.other(self.sender))


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one SCMP-style round-trip probe."""

    rtt_ms: Optional[float]  # None when the probe was lost

    @property
    def lost(self) -> bool:
        return self.rtt_ms is None


@dataclass(frozen=True)
class TransferResult:
    """Outcome of a fluid bandwidth transfer (one direction)."""

    achieved_bps: float
    loss_fraction: float
    sent_packets: int
    received_packets: int

    @property
    def achieved_mbps(self) -> float:
        return self.achieved_bps / 1e6


@dataclass(frozen=True)
class FlowRecord:
    """One registered foreground flow crossing one link direction."""

    link_key: Tuple[str, int, str, int]
    direction: "LinkDirection"
    t0_s: float
    t1_s: float
    wire_bps: float


class FlowLedger:
    """Tracks concurrent foreground flows for capacity sharing.

    The paper measures one path at a time, but a deployed UPIN domain
    serves many users whose transfers overlap.  Registered flows reduce
    the capacity the fluid model hands to later overlapping transfers —
    same-link, same-direction, time-weighted.

    Flows are indexed by ``(link_key, direction)``, so the competing-load
    query touches only the flows that could possibly overlap — O(flows
    on this link direction) instead of O(all flows ever registered) —
    and :meth:`prune` drops records whose window already closed
    (``t1_s < now``).  :meth:`~NetworkSim.fluid_transfer` prunes on
    every call, which keeps the ledger bounded by the number of
    *concurrently open* transfers over a long monitoring run instead of
    growing without bound under ``register_flow=True``.
    """

    def __init__(self, counters: Optional[NetCounters] = None) -> None:
        self._by_key: Dict[
            Tuple[Tuple[str, int, str, int], "LinkDirection"], List[FlowRecord]
        ] = {}
        self._count = 0
        self._counters = counters if counters is not None else NetCounters()

    def register(self, record: FlowRecord) -> None:
        self._by_key.setdefault((record.link_key, record.direction), []).append(
            record
        )
        self._count += 1

    def clear(self) -> None:
        self._by_key.clear()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def prune(self, now_s: float) -> int:
        """Drop flows whose window closed before ``now_s``; return count."""
        removed = 0
        dead_keys = []
        for key, bucket in self._by_key.items():
            kept = [flow for flow in bucket if flow.t1_s >= now_s]
            removed += len(bucket) - len(kept)
            if kept:
                self._by_key[key] = kept
            else:
                dead_keys.append(key)
        for key in dead_keys:
            del self._by_key[key]
        self._count -= removed
        self._counters.ledger_pruned_flows += removed
        return removed

    def concurrent_load_bps(
        self,
        link_key: Tuple[str, int, str, int],
        direction: "LinkDirection",
        t0_s: float,
        t1_s: float,
    ) -> float:
        """Time-weighted wire load of overlapping flows on this link."""
        if t1_s <= t0_s:
            return 0.0
        window = t1_s - t0_s
        total = 0.0
        for flow in self._by_key.get((link_key, direction), ()):
            overlap = min(t1_s, flow.t1_s) - max(t0_s, flow.t0_s)
            if overlap > 0:
                total += flow.wire_bps * overlap / window
        return total


class ServerHealth(enum.Enum):
    """Health states used by fault injection (§4.1.2 failure families)."""

    UP = "up"
    DOWN = "down"  # server failure: no answer at all
    ERROR = "error"  # answers, but with a bad response


class ServerDirectory:
    """Mutable health registry for destination hosts."""

    def __init__(self) -> None:
        self._state: Dict[Tuple[ISDAS, str], ServerHealth] = {}

    @staticmethod
    def _key(ia: "ISDAS | str", ip: str) -> Tuple[ISDAS, str]:
        return (ISDAS.parse(ia), ip)

    def set_health(self, ia: "ISDAS | str", ip: str, health: ServerHealth) -> None:
        self._state[self._key(ia, ip)] = health

    def health(self, ia: "ISDAS | str", ip: str) -> ServerHealth:
        return self._state.get(self._key(ia, ip), ServerHealth.UP)

    def reset(self) -> None:
        self._state.clear()


class NetworkSim:
    """Simulates packet and fluid traffic over a :class:`Topology`."""

    def __init__(
        self,
        topology: Topology,
        config: Optional[NetworkConfig] = None,
        clock: Optional[SimClock] = None,
    ) -> None:
        self.topology = topology
        self.config = config or NetworkConfig()
        self.clock = clock or SimClock()
        self.episodes = EpisodeSchedule()
        self.servers = ServerDirectory()
        self.counters = NetCounters()
        self.flows = FlowLedger(self.counters)
        self._streams = RngStreams(self.config.seed)
        self._links: Dict[Tuple[str, int, str, int], LinkState] = {}
        for spec in topology.links():
            self._links[spec.key()] = LinkState(
                spec,
                topology.as_of(spec.a),
                topology.as_of(spec.b),
                self.config,
                self._streams,
                self.episodes,
                self.counters,
            )

    # -- episode management ----------------------------------------------------

    def add_episode(self, episode: CongestionEpisode) -> None:
        self.episodes.add(episode)

    # -- lookups -----------------------------------------------------------------

    def link_state(self, spec: LinkSpec) -> LinkState:
        state = self._links.get(spec.key())
        if state is None:
            raise TopologyError(f"link not part of this network: {spec}")
        return state

    # -- per-packet transit -----------------------------------------------------

    def oneway_transit(
        self,
        traversals: Sequence[LinkTraversal],
        packet: PacketSpec,
        t_s: Optional[float] = None,
    ) -> TransitSample:
        """Push one packet along ``traversals``; aggregate delay and drop."""
        if not traversals:
            raise ValidationError("empty path")
        t = self.clock.now_s if t_s is None else t_s
        total_ms = 0.0
        for step in traversals:
            state = self.link_state(step.link)
            direction = state.direction_from(step.sender)
            sample = state.transit_packet(
                direction, packet.total_wire_bytes, packet.fragments, t + total_ms / 1e3
            )
            total_ms += sample.delay_ms
            if sample.dropped:
                return TransitSample(delay_ms=total_ms, dropped=True)
        return TransitSample(delay_ms=total_ms, dropped=False)

    def probe_roundtrip(
        self,
        traversals: Sequence[LinkTraversal],
        packet: PacketSpec,
        t_s: Optional[float] = None,
    ) -> ProbeResult:
        """SCMP-style echo: forward transit, then the reverse path back.

        A probe slower than ``config.probe_timeout_s`` counts as lost,
        like the real ``scion ping``'s deadline.
        """
        t = self.clock.now_s if t_s is None else t_s
        self.counters.scalar_probes += 1
        fwd = self.oneway_transit(traversals, packet, t)
        if fwd.dropped:
            return ProbeResult(rtt_ms=None)
        back_path = [step.reversed() for step in reversed(traversals)]
        back = self.oneway_transit(back_path, packet, t + fwd.delay_ms / 1e3)
        if back.dropped:
            return ProbeResult(rtt_ms=None)
        rtt = fwd.delay_ms + back.delay_ms
        if rtt > self.config.probe_timeout_s * 1e3:
            return ProbeResult(rtt_ms=None)
        return ProbeResult(rtt_ms=rtt)

    def probe_partial(
        self,
        traversals: Sequence[LinkTraversal],
        upto: int,
        packet: PacketSpec,
        t_s: Optional[float] = None,
    ) -> ProbeResult:
        """Round-trip to the router after the first ``upto`` traversals
        (the primitive behind ``scion traceroute``).

        **Stream semantics (intentional, pinned by a seeded golden
        test):** the partial probe reuses :meth:`probe_roundtrip` on the
        truncated traversal list, so every ``upto`` value draws jitter
        and drop decisions from the *same sequential per-link streams*
        the full-path probes use.  Consecutive partial probes at
        different depths therefore consume each shared link's stream in
        interleaved order — probe(upto=2) advances link 1's stream past
        what probe(upto=1) saw.  That interleaving is part of the
        deterministic contract (``tests/test_netsim_fastpath.py``
        pins a seeded traceroute byte-for-byte) and is why traceroute
        stays on the scalar walker: routing partial probes through the
        batch engine would re-chunk those shared streams and silently
        change every ``upto`` series.  Batch-mode traceroute needs its
        own stream keying first.
        """
        if not (1 <= upto <= len(traversals)):
            raise ValidationError(f"upto out of range: {upto}")
        return self.probe_roundtrip(traversals[:upto], packet, t_s)

    # -- batched probing (the measurement fast path) ----------------------------

    def probe_batch(
        self,
        traversals: Sequence[LinkTraversal],
        packet: PacketSpec,
        count: int,
        interval_s: float,
        t0_s: Optional[float] = None,
    ) -> "batch.BatchEchoSeries":
        """Whole echo series in O(links) numpy ops (see :mod:`.batch`).

        Packet *i* of ``count`` departs at ``t0_s + i * interval_s``
        (``t0_s`` defaults to the simulation clock); per-link jitter and
        drop decisions are drawn as one vector per link/direction from
        the same named RNG streams the scalar walker uses.  Same seed ⇒
        byte-identical series; batch-vs-scalar agreement is statistical,
        not sample-for-sample (see the module docstring's determinism
        contract).  Does **not** advance the clock — callers advance it
        by ``count * interval_s``, like the scalar echo loop.
        """
        t0 = self.clock.now_s if t0_s is None else t0_s
        return batch.probe_batch(self, traversals, packet, count, interval_s, t0)

    # -- fluid transfers -------------------------------------------------------------

    def fluid_transfer(
        self,
        traversals: Sequence[LinkTraversal],
        target_bps: float,
        packet: PacketSpec,
        duration_s: float,
        t_s: Optional[float] = None,
        *,
        register_flow: bool = False,
    ) -> TransferResult:
        """Model a constant-rate UDP transfer (the bwtester primitive).

        The client offers ``target_bps`` of *payload*; each link clips the
        flow to its available byte capacity and the sending router's pps
        budget, and residual/episode loss compounds across the fragments
        of each packet.  Achieved bandwidth is the surviving payload rate
        with a small relative measurement noise.

        ``register_flow=True`` records the transfer in the flow ledger so
        *overlapping* transfers contend for the same link capacity (the
        multi-user case the paper's one-at-a-time suite never hits).
        """
        if target_bps <= 0 or duration_s <= 0:
            raise ValidationError("transfer needs positive rate and duration")
        if not traversals:
            raise ValidationError("empty path")
        t0 = self.clock.now_s if t_s is None else t_s
        t1 = t0 + duration_s
        # Time-based ledger hygiene: flows whose window closed before this
        # transfer starts can never overlap it (or anything later on the
        # monotonic clock), so drop them here — the ledger stays bounded
        # by the number of concurrently open transfers.
        self.flows.prune(t0)

        pps = target_bps / (8.0 * packet.payload_bytes)
        survival = 1.0
        base = self.config.default_base_loss

        rate_pps = pps
        for step in traversals:
            state = self.link_state(step.link)
            direction = state.direction_from(step.sender)
            offered_bps = rate_pps * packet.total_wire_bytes * 8.0
            offered_pps = rate_pps * packet.fragments
            competing = self.flows.concurrent_load_bps(
                step.link.key(), direction, t0, t1
            )
            byte_ratio, pps_ratio = state.fluid_share(
                direction, offered_bps, offered_pps, t0, t1,
                competing_bps=competing,
            )
            if register_flow:
                self.flows.register(
                    FlowRecord(
                        link_key=step.link.key(),
                        direction=direction,
                        t0_s=t0,
                        t1_s=t1,
                        wire_bps=min(offered_bps, offered_bps * min(byte_ratio, pps_ratio))
                        if offered_bps > 0
                        else 0.0,
                    )
                )
            frag_survive = min(byte_ratio, pps_ratio) * (
                1.0 - base - step.link.base_loss
            )
            pkt_survive = max(0.0, frag_survive) ** packet.fragments
            survival *= pkt_survive
            rate_pps *= pkt_survive
            if survival <= 1e-9:
                survival = 0.0
                break

        # Measurement shortfall: the real bwtester never quite reaches the
        # configured rate (timer granularity, scheduling), so the noise is
        # one-sided below the fluid prediction.
        noise_rng = self._streams.get("bwtest:noise")
        shortfall = abs(self.config.bw_noise_rel * float(noise_rng.standard_normal()))
        achieved = max(0.0, target_bps * survival * (1.0 - shortfall))
        sent = int(round(pps * duration_s))
        received = int(round(sent * survival))
        return TransferResult(
            achieved_bps=min(achieved, target_bps),
            loss_fraction=1.0 - survival,
            sent_packets=sent,
            received_packets=received,
        )
