"""Per-link dynamic state: delay, jitter, queueing, loss, capacity shares.

A :class:`LinkState` is the simulator's live counterpart of a static
:class:`repro.topology.entities.LinkSpec`.  Direction matters: each
direction has its own capacity, its own cross-traffic process, and its
own pps budget (taken from the sending AS's router limits).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.netsim.config import NetworkConfig
from repro.netsim.congestion import EpisodeSchedule
from repro.netsim.procs import UtilizationProcess
from repro.topology.entities import AutonomousSystem, LinkSpec
from repro.topology.isd_as import ISDAS
from repro.util.geo import propagation_delay_ms
from repro.util.rng import RngStreams


class LinkDirection(enum.Enum):
    """Traffic direction relative to the LinkSpec's (a, b) endpoints."""

    A_TO_B = "ab"
    B_TO_A = "ba"


@dataclass(frozen=True)
class TransitSample:
    """Outcome of pushing one packet across one link."""

    delay_ms: float
    dropped: bool


class LinkState:
    """Dynamic behaviour of one inter-AS link."""

    def __init__(
        self,
        spec: LinkSpec,
        a_sys: AutonomousSystem,
        b_sys: AutonomousSystem,
        config: NetworkConfig,
        streams: RngStreams,
        episodes: EpisodeSchedule,
    ) -> None:
        self.spec = spec
        self.config = config
        self.episodes = episodes
        self._a = a_sys
        self._b = b_sys
        self.propagation_ms = propagation_delay_ms(
            a_sys.location, b_sys.location, circuity=config.circuity
        )
        util_params = config.utilization_for(spec.kind.value)
        key = f"link:{spec.a}#{spec.a_ifid}>{spec.b}#{spec.b_ifid}"
        self._util = {
            LinkDirection.A_TO_B: UtilizationProcess(
                util_params, streams.get(f"{key}:util:ab")
            ),
            LinkDirection.B_TO_A: UtilizationProcess(
                util_params, streams.get(f"{key}:util:ba")
            ),
        }
        self._noise = streams.get(f"{key}:noise")

    # -- direction helpers -----------------------------------------------------

    def direction_from(self, sender: ISDAS) -> LinkDirection:
        return (
            LinkDirection.A_TO_B if sender == self.spec.a else LinkDirection.B_TO_A
        )

    def _sender_sys(self, direction: LinkDirection) -> AutonomousSystem:
        return self._a if direction is LinkDirection.A_TO_B else self._b

    def _receiver_sys(self, direction: LinkDirection) -> AutonomousSystem:
        return self._b if direction is LinkDirection.A_TO_B else self._a

    def capacity_bps(self, direction: LinkDirection) -> float:
        mbps = (
            self.spec.capacity_ab_mbps
            if direction is LinkDirection.A_TO_B
            else self.spec.capacity_ba_mbps
        )
        return mbps * 1e6

    def utilization(self, direction: LinkDirection, t_s: float) -> float:
        return self._util[direction].value_at(t_s)

    def mean_utilization(
        self, direction: LinkDirection, t0_s: float, t1_s: float
    ) -> float:
        return self._util[direction].mean_over(t0_s, t1_s)

    # -- per-packet transit -------------------------------------------------------

    def transit_packet(
        self, direction: LinkDirection, wire_bytes: int, n_fragments: int, t_s: float
    ) -> TransitSample:
        """Sample delay and drop for one packet crossing this link.

        Delay = propagation + serialization + utilization-driven queueing
        + per-transit jitter (the receiving AS's router adds the jitter —
        this is where §6.1's jittery ASes enter).
        """
        cap = self.capacity_bps(direction)
        rho = self.utilization(direction, t_s)
        extra_loss, cap_factor = self.episodes.disturbance(self.spec, t_s)

        serialization_ms = wire_bytes * 8.0 / cap * 1e3
        queue_ms = self.config.queue_scale_ms * rho / max(1e-6, 1.0 - rho)
        jitter_scale = self.config.jitter_for(self._receiver_sys(direction).isd_as)
        jitter_ms = float(abs(self._noise.normal(0.0, jitter_scale)))

        # Drop decision: residual loss, fragment compounding, episodes.
        base = self.spec.base_loss + self.config.default_base_loss
        per_fragment_survive = (1.0 - base) * (1.0 - extra_loss)
        if cap_factor <= 0.0 and extra_loss >= 1.0:
            per_fragment_survive = 0.0
        survive = per_fragment_survive ** max(1, n_fragments)
        dropped = bool(self._noise.random() > survive)

        delay_ms = self.propagation_ms + serialization_ms + queue_ms + jitter_ms
        return TransitSample(delay_ms=delay_ms, dropped=dropped)

    # -- fluid-transfer accounting --------------------------------------------------

    def fluid_share(
        self,
        direction: LinkDirection,
        offered_bps: float,
        offered_pps: float,
        t0_s: float,
        t1_s: float,
        *,
        competing_bps: float = 0.0,
    ) -> Tuple[float, float]:
        """(byte_accept_ratio, pps_accept_ratio) for a transfer window.

        ``byte_accept_ratio`` compares offered wire bits/s against the
        capacity left over by cross traffic (scaled down by any active
        congestion episode) and by ``competing_bps`` of other registered
        foreground flows; ``pps_accept_ratio`` compares offered packets/s
        against the *sending* router's pps budget.
        """
        rho = self.mean_utilization(direction, t0_s, t1_s)
        ep_loss, cap_factor = self.episodes.window_disturbance(
            self.spec, t0_s, t1_s
        )
        capacity = self.capacity_bps(direction)
        available = max(0.0, capacity * (1.0 - rho) - competing_bps)
        if ep_loss > 0.0:
            available = available * (1.0 - ep_loss) * max(cap_factor, 0.0) + 1e-9

        byte_ratio = min(1.0, available / max(offered_bps, 1e-9))

        pps_budget = self.config.pps_for(self._sender_sys(direction).isd_as).send
        recv_budget = self.config.pps_for(self._receiver_sys(direction).isd_as).recv
        pps_ratio = min(
            1.0,
            pps_budget / max(offered_pps, 1e-9),
            recv_budget / max(offered_pps, 1e-9),
        )
        return byte_ratio, pps_ratio
