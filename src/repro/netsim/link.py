"""Per-link dynamic state: delay, jitter, queueing, loss, capacity shares.

A :class:`LinkState` is the simulator's live counterpart of a static
:class:`repro.topology.entities.LinkSpec`.  Direction matters: each
direction has its own capacity, its own cross-traffic process, and its
own pps budget (taken from the sending AS's router limits).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.netsim.config import NetworkConfig
from repro.netsim.congestion import EpisodeSchedule
from repro.netsim.counters import NetCounters
from repro.netsim.procs import UtilizationProcess
from repro.topology.entities import AutonomousSystem, LinkSpec
from repro.topology.isd_as import ISDAS
from repro.util.geo import propagation_delay_ms
from repro.util.rng import RngStreams

#: Cap on memoized (direction, window) integrals per link: campaigns
#: revisit a handful of windows (overlapping multi-user transfers, the
#: ledger's competing-load queries), so a small cache captures the reuse
#: while keeping worst-case memory bounded on adversarial workloads.
SAMPLING_CACHE_MAX_ENTRIES = 4096


class LinkDirection(enum.Enum):
    """Traffic direction relative to the LinkSpec's (a, b) endpoints."""

    A_TO_B = "ab"
    B_TO_A = "ba"


@dataclass(frozen=True)
class TransitSample:
    """Outcome of pushing one packet across one link."""

    delay_ms: float
    dropped: bool


class LinkState:
    """Dynamic behaviour of one inter-AS link."""

    def __init__(
        self,
        spec: LinkSpec,
        a_sys: AutonomousSystem,
        b_sys: AutonomousSystem,
        config: NetworkConfig,
        streams: RngStreams,
        episodes: EpisodeSchedule,
        counters: Optional[NetCounters] = None,
    ) -> None:
        self.spec = spec
        self.config = config
        self.episodes = episodes
        self.counters = counters if counters is not None else NetCounters()
        #: (direction, t0, t1) -> (mean utilization, window episode loss,
        #: window capacity factor), valid for one episode-schedule epoch.
        self._window_cache: Dict[
            Tuple["LinkDirection", float, float], Tuple[float, float, float]
        ] = {}
        self._window_cache_epoch = episodes.epoch
        self._a = a_sys
        self._b = b_sys
        self.propagation_ms = propagation_delay_ms(
            a_sys.location, b_sys.location, circuity=config.circuity
        )
        util_params = config.utilization_for(spec.kind.value)
        key = f"link:{spec.a}#{spec.a_ifid}>{spec.b}#{spec.b_ifid}"
        self._util = {
            LinkDirection.A_TO_B: UtilizationProcess(
                util_params, streams.get(f"{key}:util:ab")
            ),
            LinkDirection.B_TO_A: UtilizationProcess(
                util_params, streams.get(f"{key}:util:ba")
            ),
        }
        self._noise = streams.get(f"{key}:noise")
        # Per-direction constants, resolved once: capacity, the receiving
        # AS's jitter scale, the min of sender-send/receiver-recv pps
        # budgets, and the residual loss floor.  All are immutable for
        # the lifetime of the LinkState, and the transit/fluid hot paths
        # re-read them for every traversal step of every measurement.
        self._cap_bps = {
            LinkDirection.A_TO_B: spec.capacity_ab_mbps * 1e6,
            LinkDirection.B_TO_A: spec.capacity_ba_mbps * 1e6,
        }
        self._jitter_scale = {
            d: config.jitter_for(self._receiver_sys(d).isd_as)
            for d in LinkDirection
        }
        self._pps_budget = {
            d: min(
                config.pps_for(self._sender_sys(d).isd_as).send,
                config.pps_for(self._receiver_sys(d).isd_as).recv,
            )
            for d in LinkDirection
        }
        self._base_loss = spec.base_loss + config.default_base_loss

    # -- direction helpers -----------------------------------------------------

    def direction_from(self, sender: ISDAS) -> LinkDirection:
        return (
            LinkDirection.A_TO_B if sender == self.spec.a else LinkDirection.B_TO_A
        )

    def _sender_sys(self, direction: LinkDirection) -> AutonomousSystem:
        return self._a if direction is LinkDirection.A_TO_B else self._b

    def _receiver_sys(self, direction: LinkDirection) -> AutonomousSystem:
        return self._b if direction is LinkDirection.A_TO_B else self._a

    def capacity_bps(self, direction: LinkDirection) -> float:
        mbps = (
            self.spec.capacity_ab_mbps
            if direction is LinkDirection.A_TO_B
            else self.spec.capacity_ba_mbps
        )
        return mbps * 1e6

    def utilization(self, direction: LinkDirection, t_s: float) -> float:
        return self._util[direction].value_at(t_s)

    def mean_utilization(
        self, direction: LinkDirection, t0_s: float, t1_s: float
    ) -> float:
        return self._util[direction].mean_over(t0_s, t1_s)

    # -- per-packet transit -------------------------------------------------------

    def transit_packet(
        self, direction: LinkDirection, wire_bytes: int, n_fragments: int, t_s: float
    ) -> TransitSample:
        """Sample delay and drop for one packet crossing this link.

        Delay = propagation + serialization + utilization-driven queueing
        + per-transit jitter (the receiving AS's router adds the jitter —
        this is where §6.1's jittery ASes enter).
        """
        cap = self.capacity_bps(direction)
        rho = self.utilization(direction, t_s)
        extra_loss, cap_factor = self.episodes.disturbance(self.spec, t_s)

        serialization_ms = wire_bytes * 8.0 / cap * 1e3
        queue_ms = self.config.queue_scale_ms * rho / max(1e-6, 1.0 - rho)
        jitter_scale = self.config.jitter_for(self._receiver_sys(direction).isd_as)
        jitter_ms = float(abs(self._noise.normal(0.0, jitter_scale)))

        # Drop decision: residual loss, fragment compounding, episodes.
        base = self.spec.base_loss + self.config.default_base_loss
        per_fragment_survive = (1.0 - base) * (1.0 - extra_loss)
        if cap_factor <= 0.0 and extra_loss >= 1.0:
            per_fragment_survive = 0.0
        survive = per_fragment_survive ** max(1, n_fragments)
        dropped = bool(self._noise.random() > survive)

        delay_ms = self.propagation_ms + serialization_ms + queue_ms + jitter_ms
        return TransitSample(delay_ms=delay_ms, dropped=dropped)

    # -- vectorized transit (the measurement fast path) -----------------------------

    def transit_batch(
        self,
        direction: LinkDirection,
        wire_bytes: int,
        n_fragments: int,
        t_array: "np.ndarray",
    ) -> Tuple["np.ndarray", "np.ndarray"]:
        """Vectorized :meth:`transit_packet`: one echo series in one call.

        ``t_array`` holds the per-packet arrival times at this link;
        returns ``(delay_ms, dropped)`` arrays of the same shape.  The
        static terms (propagation, serialization) are computed once,
        utilization is gathered via :meth:`UtilizationProcess.values_at`,
        per-packet jitter is one ``normal(size=n)`` vector and the drop
        decision one vectorized Bernoulli — all against the same named
        per-link RNG stream the scalar path uses, so a fixed sequence of
        batch calls is seed-deterministic.  Batch draws consume the
        stream differently from per-packet draws, which is why the
        determinism contract is *per mode*: batch and scalar agree
        statistically (property-tested), not sample-for-sample.
        """
        if isinstance(t_array, np.ndarray) and t_array.dtype == np.float64:
            t = t_array
        else:
            t = np.asarray(t_array, dtype=np.float64)
        n = t.size
        cap = self._cap_bps[direction]
        rho = self._util[direction].values_at(t)

        serialization_ms = wire_bytes * 8.0 / cap * 1e3
        queue_ms = self.config.queue_scale_ms * rho / np.maximum(1e-6, 1.0 - rho)
        jitter_ms = np.abs(self._noise.normal(0.0, self._jitter_scale[direction], size=n))

        base = self._base_loss
        if len(self.episodes):
            extra_loss, cap_factor = self.episodes.disturbance_at(self.spec, t)
            per_fragment_survive = (1.0 - base) * (1.0 - extra_loss)
            per_fragment_survive = np.where(
                (cap_factor <= 0.0) & (extra_loss >= 1.0),
                0.0,
                per_fragment_survive,
            )
        else:
            # Empty schedule fast path: extra_loss is identically 0 and
            # cap_factor 1, so ``per_fragment_survive`` collapses to the
            # scalar ``(1 - base) * (1 - 0)`` — bit-identical to the
            # array expression, minus three array temporaries per step.
            per_fragment_survive = (1.0 - base) * 1.0
        survive = per_fragment_survive ** max(1, n_fragments)
        dropped = self._noise.random(size=n) > survive

        delay_ms = self.propagation_ms + serialization_ms + queue_ms + jitter_ms
        return delay_ms, dropped

    # -- fluid-transfer accounting --------------------------------------------------

    def window_sample(
        self, direction: LinkDirection, t0_s: float, t1_s: float
    ) -> Tuple[float, float, float]:
        """Memoized ``(mean utilization, episode loss, capacity factor)``.

        The sampling cache behind fluid transfers: the window integrals
        (:meth:`mean_utilization` + :meth:`EpisodeSchedule.
        window_disturbance`) are pure given the episode schedule, so
        results are keyed on ``(direction, t0, t1)`` and invalidated
        wholesale whenever :attr:`EpisodeSchedule.epoch` moves — i.e.
        when an episode is added or the monitor blackholes a link after
        a revocation.  Failover correctness is therefore untouched: no
        pre-episode answer survives the bump.
        """
        if self._window_cache_epoch != self.episodes.epoch:
            self._window_cache.clear()
            self._window_cache_epoch = self.episodes.epoch
        key = (direction, t0_s, t1_s)
        cached = self._window_cache.get(key)
        if cached is not None:
            self.counters.sampler_hits += 1
            return cached
        self.counters.sampler_misses += 1
        rho = self.mean_utilization(direction, t0_s, t1_s)
        ep_loss, cap_factor = self.episodes.window_disturbance(
            self.spec, t0_s, t1_s
        )
        if len(self._window_cache) >= SAMPLING_CACHE_MAX_ENTRIES:
            self._window_cache.clear()  # rare; keeps memory bounded
        result = (rho, ep_loss, cap_factor)
        self._window_cache[key] = result
        return result

    def fluid_share(
        self,
        direction: LinkDirection,
        offered_bps: float,
        offered_pps: float,
        t0_s: float,
        t1_s: float,
        *,
        competing_bps: float = 0.0,
    ) -> Tuple[float, float]:
        """(byte_accept_ratio, pps_accept_ratio) for a transfer window.

        ``byte_accept_ratio`` compares offered wire bits/s against the
        capacity left over by cross traffic (scaled down by any active
        congestion episode) and by ``competing_bps`` of other registered
        foreground flows; ``pps_accept_ratio`` compares offered packets/s
        against the *sending* router's pps budget.
        """
        rho, ep_loss, cap_factor = self.window_sample(direction, t0_s, t1_s)
        capacity = self._cap_bps[direction]
        available = max(0.0, capacity * (1.0 - rho) - competing_bps)
        if ep_loss > 0.0:
            available = available * (1.0 - ep_loss) * max(cap_factor, 0.0) + 1e-9

        byte_ratio = min(1.0, available / max(offered_bps, 1e-9))

        # min(send, recv) / offered == min(send/offered, recv/offered)
        # exactly (IEEE division is monotone for a positive divisor), so
        # the budget min is folded into a per-direction constant.
        pps_ratio = min(
            1.0, self._pps_budget[direction] / max(offered_pps, 1e-9)
        )
        return byte_ratio, pps_ratio
