"""A minimal deterministic discrete-event scheduler.

The measurement pipeline itself is computed analytically (per-packet
draws and fluid transfers), but campaign orchestration — congestion
episode onsets, server outage windows, periodic re-collection — is
naturally event-driven.  :class:`EventQueue` provides that with strict
determinism: ties in firing time break on insertion order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import ValidationError
from repro.netsim.clock import SimClock

Callback = Callable[[], None]


@dataclass(order=True)
class _Entry:
    time_s: float
    seq: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`EventQueue.schedule`; allows cancellation."""

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    def cancel(self) -> None:
        self._entry.cancelled = True

    @property
    def time_s(self) -> float:
        return self._entry.time_s

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled


class EventQueue:
    """Priority queue of timed callbacks driven by a :class:`SimClock`."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._heap: List[_Entry] = []
        self._seq = itertools.count()

    def schedule(self, time_s: float, callback: Callback) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time_s``."""
        if time_s < self.clock.now_s:
            raise ValidationError(
                f"cannot schedule in the past: {time_s} < {self.clock.now_s}"
            )
        entry = _Entry(time_s=time_s, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def schedule_in(self, delay_s: float, callback: Callback) -> EventHandle:
        return self.schedule(self.clock.now_s + delay_s, callback)

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        self._drop_cancelled()
        return self._heap[0].time_s if self._heap else None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Run the next event (advancing the clock); False when empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        entry = heapq.heappop(self._heap)
        self.clock.advance_to(entry.time_s)
        entry.callback()
        return True

    def run_until(self, t_s: float) -> int:
        """Run all events with firing time <= ``t_s``; returns count run."""
        count = 0
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > t_s:
                break
            self.step()
            count += 1
        self.clock.advance_to(t_s)
        return count

    def run_all(self, *, max_events: int = 1_000_000) -> int:
        """Drain the queue completely (bounded as a runaway backstop)."""
        count = 0
        while self.step():
            count += 1
            if count >= max_events:
                raise ValidationError("event queue did not drain (runaway?)")
        return count
