"""Databases: named collections plus lifecycle operations."""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.docdb.collection import Collection
from repro.docdb.wal import OP_DROP_COLLECTION, WalWriter
from repro.errors import DocDBError


class Database:
    """A named set of collections, created lazily on first access.

    When the owning :class:`~repro.docdb.client.DocDBClient` is opened
    durable, :meth:`attach_wal` wires every collection (existing and
    future) to the shared :class:`~repro.docdb.wal.WalWriter`, so
    mutating operations journal themselves — no caller-side
    ``journal.append`` bookkeeping anywhere.
    """

    def __init__(self, name: str, *, wal: Optional[WalWriter] = None) -> None:
        self.name = name
        self._collections: Dict[str, Collection] = {}
        self._lock = threading.RLock()
        self._wal: Optional[WalWriter] = wal

    # -- durability ----------------------------------------------------------

    def attach_wal(self, wal: Optional[WalWriter]) -> None:
        """Route this database's writes through ``wal`` (None detaches)."""
        with self._lock:
            self._wal = wal
            for name, coll in self._collections.items():
                coll._wal_sink = self._make_sink(name) if wal is not None else None

    def _make_sink(self, coll_name: str):
        def sink(op: str, payload: Dict) -> None:
            assert self._wal is not None
            self._wal.append(op, self.name, coll_name, payload)

        return sink

    # -- collections ---------------------------------------------------------

    def collection(self, name: str) -> Collection:
        if not name or name.startswith("$"):
            raise DocDBError(f"invalid collection name: {name!r}")
        with self._lock:
            coll = self._collections.get(name)
            if coll is None:
                coll = Collection(name)
                if self._wal is not None:
                    coll._wal_sink = self._make_sink(name)
                self._collections[name] = coll
            return coll

    __getitem__ = collection

    def list_collection_names(self) -> List[str]:
        with self._lock:
            return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        with self._lock:
            if self._collections.pop(name, None) is not None and self._wal is not None:
                self._wal.append(OP_DROP_COLLECTION, self.name, name, {})

    def __contains__(self, name: str) -> bool:
        # Locked like every other accessor: membership must observe a
        # consistent view while workers create collections concurrently.
        with self._lock:
            return name in self._collections

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Database({self.name!r}, collections={self.list_collection_names()})"
