"""Databases: named collections plus lifecycle operations."""

from __future__ import annotations

import threading
from typing import Dict, List

from repro.docdb.collection import Collection
from repro.errors import DocDBError


class Database:
    """A named set of collections, created lazily on first access."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._collections: Dict[str, Collection] = {}
        self._lock = threading.RLock()

    def collection(self, name: str) -> Collection:
        if not name or name.startswith("$"):
            raise DocDBError(f"invalid collection name: {name!r}")
        with self._lock:
            coll = self._collections.get(name)
            if coll is None:
                coll = Collection(name)
                self._collections[name] = coll
            return coll

    __getitem__ = collection

    def list_collection_names(self) -> List[str]:
        with self._lock:
            return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        with self._lock:
            self._collections.pop(name, None)

    def __contains__(self, name: str) -> bool:
        # Locked like every other accessor: membership must observe a
        # consistent view while workers create collections concurrently.
        with self._lock:
            return name in self._collections

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Database({self.name!r}, collections={self.list_collection_names()})"
