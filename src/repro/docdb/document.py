"""Document primitives: ids, normalization, dotted-path access.

Documents are plain dicts restricted to JSON-compatible values; every
stored document carries an ``_id``.  The paper uses *compound string
ids* (``"2_15"`` for path 15 of destination 2, ``"2_15_<ts>"`` for one
measurement of it, §4.2.1), so ids here are any hashable scalar.
"""

from __future__ import annotations

import copy
import itertools
import secrets
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import QueryError, ValidationError

_JSON_SCALARS = (str, int, float, bool, type(None))


def new_object_id() -> str:
    """A random 12-byte hex id, shaped like Mongo's ObjectId."""
    return secrets.token_hex(12)


def normalize_document(
    doc: Dict[str, Any], *, ensure_id: bool = True, deep_copy: bool = True
) -> Dict[str, Any]:
    """Deep-copy and validate a document; assign an ``_id`` if missing.

    ``deep_copy=False`` skips the defensive copy for callers that
    provably own the dict — the recovery loaders pass documents fresh
    out of ``json.loads`` (snapshot lines, WAL payloads), where copying
    them again roughly triples recovery time.  Validation always runs.
    """
    if not isinstance(doc, dict):
        raise ValidationError(f"document must be a dict, got {type(doc).__name__}")
    _check_value(doc, depth=0)
    out = json_deepcopy(doc) if deep_copy else doc
    if ensure_id and "_id" not in out:
        out["_id"] = new_object_id()
    return out


def json_deepcopy(value: Any) -> Any:
    """Deep copy for JSON-shaped values, far cheaper than ``copy.deepcopy``.

    Validated documents only ever contain dicts with string keys, lists,
    tuples and immutable scalars (:func:`_check_value` enforces this on
    the way in, and rejects cyclic structures via its depth limit), so
    the generic deepcopy machinery — memo dict, reductor dispatch — is
    pure overhead on the storage hot path.  Semantics match
    ``copy.deepcopy`` for that value domain: containers are rebuilt,
    immutable scalars returned as-is.
    """
    if isinstance(value, dict):
        return {k: json_deepcopy(v) for k, v in value.items()}
    if isinstance(value, list):
        return [json_deepcopy(v) for v in value]
    if isinstance(value, tuple):
        return tuple(json_deepcopy(v) for v in value)
    return value


def _check_value(value: Any, depth: int) -> None:
    if depth > 64:
        raise ValidationError("document nesting too deep")
    if isinstance(value, dict):
        for key, sub in value.items():
            if not isinstance(key, str):
                raise ValidationError(f"document keys must be strings: {key!r}")
            _check_value(sub, depth + 1)
    elif isinstance(value, (list, tuple)):
        for sub in value:
            _check_value(sub, depth + 1)
    elif not isinstance(value, _JSON_SCALARS):
        raise ValidationError(
            f"unsupported value type in document: {type(value).__name__}"
        )


# ---------------------------------------------------------------------------
# dotted-path resolution (Mongo semantics)
# ---------------------------------------------------------------------------


_MISSING = object()


def get_path(doc: Any, path: str) -> Tuple[bool, Any]:
    """Resolve ``"a.b.0.c"`` in ``doc``; returns (found, value).

    Follows Mongo rules: a numeric component indexes into arrays; a
    non-numeric component applied to an array maps over its elements
    (handled by callers via :func:`iter_path_values`).
    """
    values = list(iter_path_values(doc, path))
    if not values:
        return False, None
    return True, values[0]


def iter_path_values(doc: Any, path: str) -> Iterator[Any]:
    """Yield every value reachable at ``path`` (array fan-out included)."""
    parts = path.split(".") if path else []
    yield from _walk(doc, parts)


def _walk(value: Any, parts: List[str]) -> Iterator[Any]:
    if not parts:
        yield value
        return
    head, rest = parts[0], parts[1:]
    if isinstance(value, dict):
        if head in value:
            yield from _walk(value[head], rest)
    elif isinstance(value, list):
        if head.isdigit():
            idx = int(head)
            if 0 <= idx < len(value):
                yield from _walk(value[idx], rest)
        else:
            for element in value:
                if isinstance(element, dict) and head in element:
                    yield from _walk(element[head], rest)


def set_path(doc: Dict[str, Any], path: str, value: Any) -> None:
    """Set ``path`` in ``doc``, creating intermediate objects.

    Numeric components extend lists with ``None`` padding like Mongo.
    """
    parts = path.split(".")
    target: Any = doc
    for i, part in enumerate(parts[:-1]):
        nxt_is_index = parts[i + 1].isdigit()
        if isinstance(target, list):
            if not part.isdigit():
                raise QueryError(f"cannot index list with {part!r} in path {path!r}")
            idx = int(part)
            while len(target) <= idx:
                target.append(None)
            if not isinstance(target[idx], (dict, list)) or target[idx] is None:
                target[idx] = [] if nxt_is_index else {}
            target = target[idx]
        elif isinstance(target, dict):
            if part not in target or not isinstance(target[part], (dict, list)):
                target[part] = [] if nxt_is_index else {}
            target = target[part]
        else:
            raise QueryError(f"cannot descend into {type(target).__name__} at {part!r}")
    last = parts[-1]
    if isinstance(target, list):
        if not last.isdigit():
            raise QueryError(f"cannot index list with {last!r} in path {path!r}")
        idx = int(last)
        while len(target) <= idx:
            target.append(None)
        target[idx] = value
    elif isinstance(target, dict):
        target[last] = value
    else:
        raise QueryError(f"cannot set {path!r} inside {type(target).__name__}")


def unset_path(doc: Dict[str, Any], path: str) -> bool:
    """Remove ``path`` from ``doc``; returns True if something was removed."""
    parts = path.split(".")
    target: Any = doc
    for part in parts[:-1]:
        if isinstance(target, dict) and part in target:
            target = target[part]
        elif isinstance(target, list) and part.isdigit() and int(part) < len(target):
            target = target[int(part)]
        else:
            return False
    last = parts[-1]
    if isinstance(target, dict) and last in target:
        del target[last]
        return True
    if isinstance(target, list) and last.isdigit() and int(last) < len(target):
        # Mongo nulls out list slots rather than shifting.
        target[int(last)] = None
        return True
    return False
