"""Collections: the Mongo-like document container.

Thread-safe (one RLock per collection — the campaign runner writes from
a thread pool, §4.1.1), with single-field and compound indexes, a
cost-based query planner (:mod:`repro.docdb.planner`), an LRU+TTL
query-result cache with epoch-based invalidation
(:mod:`repro.docdb.cache`), and an optional document validator hook
used by the signed statistics pipeline (§4.1.4).

Write/epoch contract (the cache-invalidation backbone):

* every mutating *operation* bumps the collection ``epoch`` exactly
  once — in particular one ``insert_many`` batch is one bump, which is
  what lets :class:`~repro.suite.storage.StatsRepository` flush a whole
  destination's measurements while invalidating cached selection
  queries only once per batch (§4.2.2);
* cached ``find``/``aggregate``/``count_documents`` results remember
  the epoch they were computed under and are never served across a
  bump.

Query statistics (``Collection.stats``):

``inserts``        documents committed
``scans``          full collection scans executed (``COLLSCAN`` plans)
``index_hits``     index-answered queries (``IXSCAN``/``IDHACK`` plans)
``docs_examined``  documents materialised and run through the residual
                   filter — reconciles with ``explain()``'s
                   ``executionStats.docsExamined``
``cache_hits`` / ``cache_misses``   query-result cache outcomes
``explains``       ``explain()`` calls
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.docdb.cache import QueryCache, freeze
from repro.docdb.document import get_path, json_deepcopy, normalize_document
from repro.docdb.index import CompoundIndex, FieldIndex
from repro.docdb.planner import (
    STAGE_COLLSCAN,
    STAGE_FILTER,
    CandidatePlan,
    PlanOutcome,
    QueryPlanner,
)
from repro.docdb.query import matches
from repro.docdb.update import apply_update, is_update_document
from repro.docdb.wal import (
    OP_CREATE_INDEX,
    OP_DELETE,
    OP_DROP_INDEX,
    OP_INSERT,
    OP_INSERT_MANY,
    OP_UPDATE,
)
from repro.errors import DuplicateKeyError, QueryError, StorageError

SortSpec = Sequence[Tuple[str, int]]

#: Accepted index specifications: a dotted path, a list of paths, or a
#: Mongo-style list of ``(path, direction)`` pairs.
IndexSpec = Union[str, Sequence[str], Sequence[Tuple[str, int]]]


@dataclass(frozen=True)
class InsertOneResult:
    inserted_id: Any


@dataclass(frozen=True)
class InsertManyResult:
    inserted_ids: Tuple[Any, ...]


@dataclass(frozen=True)
class UpdateResult:
    matched_count: int
    modified_count: int
    upserted_id: Any = None


@dataclass(frozen=True)
class DeleteResult:
    deleted_count: int


def _normalize_index_spec(spec: IndexSpec) -> List[Tuple[str, int]]:
    """Canonical ``[(path, direction), ...]`` form of an index spec."""
    if isinstance(spec, str):
        return [(spec, 1)]
    out: List[Tuple[str, int]] = []
    for item in spec:
        if isinstance(item, str):
            out.append((item, 1))
        else:
            path, direction = item
            if direction not in (1, -1):
                raise QueryError(f"index direction must be 1 or -1: {direction}")
            out.append((str(path), int(direction)))
    if not out:
        raise QueryError("index spec must name at least one field")
    return out


def _index_name(fields: List[Tuple[str, int]]) -> str:
    """Mongo-style name — bare path for single-field (seed compat)."""
    if len(fields) == 1:
        return fields[0][0]
    return "_".join(f"{path}_{direction}" for path, direction in fields)


class Collection:
    """One named collection of documents."""

    def __init__(
        self,
        name: str,
        *,
        cache_capacity: int = 256,
        cache_ttl_s: Optional[float] = 60.0,
    ) -> None:
        self.name = name
        self._docs: Dict[Any, Dict[str, Any]] = {}
        self._indexes: Dict[str, Union[FieldIndex, CompoundIndex]] = {}
        self._lock = threading.RLock()
        #: Optional hook run on every inserted/updated document; raise to
        #: reject the write (used for signature verification).
        self.validator: Optional[Callable[[Dict[str, Any]], None]] = None
        #: Counters for the scalability benchmarks (see module docstring).
        self.stats = {
            "inserts": 0,
            "scans": 0,
            "index_hits": 0,
            "docs_examined": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "explains": 0,
        }
        self._planner = QueryPlanner(self)
        self.cache = QueryCache(capacity=cache_capacity, ttl_s=cache_ttl_s)
        self._epoch = 0
        #: Write-ahead-log sink, wired by :meth:`Database.attach_wal`
        #: when the owning client is opened durable.  Called as
        #: ``sink(op, payload)`` after every successful in-memory
        #: mutation (still under the collection lock) — the WAL append
        #: is the operation's commit point.  ``None`` = volatile mode.
        self._wal_sink: Optional[Callable[[str, Dict[str, Any]], None]] = None

    # -- epoch / cache invalidation ---------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotonic write-epoch; bumped once per mutating operation."""
        return self._epoch

    def _bump_epoch(self) -> None:
        """Invalidate cached query results (one bump = one write op)."""
        self._epoch += 1

    def _emit_wal(self, op: str, payload: Dict[str, Any]) -> None:
        """Append the committed operation to the WAL (durable mode only)."""
        if self._wal_sink is not None:
            self._wal_sink(op, payload)

    # -- inserts ----------------------------------------------------------------

    def insert_one(self, doc: Dict[str, Any]) -> InsertOneResult:
        with self._lock:
            stored = self._insert(doc)
            self._bump_epoch()
            return InsertOneResult(inserted_id=stored["_id"])

    def insert_many(self, docs: Iterable[Dict[str, Any]]) -> InsertManyResult:
        """Insert a batch atomically: either all documents land or none.

        This is the operation the paper's §4.2.2 design leans on — the
        runner buffers all statistics for one destination and inserts
        them in a single call.  The whole batch is **one** epoch bump,
        so cached selection queries are invalidated once per flush, not
        once per document.
        """
        with self._lock:
            prepared = [normalize_document(d) for d in docs]
            ids = [d["_id"] for d in prepared]
            if len(set(ids)) != len(ids):
                raise DuplicateKeyError(f"duplicate _id inside batch for {self.name}")
            for d in prepared:
                if d["_id"] in self._docs:
                    raise DuplicateKeyError(f"duplicate _id: {d['_id']!r}")
                if self.validator is not None:
                    self.validator(d)
            for d in prepared:
                self._commit_insert(d)
            if prepared:
                self._bump_epoch()
                # One batch = one WAL record = one atomic unit: recovery
                # either replays the whole flush or rolls it back
                # (§4.2.2's all-or-nothing destination batch).
                self._emit_wal(OP_INSERT_MANY, {"documents": prepared})
            return InsertManyResult(inserted_ids=tuple(ids))

    def load_documents(self, docs: Iterable[Dict[str, Any]]) -> int:
        """Bulk-load freshly-parsed documents (snapshot load, WAL replay).

        :meth:`insert_many` semantics — same validation, duplicate
        checks, validator hook, single epoch bump — minus two things:
        the defensive deep-copy (the loader owns the dicts; they come
        straight out of ``json.loads``) and the WAL emission (loads
        reconstruct state that is already durable; re-journalling it
        would double the log).  Returns the number of documents loaded.
        """
        with self._lock:
            prepared = [normalize_document(d, deep_copy=False) for d in docs]
            ids = [d["_id"] for d in prepared]
            if len(set(ids)) != len(ids):
                raise DuplicateKeyError(f"duplicate _id inside batch for {self.name}")
            for d in prepared:
                if d["_id"] in self._docs:
                    raise DuplicateKeyError(f"duplicate _id: {d['_id']!r}")
                if self.validator is not None:
                    self.validator(d)
            for d in prepared:
                self._commit_insert(d)
            if prepared:
                self._bump_epoch()
            return len(prepared)

    def _insert(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        stored = normalize_document(doc)
        if stored["_id"] in self._docs:
            raise DuplicateKeyError(f"duplicate _id: {stored['_id']!r}")
        if self.validator is not None:
            self.validator(stored)
        self._commit_insert(stored)
        self._emit_wal(OP_INSERT, {"document": stored})
        return stored

    def _commit_insert(self, stored: Dict[str, Any]) -> None:
        self._docs[stored["_id"]] = stored
        for index in self._indexes.values():
            index.add(stored)
        self.stats["inserts"] += 1

    # -- queries ------------------------------------------------------------------

    def find(
        self,
        flt: Optional[Dict[str, Any]] = None,
        projection: Optional[Dict[str, int]] = None,
        *,
        sort: Optional[SortSpec] = None,
        limit: int = 0,
        skip: int = 0,
    ) -> List[Dict[str, Any]]:
        """Return matching documents (deep copies), optionally sorted.

        Results are served from the epoch-keyed query cache when the
        exact same ``(filter, projection, sort, limit, skip)`` was
        answered since the last write.
        """
        flt = flt or {}
        sort_key = tuple((f, d) for f, d in sort) if sort else None
        cache_key = freeze(("find", flt, projection, sort_key, limit, skip))
        with self._lock:
            epoch = self._epoch
            if cache_key is not None:
                cached = self.cache.get(cache_key, epoch)
                if cached is not None:
                    self.stats["cache_hits"] += 1
                    return json_deepcopy(cached)
                self.stats["cache_misses"] += 1
            matched = self._execute_filter(flt)
            out = [json_deepcopy(d) for d in matched]
        if sort:
            out = _sorted_docs(out, sort)
        if skip:
            out = out[skip:]
        if limit:
            out = out[:limit]
        if projection:
            out = [_project(d, projection) for d in out]
        if cache_key is not None:
            with self._lock:
                self.cache.put(cache_key, epoch, out)
            return json_deepcopy(out)
        return out

    def find_one(
        self,
        flt: Optional[Dict[str, Any]] = None,
        projection: Optional[Dict[str, int]] = None,
        *,
        sort: Optional[SortSpec] = None,
    ) -> Optional[Dict[str, Any]]:
        results = self.find(flt, projection, sort=sort, limit=1)
        return results[0] if results else None

    def count_documents(self, flt: Optional[Dict[str, Any]] = None) -> int:
        flt = flt or {}
        with self._lock:
            if not flt:
                return len(self._docs)
            cache_key = freeze(("count", flt))
            epoch = self._epoch
            if cache_key is not None:
                cached = self.cache.get(cache_key, epoch)
                if cached is not None:
                    self.stats["cache_hits"] += 1
                    return cached
                self.stats["cache_misses"] += 1
            n = len(self._execute_filter(flt))
            if cache_key is not None:
                self.cache.put(cache_key, epoch, n)
            return n

    def distinct(self, field_path: str, flt: Optional[Dict[str, Any]] = None) -> List[Any]:
        seen: List[Any] = []
        for doc in self.find(flt):
            found, value = get_path(doc, field_path)
            if not found:
                continue
            values = value if isinstance(value, list) else [value]
            for v in values:
                if v not in seen:
                    seen.append(v)
        return seen

    # -- planner ---------------------------------------------------------------------

    def _execute_filter(self, flt: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Plan, fetch candidates, apply the residual filter, count stats.

        Must be called under ``self._lock``.  ``scans`` counts only full
        collection scans; index-answered queries count ``index_hits``;
        ``docs_examined`` counts documents actually materialised — the
        numbers ``explain()`` reports.
        """
        outcome = self._planner.plan(flt)
        return self._run_plan(outcome.winning, flt)

    def _run_plan(
        self, plan: CandidatePlan, flt: Dict[str, Any]
    ) -> List[Dict[str, Any]]:
        candidates, examined = self._planner.fetch(plan)
        if plan.stage == STAGE_COLLSCAN:
            self.stats["scans"] += 1
        else:
            self.stats["index_hits"] += 1
        self.stats["docs_examined"] += examined
        return [d for d in candidates if matches(d, flt)]

    def explain(self, flt: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Plan *and execute* ``flt``, returning a structured plan document.

        The document mirrors Mongo's ``explain("executionStats")`` shape:
        a ``winningPlan`` stage tree (residual ``FILTER`` over the access
        stage), ``rejectedPlans`` with their selectivity estimates, and
        ``executionStats`` whose ``docsExamined`` is exactly the number
        of documents the query materialised (it reconciles with the
        ``docs_examined`` counter in :attr:`stats`).
        """
        flt = flt or {}
        with self._lock:
            self.stats["explains"] += 1
            outcome: PlanOutcome = self._planner.plan(flt)
            docs_before = self.stats["docs_examined"]
            results = self._run_plan(outcome.winning, flt)
            examined = self.stats["docs_examined"] - docs_before
            return {
                "namespace": self.name,
                "filter": copy.deepcopy(flt),
                "plannerVersion": 1,
                "winningPlan": {
                    "stage": STAGE_FILTER,
                    "inputStage": outcome.winning.stage_document(),
                },
                "rejectedPlans": [
                    {"stage": STAGE_FILTER, "inputStage": p.stage_document()}
                    for p in outcome.rejected
                ],
                "executionStats": {
                    "nReturned": len(results),
                    "docsExamined": examined,
                    "totalDocsInCollection": len(self._docs),
                },
                "cache": self.cache.info(),
                "epoch": self._epoch,
            }

    # -- updates -------------------------------------------------------------------------

    def update_one(
        self,
        flt: Dict[str, Any],
        update: Dict[str, Any],
        *,
        upsert: bool = False,
    ) -> UpdateResult:
        return self._update(flt, update, multi=False, upsert=upsert)

    def update_many(
        self,
        flt: Dict[str, Any],
        update: Dict[str, Any],
        *,
        upsert: bool = False,
    ) -> UpdateResult:
        return self._update(flt, update, multi=True, upsert=upsert)

    def replace_one(
        self, flt: Dict[str, Any], replacement: Dict[str, Any], *, upsert: bool = False
    ) -> UpdateResult:
        if is_update_document(replacement):
            raise QueryError("replacement document cannot contain operators")
        return self._update(flt, replacement, multi=False, upsert=upsert)

    def _update(
        self,
        flt: Dict[str, Any],
        update: Dict[str, Any],
        *,
        multi: bool,
        upsert: bool,
    ) -> UpdateResult:
        with self._lock:
            matched = 0
            modified = 0
            changed: List[Dict[str, Any]] = []
            for doc in self._execute_filter(flt):
                matched += 1
                new_doc = apply_update(doc, update)
                if new_doc != doc:
                    if self.validator is not None:
                        self.validator(new_doc)
                    self._replace_committed(doc, new_doc)
                    changed.append(new_doc)
                    modified += 1
                if not multi:
                    break
            if matched == 0 and upsert:
                seed = {
                    k: v
                    for k, v in flt.items()
                    if not k.startswith("$") and not isinstance(v, dict)
                }
                new_doc = apply_update(seed, update) if is_update_document(update) else {
                    **seed,
                    **update,
                }
                stored = self._insert(new_doc)
                self._bump_epoch()
                return UpdateResult(0, 0, upserted_id=stored["_id"])
            if modified:
                self._bump_epoch()
                # Physiological logging: the WAL stores the *resulting*
                # documents, so replay is exact regardless of planner
                # candidate order or update-operator re-evaluation.
                self._emit_wal(OP_UPDATE, {"docs": changed})
            return UpdateResult(matched, modified)

    def _replace_committed(self, old: Dict[str, Any], new: Dict[str, Any]) -> None:
        for index in self._indexes.values():
            index.remove(old)
        self._docs[new["_id"]] = new
        for index in self._indexes.values():
            index.add(new)

    # -- deletes -----------------------------------------------------------------------------

    def delete_one(self, flt: Dict[str, Any]) -> DeleteResult:
        return self._delete(flt, multi=False)

    def delete_many(self, flt: Optional[Dict[str, Any]] = None) -> DeleteResult:
        return self._delete(flt or {}, multi=True)

    def _delete(self, flt: Dict[str, Any], *, multi: bool) -> DeleteResult:
        with self._lock:
            victims = self._execute_filter(flt)
            if not multi:
                victims = victims[:1]
            for doc in victims:
                del self._docs[doc["_id"]]
                for index in self._indexes.values():
                    index.remove(doc)
            if victims:
                self._bump_epoch()
                self._emit_wal(OP_DELETE, {"ids": [d["_id"] for d in victims]})
            return DeleteResult(deleted_count=len(victims))

    # -- indexes --------------------------------------------------------------------------------

    def create_index(self, spec: IndexSpec, *, unique: bool = False) -> str:
        """Create a single-field or compound index; returns its name.

        ``spec`` accepts a dotted path (``"server_id"``), a list of
        paths (``["server_id", "timestamp_ms"]``) or Mongo-style
        ``[("server_id", 1), ("timestamp_ms", 1)]`` pairs.  Single-field
        indexes keep the bare path as their name (seed compatibility);
        compound names follow Mongo (``server_id_1_timestamp_ms_1``).
        """
        fields = _normalize_index_spec(spec)
        name = _index_name(fields)
        with self._lock:
            if name not in self._indexes:
                paths = [f for f, _ in fields]
                index: Union[FieldIndex, CompoundIndex]
                if len(paths) == 1:
                    index = FieldIndex(paths[0], unique=unique)
                else:
                    index = CompoundIndex(paths, unique=unique)
                for doc in self._docs.values():
                    index.add(doc)
                self._indexes[name] = index
                self._bump_epoch()  # plans change; drop cached decisions
                self._emit_wal(
                    OP_CREATE_INDEX,
                    {"fields": [[f, d] for f, d in fields], "unique": unique},
                )
            return name

    def drop_index(self, spec: IndexSpec) -> None:
        """Drop an index by name or by the spec used to create it."""
        if isinstance(spec, str):
            name = spec
        else:
            name = _index_name(_normalize_index_spec(spec))
        with self._lock:
            if self._indexes.pop(name, None) is not None:
                self._bump_epoch()
                self._emit_wal(OP_DROP_INDEX, {"name": name})

    def list_indexes(self) -> List[str]:
        return sorted(self._indexes)

    def index_information(self) -> Dict[str, Dict[str, Any]]:
        """Index metadata: ``{name: {"fields": [(path, 1), ...], "unique"}}``."""
        with self._lock:
            return {
                name: {
                    "fields": [(f, 1) for f in index.fields],
                    "unique": index.unique,
                }
                for name, index in sorted(self._indexes.items())
            }

    # -- WAL replay (recovery-only entry points) ----------------------------------------------------

    def replay_update(self, docs: Sequence[Dict[str, Any]]) -> None:
        """Re-apply a physiologically-logged ``OP_UPDATE`` record.

        Each ``doc`` replaces the stored document with the same ``_id``
        (indexes maintained).  Only :class:`~repro.docdb.recovery.
        RecoveryManager` calls this; a missing target means the log
        diverged from the snapshot and is surfaced as corruption.
        """
        with self._lock:
            for new_doc in docs:
                old = self._docs.get(new_doc["_id"])
                if old is None:
                    raise StorageError(
                        f"WAL replay: update targets unknown _id "
                        f"{new_doc['_id']!r} in collection {self.name!r}"
                    )
                self._replace_committed(old, copy.deepcopy(new_doc))
            if docs:
                self._bump_epoch()
                self._emit_wal(OP_UPDATE, {"docs": list(docs)})

    def replay_delete(self, ids: Sequence[Any]) -> None:
        """Re-apply an ``OP_DELETE`` record (delete by logged ids)."""
        with self._lock:
            removed = []
            for _id in ids:
                doc = self._docs.pop(_id, None)
                if doc is None:
                    raise StorageError(
                        f"WAL replay: delete targets unknown _id {_id!r} "
                        f"in collection {self.name!r}"
                    )
                for index in self._indexes.values():
                    index.remove(doc)
                removed.append(_id)
            if removed:
                self._bump_epoch()
                self._emit_wal(OP_DELETE, {"ids": removed})

    # -- aggregation --------------------------------------------------------------------------------

    def aggregate(self, pipeline: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Run an aggregation pipeline.

        A leading ``$match`` stage is pushed down into :meth:`find` so
        it can use an index instead of scanning the collection — this is
        what keeps the best-path selection query (``$match`` on
        ``server_id`` over ``paths_stats``) off the full-scan path.
        Results are cached like ``find`` (pipelines containing live
        objects, e.g. a ``$lookup`` ``from`` collection, are exempt).
        """
        from repro.docdb.aggregate import run_pipeline, split_leading_match

        cache_key = freeze(("aggregate", pipeline))
        with self._lock:
            epoch = self._epoch
            if cache_key is not None:
                cached = self.cache.get(cache_key, epoch)
                if cached is not None:
                    self.stats["cache_hits"] += 1
                    return json_deepcopy(cached)
                self.stats["cache_misses"] += 1
        match, rest = split_leading_match(pipeline)
        docs = self.find(match)
        out = run_pipeline(docs, rest)
        if cache_key is not None:
            with self._lock:
                self.cache.put(cache_key, epoch, out)
            return json_deepcopy(out)
        return out

    # -- misc -------------------------------------------------------------------------------------------

    def all_documents(self) -> List[Dict[str, Any]]:
        """Snapshot of every document (deep copies), in insertion order."""
        with self._lock:
            return [json_deepcopy(d) for d in self._docs.values()]

    def __len__(self) -> int:
        return len(self._docs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Collection({self.name!r}, n={len(self._docs)})"


# -- helpers --------------------------------------------------------------------


def _sorted_docs(docs: List[Dict[str, Any]], sort: SortSpec) -> List[Dict[str, Any]]:
    out = docs
    for field_path, direction in reversed(list(sort)):
        if direction not in (1, -1):
            raise QueryError(f"sort direction must be 1 or -1: {direction}")
        out = sorted(
            out,
            key=lambda d: _sort_key(d, field_path),
            reverse=direction == -1,
        )
    return out


def _sort_key(doc: Dict[str, Any], path: str) -> Tuple:
    found, value = get_path(doc, path)
    if not found or value is None:
        return (0, 0.0, "")
    if isinstance(value, bool):
        return (1, float(value), "")
    if isinstance(value, (int, float)):
        return (1, float(value), "")
    if isinstance(value, str):
        return (2, 0.0, value)
    return (3, 0.0, repr(value))


def _project(doc: Dict[str, Any], projection: Dict[str, int]) -> Dict[str, Any]:
    include = {k for k, v in projection.items() if v}
    exclude = {k for k, v in projection.items() if not v}
    if include and exclude - {"_id"}:
        raise QueryError("cannot mix inclusion and exclusion projections")
    if include:
        out: Dict[str, Any] = {}
        for path in include:
            found, value = get_path(doc, path)
            if found:
                out[path] = json_deepcopy(value)
        if "_id" not in exclude and "_id" in doc:
            out["_id"] = doc["_id"]
        return out
    return {k: v for k, v in doc.items() if k not in exclude}
