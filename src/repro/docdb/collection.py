"""Collections: the Mongo-like document container.

Thread-safe (one RLock per collection — the campaign runner writes from
a thread pool, §4.1.1), with single-field indexes, a small query
planner, and an optional document validator hook used by the signed
statistics pipeline (§4.1.4).
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.docdb.document import get_path, normalize_document
from repro.docdb.index import FieldIndex
from repro.docdb.query import matches
from repro.docdb.update import apply_update, is_update_document
from repro.errors import DuplicateKeyError, QueryError

SortSpec = Sequence[Tuple[str, int]]

_RANGE_OPS = {"$gt", "$gte", "$lt", "$lte"}


@dataclass(frozen=True)
class InsertOneResult:
    inserted_id: Any


@dataclass(frozen=True)
class InsertManyResult:
    inserted_ids: Tuple[Any, ...]


@dataclass(frozen=True)
class UpdateResult:
    matched_count: int
    modified_count: int
    upserted_id: Any = None


@dataclass(frozen=True)
class DeleteResult:
    deleted_count: int


class Collection:
    """One named collection of documents."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._docs: Dict[Any, Dict[str, Any]] = {}
        self._indexes: Dict[str, FieldIndex] = {}
        self._lock = threading.RLock()
        #: Optional hook run on every inserted/updated document; raise to
        #: reject the write (used for signature verification).
        self.validator: Optional[Callable[[Dict[str, Any]], None]] = None
        #: Counters for the scalability benchmarks.
        self.stats = {"inserts": 0, "scans": 0, "index_hits": 0}

    # -- inserts ----------------------------------------------------------------

    def insert_one(self, doc: Dict[str, Any]) -> InsertOneResult:
        with self._lock:
            stored = self._insert(doc)
            return InsertOneResult(inserted_id=stored["_id"])

    def insert_many(self, docs: Iterable[Dict[str, Any]]) -> InsertManyResult:
        """Insert a batch atomically: either all documents land or none.

        This is the operation the paper's §4.2.2 design leans on — the
        runner buffers all statistics for one destination and inserts
        them in a single call.
        """
        with self._lock:
            prepared = [normalize_document(d) for d in docs]
            ids = [d["_id"] for d in prepared]
            if len(set(ids)) != len(ids):
                raise DuplicateKeyError(f"duplicate _id inside batch for {self.name}")
            for d in prepared:
                if d["_id"] in self._docs:
                    raise DuplicateKeyError(f"duplicate _id: {d['_id']!r}")
                if self.validator is not None:
                    self.validator(d)
            for d in prepared:
                self._commit_insert(d)
            return InsertManyResult(inserted_ids=tuple(ids))

    def _insert(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        stored = normalize_document(doc)
        if stored["_id"] in self._docs:
            raise DuplicateKeyError(f"duplicate _id: {stored['_id']!r}")
        if self.validator is not None:
            self.validator(stored)
        self._commit_insert(stored)
        return stored

    def _commit_insert(self, stored: Dict[str, Any]) -> None:
        self._docs[stored["_id"]] = stored
        for index in self._indexes.values():
            index.add(stored)
        self.stats["inserts"] += 1

    # -- queries ------------------------------------------------------------------

    def find(
        self,
        flt: Optional[Dict[str, Any]] = None,
        projection: Optional[Dict[str, int]] = None,
        *,
        sort: Optional[SortSpec] = None,
        limit: int = 0,
        skip: int = 0,
    ) -> List[Dict[str, Any]]:
        """Return matching documents (deep copies), optionally sorted."""
        flt = flt or {}
        with self._lock:
            candidates = self._candidates(flt)
            out = [copy.deepcopy(d) for d in candidates if matches(d, flt)]
        if sort:
            out = _sorted_docs(out, sort)
        if skip:
            out = out[skip:]
        if limit:
            out = out[:limit]
        if projection:
            out = [_project(d, projection) for d in out]
        return out

    def find_one(
        self,
        flt: Optional[Dict[str, Any]] = None,
        projection: Optional[Dict[str, int]] = None,
        *,
        sort: Optional[SortSpec] = None,
    ) -> Optional[Dict[str, Any]]:
        results = self.find(flt, projection, sort=sort, limit=1)
        return results[0] if results else None

    def count_documents(self, flt: Optional[Dict[str, Any]] = None) -> int:
        flt = flt or {}
        with self._lock:
            if not flt:
                return len(self._docs)
            return sum(1 for d in self._candidates(flt) if matches(d, flt))

    def distinct(self, field_path: str, flt: Optional[Dict[str, Any]] = None) -> List[Any]:
        seen: List[Any] = []
        for doc in self.find(flt):
            found, value = get_path(doc, field_path)
            if not found:
                continue
            values = value if isinstance(value, list) else [value]
            for v in values:
                if v not in seen:
                    seen.append(v)
        return seen

    # -- planner ---------------------------------------------------------------------

    def _candidates(self, flt: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Use the best applicable index to narrow the scan set."""
        if "_id" in flt and not isinstance(flt["_id"], dict):
            doc = self._docs.get(flt["_id"])
            self.stats["index_hits"] += 1
            return [doc] if doc is not None else []
        best: Optional[set] = None
        for path, condition in flt.items():
            index = self._indexes.get(path)
            if index is None or path.startswith("$"):
                continue
            ids = self._ids_from_index(index, condition)
            if ids is None:
                continue
            if best is None or len(ids) < len(best):
                best = ids
        if best is None:
            self.stats["scans"] += 1
            return list(self._docs.values())
        self.stats["index_hits"] += 1
        return [self._docs[i] for i in best if i in self._docs]

    @staticmethod
    def _ids_from_index(index: FieldIndex, condition: Any) -> Optional[set]:
        if isinstance(condition, dict) and any(k.startswith("$") for k in condition):
            if "$eq" in condition:
                return index.ids_equal(condition["$eq"])
            if "$in" in condition and isinstance(condition["$in"], (list, tuple)):
                return index.ids_in(condition["$in"])
            range_kw = {
                op.lstrip("$"): operand
                for op, operand in condition.items()
                if op in _RANGE_OPS
            }
            if range_kw:
                return index.ids_range(**range_kw)
            return None
        if isinstance(condition, dict):
            return None
        return index.ids_equal(condition)

    # -- updates -------------------------------------------------------------------------

    def update_one(
        self,
        flt: Dict[str, Any],
        update: Dict[str, Any],
        *,
        upsert: bool = False,
    ) -> UpdateResult:
        return self._update(flt, update, multi=False, upsert=upsert)

    def update_many(
        self,
        flt: Dict[str, Any],
        update: Dict[str, Any],
        *,
        upsert: bool = False,
    ) -> UpdateResult:
        return self._update(flt, update, multi=True, upsert=upsert)

    def replace_one(
        self, flt: Dict[str, Any], replacement: Dict[str, Any], *, upsert: bool = False
    ) -> UpdateResult:
        if is_update_document(replacement):
            raise QueryError("replacement document cannot contain operators")
        return self._update(flt, replacement, multi=False, upsert=upsert)

    def _update(
        self,
        flt: Dict[str, Any],
        update: Dict[str, Any],
        *,
        multi: bool,
        upsert: bool,
    ) -> UpdateResult:
        with self._lock:
            matched = 0
            modified = 0
            for doc in [d for d in self._candidates(flt) if matches(d, flt)]:
                matched += 1
                new_doc = apply_update(doc, update)
                if new_doc != doc:
                    if self.validator is not None:
                        self.validator(new_doc)
                    self._replace_committed(doc, new_doc)
                    modified += 1
                if not multi:
                    break
            if matched == 0 and upsert:
                seed = {
                    k: v
                    for k, v in flt.items()
                    if not k.startswith("$") and not isinstance(v, dict)
                }
                new_doc = apply_update(seed, update) if is_update_document(update) else {
                    **seed,
                    **update,
                }
                stored = self._insert(new_doc)
                return UpdateResult(0, 0, upserted_id=stored["_id"])
            return UpdateResult(matched, modified)

    def _replace_committed(self, old: Dict[str, Any], new: Dict[str, Any]) -> None:
        for index in self._indexes.values():
            index.remove(old)
        self._docs[new["_id"]] = new
        for index in self._indexes.values():
            index.add(new)

    # -- deletes -----------------------------------------------------------------------------

    def delete_one(self, flt: Dict[str, Any]) -> DeleteResult:
        return self._delete(flt, multi=False)

    def delete_many(self, flt: Optional[Dict[str, Any]] = None) -> DeleteResult:
        return self._delete(flt or {}, multi=True)

    def _delete(self, flt: Dict[str, Any], *, multi: bool) -> DeleteResult:
        with self._lock:
            victims = [d for d in self._candidates(flt) if matches(d, flt)]
            if not multi:
                victims = victims[:1]
            for doc in victims:
                del self._docs[doc["_id"]]
                for index in self._indexes.values():
                    index.remove(doc)
            return DeleteResult(deleted_count=len(victims))

    # -- indexes --------------------------------------------------------------------------------

    def create_index(self, field_path: str, *, unique: bool = False) -> str:
        with self._lock:
            if field_path not in self._indexes:
                index = FieldIndex(field_path, unique=unique)
                for doc in self._docs.values():
                    index.add(doc)
                self._indexes[field_path] = index
            return field_path

    def drop_index(self, field_path: str) -> None:
        with self._lock:
            self._indexes.pop(field_path, None)

    def list_indexes(self) -> List[str]:
        return sorted(self._indexes)

    # -- aggregation --------------------------------------------------------------------------------

    def aggregate(self, pipeline: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        from repro.docdb.aggregate import run_pipeline

        return run_pipeline(self.find(), pipeline)

    # -- misc -------------------------------------------------------------------------------------------

    def all_documents(self) -> List[Dict[str, Any]]:
        """Snapshot of every document (deep copies), in insertion order."""
        with self._lock:
            return [copy.deepcopy(d) for d in self._docs.values()]

    def __len__(self) -> int:
        return len(self._docs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Collection({self.name!r}, n={len(self._docs)})"


# -- helpers --------------------------------------------------------------------


def _sorted_docs(docs: List[Dict[str, Any]], sort: SortSpec) -> List[Dict[str, Any]]:
    out = docs
    for field_path, direction in reversed(list(sort)):
        if direction not in (1, -1):
            raise QueryError(f"sort direction must be 1 or -1: {direction}")
        out = sorted(
            out,
            key=lambda d: _sort_key(d, field_path),
            reverse=direction == -1,
        )
    return out


def _sort_key(doc: Dict[str, Any], path: str) -> Tuple:
    found, value = get_path(doc, path)
    if not found or value is None:
        return (0, 0.0, "")
    if isinstance(value, bool):
        return (1, float(value), "")
    if isinstance(value, (int, float)):
        return (1, float(value), "")
    if isinstance(value, str):
        return (2, 0.0, value)
    return (3, 0.0, repr(value))


def _project(doc: Dict[str, Any], projection: Dict[str, int]) -> Dict[str, Any]:
    include = {k for k, v in projection.items() if v}
    exclude = {k for k, v in projection.items() if not v}
    if include and exclude - {"_id"}:
        raise QueryError("cannot mix inclusion and exclusion projections")
    if include:
        out: Dict[str, Any] = {}
        for path in include:
            found, value = get_path(doc, path)
            if found:
                out[path] = copy.deepcopy(value)
        if "_id" not in exclude and "_id" in doc:
            out["_id"] = doc["_id"]
        return out
    return {k: v for k, v in doc.items() if k not in exclude}
