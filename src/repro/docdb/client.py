"""Top-level client facade, shaped like ``pymongo.MongoClient``.

The test-suite scripts of the paper talk to MongoDB through a client
object; keeping the same shape (``client[db][collection]``) means the
reproduction's suite code reads like the original scripts.

Two persistence modes:

* **volatile + snapshots** (the seed behaviour): ``DocDBClient()`` with
  explicit :meth:`save_to` / :meth:`load_from` — a crash loses
  everything since the last snapshot;
* **durable** (this PR): :meth:`DocDBClient.open` recovers the
  directory (snapshot generation + WAL replay) and attaches a
  segmented, checksummed write-ahead log so every mutating operation
  journals itself automatically.  ``checkpoint()`` / ``compact()``
  bound WAL growth; ``close()`` seals the log.  See docs/STORAGE.md.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional

from repro.docdb.database import Database
from repro.docdb.storage import JsonlStore
from repro.docdb.wal import OP_DROP_DATABASE, WalWriter


class DocDBClient:
    """An in-process document-database server handle."""

    def __init__(self) -> None:
        self._databases: Dict[str, Database] = {}
        self._lock = threading.RLock()
        #: Durable-mode state (None/absent when volatile).
        self._wal: Optional[WalWriter] = None
        self._durable_dir: Optional[str] = None
        self.recovery_report: Optional[Any] = None
        self._compactions = 0
        self._checkpoints = 0
        self._segments_removed = 0
        self._generations_removed = 0

    # -- durable mode ------------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str,
        *,
        fsync: str = "batch",
        segment_bytes: int = 1 << 20,
        batch_every: int = 64,
    ) -> "DocDBClient":
        """Open (and recover) a durable database rooted at ``directory``.

        Runs :class:`~repro.docdb.recovery.RecoveryManager` — latest
        snapshot generation + WAL replay above the checkpoint, torn
        tail rolled back, indexes rebuilt, cache epochs bumped — then
        attaches a :class:`~repro.docdb.wal.WalWriter` continuing at
        the next LSN.  Every subsequent mutating operation on any
        collection of this client is journalled automatically.
        """
        from repro.docdb.recovery import WAL_DIR, RecoveryManager

        client, report = RecoveryManager(directory).recover()
        wal = WalWriter(
            os.path.join(directory, WAL_DIR),
            start_lsn=report.last_lsn + 1,
            fsync=fsync,
            segment_bytes=segment_bytes,
            batch_every=batch_every,
        )
        client._durable_dir = directory
        client.recovery_report = report
        client._attach_wal(wal)
        return client

    def _attach_wal(self, wal: Optional[WalWriter]) -> None:
        with self._lock:
            self._wal = wal
            for db in self._databases.values():
                db.attach_wal(wal)

    @property
    def wal(self) -> Optional[WalWriter]:
        """The attached WAL writer (None in volatile mode)."""
        return self._wal

    @property
    def durable_dir(self) -> Optional[str]:
        return self._durable_dir

    @property
    def is_durable(self) -> bool:
        return self._wal is not None

    def checkpoint(self) -> Any:
        """Snapshot + flip CHECKPOINT + GC old generations/segments.

        Returns a :class:`~repro.docdb.recovery.CheckpointResult`.  Call
        from a quiesced point (between campaign rounds); see
        :func:`repro.docdb.recovery.run_checkpoint`.
        """
        from repro.docdb.recovery import run_checkpoint

        result = run_checkpoint(self)
        with self._lock:
            if not result.skipped:
                self._checkpoints += 1
            self._segments_removed += result.segments_removed
            self._generations_removed += result.generations_removed
        return result

    def compact(self) -> Any:
        """Background-safe compaction: checkpoint only if the WAL grew.

        Cheap when idle (pure GC), a full checkpoint otherwise — this is
        the hook the monitoring scheduler calls between rounds.
        """
        with self._lock:
            self._compactions += 1
        return self.checkpoint()

    def compaction_hook(self, *, every: int = 1):
        """A ``MonitoringScheduler.add_round_hook``-compatible callable.

        Runs :meth:`compact` every ``every`` finished rounds, keeping
        WAL growth bounded during continuous monitoring without any
        caller-side persistence bookkeeping.
        """
        if every < 1:
            raise ValueError("compaction interval must be >= 1")
        counter = {"rounds": 0}

        def hook(_record: Any) -> None:
            counter["rounds"] += 1
            if counter["rounds"] % every == 0:
                self.compact()

        return hook

    def close(self) -> None:
        """Seal the WAL (flush + fsync) and detach it."""
        if self._wal is not None:
            self._wal.close()
            self._attach_wal(None)

    def __enter__(self) -> "DocDBClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def wal_stats(self) -> Dict[str, Any]:
        """JSON-friendly durability counters (empty dict when volatile).

        Folded into the suite CLI's ``--metrics`` output by
        :func:`repro.suite.metrics.wal_stats_snapshot`.
        """
        wal = self._wal
        if wal is None:
            return {}
        from repro.docdb.recovery import read_checkpoint

        assert self._durable_dir is not None
        checkpoint = read_checkpoint(self._durable_dir)
        report = self.recovery_report
        return {
            "fsync_policy": wal.fsync_policy,
            "last_lsn": wal.last_lsn,
            "checkpoint_lsn": checkpoint.checkpoint_lsn,
            "segments": wal.segment_count(),
            "checkpoints": self._checkpoints,
            "compactions": self._compactions,
            "segments_removed": self._segments_removed,
            "generations_removed": self._generations_removed,
            "records_replayed": (
                report.records_replayed if report is not None else 0
            ),
            "torn_bytes_truncated": (
                report.torn_bytes_truncated if report is not None else 0
            ),
            **wal.stats,
        }

    # -- databases ---------------------------------------------------------------

    def database(self, name: str) -> Database:
        with self._lock:
            db = self._databases.get(name)
            if db is None:
                db = Database(name, wal=self._wal)
                self._databases[name] = db
            return db

    __getitem__ = database

    def list_database_names(self) -> List[str]:
        with self._lock:
            return sorted(self._databases)

    def drop_database(self, name: str) -> None:
        with self._lock:
            if self._databases.pop(name, None) is not None and self._wal is not None:
                self._wal.append(OP_DROP_DATABASE, name, None, {})

    # -- persistence convenience ------------------------------------------------

    def save_to(self, directory: str) -> None:
        """Snapshot every database under ``directory`` (JSONL files)."""
        store = JsonlStore(directory)
        for name in self.list_database_names():
            store.save_database(self.database(name))

    @classmethod
    def load_from(cls, directory: str) -> "DocDBClient":
        """Restore a client from a snapshot directory."""
        client = cls()
        store = JsonlStore(directory)
        for db_name in store.list_databases():
            store.load_database(client.database(db_name))
        return client
