"""Top-level client facade, shaped like ``pymongo.MongoClient``.

The test-suite scripts of the paper talk to MongoDB through a client
object; keeping the same shape (``client[db][collection]``) means the
reproduction's suite code reads like the original scripts.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.docdb.database import Database
from repro.docdb.storage import JsonlStore


class DocDBClient:
    """An in-process document-database server handle."""

    def __init__(self) -> None:
        self._databases: Dict[str, Database] = {}
        self._lock = threading.RLock()

    def database(self, name: str) -> Database:
        with self._lock:
            db = self._databases.get(name)
            if db is None:
                db = Database(name)
                self._databases[name] = db
            return db

    __getitem__ = database

    def list_database_names(self) -> List[str]:
        with self._lock:
            return sorted(self._databases)

    def drop_database(self, name: str) -> None:
        with self._lock:
            self._databases.pop(name, None)

    # -- persistence convenience ------------------------------------------------

    def save_to(self, directory: str) -> None:
        """Snapshot every database under ``directory`` (JSONL files)."""
        store = JsonlStore(directory)
        for name in self.list_database_names():
            store.save_database(self.database(name))

    @classmethod
    def load_from(cls, directory: str) -> "DocDBClient":
        """Restore a client from a snapshot directory."""
        client = cls()
        store = JsonlStore(directory)
        for db_name in store.list_databases():
            store.load_database(client.database(db_name))
        return client
