"""Segmented, checksummed write-ahead log (WAL).

The paper's §4.2.2 batches one destination's measurements into a single
``insert_many`` precisely to bound what a crash can lose.  This module
makes that bound *provable*: every mutating operation a durable
:class:`~repro.docdb.client.DocDBClient` performs is appended here as
one length-prefixed, CRC32-checksummed record **before** the operation
is considered committed.  Recovery (:mod:`repro.docdb.recovery`)
replays the records above the last checkpoint; a batch whose record is
torn mid-write is rolled back wholesale — all-or-nothing, exactly the
§4.2.2 contract.

Record wire format (little-endian)::

    +----------------+----------------+----------------------------+
    |  length (u32)  |  crc32 (u32)   |  payload (length bytes)    |
    +----------------+----------------+----------------------------+

``payload`` is UTF-8 JSON::

    {"lsn": 17, "op": "insert_many", "db": "upin",
     "coll": "paths_stats", "payload": {...}}

The CRC covers the payload bytes only; the length prefix tells the
reader how much to check.  Three disk states are distinguished:

* **clean** — every record checks out;
* **torn tail** — the *last* record of the *last* segment has fewer
  bytes than its length prefix announces (the writer died mid-write):
  recovery truncates it and rolls the un-committed operation back;
* **interior corruption** — a size-complete record whose CRC (or LSN
  continuity) fails anywhere, or an incomplete record that is *not*
  the final one: raised as :class:`~repro.errors.WalCorruptionError`
  naming the LSN — never silently skipped.

Segments are files named ``wal-<start-lsn>.log``.  The writer rotates
to a fresh segment once the current one crosses ``segment_bytes``;
checkpointing (:meth:`DocDBClient.checkpoint`) garbage-collects the
segments whose every record is at or below the checkpoint LSN.

``fsync`` policies (the durability/throughput trade-off table in
``docs/STORAGE.md``):

``always``   flush + ``os.fsync`` after every record — survives power
             loss, slowest.
``batch``    flush to the OS after every record, ``fsync`` every
             ``batch_every`` records and on rotation/close — survives
             process crashes (``kill -9``), bounded power-loss window.
``never``    flush to the OS only — survives process crashes, no
             power-loss guarantee, fastest.
"""

from __future__ import annotations

import json
import os
import re
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import StorageError, WalCorruptionError

# -- record format ----------------------------------------------------------

_HEADER = struct.Struct("<II")  # payload length, crc32(payload)
HEADER_BYTES = _HEADER.size

#: WAL operation constants (documented in docs/STORAGE.md).
OP_INSERT = "insert"
OP_INSERT_MANY = "insert_many"
OP_UPDATE = "update"
OP_DELETE = "delete"
OP_CREATE_INDEX = "create_index"
OP_DROP_INDEX = "drop_index"
OP_DROP_COLLECTION = "drop_collection"
OP_DROP_DATABASE = "drop_database"

#: Every op a WAL record may carry (diff-tested against docs/STORAGE.md).
WAL_OPS = frozenset(
    {
        OP_INSERT,
        OP_INSERT_MANY,
        OP_UPDATE,
        OP_DELETE,
        OP_CREATE_INDEX,
        OP_DROP_INDEX,
        OP_DROP_COLLECTION,
        OP_DROP_DATABASE,
    }
)

#: Accepted fsync policies.
FSYNC_POLICIES = ("always", "batch", "never")

_SEGMENT_RE = re.compile(r"^wal-(\d{16})\.log$")


def segment_name(start_lsn: int) -> str:
    """Filename of the segment whose first record is ``start_lsn``."""
    return f"wal-{start_lsn:016d}.log"


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL record."""

    lsn: int
    op: str
    db: str
    coll: Optional[str]
    payload: Dict[str, Any]


def encode_record(record: WalRecord) -> bytes:
    """Serialize a record: header (length, crc32) + JSON payload."""
    body = json.dumps(
        {
            "lsn": record.lsn,
            "op": record.op,
            "db": record.db,
            "coll": record.coll,
            "payload": record.payload,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def _decode_body(body: bytes, expected_lsn: int, where: str) -> WalRecord:
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WalCorruptionError(
            f"WAL record at lsn={expected_lsn} in {where} has a valid "
            f"checksum but undecodable payload",
            lsn=expected_lsn,
        ) from exc
    lsn = int(doc["lsn"])
    if lsn != expected_lsn:
        raise WalCorruptionError(
            f"WAL LSN discontinuity in {where}: expected lsn={expected_lsn}, "
            f"record says lsn={lsn}",
            lsn=expected_lsn,
        )
    op = str(doc["op"])
    if op not in WAL_OPS:
        raise WalCorruptionError(
            f"WAL record at lsn={lsn} in {where} carries unknown op "
            f"{op!r}",
            lsn=lsn,
        )
    return WalRecord(
        lsn=lsn,
        op=op,
        db=str(doc["db"]),
        coll=doc.get("coll"),
        payload=doc.get("payload") or {},
    )


# -- segment scanning --------------------------------------------------------


def list_segments(directory: str) -> List[Tuple[int, str]]:
    """``[(start_lsn, absolute_path), ...]`` sorted by start LSN."""
    out: List[Tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return out
    for name in names:
        match = _SEGMENT_RE.match(name)
        if match:
            out.append((int(match.group(1)), os.path.join(directory, name)))
    out.sort()
    return out


@dataclass
class SegmentScan:
    """Outcome of reading one segment."""

    records: List[WalRecord]
    torn_at: Optional[int]  # byte offset of a torn tail (None = clean)
    torn_bytes: int  # how many trailing bytes the tear spans


def read_segment(
    path: str, start_lsn: int, *, is_last: bool
) -> SegmentScan:
    """Read and verify every record of one segment.

    ``is_last`` selects torn-tail semantics: an incomplete final record
    is tolerated (reported via ``torn_at``) only in the final segment of
    the log — anywhere else it is interior corruption and raises
    :class:`~repro.errors.WalCorruptionError`.
    """
    with open(path, "rb") as fh:
        blob = fh.read()
    records: List[WalRecord] = []
    offset = 0
    lsn = start_lsn
    size = len(blob)
    while offset < size:
        if size - offset < HEADER_BYTES:
            if is_last:
                return SegmentScan(records, torn_at=offset, torn_bytes=size - offset)
            raise WalCorruptionError(
                f"WAL segment {os.path.basename(path)} ends mid-header at "
                f"lsn={lsn} (offset {offset}) but is not the final segment",
                lsn=lsn,
            )
        length, crc = _HEADER.unpack_from(blob, offset)
        body_start = offset + HEADER_BYTES
        if size - body_start < length:
            if is_last:
                return SegmentScan(records, torn_at=offset, torn_bytes=size - offset)
            raise WalCorruptionError(
                f"WAL segment {os.path.basename(path)} ends mid-record at "
                f"lsn={lsn} (offset {offset}) but is not the final segment",
                lsn=lsn,
            )
        body = blob[body_start: body_start + length]
        if zlib.crc32(body) != crc:
            raise WalCorruptionError(
                f"WAL checksum mismatch at lsn={lsn} in "
                f"{os.path.basename(path)} (offset {offset})",
                lsn=lsn,
            )
        records.append(_decode_body(body, lsn, os.path.basename(path)))
        offset = body_start + length
        lsn += 1
    return SegmentScan(records, torn_at=None, torn_bytes=0)


def iter_wal(
    directory: str, *, repair: bool = False
) -> Iterator[WalRecord]:
    """Yield every valid record across all segments, in LSN order.

    With ``repair=True`` a torn tail in the final segment is physically
    truncated off the file (the crash-recovery path); otherwise it is
    merely not yielded.  Interior corruption always raises.
    """
    segments = list_segments(directory)
    for i, (start_lsn, path) in enumerate(segments):
        scan = read_segment(path, start_lsn, is_last=(i == len(segments) - 1))
        yield from scan.records
        if scan.torn_at is not None and repair:
            with open(path, "r+b") as fh:
                fh.truncate(scan.torn_at)
                fh.flush()
                os.fsync(fh.fileno())


# -- writer -----------------------------------------------------------------

#: Crash-hook signature: ``hook(event, writer, lsn, data)`` where
#: ``event`` is ``"pre_append"`` (record encoded, nothing written),
#: ``"post_append"`` (record fully on the OS side) or ``"post_rotate"``
#: (fresh segment just opened).  Installed by the crash-fault harness
#: (:class:`repro.suite.faults.CrashPlan`) — see tools/crash_fuzz.py.
CrashHook = Callable[[str, "WalWriter", int, bytes], None]


class WalWriter:
    """Appender for the segmented WAL.

    Thread-safe via an internal lock; collections call :meth:`append`
    while holding their own lock (lock order collection → WAL, and the
    WAL never calls back into collections, so no cycles).
    """

    def __init__(
        self,
        directory: str,
        *,
        start_lsn: int = 1,
        fsync: str = "batch",
        segment_bytes: int = 1 << 20,
        batch_every: int = 64,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise StorageError(
                f"unknown fsync policy {fsync!r} (expected one of "
                f"{', '.join(FSYNC_POLICIES)})"
            )
        if segment_bytes < HEADER_BYTES + 2:
            raise StorageError("segment_bytes is too small to hold a record")
        if batch_every < 1:
            raise StorageError("batch_every must be >= 1")
        self.directory = directory
        self.fsync_policy = fsync
        self.segment_bytes = segment_bytes
        self.batch_every = batch_every
        self.crash_hook: Optional[CrashHook] = None
        self._lock = threading.RLock()
        self._next_lsn = start_lsn
        self._unsynced = 0
        self._closed = False
        self.stats: Dict[str, int] = {
            "appends": 0,
            "bytes_written": 0,
            "fsyncs": 0,
            "rotations": 0,
            "segments_created": 0,
        }
        os.makedirs(directory, exist_ok=True)
        self._open_segment(start_lsn)

    # -- lifecycle ----------------------------------------------------------

    def _open_segment(self, start_lsn: int) -> None:
        self._segment_start = start_lsn
        self._segment_path = os.path.join(self.directory, segment_name(start_lsn))
        self._fh = open(self._segment_path, "ab")
        self._size = self._fh.tell()
        self.stats["segments_created"] += 1

    def close(self) -> None:
        """Flush, fsync (unless policy ``never``) and close the writer."""
        with self._lock:
            if self._closed:
                return
            self._fh.flush()
            if self.fsync_policy != "never":
                os.fsync(self._fh.fileno())
                self.stats["fsyncs"] += 1
            self._fh.close()
            self._closed = True

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- introspection ------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """The LSN of the most recently appended record (0 = none yet)."""
        return self._next_lsn - 1

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def segment_path(self) -> str:
        return self._segment_path

    def segment_count(self) -> int:
        return len(list_segments(self.directory))

    # -- appending ----------------------------------------------------------

    def append(
        self, op: str, db: str, coll: Optional[str], payload: Dict[str, Any]
    ) -> int:
        """Append one operation record; returns its LSN.

        The record is on the OS side of the file buffer when this
        returns (and on the platter too under ``fsync="always"``) —
        this call *is* the commit point of the operation.
        """
        if op not in WAL_OPS:
            raise StorageError(f"unknown WAL op: {op!r}")
        with self._lock:
            if self._closed:
                raise StorageError("WAL writer is closed")
            lsn = self._next_lsn
            data = encode_record(
                WalRecord(lsn=lsn, op=op, db=db, coll=coll, payload=payload)
            )
            if self._size >= self.segment_bytes:
                self._rotate()
                if self.crash_hook is not None:
                    self.crash_hook("post_rotate", self, lsn, data)
            if self.crash_hook is not None:
                self.crash_hook("pre_append", self, lsn, data)
            self._fh.write(data)
            self._fh.flush()  # always reach the OS: kill -9 loses nothing
            self._size += len(data)
            self._next_lsn = lsn + 1
            self.stats["appends"] += 1
            self.stats["bytes_written"] += len(data)
            self._unsynced += 1
            if self.fsync_policy == "always" or (
                self.fsync_policy == "batch" and self._unsynced >= self.batch_every
            ):
                self._fsync()
            if self.crash_hook is not None:
                self.crash_hook("post_append", self, lsn, data)
            return lsn

    def _fsync(self) -> None:
        os.fsync(self._fh.fileno())
        self.stats["fsyncs"] += 1
        self._unsynced = 0

    def sync(self) -> int:
        """Force flush + fsync; returns the last durable LSN."""
        with self._lock:
            if not self._closed:
                self._fh.flush()
                self._fsync()
            return self.last_lsn

    def rotate_if_dirty(self) -> bool:
        """Seal the current segment iff it holds records; returns True if sealed.

        Called by the checkpointer right before garbage collection: once
        sealed, a fully-checkpointed segment becomes removable, so the
        next recovery scans (almost) no pre-checkpoint records.
        """
        with self._lock:
            if self._closed or self._size == 0:
                return False
            self._rotate()
            return True

    def _rotate(self) -> None:
        """Seal the current segment and open a fresh one."""
        self._fh.flush()
        if self.fsync_policy != "never":
            os.fsync(self._fh.fileno())
            self.stats["fsyncs"] += 1
        self._fh.close()
        self.stats["rotations"] += 1
        self._open_segment(self._next_lsn)

    # -- garbage collection --------------------------------------------------

    def remove_segments_below(self, checkpoint_lsn: int) -> int:
        """Delete segments whose every record is ≤ ``checkpoint_lsn``.

        A segment is removable when the *next* segment starts at or
        below ``checkpoint_lsn + 1`` (so nothing above the checkpoint
        lives in it).  The currently open segment is never removed.
        Returns the number of segments deleted.
        """
        removed = 0
        with self._lock:
            segments = list_segments(self.directory)
            for i, (start_lsn, path) in enumerate(segments):
                if path == self._segment_path:
                    continue
                next_start = (
                    segments[i + 1][0] if i + 1 < len(segments) else self._next_lsn
                )
                if next_start <= checkpoint_lsn + 1:
                    os.remove(path)
                    removed += 1
        return removed
