"""Mongo-style filter matching.

Supports the operator surface the test-suite and the path-selection
engine query with, plus the usual logical combinators:

==================  =========================================================
operator            semantics
==================  =========================================================
(bare value)        equality (deep compare; arrays match on element too)
``$eq`` ``$ne``     equality / negated equality
``$gt(e)/$lt(e)``   ordered comparison (same-type operands only)
``$in`` ``$nin``    membership
``$exists``         field presence
``$regex``          regular-expression match on strings
``$mod``            ``[divisor, remainder]``
``$size``           array length
``$all``            array contains all listed values
``$elemMatch``      some array element matches a sub-filter
``$not``            negates an operator document
``$and/$or/$nor``   logical combinators over sub-filters
==================  =========================================================
"""

from __future__ import annotations

import re
from numbers import Number
from typing import Any, Dict, Iterable, List

from repro.docdb.document import iter_path_values
from repro.errors import QueryError

_OPERATORS = frozenset(
    {
        "$eq", "$ne", "$gt", "$gte", "$lt", "$lte", "$in", "$nin",
        "$exists", "$regex", "$options", "$mod", "$size", "$all",
        "$elemMatch", "$not",
    }
)
_LOGICAL = frozenset({"$and", "$or", "$nor"})


def supported_operators() -> frozenset:
    """Every operator the matcher dispatches on (field-level + logical).

    ``docs/DATABASE.md`` documents each of these; a test diffs the doc's
    operator table against this set so the reference cannot rot.
    """
    return _OPERATORS | _LOGICAL


def matches(doc: Dict[str, Any], flt: Dict[str, Any]) -> bool:
    """True if ``doc`` satisfies the filter document ``flt``."""
    if not isinstance(flt, dict):
        raise QueryError(f"filter must be a dict, got {type(flt).__name__}")
    for key, condition in flt.items():
        if key in _LOGICAL:
            if not _logical(doc, key, condition):
                return False
        elif key.startswith("$"):
            raise QueryError(f"unknown top-level operator: {key}")
        else:
            if not _match_field(doc, key, condition):
                return False
    return True


def _logical(doc: Dict[str, Any], op: str, clauses: Any) -> bool:
    if not isinstance(clauses, (list, tuple)) or not clauses:
        raise QueryError(f"{op} requires a non-empty list of filters")
    results = (matches(doc, clause) for clause in clauses)
    if op == "$and":
        return all(results)
    if op == "$or":
        return any(results)
    return not any(results)  # $nor


def _is_operator_doc(condition: Any) -> bool:
    return isinstance(condition, dict) and any(
        k.startswith("$") for k in condition
    )


def _match_field(doc: Dict[str, Any], path: str, condition: Any) -> bool:
    values = list(iter_path_values(doc, path))
    exists = bool(values)

    if _is_operator_doc(condition):
        return _apply_operators(values, exists, condition)

    # Mongo quirk: a bare ``None`` also matches documents missing the field.
    if condition is None and not exists:
        return True

    # Bare-value equality: direct match, or array-element match.
    return any(_values_equal(v, condition) for v in values) or any(
        isinstance(v, list) and any(_values_equal(e, condition) for e in v)
        for v in values
    )


def _apply_operators(values: List[Any], exists: bool, ops: Dict[str, Any]) -> bool:
    for op, operand in ops.items():
        if op == "$options":
            continue  # consumed together with $regex
        if op not in _OPERATORS:
            raise QueryError(f"unknown operator: {op}")
        if op == "$exists":
            if bool(operand) != exists:
                return False
            continue
        if op == "$not":
            if not isinstance(operand, dict):
                raise QueryError("$not requires an operator document")
            if _apply_operators(values, exists, operand):
                return False
            continue
        flags = re.IGNORECASE if "i" in str(ops.get("$options", "")) else 0
        fanned = list(_fanout(values, op))
        if not fanned:
            # Missing field: negative operators match vacuously (Mongo
            # treats "missing" as unequal to / not-in everything).
            if op in {"$ne", "$nin"}:
                continue
            if op == "$eq" and operand is None:
                continue
            return False
        if op in {"$ne", "$nin"}:
            # Complement semantics (Mongo): $ne/$nin match iff NO value —
            # the field itself or any array element — equals / is listed.
            # An existential check here would let ``{"xs": [0, 1]}`` match
            # both ``$eq: 0`` and ``$ne: 0``.
            if not all(_single_op(v, op, operand, flags) for v in fanned):
                return False
            continue
        if not any(_single_op(v, op, operand, flags) for v in fanned):
            return False
    return True


def _fanout(values: List[Any], op: str) -> Iterable[Any]:
    """Array fan-out: comparison ops also try individual array elements."""
    out = list(values)
    if op not in {"$size", "$all", "$elemMatch"}:
        for v in values:
            if isinstance(v, list):
                out.extend(v)
    return out


def _single_op(value: Any, op: str, operand: Any, flags: int) -> bool:
    if op == "$eq":
        return _values_equal(value, operand)
    if op == "$ne":
        return not _values_equal(value, operand)
    if op in {"$gt", "$gte", "$lt", "$lte"}:
        return _ordered(value, op, operand)
    if op == "$in":
        _require_list(op, operand)
        return any(_values_equal(value, item) for item in operand)
    if op == "$nin":
        _require_list(op, operand)
        return not any(_values_equal(value, item) for item in operand)
    if op == "$regex":
        return isinstance(value, str) and re.search(str(operand), value, flags) is not None
    if op == "$mod":
        _require_list(op, operand)
        if len(operand) != 2:
            raise QueryError("$mod requires [divisor, remainder]")
        return _is_number(value) and value % operand[0] == operand[1]
    if op == "$size":
        return isinstance(value, list) and len(value) == operand
    if op == "$all":
        _require_list(op, operand)
        return isinstance(value, list) and all(
            any(_values_equal(e, want) for e in value) for want in operand
        )
    if op == "$elemMatch":
        if not isinstance(operand, dict):
            raise QueryError("$elemMatch requires a filter document")
        return isinstance(value, list) and any(
            isinstance(e, dict) and matches(e, operand) for e in value
        )
    raise QueryError(f"unhandled operator: {op}")  # pragma: no cover


def _require_list(op: str, operand: Any) -> None:
    if not isinstance(operand, (list, tuple)):
        raise QueryError(f"{op} requires a list operand")


def _is_number(value: Any) -> bool:
    return isinstance(value, Number) and not isinstance(value, bool)


def _values_equal(a: Any, b: Any) -> bool:
    if _is_number(a) and _is_number(b):
        return float(a) == float(b)
    if type(a) is not type(b):
        if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
            pass
        else:
            return False
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(_values_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(_values_equal(a[k], b[k]) for k in a)
    return bool(a == b)


def _ordered(value: Any, op: str, operand: Any) -> bool:
    """Typed comparison: numbers with numbers, strings with strings."""
    if _is_number(value) and _is_number(operand):
        a, b = float(value), float(operand)
    elif isinstance(value, str) and isinstance(operand, str):
        a, b = value, operand
    else:
        return False
    if op == "$gt":
        return a > b
    if op == "$gte":
        return a >= b
    if op == "$lt":
        return a < b
    return a <= b
