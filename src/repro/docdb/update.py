"""Mongo-style update documents.

Supports ``$set``, ``$unset``, ``$inc``, ``$mul``, ``$min``, ``$max``,
``$rename``, ``$push`` (with ``$each``), ``$addToSet``, ``$pull``,
``$pop``, ``$currentDate`` (logical), and plain replacement documents.
``apply_update`` mutates a *copy* and returns it, so collections can
validate before committing.
"""

from __future__ import annotations

import copy
from numbers import Number
from typing import Any, Callable, Dict

from repro.docdb.document import get_path, set_path, unset_path
from repro.docdb.query import matches, _values_equal  # reuse equality semantics
from repro.errors import QueryError

_FIELD_OPS = frozenset(
    {
        "$set", "$unset", "$inc", "$mul", "$min", "$max", "$rename",
        "$push", "$addToSet", "$pull", "$pop", "$currentDate",
    }
)


def is_update_document(update: Dict[str, Any]) -> bool:
    """True when ``update`` uses operators (vs. a full replacement)."""
    return isinstance(update, dict) and any(k.startswith("$") for k in update)


def apply_update(
    doc: Dict[str, Any], update: Dict[str, Any], *, now_ms: int = 0
) -> Dict[str, Any]:
    """Return a new document with ``update`` applied to ``doc``."""
    if not isinstance(update, dict):
        raise QueryError("update must be a dict")
    out = copy.deepcopy(doc)

    if not is_update_document(update):
        # Replacement: keep the _id, swap everything else.
        replacement = copy.deepcopy(update)
        replacement["_id"] = doc.get("_id", replacement.get("_id"))
        return replacement

    for op, spec in update.items():
        if op not in _FIELD_OPS:
            raise QueryError(f"unknown update operator: {op}")
        if not isinstance(spec, dict):
            raise QueryError(f"{op} requires a field->value document")
        for path, operand in spec.items():
            if path == "_id" and op != "$currentDate":
                raise QueryError("cannot modify _id")
            _apply_field_op(out, op, path, operand, now_ms)
    return out


def _apply_field_op(
    doc: Dict[str, Any], op: str, path: str, operand: Any, now_ms: int
) -> None:
    if op == "$set":
        set_path(doc, path, copy.deepcopy(operand))
        return
    if op == "$unset":
        unset_path(doc, path)
        return
    if op == "$rename":
        if not isinstance(operand, str):
            raise QueryError("$rename target must be a string path")
        found, value = get_path(doc, path)
        if found:
            unset_path(doc, path)
            set_path(doc, operand, value)
        return
    if op == "$currentDate":
        set_path(doc, path, now_ms)
        return

    found, current = get_path(doc, path)

    if op in {"$inc", "$mul"}:
        _require_number(op, operand)
        if not found or current is None:
            base = 0 if op == "$inc" else 0
            set_path(doc, path, base + operand if op == "$inc" else 0)
            return
        _require_number(op, current)
        set_path(doc, path, current + operand if op == "$inc" else current * operand)
        return

    if op in {"$min", "$max"}:
        if not found:
            set_path(doc, path, copy.deepcopy(operand))
            return
        try:
            replace = operand < current if op == "$min" else operand > current
        except TypeError:
            raise QueryError(f"{op}: incomparable types at {path!r}")
        if replace:
            set_path(doc, path, copy.deepcopy(operand))
        return

    if op == "$push":
        values = operand["$each"] if isinstance(operand, dict) and "$each" in operand else [operand]
        if not isinstance(values, list):
            raise QueryError("$each requires a list")
        arr = current if found and isinstance(current, list) else []
        if found and not isinstance(current, list):
            raise QueryError(f"$push target {path!r} is not an array")
        set_path(doc, path, arr + [copy.deepcopy(v) for v in values])
        return

    if op == "$addToSet":
        values = operand["$each"] if isinstance(operand, dict) and "$each" in operand else [operand]
        arr = list(current) if found and isinstance(current, list) else []
        if found and not isinstance(current, list):
            raise QueryError(f"$addToSet target {path!r} is not an array")
        for v in values:
            if not any(_values_equal(e, v) for e in arr):
                arr.append(copy.deepcopy(v))
        set_path(doc, path, arr)
        return

    if op == "$pull":
        if not found or not isinstance(current, list):
            return
        if isinstance(operand, dict) and any(k.startswith("$") for k in operand):
            kept = [e for e in current if not matches({"x": e}, {"x": operand})]
        elif isinstance(operand, dict):
            kept = [e for e in current if not (isinstance(e, dict) and matches(e, operand))]
        else:
            kept = [e for e in current if not _values_equal(e, operand)]
        set_path(doc, path, kept)
        return

    if op == "$pop":
        if operand not in (1, -1):
            raise QueryError("$pop requires 1 or -1")
        if not found or not isinstance(current, list) or not current:
            return
        set_path(doc, path, current[1:] if operand == -1 else current[:-1])
        return

    raise QueryError(f"unhandled update operator: {op}")  # pragma: no cover


def _require_number(op: str, value: Any) -> None:
    if not isinstance(value, Number) or isinstance(value, bool):
        raise QueryError(f"{op} requires numeric operands, got {value!r}")
