"""Persistence: JSONL snapshots and an append-only operation journal.

Two durability mechanisms, matching the trade-off the paper discusses in
§4.2.2 (batched inserts risk losing a destination's worth of samples on
a crash):

* :class:`JsonlStore` — full snapshots, one ``<db>.<collection>.jsonl``
  file per collection.  Database names must not contain ``.`` (the
  separator between database and collection in the filename); dotted
  names are rejected with :class:`~repro.errors.StorageError` instead
  of silently corrupting ``list_databases()``.
* :class:`OperationJournal` — the seed-era JSONL journal, kept for
  backwards compatibility only.  **Deprecated**: it has no checksums,
  no segments, and its replay *skips* (rather than detects) interior
  corruption.  New code uses the checksummed segmented WAL
  (:mod:`repro.docdb.wal`) wired automatically by
  :meth:`repro.docdb.client.DocDBClient.open` and recovered by
  :mod:`repro.docdb.recovery` — see docs/STORAGE.md.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.docdb.database import Database
from repro.errors import StorageError

_SNAPSHOT_SUFFIX = ".jsonl"


class JsonlStore:
    """Snapshot persistence for whole databases."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    @staticmethod
    def _check_db_name(db_name: str) -> None:
        """Dotted database names would corrupt the ``<db>.<coll>.jsonl``
        filename scheme (``list_databases`` splits on the first dot)."""
        if "." in db_name:
            raise StorageError(
                f"database name {db_name!r} must not contain '.' "
                f"(reserved as the db/collection separator in snapshot "
                f"filenames)"
            )

    def _path(self, db_name: str, coll_name: str) -> str:
        return os.path.join(self.directory, f"{db_name}.{coll_name}{_SNAPSHOT_SUFFIX}")

    def save_database(self, db: Database) -> None:
        self._check_db_name(db.name)
        for coll_name in db.list_collection_names():
            coll = db.collection(coll_name)
            tmp = self._path(db.name, coll_name) + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                # Persist full index *specs* (not just names) so compound
                # indexes rebuild with their field order intact.
                index_specs = [
                    {
                        "name": name,
                        "fields": [[f, d] for f, d in info["fields"]],
                        "unique": info["unique"],
                    }
                    for name, info in coll.index_information().items()
                ]
                header = {"__meta__": {"indexes": index_specs}}
                fh.write(json.dumps(header, sort_keys=True) + "\n")
                for doc in coll.all_documents():
                    fh.write(json.dumps(doc, sort_keys=True) + "\n")
            os.replace(tmp, self._path(db.name, coll_name))
        # Collections dropped since the last snapshot must not leave
        # stale ``.jsonl`` files behind — reloading would resurrect them.
        live = set(db.list_collection_names())
        for coll_name in self._collections_of(db.name):
            if coll_name not in live:
                os.remove(self._path(db.name, coll_name))

    def list_databases(self) -> List[str]:
        names = set()
        for fname in os.listdir(self.directory):
            if fname.endswith(_SNAPSHOT_SUFFIX):
                names.add(fname.split(".", 1)[0])
        return sorted(names)

    def _collections_of(self, db_name: str) -> List[str]:
        out = []
        prefix = f"{db_name}."
        for fname in os.listdir(self.directory):
            if fname.startswith(prefix) and fname.endswith(_SNAPSHOT_SUFFIX):
                out.append(fname[len(prefix): -len(_SNAPSHOT_SUFFIX)])
        return sorted(out)

    def load_database(self, db: Database) -> None:
        self._check_db_name(db.name)
        for coll_name in self._collections_of(db.name):
            coll = db.collection(coll_name)
            path = self._path(db.name, coll_name)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    lines = fh.read().splitlines()
            except OSError as exc:
                raise StorageError(f"cannot read snapshot {path}: {exc}") from exc
            if not lines:
                continue
            try:
                header = json.loads(lines[0])
            except json.JSONDecodeError as exc:
                raise StorageError(f"corrupt snapshot header in {path}") from exc
            docs = []
            for i, line in enumerate(lines[1:], start=2):
                if not line.strip():
                    continue
                try:
                    docs.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise StorageError(
                        f"corrupt snapshot line {i} in {path}"
                    ) from exc
            if docs:
                # Trusted bulk load: the dicts are fresh json.loads
                # output, so the defensive deep-copy is skipped.
                coll.load_documents(docs)
            for spec in header.get("__meta__", {}).get("indexes", []):
                if isinstance(spec, str):  # legacy snapshot: bare path
                    coll.create_index(spec)
                else:
                    coll.create_index(
                        [(f, int(d)) for f, d in spec["fields"]],
                        unique=bool(spec.get("unique", False)),
                    )


class OperationJournal:
    """Append-only log of mutating operations with replay support.

    .. deprecated:: kept only for seed compatibility.  No checksums, no
       segment rotation, and :meth:`iter_records` *silently truncates*
       at the first undecodable line — it cannot distinguish a torn
       tail from interior corruption.  Use the automatic WAL attached
       by :meth:`repro.docdb.client.DocDBClient.open` instead.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "a", encoding="utf-8")
        self.appended = 0

    def append(
        self,
        op: str,
        db: str,
        collection: str,
        payload: Dict[str, Any],
    ) -> None:
        if op not in {"insert", "insert_many", "update", "delete"}:
            raise StorageError(f"unknown journal op: {op}")
        record = {"op": op, "db": db, "coll": collection, "payload": payload}
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.appended += 1

    def flush(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "OperationJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- replay ---------------------------------------------------------------

    @staticmethod
    def iter_records(path: str) -> Iterator[Dict[str, Any]]:
        """Yield journal records, stopping cleanly at a torn final line."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line)
                    except json.JSONDecodeError:
                        return  # torn write at crash point: ignore the tail
        except FileNotFoundError:
            return

    @classmethod
    def replay(cls, path: str, client: "Any") -> int:
        """Re-apply journalled operations onto a client; returns count."""
        count = 0
        for record in cls.iter_records(path):
            coll = client[record["db"]][record["coll"]]
            payload = record["payload"]
            if record["op"] == "insert":
                coll.insert_one(payload["document"])
            elif record["op"] == "insert_many":
                coll.insert_many(payload["documents"])
            elif record["op"] == "update":
                coll.update_many(payload["filter"], payload["update"])
            elif record["op"] == "delete":
                coll.delete_many(payload["filter"])
            count += 1
        return count
