"""Query-result caching: LRU + TTL with epoch-based invalidation.

The paper's workload (§4.2.2) is bursty-write / repeated-read: a
measurement campaign batch-inserts one destination's statistics, then
the selection engine answers many user queries against an unchanged
collection until the next batch lands.  :class:`QueryCache` exploits
exactly that shape:

* every collection carries a monotonically increasing **epoch** that is
  bumped once per *write operation* (once per ``insert_many`` batch,
  not once per document — see ``Collection._bump_epoch``);
* cache entries remember the epoch they were computed under and are
  dropped on first access after any write (epoch mismatch);
* an optional TTL bounds staleness against out-of-band clock-coupled
  reads (``since_ms`` windows), and an LRU bound caps memory.

Keys are produced by :func:`freeze`, which converts a filter/pipeline
structure into nested hashable tuples.  Structures containing
non-freezable objects (e.g. a ``$lookup`` stage holding a live
``Collection``) yield ``None``, which callers treat as *uncacheable*.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

_SCALARS = (str, int, float, bool, type(None), bytes)


def freeze(obj: Any) -> Optional[Hashable]:
    """Deterministic hashable form of a query structure (None = uncacheable).

    Dicts become ``("d", ((key, frozen_value), ...))`` sorted by key,
    lists/tuples become ``("l", (...))``; scalars pass through tagged by
    type so ``1`` and ``True`` and ``1.0`` stay distinct cache keys.
    """
    if isinstance(obj, bool):
        return ("b", obj)
    if isinstance(obj, _SCALARS):
        return ("v", type(obj).__name__, obj)
    if isinstance(obj, dict):
        items = []
        for key in sorted(obj, key=repr):
            frozen = freeze(obj[key])
            if frozen is None:
                return None
            items.append((key, frozen))
        return ("d", tuple(items))
    if isinstance(obj, (list, tuple)):
        items = []
        for element in obj:
            frozen = freeze(element)
            if frozen is None:
                return None
            items.append(frozen)
        return ("l", tuple(items))
    if isinstance(obj, (set, frozenset)):
        items = []
        for element in obj:
            frozen = freeze(element)
            if frozen is None:
                return None
            items.append(frozen)
        return ("s", tuple(sorted(items, key=repr)))
    return None  # live objects (collections, callables, ...) — uncacheable


class QueryCache:
    """Bounded (LRU), time-bounded (TTL), epoch-invalidated result cache.

    Not internally locked: the owning :class:`~repro.docdb.collection.
    Collection` serialises access under its own RLock.
    """

    def __init__(
        self,
        *,
        capacity: int = 256,
        ttl_s: Optional[float] = 60.0,
        time_source: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self._now = time_source
        # key -> (epoch, inserted_at, value)
        self._entries: "OrderedDict[Hashable, Tuple[int, float, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, epoch: int) -> Optional[Any]:
        """Cached value for ``key`` at ``epoch``; None on miss/stale."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        cached_epoch, inserted_at, value = entry
        if cached_epoch != epoch or (
            self.ttl_s is not None and self._now() - inserted_at > self.ttl_s
        ):
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, epoch: int, value: Any) -> None:
        """Store ``value`` computed at ``epoch``, evicting LRU overflow."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (epoch, self._now(), value)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        n = len(self._entries)
        self._entries.clear()
        self.invalidations += n
        return n

    def info(self) -> Dict[str, Any]:
        """JSON-friendly counter snapshot (for stats/metrics folding)."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "ttl_s": self.ttl_s,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
