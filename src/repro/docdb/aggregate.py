"""A subset of the Mongo aggregation pipeline.

Stages: ``$match``, ``$project``, ``$group``, ``$sort``, ``$limit``,
``$skip``, ``$unwind``, ``$count``, ``$addFields``, ``$lookup`` (left
outer equality join).  Group accumulators: ``$sum``,
``$avg``, ``$min``, ``$max``, ``$push``, ``$addToSet``, ``$first``,
``$last``.  Expressions are field references (``"$field.path"``) or
constants — enough for the analysis queries of the reproduction
(e.g. average latency per ISD set, Fig 6).
"""

from __future__ import annotations

import copy
from numbers import Number
from typing import Any, Dict, List, Tuple

from repro.docdb.document import get_path
from repro.docdb.query import matches
from repro.errors import QueryError

_ACCUMULATORS = frozenset(
    {"$sum", "$avg", "$min", "$max", "$push", "$addToSet", "$first", "$last"}
)

#: Stages the pipeline executor implements (kept in sync with
#: ``run_pipeline``'s dispatch; docs/DATABASE.md documents each one).
SUPPORTED_STAGES = frozenset(
    {
        "$match", "$project", "$group", "$sort", "$limit", "$skip",
        "$unwind", "$count", "$addFields", "$lookup",
    }
)


def split_leading_match(
    pipeline: List[Dict[str, Any]]
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Split a pipeline into (leading ``$match`` filter, remaining stages).

    The filter is what :meth:`~repro.docdb.collection.Collection.
    aggregate` pushes down into the query planner so a leading match can
    ride an index instead of forcing a full collection scan.  Returns an
    empty filter when the pipeline does not start with ``$match``.
    """
    if (
        pipeline
        and isinstance(pipeline[0], dict)
        and len(pipeline[0]) == 1
        and "$match" in pipeline[0]
        and isinstance(pipeline[0]["$match"], dict)
    ):
        return pipeline[0]["$match"], list(pipeline[1:])
    return {}, list(pipeline)


def run_pipeline(
    docs: List[Dict[str, Any]], pipeline: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Run ``pipeline`` over ``docs`` and return the resulting documents."""
    current = docs
    for stage in pipeline:
        if not isinstance(stage, dict) or len(stage) != 1:
            raise QueryError(f"each pipeline stage must have exactly one key: {stage}")
        op, spec = next(iter(stage.items()))
        if op == "$match":
            current = [d for d in current if matches(d, spec)]
        elif op == "$project":
            current = [_project_stage(d, spec) for d in current]
        elif op == "$group":
            current = _group_stage(current, spec)
        elif op == "$sort":
            current = _sort_stage(current, spec)
        elif op == "$limit":
            current = current[: int(spec)]
        elif op == "$skip":
            current = current[int(spec):]
        elif op == "$unwind":
            current = _unwind_stage(current, spec)
        elif op == "$count":
            current = [{str(spec): len(current)}]
        elif op == "$addFields":
            current = [_add_fields(d, spec) for d in current]
        elif op == "$lookup":
            current = _lookup_stage(current, spec)
        else:
            raise QueryError(f"unsupported pipeline stage: {op}")
    return current


def evaluate(doc: Dict[str, Any], expr: Any) -> Any:
    """Evaluate an expression against a document."""
    if isinstance(expr, str) and expr.startswith("$"):
        found, value = get_path(doc, expr[1:])
        return value if found else None
    if isinstance(expr, dict):
        return {k: evaluate(doc, v) for k, v in expr.items()}
    if isinstance(expr, list):
        return [evaluate(doc, e) for e in expr]
    return expr


def _project_stage(doc: Dict[str, Any], spec: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    keep_id = spec.get("_id", 1)
    for key, expr in spec.items():
        if key == "_id":
            continue
        if expr in (1, True):
            found, value = get_path(doc, key)
            if found:
                out[key] = copy.deepcopy(value)
        elif expr in (0, False):
            continue
        else:
            out[key] = evaluate(doc, expr)
    if keep_id in (1, True) and "_id" in doc:
        out["_id"] = doc["_id"]
    return out


def _group_stage(
    docs: List[Dict[str, Any]], spec: Dict[str, Any]
) -> List[Dict[str, Any]]:
    if "_id" not in spec:
        raise QueryError("$group requires an _id expression")
    key_expr = spec["_id"]
    groups: Dict[str, Tuple[Any, List[Dict[str, Any]]]] = {}
    for doc in docs:
        key_value = evaluate(doc, key_expr)
        bucket = groups.setdefault(repr(key_value), (key_value, []))
        bucket[1].append(doc)

    out: List[Dict[str, Any]] = []
    for key_value, members in groups.values():
        result: Dict[str, Any] = {"_id": key_value}
        for field_name, acc_spec in spec.items():
            if field_name == "_id":
                continue
            if not isinstance(acc_spec, dict) or len(acc_spec) != 1:
                raise QueryError(f"bad accumulator for {field_name!r}: {acc_spec}")
            acc, expr = next(iter(acc_spec.items()))
            if acc not in _ACCUMULATORS:
                raise QueryError(f"unsupported accumulator: {acc}")
            result[field_name] = _accumulate(acc, expr, members)
        out.append(result)
    return out


def _accumulate(acc: str, expr: Any, members: List[Dict[str, Any]]) -> Any:
    values = [evaluate(d, expr) for d in members]
    if acc == "$push":
        return values
    if acc == "$addToSet":
        out: List[Any] = []
        for v in values:
            if v not in out:
                out.append(v)
        return out
    if acc == "$first":
        return values[0] if values else None
    if acc == "$last":
        return values[-1] if values else None
    numeric = [v for v in values if isinstance(v, Number) and not isinstance(v, bool)]
    if acc == "$sum":
        return sum(numeric) if numeric else 0
    if acc == "$avg":
        return sum(numeric) / len(numeric) if numeric else None
    if acc == "$min":
        return min(numeric) if numeric else None
    if acc == "$max":
        return max(numeric) if numeric else None
    raise QueryError(f"unhandled accumulator: {acc}")  # pragma: no cover


def _sort_stage(
    docs: List[Dict[str, Any]], spec: Dict[str, int]
) -> List[Dict[str, Any]]:
    from repro.docdb.collection import _sorted_docs

    return _sorted_docs(docs, list(spec.items()))


def _unwind_stage(docs: List[Dict[str, Any]], spec: Any) -> List[Dict[str, Any]]:
    path = spec if isinstance(spec, str) else spec.get("path", "")
    if not path.startswith("$"):
        raise QueryError("$unwind path must start with '$'")
    field_path = path[1:]
    out: List[Dict[str, Any]] = []
    for doc in docs:
        found, value = get_path(doc, field_path)
        if not found or value is None:
            continue
        if not isinstance(value, list):
            out.append(doc)
            continue
        for element in value:
            clone = copy.deepcopy(doc)
            from repro.docdb.document import set_path

            set_path(clone, field_path, element)
            out.append(clone)
    return out


def _add_fields(doc: Dict[str, Any], spec: Dict[str, Any]) -> Dict[str, Any]:
    """$addFields: evaluate expressions and merge them into the document."""
    out = copy.deepcopy(doc)
    from repro.docdb.document import set_path

    for path, expr in spec.items():
        set_path(out, path, evaluate(doc, expr))
    return out


def _lookup_stage(
    docs: List[Dict[str, Any]], spec: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """$lookup: left outer equality join against another collection.

    ``from`` may be a :class:`~repro.docdb.collection.Collection` object
    or a plain list of documents; ``localField``/``foreignField`` use
    dotted paths; matches land as an array under ``as``.
    """
    for key in ("from", "localField", "foreignField", "as"):
        if key not in spec:
            raise QueryError(f"$lookup requires {key!r}")
    source = spec["from"]
    foreign_docs = source.find() if hasattr(source, "find") else list(source)
    local_field = str(spec["localField"])
    foreign_field = str(spec["foreignField"])
    target = str(spec["as"])

    # Index the foreign side once (hashable keys only).
    by_key: Dict[Any, List[Dict[str, Any]]] = {}
    for fdoc in foreign_docs:
        found, value = get_path(fdoc, foreign_field)
        key = repr(value) if found else repr(None)
        by_key.setdefault(key, []).append(fdoc)

    out: List[Dict[str, Any]] = []
    for doc in docs:
        found, value = get_path(doc, local_field)
        key = repr(value) if found else repr(None)
        joined = copy.deepcopy(doc)
        from repro.docdb.document import set_path

        set_path(joined, target, copy.deepcopy(by_key.get(key, [])))
        out.append(joined)
    return out
