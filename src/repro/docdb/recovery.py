"""Crash recovery: checkpoints, snapshot generations, WAL replay.

Durable-directory layout (see docs/STORAGE.md for the full lifecycle)::

    <dir>/
      CHECKPOINT                  atomically-replaced JSON pointer:
                                  {"checkpoint_lsn": N, "generation": "gen-..."}
      snapshots/gen-<lsn>/        one JSONL snapshot generation per
                                  checkpoint (``JsonlStore`` files)
      wal/wal-<start-lsn>.log     checksummed WAL segments

The commit protocol makes every step crash-safe:

1. a **checkpoint** writes a *new* generation directory (never touching
   the previous one), then atomically replaces ``CHECKPOINT`` — the
   flip is the commit point; a crash anywhere before it leaves the old
   checkpoint fully intact;
2. only after the flip are older generations and WAL segments at or
   below the checkpoint LSN garbage-collected — a crash mid-GC leaves
   harmless extra files that the next checkpoint removes;
3. **recovery** loads the generation named by ``CHECKPOINT``, then
   replays every WAL record with LSN above the checkpoint, verifying
   checksums and LSN continuity as it goes.  A torn tail (writer died
   mid-record) is truncated; interior corruption raises
   :class:`~repro.errors.WalCorruptionError` naming the LSN.

Recovery is idempotent: recovering twice yields byte-identical state,
because replay is a pure function of the on-disk bytes and the only
mutation (torn-tail truncation) is itself idempotent.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.docdb.storage import JsonlStore
from repro.docdb.wal import (
    OP_CREATE_INDEX,
    OP_DELETE,
    OP_DROP_COLLECTION,
    OP_DROP_DATABASE,
    OP_DROP_INDEX,
    OP_INSERT,
    OP_INSERT_MANY,
    OP_UPDATE,
    WalRecord,
    list_segments,
    read_segment,
)
from repro.errors import StorageError, WalCorruptionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.docdb.client import DocDBClient

#: Names inside a durable directory.
CHECKPOINT_FILE = "CHECKPOINT"
SNAPSHOT_DIR = "snapshots"
WAL_DIR = "wal"
_GEN_PREFIX = "gen-"


def generation_name(checkpoint_lsn: int) -> str:
    return f"{_GEN_PREFIX}{checkpoint_lsn:016d}"


# -- checkpoint pointer ------------------------------------------------------


@dataclass(frozen=True)
class Checkpoint:
    """The durable checkpoint pointer (LSN + snapshot generation)."""

    checkpoint_lsn: int = 0
    generation: Optional[str] = None


def read_checkpoint(directory: str) -> Checkpoint:
    """Parse ``<dir>/CHECKPOINT`` (missing file = the zero checkpoint)."""
    path = os.path.join(directory, CHECKPOINT_FILE)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            raw = fh.read()
    except FileNotFoundError:
        return Checkpoint()
    try:
        doc = json.loads(raw)
        lsn = int(doc["checkpoint_lsn"])
        generation = doc.get("generation")
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"corrupt checkpoint file {path}: {exc}") from exc
    if lsn < 0:
        raise StorageError(f"corrupt checkpoint file {path}: negative LSN")
    return Checkpoint(checkpoint_lsn=lsn, generation=generation)


def write_checkpoint(directory: str, checkpoint: Checkpoint) -> None:
    """Atomically replace the checkpoint pointer (tmp + fsync + rename)."""
    path = os.path.join(directory, CHECKPOINT_FILE)
    tmp = path + ".tmp"
    payload = json.dumps(
        {
            "checkpoint_lsn": checkpoint.checkpoint_lsn,
            "generation": checkpoint.generation,
            "version": 1,
        },
        sort_keys=True,
    )
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(payload + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def list_generations(directory: str) -> List[str]:
    """Snapshot generation directory names, oldest first."""
    snap_root = os.path.join(directory, SNAPSHOT_DIR)
    try:
        names = os.listdir(snap_root)
    except FileNotFoundError:
        return []
    return sorted(n for n in names if n.startswith(_GEN_PREFIX))


def remove_stale_generations(directory: str, keep: Optional[str]) -> int:
    """Delete every snapshot generation except ``keep``; returns count."""
    removed = 0
    for name in list_generations(directory):
        if name == keep:
            continue
        shutil.rmtree(os.path.join(directory, SNAPSHOT_DIR, name))
        removed += 1
    return removed


# -- recovery ----------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What :class:`RecoveryManager.recover` found and did."""

    directory: str
    checkpoint_lsn: int = 0
    generation: Optional[str] = None
    last_lsn: int = 0
    records_replayed: int = 0
    records_skipped: int = 0  # at or below the checkpoint (pre-GC leftovers)
    segments_scanned: int = 0
    torn_bytes_truncated: int = 0
    databases_recovered: List[str] = field(default_factory=list)
    collections_recovered: int = 0

    def format_text(self, *, indent: str = "  ") -> str:
        lines = [
            f"{indent}checkpoint lsn {self.checkpoint_lsn} "
            f"(generation: {self.generation or 'none'})",
            f"{indent}replayed {self.records_replayed} WAL record(s) over "
            f"{self.segments_scanned} segment(s), last lsn {self.last_lsn}",
        ]
        if self.torn_bytes_truncated:
            lines.append(
                f"{indent}torn tail truncated "
                f"({self.torn_bytes_truncated} bytes rolled back)"
            )
        lines.append(
            f"{indent}{len(self.databases_recovered)} database(s), "
            f"{self.collections_recovered} collection(s) recovered"
        )
        return "\n".join(lines)


class RecoveryManager:
    """Rebuilds a consistent :class:`DocDBClient` from a durable directory.

    ``recover()`` is safe to call on an empty directory (yields an empty
    client), after a clean shutdown, and after any crash the WAL design
    covers (torn record, mid-batch kill, post-rotation pre-checkpoint).
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory

    # -- public API ----------------------------------------------------------

    def recover(self) -> Tuple["DocDBClient", RecoveryReport]:
        """Load snapshot + replay WAL; returns (client, report).

        The returned client is *volatile* (no WAL attached) — the caller
        (:meth:`DocDBClient.open`) attaches a fresh
        :class:`~repro.docdb.wal.WalWriter` continuing at
        ``report.last_lsn + 1``.
        """
        from repro.docdb.client import DocDBClient

        os.makedirs(self.directory, exist_ok=True)
        checkpoint = read_checkpoint(self.directory)
        report = RecoveryReport(
            directory=self.directory,
            checkpoint_lsn=checkpoint.checkpoint_lsn,
            generation=checkpoint.generation,
            last_lsn=checkpoint.checkpoint_lsn,
        )

        client = DocDBClient()
        if checkpoint.generation is not None:
            gen_dir = os.path.join(
                self.directory, SNAPSHOT_DIR, checkpoint.generation
            )
            if not os.path.isdir(gen_dir):
                raise StorageError(
                    f"checkpoint names missing snapshot generation "
                    f"{checkpoint.generation!r} under {self.directory}"
                )
            store = JsonlStore(gen_dir)
            for db_name in store.list_databases():
                store.load_database(client.database(db_name))

        self._replay_wal(client, checkpoint.checkpoint_lsn, report)
        self._rebuild_caches(client, report)
        return client, report

    # -- WAL replay ----------------------------------------------------------

    def _replay_wal(
        self, client: "DocDBClient", checkpoint_lsn: int, report: RecoveryReport
    ) -> None:
        wal_dir = os.path.join(self.directory, WAL_DIR)
        segments = list_segments(wal_dir)
        if not segments:
            return
        first_start = segments[0][0]
        if first_start > checkpoint_lsn + 1:
            raise WalCorruptionError(
                f"WAL gap: checkpoint lsn {checkpoint_lsn} but the oldest "
                f"segment starts at lsn {first_start} — records "
                f"{checkpoint_lsn + 1}..{first_start - 1} are missing",
                lsn=checkpoint_lsn + 1,
            )
        expected_start = first_start
        for i, (start_lsn, path) in enumerate(segments):
            if start_lsn != expected_start:
                raise WalCorruptionError(
                    f"WAL gap between segments: expected a segment starting "
                    f"at lsn {expected_start}, found "
                    f"{os.path.basename(path)}",
                    lsn=expected_start,
                )
            is_last = i == len(segments) - 1
            scan = read_segment(path, start_lsn, is_last=is_last)
            report.segments_scanned += 1
            for record in scan.records:
                if record.lsn <= checkpoint_lsn:
                    report.records_skipped += 1
                    continue
                self._apply(client, record)
                report.records_replayed += 1
                report.last_lsn = record.lsn
            if scan.torn_at is not None:
                # Roll the un-committed tail back on disk so the next
                # writer/recovery sees a clean log (idempotent).
                with open(path, "r+b") as fh:
                    fh.truncate(scan.torn_at)
                    fh.flush()
                    os.fsync(fh.fileno())
                report.torn_bytes_truncated += scan.torn_bytes
            expected_start = start_lsn + len(scan.records)

    @staticmethod
    def _apply(client: "DocDBClient", record: WalRecord) -> None:
        """Re-apply one logged operation (WAL detached, so no re-logging)."""
        if record.op == OP_DROP_DATABASE:
            client.drop_database(record.db)
            return
        db = client.database(record.db)
        if record.op == OP_DROP_COLLECTION:
            db.drop_collection(record.coll or "")
            return
        coll = db.collection(record.coll or "")
        payload = record.payload
        if record.op == OP_INSERT:
            # load_documents: same semantics, minus the defensive
            # deep-copy (the payload is fresh json.loads output).
            coll.load_documents([payload["document"]])
        elif record.op == OP_INSERT_MANY:
            coll.load_documents(payload["documents"])
        elif record.op == OP_UPDATE:
            coll.replay_update(payload["docs"])
        elif record.op == OP_DELETE:
            coll.replay_delete(payload["ids"])
        elif record.op == OP_CREATE_INDEX:
            coll.create_index(
                [(f, int(d)) for f, d in payload["fields"]],
                unique=bool(payload.get("unique", False)),
            )
        elif record.op == OP_DROP_INDEX:
            coll.drop_index(payload["name"])
        else:  # pragma: no cover - encode/scan already reject unknown ops
            raise StorageError(f"cannot replay unknown WAL op {record.op!r}")

    # -- post-replay consistency ---------------------------------------------

    @staticmethod
    def _rebuild_caches(client: "DocDBClient", report: RecoveryReport) -> None:
        """Bump every epoch and drop caches: planner state is rebuilt.

        Replay already rebuilt the indexes (snapshot headers + replayed
        ``create_index`` records); the final epoch bump guarantees no
        pre-crash cached answer — in this process or a snapshot-carried
        one — can ever be served against recovered state.
        """
        for db_name in client.list_database_names():
            db = client.database(db_name)
            report.databases_recovered.append(db_name)
            for coll_name in db.list_collection_names():
                coll = db[coll_name]
                coll.cache.clear()
                coll._bump_epoch()
                report.collections_recovered += 1


# -- checkpoint / compaction -------------------------------------------------


@dataclass(frozen=True)
class CheckpointResult:
    """Outcome of one checkpoint/compaction pass."""

    checkpoint_lsn: int
    generation: Optional[str]
    skipped: bool
    segments_removed: int = 0
    generations_removed: int = 0


def run_checkpoint(client: "DocDBClient") -> CheckpointResult:
    """Snapshot ``client`` and advance its checkpoint (durable mode only).

    Protocol (each step crash-safe, see module docstring): sync the WAL,
    write a fresh snapshot generation, atomically flip ``CHECKPOINT``,
    then garbage-collect older generations and fully-covered WAL
    segments.  When nothing was written since the last checkpoint the
    pass degenerates to pure GC (``skipped=True``).

    Not safe against *concurrent writers*: call it from a quiesced
    point — the scheduler's between-rounds hook
    (:meth:`DocDBClient.compaction_hook`) or campaign teardown.
    """
    wal = client.wal
    directory = client.durable_dir
    if wal is None or directory is None:
        raise StorageError("checkpoint requires a durable client (DocDBClient.open)")
    lsn = wal.sync()
    current = read_checkpoint(directory)
    if lsn == current.checkpoint_lsn and current.generation is not None:
        # Nothing new to persist; just clean up pre-crash leftovers.
        gens = remove_stale_generations(directory, current.generation)
        segs = wal.remove_segments_below(current.checkpoint_lsn)
        return CheckpointResult(
            checkpoint_lsn=lsn,
            generation=current.generation,
            skipped=True,
            segments_removed=segs,
            generations_removed=gens,
        )
    generation = generation_name(lsn)
    gen_dir = os.path.join(directory, SNAPSHOT_DIR, generation)
    if os.path.isdir(gen_dir):
        # Leftover from a checkpoint that crashed before the CHECKPOINT
        # flip: never the live generation (that case returned above).
        shutil.rmtree(gen_dir)
    store = JsonlStore(gen_dir)
    for db_name in client.list_database_names():
        store.save_database(client.database(db_name))
    write_checkpoint(
        directory, Checkpoint(checkpoint_lsn=lsn, generation=generation)
    )
    generations_removed = remove_stale_generations(directory, generation)
    # Seal the current segment so it becomes GC-able too: everything in
    # it is now covered by the snapshot, and the next recovery should
    # not have to scan-and-skip pre-checkpoint records.
    wal.rotate_if_dirty()
    segments_removed = wal.remove_segments_below(lsn)
    return CheckpointResult(
        checkpoint_lsn=lsn,
        generation=generation,
        skipped=False,
        segments_removed=segments_removed,
        generations_removed=generations_removed,
    )
