"""An embedded MongoDB-equivalent document store.

The paper stores all measurements in MongoDB (§4.2.1) — three
collections (``availableServers``, ``paths``, ``paths_stats``), compound
string ids, heterogeneous documents, and later queries for path
selection.  This package provides the same surface offline:

* Mongo-style filter documents (``$gt``, ``$in``, ``$regex``, ``$or``,
  dotted paths, ...) and update operators (``$set``, ``$inc``,
  ``$push``, ...),
* single-field **and compound** indexes with cost-based query planning
  (selectivity estimates from index cardinality statistics) and
  ``Collection.explain()`` plan documents,
* an LRU+TTL query-result cache with epoch-based invalidation (one
  epoch bump per write *operation*, so batched campaign flushes
  invalidate once per batch),
* an aggregation-pipeline subset (``$match``, ``$group``, ``$sort``,
  ``$unwind``, ...) with leading-``$match`` index pushdown,
* JSONL snapshot persistence plus an append-only operation journal,
* certificate-based write access control and signed-document
  verification (the paper's §4.1.4 security design).

See ``docs/DATABASE.md`` for the complete query-language reference.
"""

from repro.docdb.document import new_object_id, normalize_document
from repro.docdb.query import matches, supported_operators
from repro.docdb.update import apply_update
from repro.docdb.collection import Collection, InsertManyResult, UpdateResult, DeleteResult
from repro.docdb.index import CompoundIndex, FieldIndex
from repro.docdb.planner import QueryPlanner, format_plan
from repro.docdb.cache import QueryCache, freeze
from repro.docdb.database import Database
from repro.docdb.client import DocDBClient
from repro.docdb.storage import JsonlStore, OperationJournal
from repro.docdb.wal import WAL_OPS, WalRecord, WalWriter
from repro.docdb.recovery import (
    Checkpoint,
    CheckpointResult,
    RecoveryManager,
    RecoveryReport,
    run_checkpoint,
)
from repro.docdb.auth import AccessController, Role, SignedDocumentVerifier

__all__ = [
    "new_object_id",
    "normalize_document",
    "matches",
    "supported_operators",
    "apply_update",
    "Collection",
    "InsertManyResult",
    "UpdateResult",
    "DeleteResult",
    "FieldIndex",
    "CompoundIndex",
    "QueryPlanner",
    "QueryCache",
    "format_plan",
    "freeze",
    "Database",
    "DocDBClient",
    "JsonlStore",
    "OperationJournal",
    "WalWriter",
    "WalRecord",
    "WAL_OPS",
    "RecoveryManager",
    "RecoveryReport",
    "Checkpoint",
    "CheckpointResult",
    "run_checkpoint",
    "AccessController",
    "Role",
    "SignedDocumentVerifier",
]
