"""An embedded MongoDB-equivalent document store.

The paper stores all measurements in MongoDB (§4.2.1) — three
collections (``availableServers``, ``paths``, ``paths_stats``), compound
string ids, heterogeneous documents, and later queries for path
selection.  This package provides the same surface offline:

* Mongo-style filter documents (``$gt``, ``$in``, ``$regex``, ``$or``,
  dotted paths, ...) and update operators (``$set``, ``$inc``,
  ``$push``, ...),
* single-field indexes with automatic query planning,
* an aggregation-pipeline subset (``$match``, ``$group``, ``$sort``,
  ``$unwind``, ...),
* JSONL snapshot persistence plus an append-only operation journal,
* certificate-based write access control and signed-document
  verification (the paper's §4.1.4 security design).
"""

from repro.docdb.document import new_object_id, normalize_document
from repro.docdb.query import matches
from repro.docdb.update import apply_update
from repro.docdb.collection import Collection, InsertManyResult, UpdateResult, DeleteResult
from repro.docdb.database import Database
from repro.docdb.client import DocDBClient
from repro.docdb.storage import JsonlStore, OperationJournal
from repro.docdb.auth import AccessController, Role, SignedDocumentVerifier

__all__ = [
    "new_object_id",
    "normalize_document",
    "matches",
    "apply_update",
    "Collection",
    "InsertManyResult",
    "UpdateResult",
    "DeleteResult",
    "Database",
    "DocDBClient",
    "JsonlStore",
    "OperationJournal",
    "AccessController",
    "Role",
    "SignedDocumentVerifier",
]
