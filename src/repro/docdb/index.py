"""Single-field indexes with equality, membership and range support.

An index maps a dotted field path to the set of document ids holding
each value.  Range queries use a lazily (re)built sorted key list, which
keeps inserts O(1) amortised while campaigns stream measurements in,
and pays the sort only when a range scan actually happens — the access
pattern of the paper's workflow (bulk writes, occasional selection
queries).
"""

from __future__ import annotations

import bisect
from numbers import Number
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.docdb.document import iter_path_values

_MISSING = object()


def _index_key(value: Any) -> Any:
    """Normalize a value into a hashable index key (None for missing)."""
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, Number):
        return ("n", float(value))
    if isinstance(value, str):
        return ("s", value)
    if value is None:
        return ("z",)
    # Arrays/objects are not range-indexable; hash their repr for equality.
    return ("o", repr(value))


class FieldIndex:
    """Inverted index over one dotted field path."""

    def __init__(self, field: str, *, unique: bool = False) -> None:
        self.field = field
        self.unique = unique
        self._by_key: Dict[Any, Set[Any]] = {}
        self._sorted_numbers: Optional[List[Tuple[float, Any]]] = None
        self._sorted_strings: Optional[List[Tuple[str, Any]]] = None

    # -- maintenance ---------------------------------------------------------

    def _keys_of(self, doc: Dict[str, Any]) -> List[Any]:
        values = list(iter_path_values(doc, self.field))
        keys: List[Any] = []
        for v in values:
            if isinstance(v, list):
                keys.extend(_index_key(e) for e in v)
            else:
                keys.append(_index_key(v))
        return keys or [("z",)]

    def add(self, doc: Dict[str, Any]) -> None:
        doc_id = doc["_id"]
        for key in self._keys_of(doc):
            self._by_key.setdefault(key, set()).add(doc_id)
        self._invalidate_sorted()

    def remove(self, doc: Dict[str, Any]) -> None:
        doc_id = doc["_id"]
        for key in self._keys_of(doc):
            bucket = self._by_key.get(key)
            if bucket is not None:
                bucket.discard(doc_id)
                if not bucket:
                    del self._by_key[key]
        self._invalidate_sorted()

    def _invalidate_sorted(self) -> None:
        self._sorted_numbers = None
        self._sorted_strings = None

    def clear(self) -> None:
        self._by_key.clear()
        self._invalidate_sorted()

    # -- lookups ---------------------------------------------------------------

    def ids_equal(self, value: Any) -> Set[Any]:
        return set(self._by_key.get(_index_key(value), ()))

    def ids_in(self, values: Iterable[Any]) -> Set[Any]:
        out: Set[Any] = set()
        for v in values:
            out |= self.ids_equal(v)
        return out

    def ids_range(
        self,
        *,
        gt: Any = _MISSING,
        gte: Any = _MISSING,
        lt: Any = _MISSING,
        lte: Any = _MISSING,
    ) -> Set[Any]:
        """Ids whose indexed value falls in the given (typed) range."""
        bounds = [b for b in (gt, gte, lt, lte) if b is not _MISSING]
        if not bounds:
            return set().union(*self._by_key.values()) if self._by_key else set()
        want_str = all(isinstance(b, str) for b in bounds)
        entries = self._sorted(strings=want_str)
        lo, hi = 0, len(entries)
        keys = [e[0] for e in entries]
        if gte is not _MISSING:
            lo = bisect.bisect_left(keys, gte if want_str else float(gte))
        if gt is not _MISSING:
            lo = max(lo, bisect.bisect_right(keys, gt if want_str else float(gt)))
        if lte is not _MISSING:
            hi = bisect.bisect_right(keys, lte if want_str else float(lte))
        if lt is not _MISSING:
            hi = min(hi, bisect.bisect_left(keys, lt if want_str else float(lt)))
        out: Set[Any] = set()
        for _, ids in entries[lo:hi]:
            out |= ids
        return out

    def _sorted(self, *, strings: bool) -> List[Tuple[Any, Set[Any]]]:
        tag = "s" if strings else "n"
        cached = self._sorted_strings if strings else self._sorted_numbers
        if cached is None:
            cached = sorted(
                ((key[1], ids) for key, ids in self._by_key.items() if key[0] == tag),
                key=lambda pair: pair[0],
            )
            if strings:
                self._sorted_strings = cached
            else:
                self._sorted_numbers = cached
        return cached

    def distinct_keys(self) -> List[Any]:
        return sorted(self._by_key, key=repr)

    def __len__(self) -> int:
        return len(self._by_key)
