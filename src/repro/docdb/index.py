"""Single-field and compound indexes with equality, membership and range
support.

A :class:`FieldIndex` maps a dotted field path to the set of document
ids holding each value.  A :class:`CompoundIndex` maps an ordered tuple
of field paths to ids, supporting Mongo-style *leading prefix* use: a
query may pin an equality value for the first ``j`` fields and then
range- or membership-restrict field ``j+1``.

Range queries use lazily (re)built sorted key lists, which keeps
inserts O(1) amortised while campaigns stream measurements in, and pays
the sort only when a range scan actually happens — the access pattern
of the paper's workflow (bulk writes, occasional selection queries).

Both index types expose *cardinality statistics* (distinct keys, total
entries, estimated bucket sizes) that the query planner
(:mod:`repro.docdb.planner`) uses to score candidate plans without
materialising their result sets.
"""

from __future__ import annotations

import bisect
import itertools
from numbers import Number
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.docdb.document import iter_path_values

_MISSING = object()

#: Sentinel key component sorting after every real component.  Real
#: components are tuples whose first element is a type tag in
#: ``{"b", "n", "o", "s", "z"}``; ``"~"`` sorts after all of them.
_AFTER: Tuple[str, ...] = ("~",)

#: Cap on the per-document key fan-out of a compound index over array
#: fields (cartesian product of element keys).  Beyond this the document
#: is indexed under a single opaque key and always re-checked by the
#: match stage.
_MAX_COMPOUND_FANOUT = 64


def _index_key(value: Any) -> Any:
    """Normalize a value into a hashable index key (``("z",)`` for missing)."""
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, Number):
        return ("n", float(value))
    if isinstance(value, str):
        return ("s", value)
    if value is None:
        return ("z",)
    # Arrays/objects are not range-indexable; hash their repr for equality.
    return ("o", repr(value))


def _field_keys(doc: Dict[str, Any], field: str) -> List[Any]:
    """All index keys one document contributes for one field path."""
    values = list(iter_path_values(doc, field))
    keys: List[Any] = []
    for v in values:
        if isinstance(v, list):
            keys.extend(_index_key(e) for e in v)
        else:
            keys.append(_index_key(v))
    return keys or [("z",)]


class FieldIndex:
    """Inverted index over one dotted field path."""

    def __init__(self, field: str, *, unique: bool = False) -> None:
        self.field = field
        self.unique = unique
        self._by_key: Dict[Any, Set[Any]] = {}
        self._n_entries = 0
        self._sorted_numbers: Optional[List[Tuple[float, Any]]] = None
        self._sorted_strings: Optional[List[Tuple[str, Any]]] = None

    #: Uniform planner surface shared with :class:`CompoundIndex`.
    @property
    def fields(self) -> Tuple[str, ...]:
        return (self.field,)

    # -- maintenance ---------------------------------------------------------

    def _keys_of(self, doc: Dict[str, Any]) -> List[Any]:
        return _field_keys(doc, self.field)

    def add(self, doc: Dict[str, Any]) -> None:
        doc_id = doc["_id"]
        for key in self._keys_of(doc):
            self._by_key.setdefault(key, set()).add(doc_id)
            self._n_entries += 1
        self._invalidate_sorted()

    def remove(self, doc: Dict[str, Any]) -> None:
        doc_id = doc["_id"]
        for key in self._keys_of(doc):
            bucket = self._by_key.get(key)
            if bucket is not None:
                bucket.discard(doc_id)
                self._n_entries -= 1
                if not bucket:
                    del self._by_key[key]
        self._invalidate_sorted()

    def _invalidate_sorted(self) -> None:
        self._sorted_numbers = None
        self._sorted_strings = None

    def clear(self) -> None:
        self._by_key.clear()
        self._n_entries = 0
        self._invalidate_sorted()

    # -- cardinality statistics (planner inputs) -----------------------------

    @property
    def n_keys(self) -> int:
        """Distinct indexed keys."""
        return len(self._by_key)

    @property
    def n_entries(self) -> int:
        """Total (key, id) entries — ≥ document count on array fields."""
        return self._n_entries

    def avg_bucket(self) -> float:
        """Average ids per key — the equality-selectivity estimate."""
        return self._n_entries / len(self._by_key) if self._by_key else 0.0

    def estimate_range(
        self,
        *,
        gt: Any = _MISSING,
        gte: Any = _MISSING,
        lt: Any = _MISSING,
        lte: Any = _MISSING,
    ) -> float:
        """Estimated entries in the range, without materialising ids."""
        bounds = [b for b in (gt, gte, lt, lte) if b is not _MISSING]
        if not bounds:
            return float(self._n_entries)
        want_str = all(isinstance(b, str) for b in bounds)
        entries = self._sorted(strings=want_str)
        lo, hi = self._range_bounds(entries, gt=gt, gte=gte, lt=lt, lte=lte)
        return max(0, hi - lo) * self.avg_bucket()

    # -- lookups ---------------------------------------------------------------

    def ids_equal(self, value: Any) -> Set[Any]:
        return set(self._by_key.get(_index_key(value), ()))

    def ids_in(self, values: Iterable[Any]) -> Set[Any]:
        out: Set[Any] = set()
        for v in values:
            out |= self.ids_equal(v)
        return out

    def _range_bounds(
        self,
        entries: List[Tuple[Any, Set[Any]]],
        *,
        gt: Any = _MISSING,
        gte: Any = _MISSING,
        lt: Any = _MISSING,
        lte: Any = _MISSING,
    ) -> Tuple[int, int]:
        bounds = [b for b in (gt, gte, lt, lte) if b is not _MISSING]
        want_str = all(isinstance(b, str) for b in bounds)
        lo, hi = 0, len(entries)
        keys = [e[0] for e in entries]
        if gte is not _MISSING:
            lo = bisect.bisect_left(keys, gte if want_str else float(gte))
        if gt is not _MISSING:
            lo = max(lo, bisect.bisect_right(keys, gt if want_str else float(gt)))
        if lte is not _MISSING:
            hi = bisect.bisect_right(keys, lte if want_str else float(lte))
        if lt is not _MISSING:
            hi = min(hi, bisect.bisect_left(keys, lt if want_str else float(lt)))
        return lo, hi

    def ids_range(
        self,
        *,
        gt: Any = _MISSING,
        gte: Any = _MISSING,
        lt: Any = _MISSING,
        lte: Any = _MISSING,
    ) -> Set[Any]:
        """Ids whose indexed value falls in the given (typed) range."""
        bounds = [b for b in (gt, gte, lt, lte) if b is not _MISSING]
        if not bounds:
            return set().union(*self._by_key.values()) if self._by_key else set()
        want_str = all(isinstance(b, str) for b in bounds)
        entries = self._sorted(strings=want_str)
        lo, hi = self._range_bounds(entries, gt=gt, gte=gte, lt=lt, lte=lte)
        out: Set[Any] = set()
        for _, ids in entries[lo:hi]:
            out |= ids
        return out

    def _sorted(self, *, strings: bool) -> List[Tuple[Any, Set[Any]]]:
        tag = "s" if strings else "n"
        cached = self._sorted_strings if strings else self._sorted_numbers
        if cached is None:
            cached = sorted(
                ((key[1], ids) for key, ids in self._by_key.items() if key[0] == tag),
                key=lambda pair: pair[0],
            )
            if strings:
                self._sorted_strings = cached
            else:
                self._sorted_numbers = cached
        return cached

    def distinct_keys(self) -> List[Any]:
        return sorted(self._by_key, key=repr)

    def __len__(self) -> int:
        return len(self._by_key)


class CompoundIndex:
    """Ordered multi-field index supporting leading-prefix queries.

    Keys are tuples of per-field typed keys, compared lexicographically;
    every key has exactly ``len(self.fields)`` components, so a prefix
    tuple of ``j`` components bounds the contiguous run of keys sharing
    that prefix in the sorted key list.

    Array-valued fields fan out into the cartesian product of their
    element keys (capped at :data:`_MAX_COMPOUND_FANOUT` combinations,
    matching Mongo's "at most one array field per compound index in
    practice" guidance without hard-failing).
    """

    def __init__(self, fields: Sequence[str], *, unique: bool = False) -> None:
        if len(fields) < 2:
            raise ValueError("CompoundIndex requires at least two fields")
        self.fields: Tuple[str, ...] = tuple(fields)
        self.unique = unique
        self._by_key: Dict[Tuple[Any, ...], Set[Any]] = {}
        self._n_entries = 0
        self._sorted_keys: Optional[List[Tuple[Any, ...]]] = None
        #: prefix length -> distinct prefix count (lazily computed).
        self._prefix_cardinality: Dict[int, int] = {}

    # -- maintenance ---------------------------------------------------------

    def _keys_of(self, doc: Dict[str, Any]) -> List[Tuple[Any, ...]]:
        per_field = [_field_keys(doc, f) for f in self.fields]
        fanout = 1
        for keys in per_field:
            fanout *= len(keys)
        if fanout > _MAX_COMPOUND_FANOUT:
            # Degenerate document: index under one opaque per-field key.
            return [tuple(("o", repr(sorted(map(repr, ks)))) for ks in per_field)]
        return [tuple(combo) for combo in itertools.product(*per_field)]

    def add(self, doc: Dict[str, Any]) -> None:
        doc_id = doc["_id"]
        for key in self._keys_of(doc):
            self._by_key.setdefault(key, set()).add(doc_id)
            self._n_entries += 1
        self._invalidate_sorted()

    def remove(self, doc: Dict[str, Any]) -> None:
        doc_id = doc["_id"]
        for key in self._keys_of(doc):
            bucket = self._by_key.get(key)
            if bucket is not None:
                bucket.discard(doc_id)
                self._n_entries -= 1
                if not bucket:
                    del self._by_key[key]
        self._invalidate_sorted()

    def _invalidate_sorted(self) -> None:
        self._sorted_keys = None
        self._prefix_cardinality.clear()

    def clear(self) -> None:
        self._by_key.clear()
        self._n_entries = 0
        self._invalidate_sorted()

    def _sorted(self) -> List[Tuple[Any, ...]]:
        if self._sorted_keys is None:
            self._sorted_keys = sorted(self._by_key)
        return self._sorted_keys

    # -- cardinality statistics (planner inputs) -----------------------------

    @property
    def n_keys(self) -> int:
        return len(self._by_key)

    @property
    def n_entries(self) -> int:
        return self._n_entries

    def distinct_prefixes(self, length: int) -> int:
        """Distinct key prefixes of ``length`` components (cached)."""
        length = max(1, min(length, len(self.fields)))
        cached = self._prefix_cardinality.get(length)
        if cached is None:
            keys = self._sorted()
            cached = 0
            previous = _MISSING
            for key in keys:
                prefix = key[:length]
                if prefix != previous:
                    cached += 1
                    previous = prefix
            self._prefix_cardinality[length] = cached
        return cached

    def estimate_equal(self, prefix_len: int) -> float:
        """Estimated entries matched by pinning ``prefix_len`` fields."""
        distinct = self.distinct_prefixes(prefix_len)
        return self._n_entries / distinct if distinct else 0.0

    def estimate_prefix_range(
        self, prefix: Tuple[Any, ...], **bounds: Any
    ) -> float:
        """Estimated entries for an equality prefix + range on next field."""
        lo, hi = self._prefix_range_bounds(prefix, **bounds)
        n_keys = max(0, hi - lo)
        avg_bucket = self._n_entries / len(self._by_key) if self._by_key else 0.0
        return n_keys * avg_bucket

    # -- lookups ---------------------------------------------------------------

    def key_for(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        """Normalize raw field values into a full index key."""
        if len(values) != len(self.fields):
            raise ValueError("key_for requires one value per indexed field")
        return tuple(_index_key(v) for v in values)

    def ids_equal(self, values: Sequence[Any]) -> Set[Any]:
        """Ids matching equality on *all* indexed fields."""
        return set(self._by_key.get(self.key_for(values), ()))

    def _prefix_range_bounds(
        self,
        prefix: Tuple[Any, ...],
        *,
        gt: Any = _MISSING,
        gte: Any = _MISSING,
        lt: Any = _MISSING,
        lte: Any = _MISSING,
    ) -> Tuple[int, int]:
        """Sorted-key slice bounds for an equality prefix + typed range."""
        keys = self._sorted()
        bounds = [b for b in (gt, gte, lt, lte) if b is not _MISSING]
        lo = bisect.bisect_left(keys, prefix)
        hi = bisect.bisect_left(keys, prefix + (_AFTER,))
        if not bounds:
            return lo, hi
        tag = "s" if all(isinstance(b, str) for b in bounds) else "n"

        def norm(v: Any) -> Any:
            return v if tag == "s" else float(v)

        # Bracket to the range component's type tag so an open side does
        # not spill into other-typed values under the same prefix.
        lo = max(lo, bisect.bisect_left(keys, prefix + ((tag,),)))
        hi = min(hi, bisect.bisect_left(keys, prefix + ((tag + "~",),)))
        if gte is not _MISSING:
            lo = max(lo, bisect.bisect_left(keys, prefix + ((tag, norm(gte)),)))
        if gt is not _MISSING:
            lo = max(lo, bisect.bisect_left(keys, prefix + ((tag, norm(gt)), _AFTER)))
        if lte is not _MISSING:
            hi = min(hi, bisect.bisect_left(keys, prefix + ((tag, norm(lte)), _AFTER)))
        if lt is not _MISSING:
            hi = min(hi, bisect.bisect_left(keys, prefix + ((tag, norm(lt)),)))
        return lo, hi

    def ids_prefix(
        self,
        prefix_values: Sequence[Any],
        **bounds: Any,
    ) -> Set[Any]:
        """Ids matching equality on the leading ``prefix_values`` fields,
        optionally range-bounded (``gt``/``gte``/``lt``/``lte``) on the
        *next* field after the prefix."""
        if len(prefix_values) > len(self.fields):
            raise ValueError("prefix longer than the indexed field list")
        prefix = tuple(_index_key(v) for v in prefix_values)
        keys = self._sorted()
        lo, hi = self._prefix_range_bounds(prefix, **bounds)
        out: Set[Any] = set()
        for key in keys[lo:hi]:
            out |= self._by_key[key]
        return out

    def distinct_keys(self) -> List[Tuple[Any, ...]]:
        return self._sorted()

    def __len__(self) -> int:
        return len(self._by_key)
