"""Cost-based query planning over single-field and compound indexes.

The planner answers one question per query: *which access path touches
the fewest documents?*  It extracts the sargable conjuncts of a filter
(top-level equality, ``$in`` over scalars, and same-typed
``$gt``/``$gte``/``$lt``/``$lte`` ranges), builds one candidate plan per
applicable index — compound indexes contribute their longest usable
*leading prefix*, optionally range-bound on the field after the prefix —
scores every candidate with selectivity estimates derived from index
cardinality statistics (distinct keys, entries per key), and picks the
cheapest plan, falling back to a full collection scan (``COLLSCAN``)
when no index wins.

Every plan a query could have used is kept, so
:meth:`~repro.docdb.collection.Collection.explain` can report the
winning plan *and* the rejected ones with their estimates, Mongo
``explain()``-style.

Correctness contract: an index only ever *narrows* the candidate set to
a superset of the true matches; the residual ``FILTER`` stage re-checks
every candidate with :func:`repro.docdb.query.matches`.  Conditions the
index cannot answer exactly (array-equality, ``$ne``, ``$regex``, …)
are simply not sargable and fall through to that residual check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.docdb.index import CompoundIndex, FieldIndex

_RANGE_OPS = ("$gt", "$gte", "$lt", "$lte")

#: Stage names, mirroring MongoDB's explain vocabulary.
STAGE_IDHACK = "IDHACK"      # point lookup on the primary-key map
STAGE_IXSCAN = "IXSCAN"      # secondary-index scan
STAGE_COLLSCAN = "COLLSCAN"  # full collection scan
STAGE_FILTER = "FILTER"      # residual predicate re-check

_STAGE_RANK = {STAGE_IDHACK: 0, STAGE_IXSCAN: 1, STAGE_COLLSCAN: 2}


def _is_scalar(value: Any) -> bool:
    return not isinstance(value, (dict, list, tuple))


@dataclass(frozen=True)
class Predicate:
    """The sargable part of one top-level filter conjunct."""

    path: str
    #: Scalar equality value (``has_eq`` disambiguates ``None``).
    eq: Any = None
    has_eq: bool = False
    #: ``$in`` over scalars.
    in_values: Optional[Tuple[Any, ...]] = None
    #: Same-typed range bounds, keyed ``gt``/``gte``/``lt``/``lte``.
    bounds: Tuple[Tuple[str, Any], ...] = ()

    @property
    def sargable(self) -> bool:
        return self.has_eq or self.in_values is not None or bool(self.bounds)


def extract_predicates(flt: Dict[str, Any]) -> Dict[str, Predicate]:
    """Sargable conjuncts of ``flt``, keyed by dotted field path.

    Only *top-level* conjuncts participate in planning (Mongo's planner
    does the same for the common case); ``$and``/``$or`` trees and
    negative/array operators stay in the residual filter.
    """
    out: Dict[str, Predicate] = {}
    for path, condition in flt.items():
        if path.startswith("$"):
            continue
        pred = _predicate_of(path, condition)
        if pred is not None and pred.sargable:
            out[path] = pred
    return out


def _predicate_of(path: str, condition: Any) -> Optional[Predicate]:
    if not isinstance(condition, dict):
        if _is_scalar(condition):
            return Predicate(path=path, eq=condition, has_eq=True)
        return None  # array/object equality: not index-exact (see query.py)
    if not any(k.startswith("$") for k in condition):
        return None  # literal sub-document equality
    if "$eq" in condition and _is_scalar(condition["$eq"]):
        return Predicate(path=path, eq=condition["$eq"], has_eq=True)
    in_operand = condition.get("$in")
    if isinstance(in_operand, (list, tuple)) and all(
        _is_scalar(v) for v in in_operand
    ):
        return Predicate(path=path, in_values=tuple(in_operand))
    bounds = tuple(
        (op.lstrip("$"), condition[op]) for op in _RANGE_OPS if op in condition
    )
    if bounds and _typed_bounds(bounds):
        return Predicate(path=path, bounds=bounds)
    return None


def _typed_bounds(bounds: Sequence[Tuple[str, Any]]) -> bool:
    """True when every bound is comparable within one index type lane."""
    values = [v for _, v in bounds]
    all_numbers = all(
        isinstance(v, (int, float)) and not isinstance(v, bool) for v in values
    )
    all_strings = all(isinstance(v, str) for v in values)
    return all_numbers or all_strings


@dataclass
class CandidatePlan:
    """One scored access path (winning or rejected)."""

    stage: str
    estimated_docs: float
    index_name: Optional[str] = None
    key_pattern: Optional[Dict[str, int]] = None
    #: Human-readable per-field bounds, e.g. ``{"server_id": "[3, 3]"}``.
    index_bounds: Dict[str, str] = field(default_factory=dict)
    #: How many leading index fields the plan pins (prefix length).
    prefix_len: int = 0
    #: Materialises the candidate id set (None for COLLSCAN/IDHACK).
    _ids: Optional[Callable[[], Set[Any]]] = None
    #: Point-lookup key for IDHACK plans.
    _point_id: Any = None

    def sort_key(self) -> Tuple[float, int, int, str]:
        return (
            self.estimated_docs,
            _STAGE_RANK[self.stage],
            -self.prefix_len,
            self.index_name or "",
        )

    def stage_document(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "stage": self.stage,
            "estimatedDocsExamined": round(self.estimated_docs, 2),
        }
        if self.index_name is not None:
            doc["indexName"] = self.index_name
            doc["keyPattern"] = dict(self.key_pattern or {})
            doc["indexBounds"] = dict(self.index_bounds)
        return doc


@dataclass
class PlanOutcome:
    """The planner's decision for one filter."""

    winning: CandidatePlan
    rejected: List[CandidatePlan] = field(default_factory=list)

    @property
    def plans_considered(self) -> int:
        return 1 + len(self.rejected)


class QueryPlanner:
    """Scores candidate indexes for a collection's queries.

    Owns no state beyond a reference to its collection; all cardinality
    statistics live in the indexes themselves so estimates always
    reflect the current data.
    """

    def __init__(self, collection: "Any") -> None:
        self._coll = collection

    # -- planning ------------------------------------------------------------

    def plan(self, flt: Dict[str, Any]) -> PlanOutcome:
        """Choose the cheapest access path for ``flt``."""
        docs = self._coll._docs
        n_docs = len(docs)
        candidates: List[CandidatePlan] = [
            CandidatePlan(stage=STAGE_COLLSCAN, estimated_docs=float(n_docs))
        ]
        id_condition = flt.get("_id")
        if "_id" in flt and _is_scalar(id_condition) and not isinstance(
            id_condition, dict
        ):
            candidates.append(
                CandidatePlan(
                    stage=STAGE_IDHACK,
                    estimated_docs=1.0,
                    index_name="_id_",
                    key_pattern={"_id": 1},
                    index_bounds={"_id": _point_bounds(id_condition)},
                    prefix_len=1,
                    _point_id=id_condition,
                )
            )
        predicates = extract_predicates(flt)
        if predicates:
            for name, index in self._coll._indexes.items():
                plan = self._index_plan(name, index, predicates)
                if plan is not None:
                    candidates.append(plan)
        candidates.sort(key=CandidatePlan.sort_key)
        return PlanOutcome(winning=candidates[0], rejected=candidates[1:])

    def _index_plan(
        self, name: str, index: Any, predicates: Dict[str, Predicate]
    ) -> Optional[CandidatePlan]:
        if isinstance(index, CompoundIndex):
            return self._compound_plan(name, index, predicates)
        if isinstance(index, FieldIndex):
            return self._single_plan(name, index, predicates)
        return None

    def _single_plan(
        self, name: str, index: FieldIndex, predicates: Dict[str, Predicate]
    ) -> Optional[CandidatePlan]:
        pred = predicates.get(index.field)
        if pred is None:
            return None
        key_pattern = {index.field: 1}
        if pred.has_eq:
            value = pred.eq
            return CandidatePlan(
                stage=STAGE_IXSCAN,
                estimated_docs=index.avg_bucket(),
                index_name=name,
                key_pattern=key_pattern,
                index_bounds={index.field: _point_bounds(value)},
                prefix_len=1,
                _ids=lambda: index.ids_equal(value),
            )
        if pred.in_values is not None:
            values = pred.in_values
            return CandidatePlan(
                stage=STAGE_IXSCAN,
                estimated_docs=len(values) * index.avg_bucket(),
                index_name=name,
                key_pattern=key_pattern,
                index_bounds={index.field: _in_bounds(values)},
                prefix_len=1,
                _ids=lambda: index.ids_in(values),
            )
        bounds = dict(pred.bounds)
        return CandidatePlan(
            stage=STAGE_IXSCAN,
            estimated_docs=index.estimate_range(**bounds),
            index_name=name,
            key_pattern=key_pattern,
            index_bounds={index.field: _range_bounds_text(bounds)},
            prefix_len=1,
            _ids=lambda: index.ids_range(**bounds),
        )

    def _compound_plan(
        self, name: str, index: CompoundIndex, predicates: Dict[str, Predicate]
    ) -> Optional[CandidatePlan]:
        # Longest equality run over the leading fields.
        eq_values: List[Any] = []
        for f in index.fields:
            pred = predicates.get(f)
            if pred is not None and pred.has_eq:
                eq_values.append(pred.eq)
            else:
                break
        j = len(eq_values)
        next_pred = (
            predicates.get(index.fields[j]) if j < len(index.fields) else None
        )
        key_pattern = {f: 1 for f in index.fields}
        bounds_text = {
            f: _point_bounds(v) for f, v in zip(index.fields, eq_values)
        }
        if next_pred is not None and next_pred.in_values is not None:
            values = next_pred.in_values
            prefix = tuple(eq_values)
            bounds_text[index.fields[j]] = _in_bounds(values)
            return CandidatePlan(
                stage=STAGE_IXSCAN,
                estimated_docs=len(values) * index.estimate_equal(j + 1),
                index_name=name,
                key_pattern=key_pattern,
                index_bounds=bounds_text,
                prefix_len=j + 1,
                _ids=lambda: _union(
                    index.ids_prefix(prefix + (v,)) for v in values
                ),
            )
        if next_pred is not None and next_pred.bounds:
            bounds = dict(next_pred.bounds)
            prefix = tuple(eq_values)
            prefix_keys = tuple(
                index.key_for(
                    list(eq_values) + [None] * (len(index.fields) - j)
                )[:j]
            )
            bounds_text[index.fields[j]] = _range_bounds_text(bounds)
            return CandidatePlan(
                stage=STAGE_IXSCAN,
                estimated_docs=index.estimate_prefix_range(
                    prefix_keys, **bounds
                ),
                index_name=name,
                key_pattern=key_pattern,
                index_bounds=bounds_text,
                prefix_len=j + 1,
                _ids=lambda: index.ids_prefix(prefix, **bounds),
            )
        if j == 0:
            return None  # no usable leading prefix
        prefix = tuple(eq_values)
        return CandidatePlan(
            stage=STAGE_IXSCAN,
            estimated_docs=index.estimate_equal(j),
            index_name=name,
            key_pattern=key_pattern,
            index_bounds=bounds_text,
            prefix_len=j,
            _ids=(
                (lambda: index.ids_equal(prefix))
                if j == len(index.fields)
                else (lambda: index.ids_prefix(prefix))
            ),
        )

    # -- execution -----------------------------------------------------------

    def fetch(self, plan: CandidatePlan) -> Tuple[List[Dict[str, Any]], int]:
        """Materialise a plan's candidate documents.

        Returns ``(stored_documents, docs_examined)`` where
        ``docs_examined`` is exactly the number of documents the residual
        filter stage will touch — the number ``explain()`` reports.
        """
        docs = self._coll._docs
        if plan.stage == STAGE_IDHACK:
            doc = docs.get(plan._point_id)
            found = [doc] if doc is not None else []
            return found, len(found)
        if plan.stage == STAGE_COLLSCAN:
            out = list(docs.values())
            return out, len(out)
        assert plan._ids is not None
        ids = plan._ids()
        out = [docs[i] for i in ids if i in docs]
        return out, len(out)


# -- rendering ---------------------------------------------------------------


def _union(sets: Any) -> Set[Any]:
    out: Set[Any] = set()
    for s in sets:
        out |= s
    return out


def _point_bounds(value: Any) -> str:
    return f"[{value!r}, {value!r}]"


def _in_bounds(values: Sequence[Any]) -> str:
    return "[" + ", ".join(repr(v) for v in values) + "]"


def _range_bounds_text(bounds: Dict[str, Any]) -> str:
    lo_bracket, lo = "(", "-inf"
    hi_bracket, hi = ")", "inf"
    if "gte" in bounds:
        lo_bracket, lo = "[", repr(bounds["gte"])
    if "gt" in bounds:
        lo_bracket, lo = "(", repr(bounds["gt"])
    if "lte" in bounds:
        hi_bracket, hi = "]", repr(bounds["lte"])
    if "lt" in bounds:
        hi_bracket, hi = ")", repr(bounds["lt"])
    return f"{lo_bracket}{lo}, {hi}{hi_bracket}"


def format_plan(plan_doc: Dict[str, Any], *, indent: str = "  ") -> str:
    """Render an ``explain()`` document as indented text (CLI/benchmarks)."""
    lines: List[str] = [f"query plan for {plan_doc.get('namespace', '?')}:"]
    winning = plan_doc.get("winningPlan", {})
    lines.extend(_format_stage(winning, indent, 1))
    execution = plan_doc.get("executionStats", {})
    if execution:
        lines.append(
            f"{indent}execution: {execution.get('nReturned', 0)} returned, "
            f"{execution.get('docsExamined', 0)} of "
            f"{execution.get('totalDocsInCollection', 0)} docs examined"
        )
    rejected = plan_doc.get("rejectedPlans", [])
    if rejected:
        lines.append(f"{indent}rejected plans:")
        for rej in rejected:
            stage = rej.get("inputStage", rej)
            label = stage.get("indexName", stage.get("stage", "?"))
            lines.append(
                f"{indent}{indent}- {stage.get('stage')} {label} "
                f"(est {stage.get('estimatedDocsExamined')})"
            )
    return "\n".join(lines)


def _format_stage(stage: Dict[str, Any], indent: str, depth: int) -> List[str]:
    pad = indent * depth
    label = stage.get("stage", "?")
    parts = [f"{pad}{label}"]
    if "indexName" in stage:
        bounds = ", ".join(
            f"{k}: {v}" for k, v in stage.get("indexBounds", {}).items()
        )
        parts.append(f"index={stage['indexName']}" + (f" bounds({bounds})" if bounds else ""))
    if "estimatedDocsExamined" in stage:
        parts.append(f"est={stage['estimatedDocsExamined']}")
    lines = [" ".join(parts)]
    inner = stage.get("inputStage")
    if inner:
        lines.extend(_format_stage(inner, indent, depth + 1))
    return lines
