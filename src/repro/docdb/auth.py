"""Database access control and signed-statistics verification.

Implements the security design of the paper's §4.1.4/§4.2.2:

* **Database Access Management** — write access requires a token
  obtained by proving possession of a private key whose certificate
  chain anchors in a SCION TRC ("usage of public key certificates to
  get write access to the DB").
* **Statistics Authentication and Integrity** — measurement documents
  carry an RSA signature over their canonical encoding; a collection
  validator rejects unsigned or tampered documents ("produced
  measurements should be authenticated with a PKC").
"""

from __future__ import annotations

import enum
import json
import secrets
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.crypto.certs import Certificate
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, sign, verify
from repro.crypto.trc import TrustStore
from repro.errors import AuthError, CertificateError

SIGNATURE_FIELD = "_sig"


class Role(enum.Enum):
    READ = "read"
    WRITE = "write"
    ADMIN = "admin"


@dataclass
class Token:
    """A bearer token bound to an authenticated subject."""

    value: str
    subject: str
    roles: Set[Role]
    issued_epoch: int
    expires_epoch: int

    def valid_at(self, epoch: int) -> bool:
        return self.issued_epoch <= epoch <= self.expires_epoch


class AccessController:
    """Certificate-based authentication and role-based authorization."""

    def __init__(
        self,
        trust_store: TrustStore,
        *,
        token_lifetime_epochs: int = 1000,
    ) -> None:
        self.trust_store = trust_store
        self.token_lifetime = token_lifetime_epochs
        self._grants: Dict[str, Set[Role]] = {}
        self._challenges: Dict[str, bytes] = {}
        self._tokens: Dict[str, Token] = {}
        self.epoch = 0

    # -- grant management --------------------------------------------------------

    def grant(self, subject: str, *roles: Role) -> None:
        self._grants.setdefault(subject, set()).update(roles)

    def revoke(self, subject: str) -> None:
        self._grants.pop(subject, None)
        for value, token in list(self._tokens.items()):
            if token.subject == subject:
                del self._tokens[value]

    def roles_of(self, subject: str) -> Set[Role]:
        return set(self._grants.get(subject, set()))

    # -- challenge-response authentication ----------------------------------------

    def challenge(self, subject: str) -> bytes:
        """Issue a nonce the client must sign with its AS key."""
        nonce = secrets.token_bytes(32)
        self._challenges[subject] = nonce
        return nonce

    def authenticate(
        self,
        chain: List[Certificate],
        signature: int,
    ) -> Token:
        """Verify chain + signed challenge; returns a bearer token."""
        if not chain:
            raise AuthError("empty certificate chain")
        subject = chain[0].subject
        nonce = self._challenges.pop(subject, None)
        if nonce is None:
            raise AuthError(f"no outstanding challenge for {subject!r}")
        try:
            leaf_key = self.trust_store.verify_certificate(chain, epoch=self.epoch)
        except CertificateError as exc:
            raise AuthError(f"certificate rejected: {exc}") from exc
        if not verify(leaf_key, nonce, signature):
            raise AuthError("challenge signature invalid")
        roles = self.roles_of(subject)
        if not roles:
            raise AuthError(f"subject {subject!r} has no granted roles")
        token = Token(
            value=secrets.token_hex(16),
            subject=subject,
            roles=roles,
            issued_epoch=self.epoch,
            expires_epoch=self.epoch + self.token_lifetime,
        )
        self._tokens[token.value] = token
        return token

    # -- authorization ---------------------------------------------------------------

    def authorize(self, token_value: str, role: Role) -> Token:
        """Check a bearer token for ``role``; raises :class:`AuthError`."""
        token = self._tokens.get(token_value)
        if token is None:
            raise AuthError("unknown token")
        if not token.valid_at(self.epoch):
            raise AuthError("token expired")
        if role not in token.roles and Role.ADMIN not in token.roles:
            raise AuthError(f"token lacks role {role.value!r}")
        return token

    def advance_epoch(self, steps: int = 1) -> None:
        self.epoch += steps


# ---------------------------------------------------------------------------
# signed documents
# ---------------------------------------------------------------------------


def canonical_bytes(doc: Dict[str, Any]) -> bytes:
    """Deterministic byte encoding of a document minus its signature."""
    body = {k: v for k, v in doc.items() if k != SIGNATURE_FIELD}
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


def sign_document(
    doc: Dict[str, Any], subject: str, keypair: RSAKeyPair
) -> Dict[str, Any]:
    """Return a copy of ``doc`` carrying a ``_sig`` block."""
    signed = dict(doc)
    signed.pop(SIGNATURE_FIELD, None)
    signature = sign(keypair, canonical_bytes(signed))
    signed[SIGNATURE_FIELD] = {"subject": subject, "signature": hex(signature)}
    return signed


class SignedDocumentVerifier:
    """Collection validator enforcing per-document signatures.

    Install on a collection via ``coll.validator = verifier`` — every
    insert/update then requires a valid ``_sig`` from a registered
    writer key.
    """

    def __init__(self) -> None:
        self._writer_keys: Dict[str, RSAPublicKey] = {}

    def register_writer(self, subject: str, public_key: RSAPublicKey) -> None:
        self._writer_keys[subject] = public_key

    def __call__(self, doc: Dict[str, Any]) -> None:
        sig_block = doc.get(SIGNATURE_FIELD)
        if not isinstance(sig_block, dict):
            raise AuthError("document is not signed")
        subject = sig_block.get("subject")
        key = self._writer_keys.get(str(subject))
        if key is None:
            raise AuthError(f"unknown writer {subject!r}")
        try:
            signature = int(str(sig_block.get("signature")), 16)
        except ValueError:
            raise AuthError("malformed signature") from None
        if not verify(key, canonical_bytes(doc), signature):
            raise AuthError("document signature invalid (tampering?)")
