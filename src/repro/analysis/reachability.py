"""Server reachability analysis (Fig 4).

"Fig. 4 depicts the number of destinations that require a minimum
number of hops to be reached. ... the average path length is 5.66 hops
and about 70% of paths can be reached within 6 hops."
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.scion.snet import ScionHost
from repro.topology.scionlab import AVAILABLE_SERVERS


@dataclass(frozen=True)
class ReachabilityResult:
    """Min-hop distribution over the destination servers."""

    min_hops_per_destination: Tuple[Tuple[int, str, int], ...]  # (id, isd_as, hops)
    histogram: Dict[int, int]

    @property
    def reachable(self) -> int:
        return len(self.min_hops_per_destination)

    @property
    def mean_path_length(self) -> float:
        hops = [h for _, _, h in self.min_hops_per_destination]
        return sum(hops) / len(hops) if hops else 0.0

    def fraction_within(self, hop_budget: int) -> float:
        hops = [h for _, _, h in self.min_hops_per_destination]
        if not hops:
            return 0.0
        return sum(1 for h in hops if h <= hop_budget) / len(hops)

    def rows(self) -> List[Tuple[int, int]]:
        """(min hop count, #destinations) series — the Fig 4 bars."""
        return sorted(self.histogram.items())


def reachability(
    host: ScionHost,
    servers: Sequence[Tuple[str, str]] = AVAILABLE_SERVERS,
) -> ReachabilityResult:
    """Compute the minimum hop count from the host to every server."""
    per_destination: List[Tuple[int, str, int]] = []
    for server_id, (isd_as, _ip) in enumerate(servers, start=1):
        paths = host.paths(isd_as, max_paths=1)
        per_destination.append((server_id, isd_as, paths[0].hop_count))
    histogram = Counter(h for _, _, h in per_destination)
    return ReachabilityResult(
        min_hops_per_destination=tuple(per_destination),
        histogram=dict(histogram),
    )
