"""Analysis of measurement campaigns: the statistics behind Figures 4-9."""

from repro.analysis.stats import WhiskerStats, whisker_stats
from repro.analysis.reachability import ReachabilityResult, reachability
from repro.analysis.latency import (
    PathLatencySeries,
    latency_by_path,
    latency_by_isd_group,
    IsdGroupSeries,
)
from repro.analysis.bandwidth import BandwidthSeries, bandwidth_by_path
from repro.analysis.loss import LossDotSeries, loss_by_path
from repro.analysis.report import format_table

__all__ = [
    "WhiskerStats",
    "whisker_stats",
    "ReachabilityResult",
    "reachability",
    "PathLatencySeries",
    "latency_by_path",
    "latency_by_isd_group",
    "IsdGroupSeries",
    "BandwidthSeries",
    "bandwidth_by_path",
    "LossDotSeries",
    "loss_by_path",
    "format_table",
]
