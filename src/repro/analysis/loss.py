"""Packet-loss analysis (Fig 9).

"Fig. 9 shows the average packet loss percentage for each path ... Each
path is represented with a different colored dot.  The dot size stands
for the number of measurements having the same packet loss ratio."  The
series therefore maps each path to {loss ratio -> measurement count},
which is exactly what a scatter-with-sized-dots plot needs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.docdb.database import Database
from repro.suite.config import PATHS_COLLECTION, STATS_COLLECTION


@dataclass(frozen=True)
class LossDotSeries:
    """One path's loss-ratio dots."""

    path_id: str
    path_index: int
    dots: Tuple[Tuple[float, int], ...]  # (loss %, #measurements)

    @property
    def mean_loss_pct(self) -> float:
        total = sum(count for _, count in self.dots)
        if total == 0:
            return 0.0
        return sum(loss * count for loss, count in self.dots) / total

    @property
    def always_total_loss(self) -> bool:
        """True when every measurement registered 100 % loss."""
        return bool(self.dots) and all(loss >= 100.0 for loss, _ in self.dots)


def loss_by_path(db: Database, server_id: int) -> List[LossDotSeries]:
    """Per-path loss dot data for one destination."""
    out: List[LossDotSeries] = []
    for path_doc in db[PATHS_COLLECTION].find(
        {"server_id": server_id}, sort=[("path_index", 1)]
    ):
        counts: Counter = Counter()
        for d in db[STATS_COLLECTION].find({"path_id": path_doc["_id"]}):
            loss = d.get("loss_pct")
            if loss is None:
                continue
            counts[round(float(loss), 1)] += 1
        if not counts:
            continue
        out.append(
            LossDotSeries(
                path_id=str(path_doc["_id"]),
                path_index=int(path_doc["path_index"]),
                dots=tuple(sorted(counts.items())),
            )
        )
    return out


def total_loss_cluster(series: Sequence[LossDotSeries]) -> List[str]:
    """Path ids that registered complete loss (the 2_16...2_23 cluster)."""
    return [s.path_id for s in series if s.always_total_loss]


def shared_ases(
    db: Database, path_ids: Sequence[str]
) -> List[str]:
    """ASes common to all listed paths — the paper's root-cause probe.

    "By looking at the sequence of hops for each of these paths, a
    commonality emerges: the shared nodes are only those concentrated in
    the first half of the path."
    """
    common: set = set()
    first = True
    for path_id in path_ids:
        doc = db[PATHS_COLLECTION].find_one({"_id": path_id})
        if doc is None:
            continue
        ases = set(doc["ases"])
        common = ases if first else (common & ases)
        first = False
    ordering = {}
    for path_id in path_ids:
        doc = db[PATHS_COLLECTION].find_one({"_id": path_id})
        if doc:
            for i, a in enumerate(doc["ases"]):
                ordering.setdefault(a, i)
    return sorted(common, key=lambda a: ordering.get(a, 99))
