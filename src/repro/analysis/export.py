"""Export figure data as CSV/JSON for external plotting.

The text tables are self-contained, but anyone re-drawing the paper's
figures (matplotlib, gnuplot, a spreadsheet) wants machine-readable
series.  Every figure result type gets a row-oriented exporter; the
formats are plain ``csv`` module output and ``json.dumps`` — no new
dependencies.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Sequence

from repro.analysis.bandwidth import BandwidthSeries
from repro.analysis.latency import IsdGroupSeries, PathLatencySeries
from repro.analysis.loss import LossDotSeries
from repro.analysis.reachability import ReachabilityResult
from repro.analysis.stats import WhiskerStats


def _whisker_fields(stats: WhiskerStats) -> Dict[str, Any]:
    return {
        "n": stats.n,
        "mean": stats.mean,
        "min": stats.minimum,
        "q1": stats.q1,
        "median": stats.median,
        "q3": stats.q3,
        "max": stats.maximum,
        "whisker_low": stats.whisker_low,
        "whisker_high": stats.whisker_high,
        "outliers": list(stats.outliers),
    }


def reachability_records(result: ReachabilityResult) -> List[Dict[str, Any]]:
    return [
        {"min_hops": hops, "destinations": count}
        for hops, count in result.rows()
    ]


def latency_records(series: Sequence[PathLatencySeries]) -> List[Dict[str, Any]]:
    return [
        {
            "path_id": s.path_id,
            "path_index": s.path_index,
            "hop_count": s.hop_count,
            **_whisker_fields(s.stats),
        }
        for s in series
    ]


def isd_group_records(groups: Sequence[IsdGroupSeries]) -> List[Dict[str, Any]]:
    return [
        {
            "isds": "+".join(str(i) for i in g.isds),
            "hop_count": g.hop_count,
            "paths": len(g.path_ids),
            **_whisker_fields(g.stats),
        }
        for g in groups
    ]


def bandwidth_records(series: Sequence[BandwidthSeries]) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for s in series:
        for (direction, packet), stats in sorted(s.whiskers.items()):
            out.append(
                {
                    "path_id": s.path_id,
                    "hop_count": s.hop_count,
                    "target_mbps": s.target_mbps,
                    "direction": direction,
                    "packet": packet,
                    **_whisker_fields(stats),
                }
            )
    return out


def loss_records(series: Sequence[LossDotSeries]) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for s in series:
        for loss_pct, count in s.dots:
            out.append(
                {
                    "path_id": s.path_id,
                    "path_index": s.path_index,
                    "loss_pct": loss_pct,
                    "measurements": count,
                }
            )
    return out


# ---------------------------------------------------------------------------
# serializers
# ---------------------------------------------------------------------------


def to_csv(records: Sequence[Dict[str, Any]]) -> str:
    """Render records as CSV text (lists flattened to ';'-joined cells)."""
    if not records:
        return ""
    fieldnames = list(records[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, lineterminator="\n")
    writer.writeheader()
    for record in records:
        row = {
            key: (";".join(str(v) for v in value) if isinstance(value, list) else value)
            for key, value in record.items()
        }
        writer.writerow(row)
    return buffer.getvalue()


def to_json(records: Sequence[Dict[str, Any]], *, indent: int = 2) -> str:
    return json.dumps(list(records), indent=indent, sort_keys=True)


def write_csv(path: str, records: Sequence[Dict[str, Any]]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_csv(records))


def write_json(path: str, records: Sequence[Dict[str, Any]]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_json(records) + "\n")
