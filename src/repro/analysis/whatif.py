"""What-if analysis: path diversity under exclusion policies.

A UPIN operator promising "your traffic will avoid country X /
operator Y" needs to know *in advance* which destinations that promise
can be kept for, and how much path diversity survives.  This module
answers that from topology alone (no measurements needed): for every
destination server it counts the combinable paths, filters them through
an exclusion set, and reports survivors and newly unreachable
destinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.scion.path import Path
from repro.scion.snet import ScionHost
from repro.topology.scionlab import AVAILABLE_SERVERS


@dataclass(frozen=True)
class ExclusionPolicy:
    """The AS-level exclusions of a user request, topology-applicable."""

    countries: FrozenSet[str] = frozenset()
    operators: FrozenSet[str] = frozenset()
    ases: FrozenSet[str] = frozenset()
    isds: FrozenSet[int] = frozenset()

    @classmethod
    def make(
        cls,
        *,
        countries: Iterable[str] = (),
        operators: Iterable[str] = (),
        ases: Iterable[str] = (),
        isds: Iterable[int] = (),
    ) -> "ExclusionPolicy":
        return cls(
            countries=frozenset(c.upper() for c in countries),
            operators=frozenset(operators),
            ases=frozenset(str(a) for a in ases),
            isds=frozenset(int(i) for i in isds),
        )

    def admits(self, host: ScionHost, path: Path) -> bool:
        """True when no hop violates the policy."""
        for ia in path.ases():
            asys = host.topology.as_of(ia)
            if asys.country.upper() in self.countries:
                return False
            if asys.operator in self.operators:
                return False
            if str(ia) in self.ases:
                return False
            if ia.isd in self.isds:
                return False
        return True


@dataclass(frozen=True)
class DestinationDiversity:
    server_id: int
    isd_as: str
    total_paths: int
    admissible_paths: int

    @property
    def reachable(self) -> bool:
        return self.admissible_paths > 0

    @property
    def survival_fraction(self) -> float:
        return self.admissible_paths / self.total_paths if self.total_paths else 0.0


@dataclass(frozen=True)
class WhatIfResult:
    policy: ExclusionPolicy
    destinations: Tuple[DestinationDiversity, ...]

    @property
    def unreachable(self) -> List[DestinationDiversity]:
        return [d for d in self.destinations if not d.reachable]

    @property
    def reachable_count(self) -> int:
        return sum(1 for d in self.destinations if d.reachable)

    def diversity_of(self, server_id: int) -> Optional[DestinationDiversity]:
        for d in self.destinations:
            if d.server_id == server_id:
                return d
        return None

    def format_text(self) -> str:
        rows = [
            (
                d.server_id,
                d.isd_as,
                d.total_paths,
                d.admissible_paths,
                f"{100 * d.survival_fraction:.0f}%",
                "yes" if d.reachable else "NO",
            )
            for d in self.destinations
        ]
        table = format_table(
            ["dest", "isd_as", "paths", "admissible", "survive", "reachable"],
            rows,
            title="What-if — path diversity under the exclusion policy",
        )
        lost = ", ".join(d.isd_as for d in self.unreachable) or "none"
        return (
            f"{table}\n"
            f"reachable destinations: {self.reachable_count}/"
            f"{len(self.destinations)}\n"
            f"destinations the policy makes unreachable: {lost}"
        )


def path_diversity(
    host: ScionHost,
    policy: ExclusionPolicy,
    *,
    servers: Sequence[Tuple[str, str]] = AVAILABLE_SERVERS,
    hop_slack: int = 1,
) -> WhatIfResult:
    """Evaluate ``policy`` against every destination's path set.

    Uses the same hop-count filter as the test-suite (min + ``hop_slack``)
    so the counts line up with what the measurement campaign would see.
    """
    out: List[DestinationDiversity] = []
    for server_id, (isd_as, _ip) in enumerate(servers, start=1):
        paths = host.paths(isd_as, max_paths=None)
        kept = [
            p for p in paths if p.hop_count <= paths[0].hop_count + hop_slack
        ]
        admissible = sum(1 for p in kept if policy.admits(host, p))
        out.append(
            DestinationDiversity(
                server_id=server_id,
                isd_as=isd_as,
                total_paths=len(kept),
                admissible_paths=admissible,
            )
        )
    return WhatIfResult(policy=policy, destinations=tuple(out))
