"""Plain-text table rendering for figure data.

Every experiment prints its figure as an aligned text table, so the
benchmark harness regenerates "the same rows/series the paper reports"
without a plotting dependency.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], *, title: str = ""
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
