"""Bandwidth analysis: per-path whiskers by direction and packet class.

Figures 7 and 8 plot, per path to one destination, the distribution of
achieved bandwidth — upstream (client->server) on the left, downstream
on the right, one whisker pair per path: MTU-sized packets (yellow) vs
64-byte packets (blue).  Fig 7 uses a 12 Mbps target; Fig 8 repeats at
150 Mbps, where the 64 B/MTU ordering flips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import WhiskerStats, whisker_stats
from repro.docdb.database import Database
from repro.suite.config import PATHS_COLLECTION, STATS_COLLECTION

#: The four measured series per path: (direction, packet class) -> field.
SERIES_FIELDS: Dict[Tuple[str, str], str] = {
    ("up", "small"): "bw_up_small_mbps",
    ("up", "mtu"): "bw_up_mtu_mbps",
    ("down", "small"): "bw_down_small_mbps",
    ("down", "mtu"): "bw_down_mtu_mbps",
}


@dataclass(frozen=True)
class BandwidthSeries:
    """All four whiskers of one path in Fig 7/8."""

    path_id: str
    path_index: int
    hop_count: int
    target_mbps: float
    whiskers: Dict[Tuple[str, str], WhiskerStats]

    def mean(self, direction: str, packet: str) -> Optional[float]:
        w = self.whiskers.get((direction, packet))
        return w.mean if w is not None else None


def bandwidth_by_path(
    db: Database,
    server_id: int,
    *,
    target_mbps: Optional[float] = None,
) -> List[BandwidthSeries]:
    """Per-path bandwidth distributions for one destination.

    ``target_mbps`` filters samples by the campaign's attempted rate so
    12 Mbps and 150 Mbps campaigns stored in the same database separate
    cleanly into Fig 7 and Fig 8.
    """
    out: List[BandwidthSeries] = []
    for path_doc in db[PATHS_COLLECTION].find(
        {"server_id": server_id}, sort=[("path_index", 1)]
    ):
        flt: Dict[str, object] = {"path_id": path_doc["_id"]}
        if target_mbps is not None:
            flt["target_mbps"] = {"$gte": target_mbps * 0.99, "$lte": target_mbps * 1.01}
        docs = db[STATS_COLLECTION].find(flt)
        if not docs:
            continue
        whiskers: Dict[Tuple[str, str], WhiskerStats] = {}
        for key, field_name in SERIES_FIELDS.items():
            samples = [d[field_name] for d in docs if d.get(field_name) is not None]
            if samples:
                whiskers[key] = whisker_stats(samples)
        if not whiskers:
            continue
        out.append(
            BandwidthSeries(
                path_id=str(path_doc["_id"]),
                path_index=int(path_doc["path_index"]),
                hop_count=int(path_doc["hop_count"]),
                target_mbps=float(docs[0].get("target_mbps", 0.0)),
                whiskers=whiskers,
            )
        )
    return out


@dataclass(frozen=True)
class BandwidthSummary:
    """Aggregate ordering checks across a destination's paths."""

    n_paths: int
    mean_up_small: float
    mean_up_mtu: float
    mean_down_small: float
    mean_down_mtu: float

    @property
    def downstream_beats_upstream(self) -> bool:
        """The Internet-asymmetry observation of Fig 7."""
        return (
            self.mean_down_small > self.mean_up_small
            and self.mean_down_mtu > self.mean_up_mtu
        )

    @property
    def mtu_beats_small(self) -> bool:
        """True in the 12 Mbps regime (Fig 7), False at 150 Mbps (Fig 8)."""
        return (
            self.mean_up_mtu > self.mean_up_small
            and self.mean_down_mtu > self.mean_down_small
        )


def summarize(series: List[BandwidthSeries]) -> BandwidthSummary:
    """Average the per-path means into the figure-level ordering check."""

    def avg(direction: str, packet: str) -> float:
        vals = [m for s in series if (m := s.mean(direction, packet)) is not None]
        return sum(vals) / len(vals) if vals else 0.0

    return BandwidthSummary(
        n_paths=len(series),
        mean_up_small=avg("up", "small"),
        mean_up_mtu=avg("up", "mtu"),
        mean_down_small=avg("down", "small"),
        mean_down_mtu=avg("down", "mtu"),
    )
