"""Per-link latency attribution via traceroute.

§3.3 calls traceroute "particularly useful to test how the latency is
affected by each link"; §6.1 then localises the Ireland detour latency
in specific long-haul links.  This module does that attribution
systematically: traceroute a set of paths, convert cumulative per-hop
RTTs into per-link increments, aggregate per link across paths, and
rank the links that dominate end-to-end latency.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.scion.path import Path
from repro.scion.snet import ScionHost


@dataclass(frozen=True)
class LinkLatency:
    """Aggregated one-way-ish latency contribution of one link."""

    link_key: str  # "A -> B" by AS
    samples: int
    mean_increment_ms: float
    max_increment_ms: float
    paths: Tuple[str, ...]


def attribute_link_latency(
    host: ScionHost,
    paths: Sequence[Path],
    *,
    probes_per_hop: int = 3,
    labels: Optional[Sequence[str]] = None,
) -> List[LinkLatency]:
    """Traceroute every path and attribute latency per link.

    Returns links sorted by mean RTT increment, largest first.  The
    increment of hop *k* is the median RTT to router *k* minus the
    median RTT to router *k-1* — a (noisy but unbiased) estimate of
    twice the link's one-way contribution.
    """
    per_link: Dict[str, List[float]] = defaultdict(list)
    touched: Dict[str, set] = defaultdict(set)
    labels = list(labels) if labels is not None else [str(i) for i in range(len(paths))]

    for label, path in zip(labels, paths):
        hops = host.scmp.traceroute(path, probes_per_hop=probes_per_hop)
        prev_median = 0.0
        prev_as = str(path.src)
        for hop in hops:
            valid = sorted(r for r in hop.rtts_ms if r is not None)
            if not valid:
                prev_as = str(hop.isd_as)
                continue
            median = valid[len(valid) // 2]
            increment = max(0.0, median - prev_median)
            key = f"{prev_as} -> {hop.isd_as}"
            per_link[key].append(increment)
            touched[key].add(label)
            prev_median = median
            prev_as = str(hop.isd_as)

    out = [
        LinkLatency(
            link_key=key,
            samples=len(increments),
            mean_increment_ms=sum(increments) / len(increments),
            max_increment_ms=max(increments),
            paths=tuple(sorted(touched[key])),
        )
        for key, increments in per_link.items()
    ]
    out.sort(key=lambda l: -l.mean_increment_ms)
    return out


def dominant_links(
    attribution: Sequence[LinkLatency], *, top_k: int = 5
) -> List[LinkLatency]:
    """The ``top_k`` heaviest links — §6.1's culprits."""
    return list(attribution[:top_k])


def format_attribution(attribution: Sequence[LinkLatency]) -> str:
    rows = [
        (
            l.link_key,
            l.samples,
            l.mean_increment_ms,
            l.max_increment_ms,
            len(l.paths),
        )
        for l in attribution
    ]
    return format_table(
        ["link", "samples", "mean ΔRTT ms", "max ΔRTT ms", "#paths"],
        rows,
        title="Per-link latency attribution (traceroute increments)",
    )
