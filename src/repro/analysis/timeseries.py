"""Time-series analysis of stored measurements.

The paper's Fig 9 discussion *infers* a temporal cause — "since these
measurements were carried out in succession ... our hypothesis is that
one or more of these common nodes experienced a period of congestion" —
but never checks it in the data.  With timestamps on every stored
sample, the reproduction can: this module builds per-path timelines and
detects the simulated-time windows where loss concentrates, confirming
(or refuting) that a failure cluster is a *period*, not a property of
the paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.docdb.database import Database
from repro.suite.config import STATS_COLLECTION


@dataclass(frozen=True)
class LossSample:
    path_id: str
    timestamp_ms: int
    loss_pct: float


@dataclass(frozen=True)
class LossWindow:
    """A contiguous simulated-time interval of heavy loss."""

    start_ms: int
    end_ms: int
    samples: int
    affected_paths: Tuple[str, ...]

    @property
    def duration_ms(self) -> int:
        return self.end_ms - self.start_ms


def loss_timeline(db: Database, server_id: int) -> List[LossSample]:
    """All loss samples for a destination, in measurement order."""
    docs = db[STATS_COLLECTION].find(
        {"server_id": server_id}, sort=[("timestamp_ms", 1)]
    )
    return [
        LossSample(
            path_id=str(d["path_id"]),
            timestamp_ms=int(d["timestamp_ms"]),
            loss_pct=float(d["loss_pct"]),
        )
        for d in docs
        if d.get("loss_pct") is not None
    ]


def heavy_loss_windows(
    timeline: Sequence[LossSample],
    *,
    threshold_pct: float = 50.0,
    merge_gap_ms: int = 60_000,
) -> List[LossWindow]:
    """Contiguous windows where samples exceed ``threshold_pct`` loss.

    Consecutive heavy samples closer than ``merge_gap_ms`` fold into one
    window — matching how a single congestion period swallows several
    back-to-back measurements.
    """
    heavy = [s for s in timeline if s.loss_pct >= threshold_pct]
    if not heavy:
        return []
    windows: List[LossWindow] = []
    start = heavy[0].timestamp_ms
    end = heavy[0].timestamp_ms
    paths = {heavy[0].path_id}
    count = 1
    for sample in heavy[1:]:
        if sample.timestamp_ms - end <= merge_gap_ms:
            end = sample.timestamp_ms
            paths.add(sample.path_id)
            count += 1
        else:
            windows.append(
                LossWindow(start_ms=start, end_ms=end, samples=count,
                           affected_paths=tuple(sorted(paths)))
            )
            start = end = sample.timestamp_ms
            paths = {sample.path_id}
            count = 1
    windows.append(
        LossWindow(start_ms=start, end_ms=end, samples=count,
                   affected_paths=tuple(sorted(paths)))
    )
    return windows


def temporal_concentration(
    timeline: Sequence[LossSample],
    windows: Sequence[LossWindow],
    *,
    threshold_pct: float = 50.0,
) -> float:
    """Fraction of heavy-loss samples falling inside detected windows.

    1.0 means every failure is temporally clustered — the signature of
    a transient congestion period rather than permanently broken paths.
    """
    heavy = [s for s in timeline if s.loss_pct >= threshold_pct]
    if not heavy:
        return 1.0
    inside = sum(
        1
        for s in heavy
        if any(w.start_ms <= s.timestamp_ms <= w.end_ms for w in windows)
    )
    return inside / len(heavy)


def path_latency_series(
    db: Database, path_id: str
) -> List[Tuple[int, Optional[float]]]:
    """(timestamp_ms, avg_latency_ms) history of one path."""
    docs = db[STATS_COLLECTION].find(
        {"path_id": path_id}, sort=[("timestamp_ms", 1)]
    )
    return [(int(d["timestamp_ms"]), d.get("avg_latency_ms")) for d in docs]
