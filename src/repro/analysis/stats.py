"""Whisker-plot statistics.

The paper's latency and bandwidth figures are box-and-whisker plots
("we chose whisker plots to visually represent the distribution of
latency values", §6.1).  :class:`WhiskerStats` carries exactly the
numbers such a plot draws: quartiles, median, Tukey whiskers
(1.5 x IQR) and outliers, plus mean and count for the text tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class WhiskerStats:
    """Everything a box plot shows for one sample set."""

    n: int
    mean: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    outliers: Tuple[float, ...]

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    @property
    def spread(self) -> float:
        """Whisker-to-whisker extent — the 'compactness' Fig 6 compares."""
        return self.whisker_high - self.whisker_low

    def format_compact(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.2f} "
            f"[{self.whisker_low:.2f} |{self.q1:.2f} {self.median:.2f} "
            f"{self.q3:.2f}| {self.whisker_high:.2f}]"
            + (f" +{len(self.outliers)} outliers" if self.outliers else "")
        )


def whisker_stats(samples: Iterable[float]) -> WhiskerStats:
    """Compute box-plot statistics with Tukey (1.5*IQR) whiskers."""
    values = np.asarray([s for s in samples if s is not None], dtype=float)
    if values.size == 0:
        raise ValidationError("whisker stats need at least one sample")
    q1, median, q3 = np.percentile(values, [25, 50, 75])
    iqr = q3 - q1
    lo_fence = q1 - 1.5 * iqr
    hi_fence = q3 + 1.5 * iqr
    inside = values[(values >= lo_fence) & (values <= hi_fence)]
    whisker_low = float(inside.min()) if inside.size else float(values.min())
    whisker_high = float(inside.max()) if inside.size else float(values.max())
    # Interpolated quartiles can fall outside the data the whiskers cap;
    # clamp so whiskers never retract into the box (as drawn plots do).
    whisker_low = min(whisker_low, float(q1))
    whisker_high = max(whisker_high, float(q3))
    outliers = tuple(
        float(v) for v in np.sort(values[(values < lo_fence) | (values > hi_fence)])
    )
    return WhiskerStats(
        n=int(values.size),
        mean=float(values.mean()),
        minimum=float(values.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(values.max()),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
    )


def cluster_means(values: Sequence[float], *, gap_factor: float = 2.0) -> List[List[float]]:
    """Split sorted values into clusters at large gaps.

    Used to identify the latency "layers" of Fig 5: sorted path means
    separate into groups wherever the jump exceeds ``gap_factor`` times
    the median inter-value gap (with an absolute floor so tight sets
    form one cluster).
    """
    ordered = sorted(float(v) for v in values)
    if not ordered:
        return []
    if len(ordered) == 1:
        return [ordered]
    gaps = np.diff(ordered)
    median_gap = float(np.median(gaps))
    threshold = max(gap_factor * median_gap, 1e-9, 0.05 * (ordered[-1] - ordered[0]))
    clusters: List[List[float]] = [[ordered[0]]]
    for value, gap in zip(ordered[1:], gaps):
        if gap > threshold:
            clusters.append([value])
        else:
            clusters[-1].append(value)
    return clusters
