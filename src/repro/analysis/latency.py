"""Latency analyses: per-path whiskers (Fig 5) and ISD grouping (Fig 6).

Fig 5 plots the distribution of average-latency samples per path to one
destination, paths grouped by hop count (6-hop red, 7-hop purple), and
reveals three latency layers caused by geographic detours.  Fig 6
groups the same samples by (set of ISDs traversed, hop count), then
repeats the exercise with long-distance paths removed to show distance
— not hop count or ISDs — drives latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import WhiskerStats, cluster_means, whisker_stats
from repro.docdb.database import Database
from repro.suite.config import PATHS_COLLECTION, STATS_COLLECTION


@dataclass(frozen=True)
class PathLatencySeries:
    """One box of Fig 5: a path's latency sample distribution."""

    path_id: str
    path_index: int
    hop_count: int
    ases: Tuple[str, ...]
    stats: WhiskerStats

    def transits_any(self, ases: Sequence[str]) -> bool:
        wanted = set(ases)
        return any(a in wanted for a in self.ases)


def latency_by_path(db: Database, server_id: int) -> List[PathLatencySeries]:
    """Per-path latency distributions for one destination (Fig 5)."""
    out: List[PathLatencySeries] = []
    for path_doc in db[PATHS_COLLECTION].find(
        {"server_id": server_id}, sort=[("path_index", 1)]
    ):
        samples = [
            d["avg_latency_ms"]
            for d in db[STATS_COLLECTION].find({"path_id": path_doc["_id"]})
            if d.get("avg_latency_ms") is not None
        ]
        if not samples:
            continue
        out.append(
            PathLatencySeries(
                path_id=str(path_doc["_id"]),
                path_index=int(path_doc["path_index"]),
                hop_count=int(path_doc["hop_count"]),
                ases=tuple(path_doc["ases"]),
                stats=whisker_stats(samples),
            )
        )
    return out


def latency_layers(series: Sequence[PathLatencySeries]) -> List[List[str]]:
    """Group paths into latency layers (the Fig 5 'three layers').

    Returns lists of path ids, ordered by layer mean.
    """
    means = {s.path_id: s.stats.mean for s in series}
    clusters = cluster_means(list(means.values()))
    layers: List[List[str]] = []
    for cluster in clusters:
        members = [
            pid
            for pid, mean in means.items()
            if cluster[0] - 1e-9 <= mean <= cluster[-1] + 1e-9
        ]
        layers.append(sorted(members, key=lambda pid: means[pid]))
    return layers


@dataclass(frozen=True)
class IsdGroupSeries:
    """One column of Fig 6: samples grouped by (ISD set, hop count)."""

    isds: Tuple[int, ...]
    hop_count: int
    path_ids: Tuple[str, ...]
    stats: WhiskerStats


def latency_by_isd_group(
    db: Database,
    server_id: int,
    *,
    exclude_transit_ases: Sequence[str] = (),
) -> List[IsdGroupSeries]:
    """Group latency samples by (ISD set, hop count) — Fig 6.

    ``exclude_transit_ases`` implements the figure's right-hand panel:
    dropping paths through the long-distance ASes (16-ffaa:0:1007,
    16-ffaa:0:1004) before grouping.
    """
    groups: Dict[Tuple[Tuple[int, ...], int], Tuple[List[str], List[float]]] = {}
    excluded = set(exclude_transit_ases)
    for path_doc in db[PATHS_COLLECTION].find(
        {"server_id": server_id}, sort=[("path_index", 1)]
    ):
        if excluded and any(a in excluded for a in path_doc["ases"]):
            continue
        key = (tuple(path_doc["isds"]), int(path_doc["hop_count"]))
        path_ids, samples = groups.setdefault(key, ([], []))
        path_ids.append(str(path_doc["_id"]))
        samples.extend(
            d["avg_latency_ms"]
            for d in db[STATS_COLLECTION].find({"path_id": path_doc["_id"]})
            if d.get("avg_latency_ms") is not None
        )
    out: List[IsdGroupSeries] = []
    for (isds, hop_count), (path_ids, samples) in sorted(groups.items()):
        if not samples:
            continue
        out.append(
            IsdGroupSeries(
                isds=isds,
                hop_count=hop_count,
                path_ids=tuple(path_ids),
                stats=whisker_stats(samples),
            )
        )
    return out
