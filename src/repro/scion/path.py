"""End-to-end forwarding paths.

A :class:`Path` is what ``scion showpaths`` lists and what measurements
pin with ``--sequence``: the ordered ASes with the interface pair used
at each.  Hop count (number of ASes) is the paper's ranking metric.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import TopologyError, ValidationError
from repro.netsim.network import LinkTraversal
from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS


@dataclass(frozen=True)
class PathHop:
    """One AS on a forwarding path with its ingress/egress interfaces."""

    isd_as: ISDAS
    ingress: Optional[int]
    egress: Optional[int]

    def predicate(self) -> str:
        """Hop-predicate notation ``ISD-AS#in,out`` (0 = unspecified)."""
        i = self.ingress if self.ingress is not None else 0
        e = self.egress if self.egress is not None else 0
        return f"{self.isd_as}#{i},{e}"


@dataclass(frozen=True)
class Path:
    """An end-to-end SCION path from ``src`` to ``dst``."""

    src: ISDAS
    dst: ISDAS
    hops: Tuple[PathHop, ...]
    n_segments: int = 2
    mtu: int = 1472

    def __post_init__(self) -> None:
        if len(self.hops) < 1:
            raise ValidationError("path needs at least one hop")
        if self.hops[0].isd_as != self.src or self.hops[-1].isd_as != self.dst:
            raise ValidationError("path endpoints disagree with src/dst")
        if self.hops[0].ingress is not None or self.hops[-1].egress is not None:
            raise ValidationError("terminal hops must not have outer interfaces")
        seen = set()
        for hop in self.hops:
            if hop.isd_as in seen:
                raise ValidationError(f"path loops through {hop.isd_as}")
            seen.add(hop.isd_as)

    # -- metrics the paper uses --------------------------------------------------

    @property
    def hop_count(self) -> int:
        """Number of ASes traversed (the paper's path-length metric)."""
        return len(self.hops)

    @property
    def n_links(self) -> int:
        return len(self.hops) - 1

    def isd_set(self) -> FrozenSet[int]:
        """The set of ISDs traversed — a grouping key in Fig 6."""
        return frozenset(h.isd_as.isd for h in self.hops)

    def ases(self) -> Tuple[ISDAS, ...]:
        return tuple(h.isd_as for h in self.hops)

    def transits(self, ia: "ISDAS | str") -> bool:
        return ISDAS.parse(ia) in set(self.ases())

    # -- representations ----------------------------------------------------------

    def sequence(self) -> str:
        """The ``--sequence`` hop-predicate string pinning this path."""
        return " ".join(h.predicate() for h in self.hops)

    def hops_display(self) -> str:
        """Human format used by showpaths: ``A 1>2 B 3>4 C``."""
        parts: List[str] = [str(self.hops[0].isd_as)]
        for prev, nxt in zip(self.hops, self.hops[1:]):
            parts.append(f"{prev.egress}>{nxt.ingress}")
            parts.append(str(nxt.isd_as))
        return " ".join(parts)

    def fingerprint(self) -> str:
        """Stable short id of the interface sequence."""
        return hashlib.sha256(self.sequence().encode()).hexdigest()[:16]

    def sort_key(self) -> Tuple[int, Tuple[str, ...]]:
        """Ranking used by showpaths: hop count, then interface sequence."""
        return (self.hop_count, tuple(h.predicate() for h in self.hops))

    # -- data-plane resolution -------------------------------------------------------

    def traversals(self, topology: Topology) -> List[LinkTraversal]:
        """Resolve the hop sequence into concrete link traversals.

        Memoized per ``(topology, topology.epoch)``: the same ``Path``
        object is resolved on every ping/bwtest of a campaign, so the
        link lookups run once and every later call is a list copy.  The
        cache rides the path instance (a weak topology reference plus
        the topology's mutation epoch), so a different or rebuilt
        topology re-resolves from scratch.
        """
        cached = self.__dict__.get("_traversal_memo")
        if cached is not None:
            topo_ref, epoch, steps = cached
            if topo_ref() is topology and epoch == topology.epoch:
                return list(steps)
        steps = []
        for hop, nxt in zip(self.hops, self.hops[1:]):
            if hop.egress is None or nxt.ingress is None:
                raise TopologyError(f"unresolvable hop pair {hop} -> {nxt}")
            link = topology.link_at(hop.isd_as, hop.egress)
            if link.other(hop.isd_as) != nxt.isd_as:
                raise TopologyError(
                    f"egress {hop.isd_as}#{hop.egress} does not lead to {nxt.isd_as}"
                )
            steps.append(LinkTraversal(link=link, sender=hop.isd_as))
        object.__setattr__(
            self,
            "_traversal_memo",
            (weakref.ref(topology), topology.epoch, tuple(steps)),
        )
        return steps

    def static_latency_ms(self, topology: Topology) -> float:
        """Sum of one-way propagation delays — showpaths' latency hint."""
        from repro.util.geo import propagation_delay_ms

        total = 0.0
        for step in self.traversals(topology):
            a = topology.as_of(step.link.a).location
            b = topology.as_of(step.link.b).location
            total += propagation_delay_ms(a, b)
        return total

    def resolve_mtu(self, topology: Topology) -> int:
        """Path MTU = min of link MTUs and endpoint AS MTUs."""
        mtus = [topology.as_of(self.src).mtu, topology.as_of(self.dst).mtu]
        mtus.extend(step.link.mtu for step in self.traversals(topology))
        return min(mtus)

    def __str__(self) -> str:
        return f"[{self.hops_display()}]"
