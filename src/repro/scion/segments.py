"""Path segments: the control-plane building blocks of SCION paths.

A segment is a chain of AS entries with the interface pair each AS uses.
Up-segments run from a leaf AS to a core AS, core-segments between core
ASes, down-segments from a core AS to a leaf.  The combinator splices
one of each (down/core optional) into an end-to-end path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ValidationError
from repro.topology.isd_as import ISDAS


class SegmentKind(enum.Enum):
    UP = "up"
    CORE = "core"
    DOWN = "down"


@dataclass(frozen=True)
class ASEntry:
    """One AS inside a segment, with its ingress/egress interface ids.

    Interfaces are oriented in the segment's travel direction: traffic
    enters through ``ingress`` and leaves through ``egress``.  The first
    entry has no ingress; the last no egress.
    """

    isd_as: ISDAS
    ingress: Optional[int]
    egress: Optional[int]

    def reversed(self) -> "ASEntry":
        return ASEntry(isd_as=self.isd_as, ingress=self.egress, egress=self.ingress)

    def __str__(self) -> str:
        i = self.ingress if self.ingress is not None else 0
        e = self.egress if self.egress is not None else 0
        return f"{self.isd_as}#{i},{e}"


@dataclass(frozen=True)
class PathSegment:
    """An immutable chain of :class:`ASEntry` of one :class:`SegmentKind`."""

    kind: SegmentKind
    entries: Tuple[ASEntry, ...]

    def __post_init__(self) -> None:
        if len(self.entries) < 1:
            raise ValidationError("segment needs at least one AS entry")
        if self.entries[0].ingress is not None:
            raise ValidationError("first segment entry must have no ingress")
        if self.entries[-1].egress is not None:
            raise ValidationError("last segment entry must have no egress")
        for prev, nxt in zip(self.entries, self.entries[1:]):
            if prev.egress is None or nxt.ingress is None:
                raise ValidationError("interior segment entries need both interfaces")
            if prev.isd_as == nxt.isd_as:
                raise ValidationError(f"segment revisits AS {prev.isd_as}")

    @property
    def first_as(self) -> ISDAS:
        return self.entries[0].isd_as

    @property
    def last_as(self) -> ISDAS:
        return self.entries[-1].isd_as

    @property
    def n_links(self) -> int:
        return len(self.entries) - 1

    def ases(self) -> Tuple[ISDAS, ...]:
        return tuple(e.isd_as for e in self.entries)

    def reversed(self, kind: Optional[SegmentKind] = None) -> "PathSegment":
        """The same chain walked the other way (up <-> down)."""
        if kind is None:
            kind = {
                SegmentKind.UP: SegmentKind.DOWN,
                SegmentKind.DOWN: SegmentKind.UP,
                SegmentKind.CORE: SegmentKind.CORE,
            }[self.kind]
        return PathSegment(
            kind=kind,
            entries=tuple(e.reversed() for e in reversed(self.entries)),
        )

    def __str__(self) -> str:
        return f"{self.kind.value}[" + " ".join(str(e) for e in self.entries) + "]"
