"""``snet``-style host facade: the thin bindings applications build on.

Bundles everything one SCION end host sees — its identity, the local
daemon, the SCMP client and the network — behind a small API.  The
paper's tooling (showpaths/ping/traceroute/bwtester, the test-suite)
and the examples all construct a :class:`ScionHost` and go from there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.netsim.clock import SimClock
from repro.netsim.config import NetworkConfig
from repro.netsim.network import NetworkSim
from repro.scion.beaconing import Beaconer
from repro.scion.daemon import Sciond
from repro.scion.path import Path
from repro.scion.scmp import EchoStats, ScmpService
from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS


class ScionHost:
    """One end host attached to a simulated SCION network."""

    def __init__(
        self,
        topology: Topology,
        local_ia: "ISDAS | str",
        local_ip: Optional[str] = None,
        *,
        network: Optional[NetworkSim] = None,
        config: Optional[NetworkConfig] = None,
        clock: Optional[SimClock] = None,
    ) -> None:
        self.topology = topology
        self.local_ia = ISDAS.parse(local_ia)
        self.local_ip = local_ip or topology.as_of(self.local_ia).primary_host.ip
        self.network = network or NetworkSim(topology, config=config, clock=clock)
        self.daemon = Sciond(topology, self.local_ia)
        self.scmp = ScmpService(self.network)

    @property
    def clock(self) -> SimClock:
        return self.network.clock

    def address(self) -> str:
        """What ``scion address`` prints for this host."""
        return self.local_ia.address(self.local_ip)

    def paths(self, dst: "ISDAS | str", *, max_paths: Optional[int] = 10,
              refresh: bool = False) -> List[Path]:
        return self.daemon.paths(dst, max_paths=max_paths, refresh=refresh)

    def ping(
        self,
        dst: "ISDAS | str",
        dst_ip: str,
        *,
        path: Optional[Path] = None,
        count: int = 30,
        interval_s: float = 0.1,
    ) -> EchoStats:
        """Ping ``dst`` along ``path`` (default: best-ranked path)."""
        if path is None:
            path = self.paths(dst, max_paths=1)[0]
        return self.scmp.echo_series(
            path, dst_ip, count=count, interval_s=interval_s
        )

    @classmethod
    def scionlab(cls, *, seed: int = 20231112) -> "ScionHost":
        """The canonical world of the paper: MY_AS inside SCIONLab."""
        from repro.topology.scionlab import (
            MY_AS,
            build_scionlab_world,
            scionlab_network_config,
        )

        topo = build_scionlab_world()
        return cls(topo, MY_AS, config=scionlab_network_config(seed=seed))
