"""Segment combination: splice up + core + down segments into paths.

Mirrors the SCION path combinator's core rules:

* an up segment of the source is joined to a down segment of the
  destination through a core segment between their terminal core ASes,
* the core segment is omitted when both terminate at the same core AS,
* when the destination *is* a core AS, only up + core are used,
* spliced paths must be loop-free (an AS may appear only once), and
* duplicate interface sequences are removed.

Results are returned ranked exactly like ``scion showpaths``: by hop
count, then lexicographically by interface sequence.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NoPathError
from repro.scion.beaconing import Beaconer
from repro.scion.path import Path, PathHop
from repro.scion.segments import ASEntry, PathSegment
from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS


def _merge_chains(
    chains: Sequence[Tuple[ASEntry, ...]]
) -> Optional[Tuple[PathHop, ...]]:
    """Concatenate segment entry chains, fusing junction ASes.

    Consecutive chains must share their junction AS (last of one == first
    of the next); the fused hop takes the ingress of the earlier entry and
    the egress of the later one.  Returns None if the splice would loop.
    """
    entries: List[ASEntry] = []
    for chain in chains:
        if not chain:
            continue
        if entries and entries[-1].isd_as == chain[0].isd_as:
            junction = ASEntry(
                isd_as=entries[-1].isd_as,
                ingress=entries[-1].ingress,
                egress=chain[0].egress,
            )
            entries[-1] = junction
            entries.extend(chain[1:])
        else:
            entries.extend(chain)
    seen = set()
    for e in entries:
        if e.isd_as in seen:
            return None
        seen.add(e.isd_as)
    return tuple(PathHop(isd_as=e.isd_as, ingress=e.ingress, egress=e.egress) for e in entries)


def combine_paths(
    beaconer: Beaconer,
    src: "ISDAS | str",
    dst: "ISDAS | str",
    *,
    max_paths: Optional[int] = None,
    use_shortcuts: bool = True,
) -> List[Path]:
    """All loop-free end-to-end paths from ``src`` to ``dst``, ranked.

    ``use_shortcuts`` additionally builds the two SCION shortcut path
    shapes that skip the core: *common-AS shortcuts* (the up and down
    segments cross at a non-core AS) and *peering shortcuts* (an AS on
    the up segment has a PEER link to an AS on the down segment).

    Raises :class:`NoPathError` when the two ASes are not connected
    within the beaconer's segment length bounds.
    """
    src, dst = ISDAS.parse(src), ISDAS.parse(dst)
    topo = beaconer.topology
    if src == dst:
        raise NoPathError(f"source and destination coincide: {src}")

    ups = beaconer.up_segments(src)
    dst_is_core = topo.as_of(dst).is_core
    downs: Tuple[PathSegment, ...]
    if dst_is_core:
        downs = ()
    else:
        downs = beaconer.down_segments(dst)

    unique: Dict[str, Path] = {}
    for up in ups:
        core_src = up.last_as
        if dst_is_core:
            for core in beaconer.core_segments(core_src, dst):
                n_segs = (1 if up.n_links else 0) + (1 if core.n_links else 0)
                hops = _merge_chains([up.entries, core.entries])
                _register(unique, src, dst, hops, max(n_segs, 1), topo)
        else:
            for down in downs:
                core_dst = down.first_as
                for core in beaconer.core_segments(core_src, core_dst):
                    n_segs = (
                        (1 if up.n_links else 0)
                        + (1 if core.n_links else 0)
                        + (1 if down.n_links else 0)
                    )
                    hops = _merge_chains([up.entries, core.entries, down.entries])
                    _register(unique, src, dst, hops, max(n_segs, 1), topo)
            if use_shortcuts:
                _combine_shortcuts(unique, beaconer, src, dst, up, downs)

    if not unique:
        raise NoPathError(f"no SCION path from {src} to {dst}")
    ranked = sorted(unique.values(), key=Path.sort_key)
    if max_paths is not None:
        ranked = ranked[:max_paths]
    return ranked


def _combine_shortcuts(
    unique: Dict[str, Path],
    beaconer: Beaconer,
    src: ISDAS,
    dst: ISDAS,
    up: PathSegment,
    downs: Tuple[PathSegment, ...],
) -> None:
    """Common-AS and peering shortcuts between one up and all down segs.

    Common-AS shortcut: the segments share a non-terminal AS — splice
    there and never touch the core.  Peering shortcut: an up-segment AS
    peers laterally with a down-segment AS — cross the PEER link.
    """
    from repro.topology.entities import LinkKind

    topo = beaconer.topology
    for down in downs:
        up_index = {e.isd_as: i for i, e in enumerate(up.entries)}

        # -- common-AS ("crossover") shortcuts --------------------------------
        for j, entry in enumerate(down.entries):
            i = up_index.get(entry.isd_as)
            if i is None:
                continue
            if i == len(up.entries) - 1 and j == 0:
                continue  # joining at the core is the normal combination
            head = list(up.entries[: i + 1])
            tail = list(down.entries[j:])
            # Fuse at the crossover AS: keep the up ingress-from-below
            # and the down egress-toward-dst.
            head[-1] = ASEntry(
                isd_as=entry.isd_as,
                ingress=up.entries[i].ingress,
                egress=down.entries[j].egress,
            )
            hops = _merge_chains([tuple(head[:-1]), (head[-1],) + tuple(tail[1:])])
            _register(unique, src, dst, hops, 2, topo)

        # -- peering shortcuts ----------------------------------------------------
        down_index = {e.isd_as: j for j, e in enumerate(down.entries)}
        for i, up_entry in enumerate(up.entries):
            for link in topo.links_of(up_entry.isd_as):
                if link.kind is not LinkKind.PEER:
                    continue
                other = link.other(up_entry.isd_as)
                j = down_index.get(other)
                if j is None:
                    continue
                head = list(up.entries[: i + 1])
                tail = list(down.entries[j:])
                head[-1] = ASEntry(
                    isd_as=up_entry.isd_as,
                    ingress=up.entries[i].ingress,
                    egress=link.interface_of(up_entry.isd_as),
                )
                tail[0] = ASEntry(
                    isd_as=other,
                    ingress=link.interface_of(other),
                    egress=down.entries[j].egress,
                )
                hops = _merge_chains([tuple(head), tuple(tail)])
                _register(unique, src, dst, hops, 2, topo)


def _register(
    unique: Dict[str, Path],
    src: ISDAS,
    dst: ISDAS,
    hops: Optional[Tuple[PathHop, ...]],
    n_segments: int,
    topo: Topology,
) -> None:
    if hops is None or len(hops) < 2:
        return
    path = Path(src=src, dst=dst, hops=hops, n_segments=n_segments)
    path = Path(
        src=src,
        dst=dst,
        hops=hops,
        n_segments=n_segments,
        mtu=path.resolve_mtu(topo),
    )
    key = path.sequence()
    if key not in unique:
        unique[key] = path
