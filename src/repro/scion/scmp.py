"""SCMP services: echo (ping) and traceroute over the simulated network.

These are the network-level primitives behind ``scion ping`` and
``scion traceroute`` (§3.3).  Echo probes advance the shared simulation
clock by their send interval, so a 30-probe ping occupies 3 simulated
seconds — which is what lets time-windowed congestion episodes knock out
*consecutive* measurements exactly as in Fig 9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.netsim.clock import SimClock
from repro.netsim.network import NetworkSim, ServerHealth
from repro.netsim.packet import SCMP_HEADER_BYTES, PacketSpec
from repro.scion.path import Path
from repro.topology.isd_as import ISDAS

DEFAULT_PROBE_PAYLOAD = 8  # SCMP echo data bytes used by scion ping


@dataclass(frozen=True)
class EchoStats:
    """The statistics block ``scion ping`` reports after a run."""

    destination: str
    sent: int
    received: int
    rtts_ms: Tuple[float, ...]

    @property
    def loss_fraction(self) -> float:
        return 1.0 - self.received / self.sent if self.sent else 0.0

    @property
    def loss_pct(self) -> float:
        return 100.0 * self.loss_fraction

    @property
    def min_ms(self) -> float:
        return min(self.rtts_ms) if self.rtts_ms else math.nan

    @property
    def avg_ms(self) -> float:
        return sum(self.rtts_ms) / len(self.rtts_ms) if self.rtts_ms else math.nan

    @property
    def max_ms(self) -> float:
        return max(self.rtts_ms) if self.rtts_ms else math.nan

    @property
    def mdev_ms(self) -> float:
        if len(self.rtts_ms) < 2:
            return 0.0
        avg = self.avg_ms
        return math.sqrt(sum((r - avg) ** 2 for r in self.rtts_ms) / len(self.rtts_ms))


@dataclass(frozen=True)
class TracerouteHop:
    """Per-router result of a traceroute: three probe RTTs (None = lost)."""

    index: int
    isd_as: ISDAS
    interface: int
    rtts_ms: Tuple[Optional[float], ...]


class ScmpService:
    """Echo/traceroute client bound to a network simulator."""

    def __init__(self, network: NetworkSim) -> None:
        self.network = network

    # -- echo -----------------------------------------------------------------

    def echo_series(
        self,
        path: Path,
        dst_ip: str,
        *,
        count: int = 30,
        interval_s: float = 0.1,
        payload_bytes: int = DEFAULT_PROBE_PAYLOAD,
    ) -> EchoStats:
        """Send ``count`` SCMP echoes along ``path``; advances the clock.

        Matches the paper's measurement command: 30 probes at 0.1 s
        intervals (§5.3).

        The series is computed by the vectorized batch engine
        (:meth:`~repro.netsim.network.NetworkSim.probe_batch`) by
        default; ``NetworkConfig.scalar_fallback=True`` restores the
        packet-at-a-time walker with its pre-batch RNG draw order.
        Either way the clock advances by ``count * interval_s`` and
        probe *i* departs at ``t0 + i * interval_s``.
        """
        if count < 1:
            raise ValidationError(f"echo count must be >= 1: {count}")
        if interval_s <= 0:
            raise ValidationError("echo interval must be positive")
        traversals = path.traversals(self.network.topology)
        packet = PacketSpec(
            payload_bytes=payload_bytes + SCMP_HEADER_BYTES,
            n_hops=path.hop_count,
            n_segments=path.n_segments,
            underlay_mtu=self.network.config.underlay_mtu,
        )
        server_up = (
            self.network.servers.health(path.dst, dst_ip) is not ServerHealth.DOWN
        )
        clock = self.network.clock
        if server_up and not self.network.config.scalar_fallback:
            series = self.network.probe_batch(
                traversals, packet, count, interval_s, clock.now_s
            )
            clock.advance(count * interval_s)
            return EchoStats(
                destination=path.dst.address(dst_ip),
                sent=count,
                received=series.received,
                rtts_ms=series.received_rtts(),
            )
        if server_up:
            self.network.counters.scalar_fallback_series += 1
        rtts: List[float] = []
        for _ in range(count):
            if server_up:
                result = self.network.probe_roundtrip(traversals, packet)
                if not result.lost:
                    rtts.append(result.rtt_ms)
            clock.advance(interval_s)
        return EchoStats(
            destination=path.dst.address(dst_ip),
            sent=count,
            received=len(rtts),
            rtts_ms=tuple(rtts),
        )

    # -- traceroute ------------------------------------------------------------------

    def traceroute(
        self,
        path: Path,
        *,
        probes_per_hop: int = 3,
        interval_s: float = 0.05,
    ) -> List[TracerouteHop]:
        """Probe every router interface along ``path`` in order."""
        traversals = path.traversals(self.network.topology)
        packet = PacketSpec(
            payload_bytes=SCMP_HEADER_BYTES,
            n_hops=path.hop_count,
            n_segments=path.n_segments,
            underlay_mtu=self.network.config.underlay_mtu,
        )
        hops: List[TracerouteHop] = []
        for idx in range(1, len(traversals) + 1):
            rtts: List[Optional[float]] = []
            for _ in range(probes_per_hop):
                result = self.network.probe_partial(traversals, idx, packet)
                rtts.append(result.rtt_ms)
                self.network.clock.advance(interval_s)
            step = traversals[idx - 1]
            arrived = step.link.other(step.sender)
            hops.append(
                TracerouteHop(
                    index=idx,
                    isd_as=arrived,
                    interface=step.link.interface_of(arrived),
                    rtts_ms=tuple(rtts),
                )
            )
        return hops
