"""The per-host SCION daemon (sciond equivalent).

Applications never run the combinator themselves; they ask the local
daemon, which caches resolved path sets per destination the way sciond
caches segment lookups.  The cache can be refreshed to pick up topology
or health changes — the paper's ``--skip`` flag (§5.1) corresponds to
*not* refreshing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.scion.beaconing import Beaconer
from repro.scion.combinator import combine_paths
from repro.scion.path import Path
from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS

DEFAULT_MAX_PATHS = 10  # the showpaths default the paper notes (§3.3)


class Sciond:
    """Caching path-lookup service for one local AS."""

    def __init__(
        self,
        topology: Topology,
        local_ia: "ISDAS | str",
        *,
        beaconer: Optional[Beaconer] = None,
    ) -> None:
        self.topology = topology
        self.local_ia = ISDAS.parse(local_ia)
        self.beaconer = beaconer or Beaconer(topology)
        self._cache: Dict[ISDAS, List[Path]] = {}
        #: Per-destination ``sequence -> Path`` index, built lazily on the
        #: first :meth:`path_by_sequence` lookup and invalidated together
        #: with the path cache (``flush``/``refresh``) so it can never
        #: serve paths the cache no longer holds.
        self._seq_index: Dict[ISDAS, Dict[str, Path]] = {}
        self.lookups = 0
        self.cache_hits = 0

    def paths(
        self,
        dst: "ISDAS | str",
        *,
        max_paths: Optional[int] = DEFAULT_MAX_PATHS,
        refresh: bool = False,
    ) -> List[Path]:
        """Ranked paths from the local AS to ``dst``.

        ``max_paths=None`` returns every combinable path (the equivalent
        of a very large ``-m``).  Results are cached per destination;
        ``refresh=True`` recombines from segments.
        """
        dst = ISDAS.parse(dst)
        self.lookups += 1
        cached = None if refresh else self._cache.get(dst)
        if cached is None:
            cached = combine_paths(self.beaconer, self.local_ia, dst, max_paths=None)
            self._cache[dst] = cached
            # Recombination replaces the path set; the sequence index for
            # this destination is stale until rebuilt on next use.
            self._seq_index.pop(dst, None)
        else:
            self.cache_hits += 1
        if max_paths is None:
            return list(cached)
        return cached[:max_paths]

    def flush(self) -> None:
        """Drop the path cache (and segment caches)."""
        self._cache.clear()
        self._seq_index.clear()
        self.beaconer.invalidate()

    def path_by_sequence(self, dst: "ISDAS | str", sequence: str) -> Optional[Path]:
        """Find the cached path whose predicate sequence matches exactly.

        O(1) after the first lookup per destination: a ``sequence →
        Path`` dict is built once from the cached path set (instead of
        re-rendering every path's predicate string per call — the old
        linear scan made the campaign's per-measurement path resolution
        O(paths × hops)).  The index is dropped whenever the underlying
        cache recombines (``refresh=True``) or is flushed.
        """
        dst = ISDAS.parse(dst)
        normalized = " ".join(sequence.split())
        index = self._seq_index.get(dst)
        if index is None or dst not in self._cache:
            # paths() may recombine (first use), which pops any stale
            # index for dst; build the fresh one afterwards.
            paths = self.paths(dst, max_paths=None)
            index = {p.sequence(): p for p in paths}
            self._seq_index[dst] = index
        return index.get(normalized)
