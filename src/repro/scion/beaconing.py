"""Beacon-equivalent segment discovery over the topology graph.

Real SCION floods Path Construction Beacons (PCBs): core ASes originate
them, each AS appends its entry and forwards them down parent->child
links (intra-ISD beaconing) or across core links (core beaconing).  The
set of segments an AS ends up with is exactly the set of loop-free
chains from a core to it (bounded by policy).  We compute that set
directly with bounded depth-first search over the same link structure —
the outcome is equivalent and deterministic.

Length bounds mirror SCIONLab's practical segment sizes and keep the
combinatorics matching the testbed: up/down segments of at most
``max_updown_links`` links and core segments of at most
``max_core_links`` links.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.scion.segments import ASEntry, PathSegment, SegmentKind
from repro.topology.entities import LinkKind
from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS

DEFAULT_MAX_UPDOWN_LINKS = 4
DEFAULT_MAX_CORE_LINKS = 3


class Beaconer:
    """Computes and caches up/core/down segments for a topology."""

    def __init__(
        self,
        topology: Topology,
        *,
        max_updown_links: int = DEFAULT_MAX_UPDOWN_LINKS,
        max_core_links: int = DEFAULT_MAX_CORE_LINKS,
    ) -> None:
        self.topology = topology
        self.max_updown_links = max_updown_links
        self.max_core_links = max_core_links
        self._up_cache: Dict[ISDAS, Tuple[PathSegment, ...]] = {}
        self._core_cache: Dict[Tuple[ISDAS, ISDAS], Tuple[PathSegment, ...]] = {}

    # -- up / down segments ------------------------------------------------------

    def up_segments(self, leaf: "ISDAS | str") -> Tuple[PathSegment, ...]:
        """All bounded loop-free chains from ``leaf`` up to a core AS.

        A core AS has a single trivial up segment (itself), which lets the
        combinator treat core and non-core sources uniformly.
        """
        leaf = ISDAS.parse(leaf)
        cached = self._up_cache.get(leaf)
        if cached is None:
            cached = tuple(self._walk_up(leaf))
            self._up_cache[leaf] = cached
        return cached

    def down_segments(self, leaf: "ISDAS | str") -> Tuple[PathSegment, ...]:
        """All chains from a core AS down to ``leaf`` (reversed up-segments)."""
        return tuple(seg.reversed() for seg in self.up_segments(leaf))

    def _walk_up(self, leaf: ISDAS) -> List[PathSegment]:
        topo = self.topology
        segments: List[PathSegment] = []

        if topo.as_of(leaf).is_core:
            segments.append(
                PathSegment(
                    kind=SegmentKind.UP,
                    entries=(ASEntry(isd_as=leaf, ingress=None, egress=None),),
                )
            )
            return segments

        # DFS state: current AS, chain of (as, ingress_from_below) with
        # the egress filled when we pick the next link.
        def recurse(
            current: ISDAS,
            entries: List[ASEntry],
            visited: Tuple[ISDAS, ...],
            links_used: int,
        ) -> None:
            if topo.as_of(current).is_core:
                segments.append(PathSegment(kind=SegmentKind.UP, entries=tuple(entries)))
                return
            if links_used >= self.max_updown_links:
                return
            for link in sorted(
                topo.links_of(current), key=lambda l: l.interface_of(current)
            ):
                if link.kind is not LinkKind.PARENT or link.b != current:
                    continue
                parent = link.a
                if parent in visited:
                    continue
                egress = link.interface_of(current)
                ingress_at_parent = link.interface_of(parent)
                head = entries[:-1] + [
                    ASEntry(
                        isd_as=entries[-1].isd_as,
                        ingress=entries[-1].ingress,
                        egress=egress,
                    ),
                    ASEntry(isd_as=parent, ingress=ingress_at_parent, egress=None),
                ]
                recurse(parent, head, visited + (parent,), links_used + 1)

        recurse(
            leaf,
            [ASEntry(isd_as=leaf, ingress=None, egress=None)],
            (leaf,),
            0,
        )
        return segments

    # -- core segments ---------------------------------------------------------------

    def core_segments(
        self, src_core: "ISDAS | str", dst_core: "ISDAS | str"
    ) -> Tuple[PathSegment, ...]:
        """All bounded loop-free core chains from one core AS to another.

        ``src_core == dst_core`` yields the single empty-ish one-entry
        segment, meaning "no core traversal needed".
        """
        src_core, dst_core = ISDAS.parse(src_core), ISDAS.parse(dst_core)
        key = (src_core, dst_core)
        cached = self._core_cache.get(key)
        if cached is None:
            cached = tuple(self._walk_core(src_core, dst_core))
            self._core_cache[key] = cached
        return cached

    def _walk_core(self, src: ISDAS, dst: ISDAS) -> List[PathSegment]:
        topo = self.topology
        if not topo.as_of(src).is_core or not topo.as_of(dst).is_core:
            return []
        segments: List[PathSegment] = []
        if src == dst:
            segments.append(
                PathSegment(
                    kind=SegmentKind.CORE,
                    entries=(ASEntry(isd_as=src, ingress=None, egress=None),),
                )
            )
            return segments

        def recurse(
            current: ISDAS,
            entries: List[ASEntry],
            visited: Tuple[ISDAS, ...],
            links_used: int,
        ) -> None:
            if current == dst:
                segments.append(
                    PathSegment(kind=SegmentKind.CORE, entries=tuple(entries))
                )
                return
            if links_used >= self.max_core_links:
                return
            for link in sorted(
                topo.links_of(current), key=lambda l: l.interface_of(current)
            ):
                if link.kind is not LinkKind.CORE:
                    continue
                nxt = link.other(current)
                if nxt in visited:
                    continue
                egress = link.interface_of(current)
                ingress = link.interface_of(nxt)
                head = entries[:-1] + [
                    ASEntry(
                        isd_as=entries[-1].isd_as,
                        ingress=entries[-1].ingress,
                        egress=egress,
                    ),
                    ASEntry(isd_as=nxt, ingress=ingress, egress=None),
                ]
                recurse(nxt, head, visited + (nxt,), links_used + 1)

        recurse(src, [ASEntry(isd_as=src, ingress=None, egress=None)], (src,), 0)
        return segments

    # -- cache control -------------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop all cached segments (topology change, forced refresh)."""
        self._up_cache.clear()
        self._core_cache.clear()
