"""SCION control/data plane over the simulated topology.

This package provides the path machinery the paper's tooling sits on:
beacon-derived up/core/down segments, segment combination into
end-to-end forwarding paths, a per-host daemon (sciond equivalent) with
caching, and SCMP echo/traceroute services over the network simulator.
"""

from repro.scion.segments import ASEntry, PathSegment, SegmentKind
from repro.scion.beaconing import Beaconer
from repro.scion.path import Path, PathHop
from repro.scion.combinator import combine_paths
from repro.scion.daemon import Sciond
from repro.scion.scmp import ScmpService, EchoStats, TracerouteHop
from repro.scion.snet import ScionHost

__all__ = [
    "ASEntry",
    "PathSegment",
    "SegmentKind",
    "Beaconer",
    "Path",
    "PathHop",
    "combine_paths",
    "Sciond",
    "ScmpService",
    "EchoStats",
    "TracerouteHop",
    "ScionHost",
]
