"""``scion address``: report the local host's SCION address (§3.3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.scion.snet import ScionHost


@dataclass(frozen=True)
class AddressResult:
    isd_as: str
    ip: str

    @property
    def address(self) -> str:
        return f"{self.isd_as},[{self.ip}]"

    def format_text(self) -> str:
        return self.address


class AddressApp:
    """Returns the relevant SCION address information for the local host."""

    def __init__(self, host: ScionHost) -> None:
        self.host = host

    def run(self) -> AddressResult:
        return AddressResult(isd_as=str(self.host.local_ia), ip=self.host.local_ip)
