"""``scion ping``: SCMP echo with path pinning (§3.3, §5.3).

Reproduces the measurement command of the paper's runner::

    scion ping {server_address} -c 30 --sequence '{hop_predicates}' \\
        --interval 0.1s

including the ``--interactive`` path chooser (programmatic here: pass a
selector callable instead of a terminal prompt).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence as Seq

from repro.apps.sequence import Sequence
from repro.errors import NoPathError, ServerUnreachableError
from repro.scion.path import Path
from repro.scion.scmp import EchoStats
from repro.scion.snet import ScionHost
from repro.topology.isd_as import ISDAS
from repro.util.units import parse_duration


@dataclass(frozen=True)
class PingReport:
    """Everything ``scion ping`` prints: per-path stats block."""

    destination: str
    path: Path
    stats: EchoStats

    def format_text(self) -> str:
        s = self.stats
        lines = [
            f"PING {self.destination} via {self.path.hops_display()}",
            f"--- {self.destination} statistics ---",
            (
                f"{s.sent} packets transmitted, {s.received} received, "
                f"{s.loss_pct:.1f}% packet loss"
            ),
        ]
        if s.rtts_ms:
            lines.append(
                "rtt min/avg/max/mdev = "
                f"{s.min_ms:.3f}/{s.avg_ms:.3f}/{s.max_ms:.3f}/{s.mdev_ms:.3f} ms"
            )
        return "\n".join(lines)


class PingApp:
    """SCMP echo client bound to a local host."""

    def __init__(self, host: ScionHost) -> None:
        self.host = host

    def run(
        self,
        server_address: str,
        *,
        count: int = 30,
        interval: str = "0.1s",
        sequence: Optional[str] = None,
        path: Optional[Path] = None,
        interactive: Optional[Callable[[Seq[Path]], int]] = None,
        max_paths: Optional[int] = None,
    ) -> PingReport:
        """Ping ``server_address`` (``"16-ffaa:0:1002,[172.31.43.7]"``).

        Path choice precedence: explicit ``path`` > ``sequence`` hop
        predicates > ``interactive`` selector > best-ranked path.
        """
        dst_ia, dst_ip = ISDAS.parse_address(server_address)
        chosen = path if path is not None else self._choose_path(
            dst_ia, sequence, interactive, max_paths
        )
        interval_s = parse_duration(interval).seconds
        stats = self.host.scmp.echo_series(
            chosen, dst_ip, count=count, interval_s=interval_s
        )
        return PingReport(destination=server_address, path=chosen, stats=stats)

    def _choose_path(
        self,
        dst_ia: ISDAS,
        sequence: Optional[str],
        interactive: Optional[Callable[[Seq[Path]], int]],
        max_paths: Optional[int],
    ) -> Path:
        paths = self.host.paths(dst_ia, max_paths=max_paths)
        if not paths:
            raise NoPathError(f"no path to {dst_ia}")
        if sequence is not None:
            matching = Sequence.parse(sequence).select(paths)
            if not matching:
                raise NoPathError(
                    f"no path to {dst_ia} matches sequence {sequence!r}"
                )
            return matching[0]
        if interactive is not None:
            index = interactive(paths)
            if not (0 <= index < len(paths)):
                raise NoPathError(f"interactive selection out of range: {index}")
            return paths[index]
        return paths[0]
