"""The ``scion-sim`` command-line multiplexer.

Mirrors the ``scion`` CLI surface used in the paper against the
simulated SCIONLab world::

    scion-sim address
    scion-sim showpaths 16-ffaa:0:1002 --extended -m 40
    scion-sim ping '16-ffaa:0:1002,[172.31.43.7]' -c 30 --interval 0.1s
    scion-sim traceroute '16-ffaa:0:1002,[172.31.43.7]'
    scion-sim bwtest -s '19-ffaa:0:1303,[141.44.25.144]' -cs 3,64,?,12Mbps
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps.address import AddressApp
from repro.apps.bwtester import BwtestApp
from repro.apps.ping import PingApp
from repro.apps.showpaths import ShowpathsApp
from repro.apps.traceroute import TracerouteApp
from repro.errors import ReproError
from repro.scion.snet import ScionHost


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scion-sim",
        description="SCION applications over the simulated SCIONLab testbed",
    )
    parser.add_argument(
        "--seed", type=int, default=20231112, help="world seed (deterministic runs)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("address", help="show the local SCION address")

    sp = sub.add_parser("showpaths", help="list available paths to an AS")
    sp.add_argument("destination", help="destination ISD-AS, e.g. 16-ffaa:0:1002")
    sp.add_argument("-m", "--max-paths", type=int, default=10)
    sp.add_argument("--extended", action="store_true")
    sp.add_argument("--probe", action="store_true", help="probe path status")
    sp.add_argument("--format", choices=["text", "json"], default="text")

    pg = sub.add_parser("ping", help="SCMP echo to a remote host")
    pg.add_argument("address", help='host address, e.g. "16-ffaa:0:1002,[172.31.43.7]"')
    pg.add_argument("-c", "--count", type=int, default=30)
    pg.add_argument("--interval", default="0.1s")
    pg.add_argument("--sequence", default=None)
    pg.add_argument(
        "--interactive",
        action="store_true",
        help="list all paths and read the chosen index from stdin (§3.3)",
    )

    tr = sub.add_parser("traceroute", help="SCMP traceroute to a remote host")
    tr.add_argument("address")
    tr.add_argument("--sequence", default=None)

    bw = sub.add_parser("bwtest", help="bandwidth test against a server")
    bw.add_argument("-s", "--server", required=True)
    bw.add_argument("-cs", dest="cs", default="3,1000,30,?")
    bw.add_argument("-sc", dest="sc", default=None)
    bw.add_argument("--sequence", default=None)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    host = ScionHost.scionlab(seed=args.seed)
    try:
        output = _dispatch(host, args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(output)
    return 0


def _dispatch(host: ScionHost, args: argparse.Namespace) -> str:
    if args.command == "address":
        return AddressApp(host).run().format_text()
    if args.command == "showpaths":
        result = ShowpathsApp(host).run(
            args.destination,
            max_paths=args.max_paths,
            extended=args.extended,
            probe=args.probe,
        )
        if args.format == "json":
            return result.format_json()
        return result.format_text(extended=args.extended)
    if args.command == "ping":
        interactive = _stdin_path_chooser if args.interactive else None
        report = PingApp(host).run(
            args.address,
            count=args.count,
            interval=args.interval,
            sequence=args.sequence,
            interactive=interactive,
            max_paths=None if args.interactive else 10,
        )
        return report.format_text()
    if args.command == "traceroute":
        return TracerouteApp(host).run(args.address, sequence=args.sequence).format_text()
    if args.command == "bwtest":
        return BwtestApp(host).run(
            args.server, cs=args.cs, sc=args.sc, sequence=args.sequence
        ).format_text()
    raise ReproError(f"unknown command {args.command!r}")  # pragma: no cover


def _stdin_path_chooser(paths) -> int:
    """The ``--interactive`` mode: print the menu, read an index.

    "the real innovation is the --interactive mode option, which
    displays all the available paths for the specified destination
    allowing the user to select the desired traffic route." (§3.3)
    """
    print("Available paths:")
    for i, path in enumerate(paths):
        print(f"  [{i:2d}] {path.hops_display()}")
    raw = input(f"Choose path (0-{len(paths) - 1}): ").strip()
    try:
        return int(raw)
    except ValueError:
        raise ReproError(f"not a path index: {raw!r}") from None


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
