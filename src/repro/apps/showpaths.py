"""``scion showpaths``: list available paths to a destination AS (§3.3).

Supports the two flags the paper leans on: ``-m`` raises the
default-10 path cap to e.g. 40, and ``--extended`` adds per-path detail
(MTU, status, latency hint) — "a really useful feature for this work".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.netsim.network import ServerHealth
from repro.netsim.packet import SCMP_HEADER_BYTES, PacketSpec
from repro.scion.path import Path
from repro.scion.snet import ScionHost
from repro.topology.isd_as import ISDAS

DEFAULT_MAX_PATHS = 10


@dataclass(frozen=True)
class ShowpathsEntry:
    """One listed path with its extended attributes."""

    index: int
    path: Path
    mtu: int
    status: str  # "alive" | "timeout" | "unknown"
    latency_hint_ms: Optional[float]

    def format_line(self, *, extended: bool) -> str:
        base = f"[{self.index:2d}] {self.path.hops_display()}"
        if not extended:
            return base
        lat = (
            f"{2.0 * self.latency_hint_ms:.0f}ms"
            if self.latency_hint_ms is not None
            else "unknown"
        )
        return (
            f"{base}\n"
            f"     MTU: {self.mtu} "
            f"Status: {self.status} "
            f"Latency: {lat} "
            f"Hops: {self.path.hop_count}"
        )


@dataclass(frozen=True)
class ShowpathsResult:
    destination: ISDAS
    entries: Tuple[ShowpathsEntry, ...]

    def paths(self) -> List[Path]:
        return [e.path for e in self.entries]

    def format_text(self, *, extended: bool = False) -> str:
        header = f"Available paths to {self.destination}\n{len(self.entries)} Hops:"
        lines = [header]
        lines.extend(e.format_line(extended=extended) for e in self.entries)
        return "\n".join(lines)

    def to_records(self) -> List[dict]:
        """Machine-readable entries (the real CLI's ``--format json``)."""
        return [
            {
                "index": e.index,
                "hops": e.path.hops_display(),
                "sequence": e.path.sequence(),
                "hop_count": e.path.hop_count,
                "mtu": e.mtu,
                "status": e.status,
                "latency_hint_ms": e.latency_hint_ms,
                "isds": sorted(e.path.isd_set()),
                "fingerprint": e.path.fingerprint(),
            }
            for e in self.entries
        ]

    def format_json(self) -> str:
        import json

        return json.dumps(
            {"destination": str(self.destination), "paths": self.to_records()},
            indent=2,
            sort_keys=True,
        )


class ShowpathsApp:
    """Path listing bound to a local host."""

    def __init__(self, host: ScionHost) -> None:
        self.host = host

    def run(
        self,
        destination: "ISDAS | str",
        *,
        max_paths: int = DEFAULT_MAX_PATHS,
        extended: bool = False,
        probe: bool = False,
        refresh: bool = False,
    ) -> ShowpathsResult:
        """List up to ``max_paths`` ranked paths.

        ``extended`` computes MTU/latency hints; ``probe`` additionally
        sends one SCMP probe per path to mark it alive or timing out
        (like the real app's status column).
        """
        dst = ISDAS.parse(destination)
        paths = self.host.paths(dst, max_paths=max_paths, refresh=refresh)
        entries = []
        for i, path in enumerate(paths):
            status = "unknown"
            latency = None
            if extended:
                latency = path.static_latency_ms(self.host.topology)
            if probe:
                status = self._probe_status(path)
            entries.append(
                ShowpathsEntry(
                    index=i,
                    path=path,
                    mtu=path.mtu,
                    status=status,
                    latency_hint_ms=latency,
                )
            )
        return ShowpathsResult(destination=dst, entries=tuple(entries))

    def _probe_status(self, path: Path) -> str:
        packet = PacketSpec(
            payload_bytes=SCMP_HEADER_BYTES,
            n_hops=path.hop_count,
            n_segments=path.n_segments,
            underlay_mtu=self.host.network.config.underlay_mtu,
        )
        traversals = path.traversals(self.host.topology)
        result = self.host.network.probe_roundtrip(traversals, packet)
        return "timeout" if result.lost else "alive"
