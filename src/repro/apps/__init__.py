"""Reimplementations of the SCION applications the paper relies on (§3.3).

Each app mirrors the flag surface and the textual output of its
SCIONLab counterpart closely enough that the paper's test-suite logic
(parameter strings, ``--sequence`` hop predicates, output parsing) maps
one-to-one:

* ``scion address`` — :mod:`repro.apps.address`
* ``scion showpaths --extended -m N`` — :mod:`repro.apps.showpaths`
* ``scion ping --count --interval --sequence`` — :mod:`repro.apps.ping`
* ``scion traceroute`` — :mod:`repro.apps.traceroute`
* ``scion-bwtestclient -cs 3,64,?,12Mbps`` — :mod:`repro.apps.bwtester`
"""

from repro.apps.sequence import HopPredicate, Sequence
from repro.apps.address import AddressApp
from repro.apps.showpaths import ShowpathsApp, ShowpathsEntry, ShowpathsResult
from repro.apps.ping import PingApp, PingReport
from repro.apps.traceroute import TracerouteApp, TracerouteReport
from repro.apps.bwtester import (
    BwtestApp,
    BwtestParams,
    BwtestResult,
    parse_bwtest_params,
)

__all__ = [
    "HopPredicate",
    "Sequence",
    "AddressApp",
    "ShowpathsApp",
    "ShowpathsEntry",
    "ShowpathsResult",
    "PingApp",
    "PingReport",
    "TracerouteApp",
    "TracerouteReport",
    "BwtestApp",
    "BwtestParams",
    "BwtestResult",
    "parse_bwtest_params",
]
