"""``scion-bwtestclient``: the SCIONLab bandwidth tester (§3.3).

Parameter strings follow the real tool: ``"3,64,?,12Mbps"`` means a
3-second test with 64-byte packets at a 12 Mbps target, the ``?``
wildcard (exactly one allowed) standing for whichever parameter should
be derived from the others via ``bandwidth = packets * size * 8 /
duration``.  ``MTU`` may be used for the packet size.  ``-cs`` sets the
client->server parameters; ``-sc`` defaults to the same (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.apps.sequence import Sequence
from repro.errors import (
    BandwidthTestError,
    NoPathError,
    ParseError,
    ServerErrorResponse,
    ServerUnreachableError,
)
from repro.netsim.network import ServerHealth, TransferResult
from repro.netsim.packet import PacketSpec
from repro.scion.path import Path
from repro.scion.snet import ScionHost
from repro.topology.isd_as import ISDAS
from repro.util.units import Bandwidth, format_bandwidth, parse_bandwidth

MAX_DURATION_S = 10.0  # the real bwtester caps tests at 10 seconds
MIN_PACKET_BYTES = 4  # and requires at least 4-byte packets


@dataclass(frozen=True)
class BwtestParams:
    """Fully resolved test parameters for one direction."""

    duration_s: float
    packet_bytes: int
    num_packets: int
    target: Bandwidth

    def spec_string(self) -> str:
        return (
            f"{self.duration_s:g},{self.packet_bytes},{self.num_packets},"
            f"{format_bandwidth(self.target, digits=4)}"
        )


def parse_bwtest_params(text: str, *, mtu: int = 1472) -> BwtestParams:
    """Parse and resolve a ``duration,size,packets,bandwidth`` string."""
    parts = [p.strip() for p in str(text).split(",")]
    if len(parts) != 4:
        raise ParseError(f"bwtest parameters need 4 fields: {text!r}")
    wildcards = [i for i, p in enumerate(parts) if p == "?"]
    if len(wildcards) > 1:
        raise ParseError(f"only one '?' wildcard allowed: {text!r}")

    duration = None if parts[0] == "?" else float(parts[0])
    if parts[1] == "?":
        size: Optional[int] = None
    elif parts[1].upper() == "MTU":
        size = mtu
    else:
        size = int(parts[1])
    packets = None if parts[2] == "?" else int(parts[2])
    target = None if parts[3] == "?" else parse_bandwidth(parts[3])

    # Validate the explicitly given fields BEFORE deriving the wildcard,
    # so absurd inputs fail cleanly instead of poisoning the arithmetic.
    if duration is not None and not (0 < duration <= MAX_DURATION_S):
        raise BandwidthTestError(
            f"test duration must be in (0, {MAX_DURATION_S:g}] s: {duration}"
        )
    if size is not None and size < MIN_PACKET_BYTES:
        raise BandwidthTestError(f"packet size must be >= {MIN_PACKET_BYTES}: {size}")
    if packets is not None and packets < 1:
        raise BandwidthTestError(f"packet count must be >= 1: {packets}")

    # Resolve the wildcard from bandwidth = packets * size * 8 / duration.
    if duration is None:
        assert packets is not None and size is not None and target is not None
        duration = packets * size * 8.0 / target.bps
    elif size is None:
        assert packets is not None and target is not None
        size = int(round(target.bps * duration / (packets * 8.0)))
    elif packets is None:
        if target is None:
            raise ParseError(f"cannot infer packet count without bandwidth: {text!r}")
        packets = int(round(target.bps * duration / (size * 8.0)))
    elif target is None:
        target = Bandwidth(packets * size * 8.0 / duration)

    if not (0 < duration <= MAX_DURATION_S):
        raise BandwidthTestError(
            f"test duration must be in (0, {MAX_DURATION_S:g}] s: {duration}"
        )
    if size < MIN_PACKET_BYTES:
        raise BandwidthTestError(f"packet size must be >= {MIN_PACKET_BYTES}: {size}")
    if packets < 1:
        raise BandwidthTestError(f"packet count must be >= 1: {packets}")
    return BwtestParams(
        duration_s=duration, packet_bytes=size, num_packets=packets, target=target
    )


@dataclass(frozen=True)
class DirectionOutcome:
    """Measured outcome for one direction of the test."""

    params: BwtestParams
    result: TransferResult

    @property
    def achieved(self) -> Bandwidth:
        return Bandwidth(self.result.achieved_bps)

    def format_text(self, label: str) -> str:
        return (
            f"{label} results:\n"
            f"Attempted bandwidth: {format_bandwidth(self.params.target)}\n"
            f"Achieved bandwidth: {format_bandwidth(self.achieved)}\n"
            f"Loss rate: {100.0 * self.result.loss_fraction:.1f}%"
        )


@dataclass(frozen=True)
class BwtestResult:
    server: str
    path: Path
    cs: DirectionOutcome  # client -> server
    sc: DirectionOutcome  # server -> client

    def format_text(self) -> str:
        return (
            f"bwtest to {self.server} via {self.path.hops_display()}\n"
            + self.sc.format_text("S->C")
            + "\n"
            + self.cs.format_text("C->S")
        )


class BwtestApp:
    """Bandwidth test client bound to a local host."""

    def __init__(self, host: ScionHost) -> None:
        self.host = host

    def run(
        self,
        server_address: str,
        *,
        cs: str = "3,1000,30,?",
        sc: Optional[str] = None,
        sequence: Optional[str] = None,
        path: Optional[Path] = None,
    ) -> BwtestResult:
        """Run the two-direction bandwidth test; advances the sim clock.

        Raises :class:`ServerUnreachableError` when the bwtest server is
        down and :class:`ServerErrorResponse` when it answers garbage —
        the §4.1.2 failure families the test-suite must tolerate.
        """
        dst_ia, dst_ip = ISDAS.parse_address(server_address)
        if path is None:
            paths = self.host.paths(dst_ia, max_paths=None)
            if sequence is not None:
                paths = Sequence.parse(sequence).select(paths)
            if not paths:
                raise NoPathError(f"no usable path to {dst_ia}")
            path = paths[0]

        health = self.host.network.servers.health(dst_ia, dst_ip)
        if health is ServerHealth.DOWN:
            raise ServerUnreachableError(f"bwtest server {server_address} unreachable")
        if health is ServerHealth.ERROR:
            raise ServerErrorResponse(f"bwtest server {server_address} returned a bad response")

        mtu = path.mtu
        cs_params = parse_bwtest_params(cs, mtu=mtu)
        sc_params = parse_bwtest_params(sc, mtu=mtu) if sc is not None else cs_params

        forward = path.traversals(self.host.topology)
        backward = [t.reversed() for t in reversed(forward)]
        network = self.host.network

        cs_result = network.fluid_transfer(
            forward,
            cs_params.target.bps,
            self._packet(cs_params, path),
            cs_params.duration_s,
        )
        network.clock.advance(cs_params.duration_s)
        sc_result = network.fluid_transfer(
            backward,
            sc_params.target.bps,
            self._packet(sc_params, path),
            sc_params.duration_s,
        )
        network.clock.advance(sc_params.duration_s)

        return BwtestResult(
            server=server_address,
            path=path,
            cs=DirectionOutcome(params=cs_params, result=cs_result),
            sc=DirectionOutcome(params=sc_params, result=sc_result),
        )

    def _packet(self, params: BwtestParams, path: Path) -> PacketSpec:
        return PacketSpec(
            payload_bytes=params.packet_bytes,
            n_hops=path.hop_count,
            n_segments=path.n_segments,
            underlay_mtu=self.host.network.config.underlay_mtu,
        )
