"""The hop-predicate ``--sequence`` language.

``scion ping --sequence '17-ffaa:1:e01#0,1 17-ffaa:0:1107#3,1 ...'``
pins the exact forwarding path of a measurement (§5.3).  A sequence is
a space-separated list of hop predicates ``ISD-AS#in,out`` where ``0``
is a wildcard for an interface, the interface pair may be omitted
(``ISD-AS`` alone), and ``0-0`` wildcards the AS itself.  A path matches
when it has exactly one hop per predicate and every component agrees.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence as Seq, Tuple

from repro.errors import ParseError
from repro.scion.path import Path, PathHop
from repro.topology.isd_as import ISDAS

_PRED_RE = re.compile(
    r"^(?P<isd>\d+)-(?P<as>[0-9a-fA-F:]+)(?:#(?P<ifids>\d+(?:,\d+)?))?$"
)


@dataclass(frozen=True)
class HopPredicate:
    """One hop pattern: ISD (0=any), ASN (None=any), ingress/egress (0=any)."""

    isd: int
    asn: Optional[int]
    ingress: int
    egress: int

    @classmethod
    def parse(cls, token: str) -> "HopPredicate":
        m = _PRED_RE.match(token.strip())
        if not m:
            raise ParseError(f"bad hop predicate: {token!r}")
        isd = int(m.group("isd"))
        as_text = m.group("as")
        if as_text in ("0", "0:0:0"):
            asn: Optional[int] = None
        else:
            asn = ISDAS.parse(f"{max(isd, 1)}-{as_text}").asn
        ifids = m.group("ifids")
        ingress = egress = 0
        if ifids:
            parts = ifids.split(",")
            if len(parts) == 1:
                ingress = egress = int(parts[0])
            else:
                ingress, egress = int(parts[0]), int(parts[1])
        return cls(isd=isd, asn=asn, ingress=ingress, egress=egress)

    def matches(self, hop: PathHop) -> bool:
        if self.isd != 0 and hop.isd_as.isd != self.isd:
            return False
        if self.asn is not None and hop.isd_as.asn != self.asn:
            return False
        if self.ingress != 0 and (hop.ingress or 0) != self.ingress:
            return False
        if self.egress != 0 and (hop.egress or 0) != self.egress:
            return False
        return True

    def __str__(self) -> str:
        as_part = "0" if self.asn is None else ISDAS(max(self.isd, 1), self.asn).as_str
        return f"{self.isd}-{as_part}#{self.ingress},{self.egress}"


@dataclass(frozen=True)
class Sequence:
    """A full-path predicate list."""

    predicates: Tuple[HopPredicate, ...]

    @classmethod
    def parse(cls, text: str) -> "Sequence":
        tokens = text.split()
        if not tokens:
            raise ParseError("empty sequence")
        return cls(predicates=tuple(HopPredicate.parse(t) for t in tokens))

    def matches(self, path: Path) -> bool:
        if len(self.predicates) != path.hop_count:
            return False
        return all(p.matches(h) for p, h in zip(self.predicates, path.hops))

    def select(self, paths: Seq[Path]) -> List[Path]:
        """All paths from ``paths`` satisfying this sequence."""
        return [p for p in paths if self.matches(p)]

    def __str__(self) -> str:
        return " ".join(str(p) for p in self.predicates)
