"""``scion traceroute``: per-hop SCMP probing along a pinned path (§3.3).

"Particularly useful to test how the latency is affected by each link."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.apps.sequence import Sequence
from repro.errors import NoPathError
from repro.scion.path import Path
from repro.scion.scmp import TracerouteHop
from repro.scion.snet import ScionHost
from repro.topology.isd_as import ISDAS


@dataclass(frozen=True)
class TracerouteReport:
    destination: str
    path: Path
    hops: Tuple[TracerouteHop, ...]

    def format_text(self) -> str:
        lines = [f"traceroute to {self.destination} via {self.path.hops_display()}"]
        for hop in self.hops:
            rtts = " ".join(
                f"{r:.3f}ms" if r is not None else "*" for r in hop.rtts_ms
            )
            lines.append(f"{hop.index:2d} {hop.isd_as}#{hop.interface} {rtts}")
        return "\n".join(lines)

    def per_link_latency_ms(self) -> List[Optional[float]]:
        """Median incremental RTT contributed by each successive link."""
        increments: List[Optional[float]] = []
        prev = 0.0
        for hop in self.hops:
            valid = sorted(r for r in hop.rtts_ms if r is not None)
            if not valid:
                increments.append(None)
                continue
            median = valid[len(valid) // 2]
            increments.append(max(0.0, median - prev))
            prev = median
        return increments


class TracerouteApp:
    """SCMP traceroute client bound to a local host."""

    def __init__(self, host: ScionHost) -> None:
        self.host = host

    def run(
        self,
        server_address: str,
        *,
        sequence: Optional[str] = None,
        path: Optional[Path] = None,
        probes_per_hop: int = 3,
    ) -> TracerouteReport:
        dst_ia, _dst_ip = ISDAS.parse_address(server_address)
        if path is None:
            paths = self.host.paths(dst_ia, max_paths=None)
            if sequence is not None:
                paths = Sequence.parse(sequence).select(paths)
            if not paths:
                raise NoPathError(f"no usable path to {dst_ia}")
            path = paths[0]
        hops = self.host.scmp.traceroute(path, probes_per_hop=probes_per_hop)
        return TracerouteReport(
            destination=server_address, path=path, hops=tuple(hops)
        )
