"""The UPIN framework components (§2.1) bound to the SCION substrate.

"The UPIN framework consists of a Domain Explorer, Path Controller,
Path Tracer, Path Verifier, and Front-end."  The paper's contribution
relates closely to the Path Controller; the reproduction provides all
five so the controller has the surroundings the framework assumes.
"""

from repro.upin.explorer import DomainExplorer
from repro.upin.controller import PathController, FlowRule
from repro.upin.tracer import PathTracer, TraceRecord
from repro.upin.verifier import PathVerifier, VerificationReport, Verdict
from repro.upin.frontend import Frontend

__all__ = [
    "DomainExplorer",
    "PathController",
    "FlowRule",
    "PathTracer",
    "TraceRecord",
    "PathVerifier",
    "VerificationReport",
    "Verdict",
    "Frontend",
]
