"""The UPIN front-end CLI — the user interface the paper names as its
main future-research direction ("providing a user interface and a path
recommendation feature").

Each invocation builds the deterministic world, runs a short
measurement campaign against the requested destination(s), and answers
one user verb::

    upin-frontend describe
    upin-frontend nodes --country US
    upin-frontend recommend 1
    upin-frontend intent 1 --metric latency --exclude-country US SG
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.docdb.client import DocDBClient
from repro.errors import ReproError
from repro.scion.snet import ScionHost
from repro.selection.request import Metric, UserRequest
from repro.suite.cli import seed_servers
from repro.suite.collect import PathsCollector
from repro.suite.config import SuiteConfig
from repro.suite.runner import TestRunner
from repro.upin.frontend import Frontend


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="upin-frontend",
        description="UPIN user front-end over the simulated SCIONLab domain",
    )
    parser.add_argument("--seed", type=int, default=20231112)
    parser.add_argument(
        "--iterations", type=int, default=3,
        help="measurement iterations to base answers on",
    )
    parser.add_argument(
        "--upin-isds", type=int, nargs="*", default=[17, 19],
        help="ISDs whose forwarding our domain can attest",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("describe", help="summarise the network inventory")

    nodes = sub.add_parser("nodes", help="query the Domain Explorer")
    nodes.add_argument("--country", default=None)
    nodes.add_argument("--operator", default=None)

    rec = sub.add_parser("recommend", help="best paths per criterion")
    rec.add_argument("server_id", type=int)
    rec.add_argument("--top-k", type=int, default=3)

    intent = sub.add_parser("intent", help="apply a path-control intent")
    intent.add_argument("server_id", type=int)
    intent.add_argument("--user", default="cli-user")
    intent.add_argument(
        "--metric", default="latency",
        choices=[m.value for m in Metric if m is not Metric.COMPOSITE],
    )
    intent.add_argument("--exclude-country", nargs="*", default=[])
    intent.add_argument("--exclude-operator", nargs="*", default=[])
    intent.add_argument("--exclude-as", nargs="*", default=[])
    intent.add_argument("--exclude-isd", type=int, nargs="*", default=[])
    intent.add_argument("--max-latency-ms", type=float, default=None)
    intent.add_argument("--max-loss-pct", type=float, default=None)
    intent.add_argument(
        "--explain",
        action="store_true",
        help="also print the query plan behind the best-path lookup and "
        "the controller's selection-memo counters",
    )

    monitor = sub.add_parser(
        "monitor",
        help="flow-health monitoring: run the scripted outage scenario "
        "and inspect its journal",
    )
    monitor.add_argument(
        "action", choices=["status", "events", "failover-report"],
        help="status: per-flow health table; events: the flow_events "
        "journal; failover-report: every reroute with cause and "
        "detection-to-recovery latency",
    )
    monitor.add_argument("--server-id", type=int, default=3)
    monitor.add_argument("--user", default="alice")
    monitor.add_argument("--rounds", type=int, default=8)
    monitor.add_argument(
        "--limit", type=int, default=None,
        help="with 'events': print only the last N journal entries",
    )
    monitor.add_argument(
        "--metrics", action="store_true",
        help="also print the monitor's counter snapshot",
    )

    whatif = sub.add_parser(
        "whatif",
        help="evaluate an exclusion policy against every destination "
        "(no measurements needed)",
    )
    whatif.add_argument("--exclude-country", nargs="*", default=[])
    whatif.add_argument("--exclude-operator", nargs="*", default=[])
    whatif.add_argument("--exclude-as", nargs="*", default=[])
    whatif.add_argument("--exclude-isd", type=int, nargs="*", default=[])

    return parser


def _measured_frontend(args: argparse.Namespace, server_ids: List[int]) -> Frontend:
    client = DocDBClient()
    db = client["upin"]
    seed_servers(db)
    host = ScionHost.scionlab(seed=args.seed)
    if server_ids:
        config = SuiteConfig(
            iterations=args.iterations, destination_ids=server_ids
        )
        PathsCollector(host, db, config).collect()
        TestRunner(host, db, config).run()
    return Frontend(host, db, upin_isds=args.upin_isds)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        output = _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(output)
    return 0


def _dispatch(args: argparse.Namespace) -> str:
    if args.command == "describe":
        frontend = _measured_frontend(args, [])
        return frontend.describe_network()

    if args.command == "nodes":
        frontend = _measured_frontend(args, [])
        if args.country:
            nodes = frontend.explorer.nodes_in_country(args.country)
        elif args.operator:
            nodes = frontend.explorer.nodes_of_operator(args.operator)
        else:
            nodes = [
                frontend.explorer.node(str(a.isd_as))
                for a in frontend.host.topology.all_ases()
            ]
        lines = [
            f"{n['_id']:20s} {n['name']:22s} {n['country']:2s} "
            f"{n['operator']:10s} {n['role']}"
            for n in nodes
        ]
        return "\n".join(lines) if lines else "no matching nodes"

    if args.command == "recommend":
        frontend = _measured_frontend(args, [args.server_id])
        menu = frontend.recommend(args.server_id, top_k=args.top_k)
        lines = [f"recommendations for destination {args.server_id}:"]
        for metric, ranked in menu.items():
            lines.append(f"  {metric}:")
            for r in ranked:
                lines.append(f"    {r.aggregate.path_id}: {r.explanation}")
        return "\n".join(lines)

    if args.command == "intent":
        frontend = _measured_frontend(args, [args.server_id])
        request = UserRequest.make(
            args.server_id,
            args.metric,
            exclude_countries=args.exclude_country,
            exclude_operators=args.exclude_operator,
            exclude_ases=args.exclude_as,
            exclude_isds=args.exclude_isd,
            max_latency_ms=args.max_latency_ms,
            max_loss_pct=args.max_loss_pct,
        )
        outcome = frontend.submit_intent(args.user, request)
        text = outcome.format_text()
        if args.explain:
            from repro.docdb.planner import format_plan
            from repro.suite.config import STATS_COLLECTION

            plan = frontend.db[STATS_COLLECTION].explain(
                {"server_id": args.server_id}
            )
            info = frontend.controller.selection_cache_info()
            text += (
                "\nbest-path query plan:\n"
                + format_plan(plan, indent="  ")
                + "\nselection memo: "
                + f"{info['hits']} hits / {info['misses']} misses "
                + f"({info['size']} cached)"
            )
        return text

    if args.command == "monitor":
        from repro.monitor.scenario import run_outage_scenario
        from repro.suite.metrics import format_metrics

        scenario = run_outage_scenario(
            seed=args.seed,
            server_id=args.server_id,
            user=args.user,
            rounds=args.rounds,
        )
        if args.action == "status":
            text = scenario.monitor.format_status()
            text += "\n" + scenario.format_summary()
        elif args.action == "events":
            text = scenario.journal.format_events(limit=args.limit)
        else:  # failover-report
            text = scenario.journal.failover_report()
        if args.metrics:
            text += "\nmonitor metrics:\n" + format_metrics(
                scenario.monitor.metrics_snapshot()
            )
        return text

    if args.command == "whatif":
        from repro.analysis.whatif import ExclusionPolicy, path_diversity
        from repro.scion.snet import ScionHost

        host = ScionHost.scionlab(seed=args.seed)
        policy = ExclusionPolicy.make(
            countries=args.exclude_country,
            operators=args.exclude_operator,
            ases=args.exclude_as,
            isds=args.exclude_isd,
        )
        return path_diversity(host, policy).format_text()

    raise ReproError(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
