"""Path Controller: enforce the user's desired path (§2.1).

"The Path Controller is in charge of setting the forwarding rules based
on the desires of the user.  The Controller is only able to influence
the nodes in its own domain."  In SCION the sender *is* the forwarding
rule — picking a path pins the whole route — so the controller's job
collapses to: run the selection engine, resolve the winning sequence to
a concrete path, and record the active flow rule for tracing and
verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import NoPathError
from repro.scion.path import Path
from repro.scion.snet import ScionHost
from repro.selection.engine import PathSelector, SelectionResult
from repro.selection.request import UserRequest
from repro.suite.config import SERVERS_COLLECTION
from repro.topology.isd_as import ISDAS


@dataclass(frozen=True)
class FlowRule:
    """An installed user flow: who talks to which server over which path."""

    user: str
    server_id: int
    server_address: str
    path: Path
    request: UserRequest
    selection: SelectionResult


class PathController:
    """Applies user intents by pinning SCION paths."""

    def __init__(self, host: ScionHost, selector: PathSelector) -> None:
        self.host = host
        self.selector = selector
        self._flows: Dict[Tuple[str, int], FlowRule] = {}

    def apply_intent(self, user: str, request: UserRequest) -> FlowRule:
        """Select a path for the intent and install the flow rule."""
        selection = self.selector.select(request)
        if selection.best is None:
            raise NoPathError(
                f"no admissible path for user {user!r} to server {request.server_id}"
            )
        server = self.selector.db[SERVERS_COLLECTION].find_one(
            {"_id": request.server_id}
        )
        if server is None:
            raise NoPathError(f"unknown server id {request.server_id}")
        dst_ia = ISDAS.parse(str(server["isd_as"]))
        path = self.host.daemon.path_by_sequence(dst_ia, selection.best.sequence)
        if path is None:
            raise NoPathError(
                f"selected path {selection.best.aggregate.path_id} is no longer available"
            )
        rule = FlowRule(
            user=user,
            server_id=request.server_id,
            server_address=str(server["address"]),
            path=path,
            request=request,
            selection=selection,
        )
        self._flows[(user, request.server_id)] = rule
        return rule

    def active_flow(self, user: str, server_id: int) -> Optional[FlowRule]:
        return self._flows.get((user, server_id))

    def flows(self) -> List[FlowRule]:
        return [self._flows[k] for k in sorted(self._flows)]

    def withdraw(self, user: str, server_id: int) -> bool:
        return self._flows.pop((user, server_id), None) is not None
