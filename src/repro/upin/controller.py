"""Path Controller: enforce the user's desired path (§2.1).

"The Path Controller is in charge of setting the forwarding rules based
on the desires of the user.  The Controller is only able to influence
the nodes in its own domain."  In SCION the sender *is* the forwarding
rule — picking a path pins the whole route — so the controller's job
collapses to: run the selection engine, resolve the winning sequence to
a concrete path, and record the active flow rule for tracing and
verification.

Selection memoization
---------------------
Running the selection engine means aggregating every ``paths_stats``
sample for the destination — the most expensive query in the system.
Between measurement campaigns that data does not change, so the
controller memoizes :class:`~repro.selection.engine.SelectionResult`
on the key ``(destination, constraint-set, paths-epoch, stats-epoch)``:

* the *constraint-set* is the full user intent (metric, weights,
  exclusions, hard limits), canonicalised by :func:`request_cache_key`;
* the *epochs* are the write epochs of the ``paths`` and
  ``paths_stats`` collections, which :class:`~repro.suite.storage.
  StatsRepository` bumps exactly once per batch flush.

Repeated identical intents between campaigns are therefore O(1)
dictionary hits; the first intent after a batch lands recomputes and
re-caches.  Memoized :class:`SelectionResult` objects are shared — they
are treated as immutable by every consumer.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import NoPathError
from repro.scion.path import Path
from repro.scion.snet import ScionHost
from repro.selection.engine import PathSelector, SelectionResult
from repro.selection.request import UserRequest
from repro.suite.config import PATHS_COLLECTION, SERVERS_COLLECTION, STATS_COLLECTION
from repro.topology.isd_as import ISDAS


def request_cache_key(request: UserRequest) -> Tuple[Any, ...]:
    """Canonical hashable form of a user intent (the constraint-set).

    Two requests with the same destination, metric, weights, exclusion
    sets and hard limits map to the same key regardless of the
    iteration order of their underlying dicts/sets.
    """
    return (
        request.server_id,
        request.metric.value,
        tuple(sorted(request.weights.items())),
        tuple(sorted(request.exclude_countries)),
        tuple(sorted(request.exclude_operators)),
        tuple(sorted(request.exclude_ases)),
        tuple(sorted(request.exclude_isds)),
        tuple(sorted(request.exclude_paths)),
        request.max_latency_ms,
        request.max_loss_pct,
        request.min_bandwidth_down_mbps,
    )


@dataclass(frozen=True)
class FlowRule:
    """An installed user flow: who talks to which server over which path.

    ``request`` is always the *original* user intent — a failover keeps
    it verbatim while ``selection``/``path`` move to the replacement
    route, so verification and future reselections still answer to what
    the user actually asked for.
    """

    user: str
    server_id: int
    server_address: str
    path: Path
    request: UserRequest
    selection: SelectionResult

    @property
    def key(self) -> Tuple[str, int]:
        """The controller's flow-table key: ``(user, server_id)``."""
        return (self.user, self.server_id)

    @property
    def path_id(self) -> str:
        """The stored path document this flow is pinned to."""
        best = self.selection.best
        if best is None:  # pragma: no cover - rules are built from winners
            raise NoPathError("flow rule carries an empty selection")
        return best.aggregate.path_id


class PathController:
    """Applies user intents by pinning SCION paths.

    One controller serves one UPIN domain; it owns the table of active
    flow rules and the best-path selection memo described in the module
    docstring.
    """

    def __init__(
        self,
        host: ScionHost,
        selector: PathSelector,
        *,
        selection_cache_size: int = 128,
    ) -> None:
        self.host = host
        self.selector = selector
        self._flows: Dict[Tuple[str, int], FlowRule] = {}
        # (constraint-key, paths-epoch, stats-epoch) -> SelectionResult
        self._selection_cache: "OrderedDict[Tuple[Any, ...], SelectionResult]" = (
            OrderedDict()
        )
        self._selection_cache_size = max(1, selection_cache_size)
        self.selection_cache_hits = 0
        self.selection_cache_misses = 0

    # -- selection memo ----------------------------------------------------------

    def _epochs(self) -> Tuple[int, int]:
        """Write epochs of the two collections a selection depends on."""
        db = self.selector.db
        return (db[PATHS_COLLECTION].epoch, db[STATS_COLLECTION].epoch)

    def cached_select(self, request: UserRequest) -> SelectionResult:
        """Selection engine result, memoized per (intent, data epoch).

        A hit costs one dict lookup; a miss runs the full
        aggregate-filter-score pipeline and caches the outcome until
        the next measurement batch bumps either collection's epoch.
        """
        key = (request_cache_key(request),) + self._epochs()
        cached = self._selection_cache.get(key)
        if cached is not None:
            self._selection_cache.move_to_end(key)
            self.selection_cache_hits += 1
            return cached
        self.selection_cache_misses += 1
        result = self.selector.select(request)
        self._selection_cache[key] = result
        while len(self._selection_cache) > self._selection_cache_size:
            self._selection_cache.popitem(last=False)
        return result

    def selection_cache_info(self) -> Dict[str, int]:
        """Memo counters: ``{"size", "hits", "misses"}`` (for CLI/metrics)."""
        return {
            "size": len(self._selection_cache),
            "hits": self.selection_cache_hits,
            "misses": self.selection_cache_misses,
        }

    def clear_selection_cache(self) -> int:
        """Drop every memoized selection; returns the number removed."""
        n = len(self._selection_cache)
        self._selection_cache.clear()
        return n

    # -- intents -----------------------------------------------------------------

    def apply_intent(self, user: str, request: UserRequest) -> FlowRule:
        """Select a path for the intent and install the flow rule.

        Raises :class:`~repro.errors.NoPathError` when no admissible
        path exists, the destination is unknown, or the selected
        sequence can no longer be resolved to a live path.
        """
        selection = self.cached_select(request)
        if selection.best is None:
            raise NoPathError(
                f"no admissible path for user {user!r} to server {request.server_id}"
            )
        server = self.selector.db[SERVERS_COLLECTION].find_one(
            {"_id": request.server_id}
        )
        if server is None:
            raise NoPathError(f"unknown server id {request.server_id}")
        dst_ia = ISDAS.parse(str(server["isd_as"]))
        path = self.host.daemon.path_by_sequence(dst_ia, selection.best.sequence)
        if path is None:
            raise NoPathError(
                f"selected path {selection.best.aggregate.path_id} is no longer available"
            )
        rule = FlowRule(
            user=user,
            server_id=request.server_id,
            server_address=str(server["address"]),
            path=path,
            request=request,
            selection=selection,
        )
        self._flows[(user, request.server_id)] = rule
        return rule

    def active_flow(self, user: str, server_id: int) -> Optional[FlowRule]:
        """The installed rule for ``(user, server_id)``, or None."""
        return self._flows.get((user, server_id))

    def flows(self) -> List[FlowRule]:
        """Every installed flow rule, ordered by ``(user, server_id)``."""
        return [self._flows[k] for k in sorted(self._flows)]

    def swap_flow(self, new_rule: FlowRule) -> FlowRule:
        """Atomically replace the installed rule for ``new_rule.key``.

        The failover engine's commit point: the flow table never holds
        a half-updated entry, and the displaced rule is returned so the
        caller can journal the old path.  Raises
        :class:`~repro.errors.NoPathError` when no rule is installed
        for that key — a swap must replace something.
        """
        key = (new_rule.user, new_rule.server_id)
        old = self._flows.get(key)
        if old is None:
            raise NoPathError(
                f"no installed flow for {new_rule.user!r} -> "
                f"server {new_rule.server_id} to swap"
            )
        self._flows[key] = new_rule
        return old

    def withdraw(self, user: str, server_id: int) -> bool:
        """Remove a flow rule; True if one was installed."""
        return self._flows.pop((user, server_id), None) is not None
