"""Path Tracer: gather measurements on active traffic (§2.1).

"The Path Tracer gathers measurements on the traffic in the UPIN
domain.  The goal is to store important details for the possible
verification."  The tracer runs SCMP traceroutes along installed flows
and stores the observed hop sequences in the database, which is exactly
what the verifier later replays against the user's intent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.docdb.database import Database
from repro.scion.scmp import ScmpService
from repro.scion.snet import ScionHost
from repro.upin.controller import FlowRule
from repro.util.timefmt import TimestampSource

TRACES_COLLECTION = "path_traces"


@dataclass(frozen=True)
class TraceRecord:
    """One stored trace of one flow.

    ``path_fingerprint`` pins the trace to the concrete path the flow
    was on *when the trace ran*.  After a failover the flow's rule
    carries a different path, and the verifier uses the fingerprint to
    tell "the network disobeyed the intent" (same path, different
    hops — a real violation) from "this trace predates the failover"
    (different path — stale evidence, not a violation).
    """

    flow_user: str
    server_id: int
    timestamp_ms: int
    observed_hops: Tuple[str, ...]
    observed_interfaces: Tuple[int, ...]
    rtts_ms: Tuple[Optional[float], ...]
    #: Fingerprint of the path the rule was pinned to at trace time
    #: ("" on documents that predate fingerprinting).
    path_fingerprint: str = ""

    def to_document(self) -> Dict[str, Any]:
        return {
            "_id": f"{self.flow_user}_{self.server_id}_{self.timestamp_ms}",
            "user": self.flow_user,
            "server_id": self.server_id,
            "timestamp_ms": self.timestamp_ms,
            "observed_hops": list(self.observed_hops),
            "observed_interfaces": list(self.observed_interfaces),
            "rtts_ms": list(self.rtts_ms),
            "path_fingerprint": self.path_fingerprint,
        }


class PathTracer:
    """Traces installed flows and persists the observations."""

    def __init__(self, host: ScionHost, db: Database) -> None:
        self.host = host
        self.db = db
        self._timestamps = TimestampSource(now_ms=lambda: host.clock.now_ms)

    def trace_flow(self, rule: FlowRule) -> TraceRecord:
        """Run a traceroute along the flow's pinned path and store it."""
        hops = self.host.scmp.traceroute(rule.path)
        record = TraceRecord(
            flow_user=rule.user,
            server_id=rule.server_id,
            timestamp_ms=self._timestamps.next(),
            observed_hops=tuple(str(h.isd_as) for h in hops),
            observed_interfaces=tuple(h.interface for h in hops),
            rtts_ms=tuple(
                (sorted(r for r in h.rtts_ms if r is not None) or [None])[0]
                for h in hops
            ),
            path_fingerprint=rule.path.fingerprint(),
        )
        self.db[TRACES_COLLECTION].insert_one(record.to_document())
        return record

    def traces_for(self, user: str, server_id: int) -> List[Dict[str, Any]]:
        return self.db[TRACES_COLLECTION].find(
            {"user": user, "server_id": server_id}, sort=[("timestamp_ms", 1)]
        )
