"""Path Verifier: did the traffic follow the user's intent? (§2.1)

"The Path Verifier examines whether the desires of the user are
satisfied.  However, if the path traverses a non-UPIN enabled domain,
the Path Verifier cannot be certain whether the intent is satisfied
over the full path."  The verifier compares the tracer's observed hop
sequence against the controller's intended path and against the
request's exclusion constraints; hops in non-UPIN ISDs downgrade a
positive verdict to UNVERIFIABLE for that portion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, List, Sequence, Tuple

from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS
from repro.upin.controller import FlowRule
from repro.upin.tracer import TraceRecord


class Verdict(enum.Enum):
    SATISFIED = "satisfied"
    VIOLATED = "violated"
    UNVERIFIABLE = "unverifiable"
    #: The trace was taken on a path the flow is no longer pinned to
    #: (a failover happened since) — stale evidence, not a violation.
    STALE = "stale"


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of verifying one trace against one flow rule."""

    verdict: Verdict
    intended_hops: Tuple[str, ...]
    observed_hops: Tuple[str, ...]
    mismatches: Tuple[str, ...]
    unverified_hops: Tuple[str, ...]
    notes: Tuple[str, ...]

    def format_text(self) -> str:
        lines = [f"verdict: {self.verdict.value}"]
        if self.mismatches:
            lines.append("mismatches: " + "; ".join(self.mismatches))
        if self.unverified_hops:
            lines.append(
                "outside UPIN domains (unverifiable): "
                + ", ".join(self.unverified_hops)
            )
        lines.extend(self.notes)
        return "\n".join(lines)


class PathVerifier:
    """Replays traces against intents."""

    def __init__(
        self,
        topology: Topology,
        *,
        upin_isds: Sequence[int] = (),
    ) -> None:
        self.topology = topology
        #: ISDs whose domains run UPIN and can attest their forwarding.
        self.upin_isds: FrozenSet[int] = frozenset(upin_isds)

    def verify(self, rule: FlowRule, trace: TraceRecord) -> VerificationReport:
        """Compare a trace with the installed flow rule.

        A trace fingerprinted for a *different* path than the rule's
        current one is judged STALE instead of VIOLATED: after a
        failover the old-path evidence says nothing about the new flow
        (the failover/verifier interplay regression test pins this).
        Traces without a fingerprint (legacy documents) are compared
        the old way.
        """
        intended = tuple(str(ia) for ia in rule.path.ases()[1:])  # tracer sees hops after src
        current_fp = rule.path.fingerprint()
        if trace.path_fingerprint and trace.path_fingerprint != current_fp:
            return VerificationReport(
                verdict=Verdict.STALE,
                intended_hops=intended,
                observed_hops=trace.observed_hops,
                mismatches=(),
                unverified_hops=(),
                notes=(
                    "trace was taken on path "
                    f"{trace.path_fingerprint}, flow is now pinned to "
                    f"{current_fp} (failed over since); re-trace the flow",
                ),
            )
        observed = trace.observed_hops
        mismatches: List[str] = []
        notes: List[str] = []

        if observed != intended:
            for i, (want, got) in enumerate(zip(intended, observed)):
                if want != got:
                    mismatches.append(f"hop {i + 1}: intended {want}, observed {got}")
            if len(observed) != len(intended):
                mismatches.append(
                    f"hop count: intended {len(intended)}, observed {len(observed)}"
                )

        # Constraint re-check on the *observed* route.
        request = rule.request
        for hop in observed:
            asys = self.topology.as_of(hop)
            if asys.country.upper() in request.exclude_countries:
                mismatches.append(
                    f"observed hop {hop} is in excluded country {asys.country}"
                )
            if asys.operator in request.exclude_operators:
                mismatches.append(
                    f"observed hop {hop} is run by excluded operator {asys.operator}"
                )
            if hop in request.exclude_ases:
                mismatches.append(f"observed hop {hop} is an excluded AS")

        unverified = tuple(
            hop
            for hop in observed
            if ISDAS.parse(hop).isd not in self.upin_isds
        )
        if mismatches:
            verdict = Verdict.VIOLATED
        elif unverified:
            verdict = Verdict.UNVERIFIABLE
            notes.append(
                "intent holds on every verifiable hop; "
                f"{len(unverified)} hop(s) cross non-UPIN domains"
            )
        else:
            verdict = Verdict.SATISFIED
        return VerificationReport(
            verdict=verdict,
            intended_hops=intended,
            observed_hops=observed,
            mismatches=tuple(mismatches),
            unverified_hops=unverified,
            notes=tuple(notes),
        )
