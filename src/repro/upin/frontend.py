"""Front-end: the user's interface to the UPIN domain (§2.1).

"The Front-end provides a method of communication between the user and
the domain."  This facade wires explorer, selector, controller, tracer
and verifier together behind the handful of verbs a user needs, and is
what the interactive example drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.docdb.database import Database
from repro.scion.snet import ScionHost
from repro.selection.engine import PathSelector, RankedPath, SelectionResult
from repro.selection.request import Metric, UserRequest
from repro.upin.controller import FlowRule, PathController
from repro.upin.explorer import DomainExplorer
from repro.upin.tracer import PathTracer, TraceRecord
from repro.upin.verifier import PathVerifier, VerificationReport


@dataclass(frozen=True)
class IntentOutcome:
    """What the front-end reports back after an intent is applied."""

    rule: FlowRule
    trace: TraceRecord
    verification: VerificationReport

    def format_text(self) -> str:
        return (
            self.rule.selection.format_text()
            + "\n"
            + self.verification.format_text()
        )


class Frontend:
    """One UPIN domain's user-facing service."""

    def __init__(
        self,
        host: ScionHost,
        db: Database,
        *,
        upin_isds: Sequence[int] = (),
    ) -> None:
        self.host = host
        self.db = db
        self.explorer = DomainExplorer(host.topology, db)
        self.selector = PathSelector(db, host.topology)
        self.controller = PathController(host, self.selector)
        self.tracer = PathTracer(host, db)
        self.verifier = PathVerifier(
            host.topology,
            upin_isds=upin_isds or [host.local_ia.isd],
        )
        self.explorer.explore()

    # -- user verbs -----------------------------------------------------------------

    def submit_intent(self, user: str, request: UserRequest) -> IntentOutcome:
        """Apply an intent end-to-end: select, install, trace, verify."""
        rule = self.controller.apply_intent(user, request)
        trace = self.tracer.trace_flow(rule)
        verification = self.verifier.verify(rule, trace)
        return IntentOutcome(rule=rule, trace=trace, verification=verification)

    def recommend(self, server_id: int, *, top_k: int = 3) -> Dict[str, List[RankedPath]]:
        """The recommendation menu (the paper's future-work feature)."""
        return self.selector.recommend(server_id, top_k=top_k)

    def describe_network(self) -> str:
        """Short textual network inventory from the Domain Explorer."""
        countries = self.explorer.countries()
        operators = self.explorer.operators()
        n_nodes = len(self.host.topology)
        return (
            f"{n_nodes} ASes across {len(countries)} countries "
            f"({', '.join(countries)}), "
            f"{len(operators)} operators"
        )
