"""Domain Explorer: metadata about the nodes of the network (§2.1).

"The Domain Explorer obtains metadata about properties of the network,
including security and environmental details.  It stores detailed
knowledge on the nodes in the network."  Here the metadata source is
the topology itself (placement, country, operator, role) enriched with
the trust information SCION exposes (which ISD certifies the AS), and
it is stored in a database collection so the selection engine and the
front-end query nodes the same way the suite queries measurements.

Query surface
-------------
:meth:`DomainExplorer.explore` publishes one document per AS into the
``domain_nodes`` collection and creates single-field indexes on
``country`` and ``operator`` — the two fields every front-end lookup
filters on, so :meth:`nodes_in_country` and :meth:`nodes_of_operator`
are answered by IXSCAN rather than a collection scan (see
``docs/DATABASE.md``, "Index creation").
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.docdb.database import Database
from repro.topology.entities import ASRole
from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS

NODES_COLLECTION = "domain_nodes"


class DomainExplorer:
    """Publishes per-AS knowledge into the database."""

    def __init__(self, topology: Topology, db: Database) -> None:
        self.topology = topology
        self.db = db

    def explore(self) -> int:
        """(Re)publish every AS's metadata; returns node count.

        Idempotent: each AS document is upserted under its ISD-AS
        string, so repeated calls refresh rather than duplicate.  Also
        (re)creates the ``country`` and ``operator`` indexes the query
        helpers below rely on.
        """
        coll = self.db[NODES_COLLECTION]
        coll.create_index("country")
        coll.create_index("operator")
        count = 0
        for asys in self.topology.all_ases():
            doc = {
                "_id": str(asys.isd_as),
                "name": asys.name,
                "role": asys.role.value,
                "isd": asys.isd_as.isd,
                "country": asys.country,
                "operator": asys.operator,
                "city": asys.city,
                "lat": asys.location.lat,
                "lon": asys.location.lon,
                "is_core": asys.is_core,
                "mtu": asys.mtu,
                "degree": len(self.topology.links_of(asys.isd_as)),
            }
            coll.replace_one({"_id": doc["_id"]}, doc, upsert=True)
            count += 1
        return count

    # -- queries the Front-end / selection engine use -----------------------------

    def node(self, ia: "ISDAS | str") -> Optional[Dict[str, Any]]:
        return self.db[NODES_COLLECTION].find_one({"_id": str(ISDAS.parse(ia))})

    def nodes_in_country(self, country: str) -> List[Dict[str, Any]]:
        return self.db[NODES_COLLECTION].find({"country": country.upper()})

    def nodes_of_operator(self, operator: str) -> List[Dict[str, Any]]:
        return self.db[NODES_COLLECTION].find({"operator": operator})

    def countries(self) -> List[str]:
        return sorted(self.db[NODES_COLLECTION].distinct("country"))

    def operators(self) -> List[str]:
        return sorted(self.db[NODES_COLLECTION].distinct("operator"))
