"""Geography helpers: great-circle distance and fibre propagation delay.

The paper's central latency finding (§6.1) is that *physical distance
between hops* dominates path latency — more than hop count or ISDs
traversed.  Our network substrate therefore derives per-link propagation
delay directly from the great-circle distance between the hosting cities,
divided by the effective speed of light in fibre (≈ 2/3 c) and multiplied
by a routing-circuity factor accounting for non-geodesic fibre runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError

EARTH_RADIUS_KM = 6371.0

#: Speed of light in vacuum, km per millisecond.
_C_KM_PER_MS = 299_792.458 / 1e3

#: Refractive slowdown in fibre — signals travel at roughly 2/3 c.
FIBRE_VELOCITY_FACTOR = 2.0 / 3.0

#: Real fibre paths are not great circles; empirical circuity factors for
#: long-haul routes cluster around 1.2-1.6.  We use a mid value.
DEFAULT_CIRCUITY = 1.4


@dataclass(frozen=True)
class GeoPoint:
    """A latitude/longitude pair in degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not (-90.0 <= self.lat <= 90.0):
            raise ValidationError(f"latitude out of range: {self.lat}")
        if not (-180.0 <= self.lon <= 180.0):
            raise ValidationError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        return haversine_km(self, other)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in kilometres."""
    phi1, phi2 = math.radians(a.lat), math.radians(b.lat)
    dphi = math.radians(b.lat - a.lat)
    dlam = math.radians(b.lon - a.lon)
    h = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(
        dlam / 2.0
    ) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def propagation_delay_ms(
    a: GeoPoint,
    b: GeoPoint,
    *,
    circuity: float = DEFAULT_CIRCUITY,
    min_delay_ms: float = 0.05,
) -> float:
    """One-way fibre propagation delay between two locations.

    ``min_delay_ms`` models the floor imposed by equipment even for
    co-located hosts (switch/router serialization and processing).
    """
    if circuity < 1.0:
        raise ValidationError(f"circuity must be >= 1, got {circuity}")
    dist = haversine_km(a, b) * circuity
    delay = dist / (_C_KM_PER_MS * FIBRE_VELOCITY_FACTOR)
    return max(delay, min_delay_ms)
