"""Shared utilities: unit parsing, geography, RNG streams, validation."""

from repro.util.units import (
    Bandwidth,
    Duration,
    parse_bandwidth,
    parse_duration,
    format_bandwidth,
    format_duration,
)
from repro.util.geo import GeoPoint, haversine_km, propagation_delay_ms
from repro.util.rng import RngStreams, derive_seed

__all__ = [
    "Bandwidth",
    "Duration",
    "parse_bandwidth",
    "parse_duration",
    "format_bandwidth",
    "format_duration",
    "GeoPoint",
    "haversine_km",
    "propagation_delay_ms",
    "RngStreams",
    "derive_seed",
]
