"""Deterministic, hierarchically derived random-number streams.

Every stochastic component of the simulator (per-link jitter, cross
traffic, loss draws, congestion episodes, coordinator key generation)
pulls from its own named stream derived from a single root seed.  This
gives two properties the experiments need:

* **Reproducibility** — a world built with seed *s* always produces the
  same figures, regardless of the order measurements run in.
* **Independence under refactoring** — adding a new consumer does not
  perturb existing streams, because streams are keyed by stable names
  (``"link:19-ffaa:0:1301>19-ffaa:0:1303"``), not by draw order.

Seeds are derived with SHA-256 over ``root_seed || name`` (the standard
"seed sequence by hashing" construction), then fed to
:class:`numpy.random.Generator` (PCG64).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stable name."""
    h = hashlib.sha256()
    h.update(struct.pack("<Q", root_seed & 0xFFFFFFFFFFFFFFFF))
    h.update(name.encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little")


class RngStreams:
    """A factory of named, independent :class:`numpy.random.Generator` s.

    >>> streams = RngStreams(42)
    >>> g1 = streams.get("link:a>b")
    >>> g2 = streams.get("link:a>b")
    >>> g1 is g2
    True
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, name))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` (reset to stream start)."""
        gen = np.random.default_rng(derive_seed(self.root_seed, name))
        self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngStreams":
        """Create a child stream-space rooted at ``derive_seed(root, name)``."""
        return RngStreams(derive_seed(self.root_seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(root_seed={self.root_seed}, streams={len(self._streams)})"
