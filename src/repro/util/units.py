"""Parsing and formatting of bandwidth and duration quantities.

The SCION applications the paper relies on exchange quantities as short
strings: bandwidth targets like ``"12Mbps"`` or ``"150Mbps"`` (bwtester
parameter strings, §3.3) and intervals like ``"0.1s"`` (``scion ping
--interval``).  This module provides a single, strict implementation used
by every layer so the CLI surface parses exactly what the real tools
accept.

Internally bandwidth is represented in **bits per second** (float) and
durations in **seconds** (float); both get thin value-object wrappers for
readable signatures.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.errors import ValidationError

# Multipliers follow the SI convention the real bwtester uses (1 Mbps =
# 1e6 bit/s, not 2**20).
_BW_UNITS = {
    "bps": 1.0,
    "kbps": 1e3,
    "mbps": 1e6,
    "gbps": 1e9,
    "tbps": 1e12,
}

_DUR_UNITS = {
    "ns": 1e-9,
    "us": 1e-6,
    "µs": 1e-6,
    "ms": 1e-3,
    "s": 1.0,
    "m": 60.0,
    "h": 3600.0,
}

_BW_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([A-Za-z]+)\s*$")
_DUR_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Zµ]*)\s*$")


@dataclass(frozen=True, order=True)
class Bandwidth:
    """A bandwidth quantity in bits per second.

    Supports ordering and arithmetic with plain numbers so analysis code
    can aggregate without unwrapping.
    """

    bps: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.bps) or self.bps < 0:
            raise ValidationError(f"bandwidth must be finite and >= 0, got {self.bps}")

    @property
    def mbps(self) -> float:
        return self.bps / 1e6

    @property
    def kbps(self) -> float:
        return self.bps / 1e3

    def __mul__(self, factor: float) -> "Bandwidth":
        return Bandwidth(self.bps * factor)

    __rmul__ = __mul__

    def __add__(self, other: "Bandwidth") -> "Bandwidth":
        return Bandwidth(self.bps + other.bps)

    def __sub__(self, other: "Bandwidth") -> "Bandwidth":
        return Bandwidth(max(0.0, self.bps - other.bps))

    def __str__(self) -> str:
        return format_bandwidth(self)


@dataclass(frozen=True, order=True)
class Duration:
    """A duration in seconds."""

    seconds: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.seconds) or self.seconds < 0:
            raise ValidationError(
                f"duration must be finite and >= 0, got {self.seconds}"
            )

    @property
    def ms(self) -> float:
        return self.seconds * 1e3

    def __mul__(self, factor: float) -> "Duration":
        return Duration(self.seconds * factor)

    __rmul__ = __mul__

    def __add__(self, other: "Duration") -> "Duration":
        return Duration(self.seconds + other.seconds)

    def __str__(self) -> str:
        return format_duration(self)


def parse_bandwidth(text: str) -> Bandwidth:
    """Parse ``"12Mbps"``-style strings (case-insensitive unit).

    >>> parse_bandwidth("12Mbps").mbps
    12.0
    >>> parse_bandwidth("500kbps").bps
    500000.0
    """
    if isinstance(text, Bandwidth):
        return text
    m = _BW_RE.match(str(text))
    if not m:
        raise ParseFailure("bandwidth", text)
    value, unit = m.groups()
    key = unit.lower()
    if key not in _BW_UNITS:
        raise ParseFailure("bandwidth unit", unit)
    return Bandwidth(float(value) * _BW_UNITS[key])


def parse_duration(text: str) -> Duration:
    """Parse ``"0.1s"`` / ``"250ms"`` style strings.

    A bare number is interpreted as seconds, matching the Go duration
    behaviour of the real tooling only loosely but unambiguously.
    """
    if isinstance(text, Duration):
        return text
    m = _DUR_RE.match(str(text))
    if not m:
        raise ParseFailure("duration", text)
    value, unit = m.groups()
    key = unit or "s"
    if key not in _DUR_UNITS:
        raise ParseFailure("duration unit", unit)
    return Duration(float(value) * _DUR_UNITS[key])


def format_bandwidth(bw: Bandwidth, *, digits: int = 2) -> str:
    """Render a bandwidth with the largest unit that keeps value >= 1."""
    bps = bw.bps
    for unit, mult in (("Tbps", 1e12), ("Gbps", 1e9), ("Mbps", 1e6), ("kbps", 1e3)):
        if bps >= mult:
            return f"{bps / mult:.{digits}f}{unit}"
    # Sub-kbps: keep fractional precision but drop trailing zeros so the
    # common integral case still reads "900bps".
    text = f"{bps:.{digits}f}".rstrip("0").rstrip(".")
    return f"{text or '0'}bps"


def format_duration(d: Duration, *, digits: int = 3) -> str:
    """Render a duration, preferring milliseconds for sub-second values."""
    if d.seconds == 0:
        return "0s"
    if d.seconds < 1.0:
        return f"{d.ms:.{digits}f}ms"
    return f"{d.seconds:.{digits}f}s"


class ParseFailure(ValidationError):
    """Raised when a quantity string cannot be parsed."""

    def __init__(self, what: str, text: object) -> None:
        super().__init__(f"cannot parse {what}: {text!r}")
        self.what = what
        self.text = text
