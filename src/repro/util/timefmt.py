"""Timestamp helpers for measurement identifiers.

The paper's ``paths_stats`` documents are keyed by ``<path_id>_<timestamp>``
(§4.2.1).  We reproduce that scheme with a monotonically increasing,
injectable clock so tests and experiments stay deterministic: real wall
time is only used when no simulation clock is supplied.
"""

from __future__ import annotations

import datetime as _dt
import itertools
import time
from typing import Callable, Iterator, Optional


def utc_now_iso() -> str:
    """Current wall-clock UTC time in compact ISO-8601 (second precision)."""
    return _dt.datetime.now(_dt.timezone.utc).strftime("%Y%m%dT%H%M%SZ")


def epoch_ms() -> int:
    """Current wall-clock time in integer milliseconds since the epoch."""
    return int(time.time() * 1000)


class TimestampSource:
    """Produces strictly increasing integer timestamps (milliseconds).

    When ``now_ms`` is provided (e.g. bound to a simulation clock) the
    source follows it, bumping by one on collisions so document ids stay
    unique even for measurements taken at the same simulated instant.
    """

    def __init__(self, now_ms: Optional[Callable[[], int]] = None, *, start: int = 0) -> None:
        self._now_ms = now_ms
        self._last = start - 1

    def next(self) -> int:
        candidate = self._now_ms() if self._now_ms is not None else epoch_ms()
        if candidate <= self._last:
            candidate = self._last + 1
        self._last = candidate
        return candidate

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.next()


def counter_source(start: int = 1) -> TimestampSource:
    """A purely logical timestamp source: 1, 2, 3, ... (for tests)."""
    counter = itertools.count(start)
    return TimestampSource(now_ms=lambda: next(counter))
