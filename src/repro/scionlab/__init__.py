"""SCIONLab coordinator services: user-AS lifecycle and defaults.

Reproduces the §3.2 initialization workflow: creating a user AS through
the coordinator, receiving an ASN + key pair + PKC, and a generated VM
configuration artifact, then attaching at an attachment point.
"""

from repro.scionlab.coordinator import Coordinator, UserAS
from repro.scionlab.vm import VMConfig, render_vagrantfile
from repro.scionlab.defaults import (
    available_server_documents,
    study_destination_ids,
)

__all__ = [
    "Coordinator",
    "UserAS",
    "VMConfig",
    "render_vagrantfile",
    "available_server_documents",
    "study_destination_ids",
]
