"""Canonical server set and database seed documents.

The ``availableServers`` collection (§4.2.1) holds "server's source IP
address, along with an id ... a progressive integer ... between 1 and
21".  This module turns :data:`repro.topology.scionlab.AVAILABLE_SERVERS`
into those documents and maps the paper's five study destinations to
their ids.
"""

from __future__ import annotations

from typing import Dict, List

from repro.topology.isd_as import ISDAS
from repro.topology.scionlab import AVAILABLE_SERVERS, STUDY_DESTINATIONS


def available_server_documents() -> List[Dict[str, object]]:
    """Documents for the ``availableServers`` collection, ids 1..21."""
    docs: List[Dict[str, object]] = []
    for server_id, (isd_as, ip) in enumerate(AVAILABLE_SERVERS, start=1):
        docs.append(
            {
                "_id": server_id,
                "isd_as": isd_as,
                "ip": ip,
                "address": ISDAS.parse(isd_as).address(ip),
            }
        )
    return docs


def study_destination_ids() -> List[int]:
    """Server ids of the paper's 5-destination study subset (§6)."""
    wanted = set(STUDY_DESTINATIONS)
    ids: List[int] = []
    seen = set()
    for server_id, (isd_as, _ip) in enumerate(AVAILABLE_SERVERS, start=1):
        if isd_as in wanted and isd_as not in seen:
            ids.append(server_id)
            seen.add(isd_as)
    return ids


def server_id_of(isd_as: str, *, ip: str = "") -> int:
    """Lookup a server id by AS (and IP when an AS hosts several)."""
    for server_id, (candidate, candidate_ip) in enumerate(AVAILABLE_SERVERS, start=1):
        if candidate == isd_as and (not ip or candidate_ip == ip):
            return server_id
    raise KeyError(f"{isd_as} ({ip or 'any ip'}) is not an available server")
