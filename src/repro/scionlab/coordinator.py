"""The SCIONLab coordinator (web-interface equivalent).

§3.2: "We created one AS through the SCIONLab web interface and attached
it to ETHZ-AP. ... SCIONLab web interface provided a unique ASN for our
AS, along with cryptographic keys and public-key certificates.
Subsequently, a Vagrant file for our AS was generated."

The coordinator here owns the per-ISD trust roots (core AS key pairs and
TRCs), allocates user ASNs in the ``ffaa:1:xxx`` range, issues
certificates signed by the attachment point's ISD core, and produces the
VM configuration artifact.  It can also *extend* a topology with the new
user AS, returning the enlarged world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.certs import Certificate, issue_certificate, self_signed
from repro.crypto.rsa import RSAKeyPair
from repro.crypto.trc import TRC, TrustStore
from repro.errors import TopologyError, ValidationError
from repro.scionlab.vm import VMConfig
from repro.topology.builder import TopologyBuilder
from repro.topology.entities import ASRole, AutonomousSystem, Host, LinkKind, LinkSpec
from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS
from repro.util.rng import RngStreams

#: SCIONLab user ASes live in the ``ffaa:1:*`` block.
_USER_AS_BASE = ISDAS._parse_asn("ffaa:1:0")

#: Simulation-grade key size; see :mod:`repro.crypto`.
_KEY_BITS = 256


@dataclass(frozen=True)
class UserAS:
    """Everything the coordinator hands a new experimenter."""

    isd_as: ISDAS
    name: str
    attachment_point: ISDAS
    keypair: RSAKeyPair
    certificate: Certificate
    vm_config: VMConfig

    @property
    def certificate_chain(self) -> List[Certificate]:
        return [self.certificate]


class Coordinator:
    """Allocates user ASes and maintains the SCIONLab trust plane."""

    def __init__(self, topology: Topology, *, seed: int = 7) -> None:
        self.topology = topology
        self._streams = RngStreams(seed)
        self._next_user_index: Dict[int, int] = {}
        self._user_ases: Dict[ISDAS, UserAS] = {}
        self._core_keys: Dict[ISDAS, RSAKeyPair] = {}
        self._trcs: Dict[int, TRC] = {}
        self._init_trust_plane()

    # -- trust plane -------------------------------------------------------------

    def _init_trust_plane(self) -> None:
        for isd in self.topology.isds():
            core_keys = {}
            for core in self.topology.core_ases(isd):
                kp = RSAKeyPair.generate(
                    self._streams.get(f"corekey:{core.isd_as}"), bits=_KEY_BITS
                )
                self._core_keys[core.isd_as] = kp
                core_keys[str(core.isd_as)] = kp.public
            if core_keys:
                self._trcs[isd] = TRC(isd=isd, version=1, core_keys=core_keys)

    def trust_store(self) -> TrustStore:
        """A trust store holding every ISD's TRC (what hosts install)."""
        return TrustStore(self._trcs.values())

    def trc_for(self, isd: int) -> TRC:
        trc = self._trcs.get(isd)
        if trc is None:
            raise TopologyError(f"no TRC for ISD {isd}")
        return trc

    def core_keypair(self, core: "ISDAS | str") -> RSAKeyPair:
        core = ISDAS.parse(core)
        kp = self._core_keys.get(core)
        if kp is None:
            raise TopologyError(f"{core} is not a core AS of this world")
        return kp

    def issue_as_certificate(self, subject: "ISDAS | str", public_key) -> Certificate:
        """PKC for an AS, signed by (the first) core AS of its ISD."""
        subject = ISDAS.parse(subject)
        cores = self.topology.core_ases(subject.isd)
        if not cores:
            raise TopologyError(f"ISD {subject.isd} has no core AS")
        issuer = cores[0].isd_as
        return issue_certificate(
            str(issuer), self._core_keys[issuer], str(subject), public_key
        )

    # -- user AS lifecycle -------------------------------------------------------------

    def create_user_as(
        self,
        attachment_point: "ISDAS | str",
        *,
        name: str = "user-as",
        owner_email: str = "experimenter@example.org",
    ) -> Tuple[Topology, UserAS]:
        """Create a user AS attached at ``attachment_point``.

        Returns the *extended* topology (the original is never mutated)
        and the :class:`UserAS` record with keys, PKC and VM config.
        """
        ap = ISDAS.parse(attachment_point)
        ap_sys = self.topology.as_of(ap)
        if ap_sys.role is not ASRole.ATTACHMENT_POINT:
            raise ValidationError(f"{ap} is not an attachment point")

        isd = ap.isd
        index = self._next_user_index.get(isd, 1)
        while True:
            candidate = ISDAS(isd=isd, asn=_USER_AS_BASE + 0xE00 + index)
            if candidate not in self.topology and candidate not in self._user_ases:
                break
            index += 1
        self._next_user_index[isd] = index + 1

        keypair = RSAKeyPair.generate(
            self._streams.get(f"userkey:{candidate}"), bits=_KEY_BITS
        )
        certificate = self.issue_as_certificate(candidate, keypair.public)
        new_topology = self._extend_topology(candidate, name, ap_sys, owner_email)
        vm = VMConfig.for_user_as(
            isd_as=candidate,
            attachment_point=ap,
            owner_email=owner_email,
            certificate=certificate,
        )
        user = UserAS(
            isd_as=candidate,
            name=name,
            attachment_point=ap,
            keypair=keypair,
            certificate=certificate,
            vm_config=vm,
        )
        self._user_ases[candidate] = user
        self.topology = new_topology
        return new_topology, user

    def _extend_topology(
        self,
        user_ia: ISDAS,
        name: str,
        ap_sys: AutonomousSystem,
        owner_email: str,
    ) -> Topology:
        """Rebuild the world with the user AS linked under its AP."""
        ases = list(self.topology.all_ases())
        links = list(self.topology.links())
        max_ifid = (
            max(
                (
                    l.interface_of(ap_sys.isd_as)
                    for l in self.topology.links_of(ap_sys.isd_as)
                ),
                default=0,
            )
            + 1
        )
        user_sys = AutonomousSystem(
            isd_as=user_ia,
            name=name,
            role=ASRole.USER,
            location=ap_sys.location,
            country=ap_sys.country,
            operator=owner_email.split("@")[-1],
            city=ap_sys.city,
            hosts=[Host(ip="127.0.0.1", name=name)],
        )
        access = LinkSpec(
            a=ap_sys.isd_as,
            a_ifid=max_ifid,
            b=user_ia,
            b_ifid=1,
            kind=LinkKind.PARENT,
            capacity_ab_mbps=40.0,
            capacity_ba_mbps=24.0,
        )
        return Topology(ases + [user_sys], links + [access])

    def user_as(self, ia: "ISDAS | str") -> Optional[UserAS]:
        return self._user_ases.get(ISDAS.parse(ia))

    def list_user_ases(self) -> List[UserAS]:
        return [self._user_ases[k] for k in sorted(self._user_ases)]
