"""Fluent construction of topologies.

The builder assigns interface ids automatically (monotonically per AS),
mirrors the SCIONLab convention of one primary host per AS, and keeps
link capacity defaults in one place so world definitions stay readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import TopologyError
from repro.topology.entities import (
    ASRole,
    AutonomousSystem,
    Host,
    LinkKind,
    LinkSpec,
)
from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS
from repro.util.geo import GeoPoint

#: Default inter-AS link capacity used when a world definition does not
#: override it.  SCIONLab overlay links ride research/commodity Internet,
#: so a few hundred Mbps is realistic.
DEFAULT_CAPACITY_MBPS = 400.0
DEFAULT_MTU = 1472


@dataclass
class _PendingAS:
    asys: AutonomousSystem
    next_ifid: int = 1


class TopologyBuilder:
    """Accumulates ASes and links, then freezes into a :class:`Topology`."""

    def __init__(self) -> None:
        self._pending: Dict[ISDAS, _PendingAS] = {}
        self._links: List[LinkSpec] = []

    # -- AS definition --------------------------------------------------------

    def add_as(
        self,
        isd_as: "str | ISDAS",
        name: str,
        *,
        role: ASRole,
        lat: float,
        lon: float,
        country: str,
        operator: str,
        city: str = "",
        ip: Optional[str] = None,
        extra_hosts: Optional[List[str]] = None,
        mtu: int = DEFAULT_MTU,
    ) -> ISDAS:
        ia = ISDAS.parse(isd_as)
        if ia in self._pending:
            raise TopologyError(f"AS {ia} defined twice")
        hosts = [Host(ip=ip or _default_ip(ia), name=name)]
        for i, extra_ip in enumerate(extra_hosts or []):
            hosts.append(Host(ip=extra_ip, name=f"{name}-{i + 2}"))
        asys = AutonomousSystem(
            isd_as=ia,
            name=name,
            role=role,
            location=GeoPoint(lat, lon),
            country=country,
            operator=operator,
            city=city or name,
            hosts=hosts,
            mtu=mtu,
        )
        self._pending[ia] = _PendingAS(asys)
        return ia

    # -- link definition --------------------------------------------------------

    def _alloc_ifid(self, ia: ISDAS) -> int:
        pending = self._pending.get(ia)
        if pending is None:
            raise TopologyError(f"link references unknown AS {ia}")
        ifid = pending.next_ifid
        pending.next_ifid += 1
        return ifid

    def link(
        self,
        a: "str | ISDAS",
        b: "str | ISDAS",
        kind: LinkKind,
        *,
        capacity_mbps: float = DEFAULT_CAPACITY_MBPS,
        capacity_ba_mbps: Optional[float] = None,
        mtu: int = DEFAULT_MTU,
        base_loss: float = 0.0,
    ) -> LinkSpec:
        """Connect ``a`` and ``b``; for PARENT links ``a`` is the provider."""
        a, b = ISDAS.parse(a), ISDAS.parse(b)
        spec = LinkSpec(
            a=a,
            a_ifid=self._alloc_ifid(a),
            b=b,
            b_ifid=self._alloc_ifid(b),
            kind=kind,
            capacity_ab_mbps=capacity_mbps,
            capacity_ba_mbps=(
                capacity_ba_mbps if capacity_ba_mbps is not None else capacity_mbps
            ),
            mtu=mtu,
            base_loss=base_loss,
        )
        self._links.append(spec)
        return spec

    def core_link(self, a, b, **kw) -> LinkSpec:
        return self.link(a, b, LinkKind.CORE, **kw)

    def parent_link(self, parent, child, **kw) -> LinkSpec:
        return self.link(parent, child, LinkKind.PARENT, **kw)

    def peer_link(self, a, b, **kw) -> LinkSpec:
        return self.link(a, b, LinkKind.PEER, **kw)

    # -- freeze ------------------------------------------------------------------

    def build(self, *, validate: bool = True) -> Topology:
        return Topology(
            (p.asys for p in self._pending.values()), self._links, validate=validate
        )


def _default_ip(ia: ISDAS) -> str:
    """Deterministic RFC-1918 address derived from the AS identity."""
    low = ia.asn & 0xFF
    mid = (ia.asn >> 8) & 0xFF
    return f"10.{ia.isd & 0xFF}.{mid}.{max(low, 1)}"
