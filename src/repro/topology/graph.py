"""The :class:`Topology` container: ASes + links with integrity checks.

The topology is the static ground truth the control plane (beaconing,
segment combination) and the data plane (network simulator) both read.
It validates SCION structural invariants at construction time:

* interface ids are unique per AS,
* ``CORE`` links join two core ASes,
* ``PARENT`` links point from provider to customer and the
  provider-customer digraph is acyclic (no customer cones loops),
* every non-core AS can reach at least one core AS of its ISD by
  following parent links upward (otherwise beaconing would strand it).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.errors import TopologyError, UnknownASError
from repro.topology.entities import ASRole, AutonomousSystem, LinkKind, LinkSpec
from repro.topology.isd_as import ISDAS


class Topology:
    """Immutable-after-build registry of ASes and links."""

    def __init__(
        self,
        ases: Iterable[AutonomousSystem],
        links: Iterable[LinkSpec],
        *,
        validate: bool = True,
    ) -> None:
        self._ases: Dict[ISDAS, AutonomousSystem] = {}
        for asys in ases:
            if asys.isd_as in self._ases:
                raise TopologyError(f"duplicate AS {asys.isd_as}")
            self._ases[asys.isd_as] = asys

        self._links: List[LinkSpec] = []
        self._by_interface: Dict[Tuple[ISDAS, int], LinkSpec] = {}
        self._adjacent: Dict[ISDAS, List[LinkSpec]] = defaultdict(list)
        for link in links:
            self._add_link(link)
        #: Mutation counter consulted by path-resolution caches.  The
        #: topology is immutable after build today, so this stays 0; any
        #: future mutating API must bump it so memoized
        #: :meth:`repro.scion.path.Path.traversals` results invalidate.
        self._epoch = 0

        if validate:
            self._validate()

    # -- construction helpers ------------------------------------------------

    def _add_link(self, link: LinkSpec) -> None:
        for side in link.endpoints():
            if side not in self._ases:
                raise UnknownASError(str(side))
        for side, ifid in ((link.a, link.a_ifid), (link.b, link.b_ifid)):
            key = (side, ifid)
            if key in self._by_interface:
                raise TopologyError(f"interface {side}#{ifid} used twice")
            self._by_interface[key] = link
        self._links.append(link)
        self._adjacent[link.a].append(link)
        self._adjacent[link.b].append(link)

    def _validate(self) -> None:
        for link in self._links:
            a_role = self._ases[link.a].role
            b_role = self._ases[link.b].role
            if link.kind is LinkKind.CORE:
                if not (a_role is ASRole.CORE and b_role is ASRole.CORE):
                    raise TopologyError(f"core link between non-core ASes: {link}")
            elif link.kind is LinkKind.PARENT:
                if b_role is ASRole.CORE:
                    raise TopologyError(f"core AS {link.b} cannot be a child: {link}")
        self._check_parent_acyclic()
        self._check_core_reachability()

    def _check_parent_acyclic(self) -> None:
        dag = nx.DiGraph()
        dag.add_nodes_from(self._ases)
        for link in self._links:
            if link.kind is LinkKind.PARENT:
                dag.add_edge(link.a, link.b)
        if not nx.is_directed_acyclic_graph(dag):
            cycle = nx.find_cycle(dag)
            raise TopologyError(f"provider-customer cycle: {cycle}")

    def _check_core_reachability(self) -> None:
        for asys in self._ases.values():
            if asys.is_core:
                continue
            if not self._reaches_core(asys.isd_as):
                raise TopologyError(
                    f"{asys.isd_as} cannot reach any core AS via parent links"
                )

    def _reaches_core(self, start: ISDAS) -> bool:
        seen: Set[ISDAS] = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            if self._ases[node].is_core:
                return True
            frontier.extend(self.parents_of(node))
        return False

    # -- lookups --------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Mutation counter for dependent caches (0 while immutable)."""
        return self._epoch

    def as_of(self, ia: "ISDAS | str") -> AutonomousSystem:
        ia = ISDAS.parse(ia)
        try:
            return self._ases[ia]
        except KeyError:
            raise UnknownASError(str(ia)) from None

    def __contains__(self, ia: "ISDAS | str") -> bool:
        try:
            return ISDAS.parse(ia) in self._ases
        except Exception:
            return False

    def all_ases(self) -> List[AutonomousSystem]:
        return sorted(self._ases.values(), key=lambda a: a.isd_as)

    def ases_in_isd(self, isd: int) -> List[AutonomousSystem]:
        return [a for a in self.all_ases() if a.isd_as.isd == isd]

    def core_ases(self, isd: Optional[int] = None) -> List[AutonomousSystem]:
        return [
            a
            for a in self.all_ases()
            if a.is_core and (isd is None or a.isd_as.isd == isd)
        ]

    def isds(self) -> List[int]:
        return sorted({a.isd_as.isd for a in self._ases.values()})

    def links(self) -> List[LinkSpec]:
        return list(self._links)

    def links_of(self, ia: "ISDAS | str") -> List[LinkSpec]:
        return list(self._adjacent[ISDAS.parse(ia)])

    def link_at(self, ia: "ISDAS | str", ifid: int) -> LinkSpec:
        """The link attached to interface ``ifid`` of AS ``ia``."""
        key = (ISDAS.parse(ia), ifid)
        link = self._by_interface.get(key)
        if link is None:
            raise TopologyError(f"no link at {key[0]}#{ifid}")
        return link

    def link_between(
        self, a: "ISDAS | str", b: "ISDAS | str"
    ) -> List[LinkSpec]:
        """All (possibly parallel) links between two ASes."""
        a, b = ISDAS.parse(a), ISDAS.parse(b)
        return [l for l in self._adjacent[a] if l.other(a) == b]

    # -- SCION-structure queries ----------------------------------------------

    def parents_of(self, ia: "ISDAS | str") -> List[ISDAS]:
        """Provider ASes of ``ia`` (the ``a`` side of PARENT links to it)."""
        ia = ISDAS.parse(ia)
        return [
            l.a for l in self._adjacent[ia] if l.kind is LinkKind.PARENT and l.b == ia
        ]

    def children_of(self, ia: "ISDAS | str") -> List[ISDAS]:
        ia = ISDAS.parse(ia)
        return [
            l.b for l in self._adjacent[ia] if l.kind is LinkKind.PARENT and l.a == ia
        ]

    def core_neighbors_of(self, ia: "ISDAS | str") -> List[ISDAS]:
        ia = ISDAS.parse(ia)
        return [
            l.other(ia) for l in self._adjacent[ia] if l.kind is LinkKind.CORE
        ]

    # -- export ----------------------------------------------------------------

    def to_networkx(self) -> nx.MultiGraph:
        """Undirected multigraph view (used by analysis/visualisation)."""
        g = nx.MultiGraph()
        for asys in self._ases.values():
            g.add_node(
                asys.isd_as,
                name=asys.name,
                role=asys.role.value,
                country=asys.country,
                operator=asys.operator,
            )
        for link in self._links:
            g.add_edge(link.a, link.b, kind=link.kind.value, spec=link)
        return g

    def __len__(self) -> int:
        return len(self._ases)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Topology(ases={len(self._ases)}, links={len(self._links)})"
