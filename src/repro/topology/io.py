"""Topology serialization: JSON world definitions.

Downstream users will want to study their own SCION deployments, not
just the bundled SCIONLab reconstruction.  This module round-trips a
:class:`~repro.topology.graph.Topology` through a plain JSON document
(one object per AS, one per link) so worlds can be versioned, diffed
and hand-edited.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import ParseError
from repro.topology.entities import (
    ASRole,
    AutonomousSystem,
    Host,
    LinkKind,
    LinkSpec,
)
from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS
from repro.util.geo import GeoPoint

FORMAT_VERSION = 1


def topology_to_dict(topology: Topology) -> Dict[str, Any]:
    """Serialize a topology into a JSON-compatible dict."""
    return {
        "format_version": FORMAT_VERSION,
        "ases": [
            {
                "isd_as": str(a.isd_as),
                "name": a.name,
                "role": a.role.value,
                "lat": a.location.lat,
                "lon": a.location.lon,
                "country": a.country,
                "operator": a.operator,
                "city": a.city,
                "mtu": a.mtu,
                "hosts": [{"ip": h.ip, "name": h.name} for h in a.hosts],
            }
            for a in topology.all_ases()
        ],
        "links": [
            {
                "a": str(l.a),
                "a_ifid": l.a_ifid,
                "b": str(l.b),
                "b_ifid": l.b_ifid,
                "kind": l.kind.value,
                "capacity_ab_mbps": l.capacity_ab_mbps,
                "capacity_ba_mbps": l.capacity_ba_mbps,
                "mtu": l.mtu,
                "base_loss": l.base_loss,
            }
            for l in topology.links()
        ],
    }


def topology_from_dict(data: Dict[str, Any], *, validate: bool = True) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ParseError(f"unsupported topology format version: {version!r}")
    ases: List[AutonomousSystem] = []
    for entry in data.get("ases", []):
        ases.append(
            AutonomousSystem(
                isd_as=ISDAS.parse(entry["isd_as"]),
                name=str(entry["name"]),
                role=ASRole(entry["role"]),
                location=GeoPoint(float(entry["lat"]), float(entry["lon"])),
                country=str(entry["country"]),
                operator=str(entry["operator"]),
                city=str(entry.get("city", "")),
                mtu=int(entry.get("mtu", 1472)),
                hosts=[
                    Host(ip=str(h["ip"]), name=str(h.get("name", "")))
                    for h in entry.get("hosts", [])
                ],
            )
        )
    links: List[LinkSpec] = []
    for entry in data.get("links", []):
        links.append(
            LinkSpec(
                a=ISDAS.parse(entry["a"]),
                a_ifid=int(entry["a_ifid"]),
                b=ISDAS.parse(entry["b"]),
                b_ifid=int(entry["b_ifid"]),
                kind=LinkKind(entry["kind"]),
                capacity_ab_mbps=float(entry.get("capacity_ab_mbps", 1000.0)),
                capacity_ba_mbps=float(entry.get("capacity_ba_mbps", 1000.0)),
                mtu=int(entry.get("mtu", 1472)),
                base_loss=float(entry.get("base_loss", 0.0)),
            )
        )
    return Topology(ases, links, validate=validate)


def save_topology(topology: Topology, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(topology_to_dict(topology), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_topology(path: str, *, validate: bool = True) -> Topology:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except json.JSONDecodeError as exc:
        raise ParseError(f"corrupt topology file {path}: {exc}") from exc
    return topology_from_dict(data, validate=validate)
