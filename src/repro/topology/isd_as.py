"""ISD-AS identifiers.

SCION addresses autonomous systems as ``<ISD>-<AS>`` where the ISD is a
small integer (isolation domain) and the AS number is rendered in the
three-group hexadecimal BGP-style format SCIONLab uses, e.g.
``19-ffaa:0:1303``.  Full host addresses append an IP in brackets:
``19-ffaa:0:1303,[141.44.25.144]`` — exactly the notation the paper's
figures use.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering

from repro.errors import ParseError

_AS_GROUP_BITS = 16
_AS_RE = re.compile(r"^([0-9a-fA-F]{1,4}):([0-9a-fA-F]{1,4}):([0-9a-fA-F]{1,4})$")
_ISD_AS_RE = re.compile(r"^(\d+)-([0-9a-fA-F:]+)$")
_ADDR_RE = re.compile(r"^(\d+-[0-9a-fA-F:]+),\[([^\]]+)\]$")


@total_ordering
@dataclass(frozen=True)
class ISDAS:
    """An (ISD, AS-number) pair.  AS number is stored as a 48-bit int."""

    isd: int
    asn: int

    def __post_init__(self) -> None:
        if self.isd < 0 or self.isd > 0xFFFF:
            raise ParseError(f"ISD out of range: {self.isd}")
        if self.asn < 0 or self.asn >= 1 << 48:
            raise ParseError(f"AS number out of range: {self.asn}")

    # -- parsing -----------------------------------------------------------

    @classmethod
    def parse(cls, text: "str | ISDAS") -> "ISDAS":
        """Parse ``"19-ffaa:0:1303"`` into an :class:`ISDAS`."""
        if isinstance(text, ISDAS):
            return text
        m = _ISD_AS_RE.match(str(text).strip())
        if not m:
            raise ParseError(f"not an ISD-AS identifier: {text!r}")
        isd_str, as_str = m.groups()
        return cls(isd=int(isd_str), asn=cls._parse_asn(as_str))

    @staticmethod
    def _parse_asn(as_str: str) -> int:
        m = _AS_RE.match(as_str)
        if not m:
            raise ParseError(f"not an AS number: {as_str!r}")
        hi, mid, lo = (int(g, 16) for g in m.groups())
        return (hi << (2 * _AS_GROUP_BITS)) | (mid << _AS_GROUP_BITS) | lo

    @classmethod
    def parse_address(cls, text: str) -> "tuple[ISDAS, str]":
        """Parse a full host address ``"16-ffaa:0:1002,[172.31.43.7]"``."""
        m = _ADDR_RE.match(str(text).strip())
        if not m:
            raise ParseError(f"not a SCION host address: {text!r}")
        return cls.parse(m.group(1)), m.group(2)

    # -- formatting ----------------------------------------------------------

    @property
    def as_str(self) -> str:
        """The AS number in ``ffaa:0:1303`` notation."""
        hi = (self.asn >> (2 * _AS_GROUP_BITS)) & 0xFFFF
        mid = (self.asn >> _AS_GROUP_BITS) & 0xFFFF
        lo = self.asn & 0xFFFF
        return f"{hi:x}:{mid:x}:{lo:x}"

    def __str__(self) -> str:
        # Memoized on the (frozen) instance: rendered constantly by link
        # keys, RNG stream names and document fields on the measurement
        # hot path, and the value can never go stale.
        cached = self.__dict__.get("_str_memo")
        if cached is None:
            cached = f"{self.isd}-{self.as_str}"
            object.__setattr__(self, "_str_memo", cached)
        return cached

    def address(self, ip: str) -> str:
        """Full host address string, as printed by ``scion address``."""
        return f"{self},[{ip}]"

    # -- ordering ------------------------------------------------------------

    def __hash__(self) -> int:
        # Same value the generated frozen-dataclass hash produces
        # (``hash((isd, asn))``), memoized: jitter/pps config lookups
        # hash ISDAS keys on every traversal step, and building the
        # field tuple per call shows up in campaign profiles.
        cached = self.__dict__.get("_hash_memo")
        if cached is None:
            cached = hash((self.isd, self.asn))
            object.__setattr__(self, "_hash_memo", cached)
        return cached

    def __lt__(self, other: "ISDAS") -> bool:
        if not isinstance(other, ISDAS):
            return NotImplemented
        return (self.isd, self.asn) < (other.isd, other.asn)

    def __repr__(self) -> str:
        return f"ISDAS({str(self)!r})"


def isd_as(text: "str | ISDAS") -> ISDAS:
    """Shorthand parser used throughout the library."""
    return ISDAS.parse(text)
