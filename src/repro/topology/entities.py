"""Topology entities: autonomous systems, hosts, and inter-AS links.

A SCIONLab AS "typically is made up by a single host" (§3.1), so every
:class:`AutonomousSystem` carries a primary :class:`Host`; ASes that host
several test servers (the paper notes "certain ASes contain multiple
servers") may carry more.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ValidationError
from repro.topology.isd_as import ISDAS
from repro.util.geo import GeoPoint


class ASRole(enum.Enum):
    """The three SCIONLab AS flavours (§3.1) plus user-attached ASes."""

    CORE = "core"
    NON_CORE = "non-core"
    ATTACHMENT_POINT = "attachment-point"
    USER = "user"


class LinkKind(enum.Enum):
    """SCION inter-AS link types.

    ``PARENT`` links are directional in the provider-customer sense: the
    ``a`` endpoint is the parent (provider), ``b`` the child (customer).
    ``CORE`` links connect core ASes (possibly across ISDs); ``PEER``
    links connect non-core ASes laterally.
    """

    CORE = "core"
    PARENT = "parent"
    PEER = "peer"


@dataclass(frozen=True)
class Host:
    """An end host inside an AS."""

    ip: str
    name: str = ""

    def __post_init__(self) -> None:
        if not self.ip:
            raise ValidationError("host needs an IP address")


@dataclass
class AutonomousSystem:
    """One AS: identity, role, placement and hosts.

    ``country`` and ``operator`` feed the sovereignty/exclusion filters of
    the path-selection engine (paper abstract: "devices to exclude for
    geographical or sovereignty reasons").
    """

    isd_as: ISDAS
    name: str
    role: ASRole
    location: GeoPoint
    country: str
    operator: str
    city: str = ""
    hosts: List[Host] = field(default_factory=list)
    mtu: int = 1472

    def __post_init__(self) -> None:
        if self.mtu < 576:
            raise ValidationError(f"AS MTU unreasonably small: {self.mtu}")

    @property
    def primary_host(self) -> Host:
        if not self.hosts:
            raise ValidationError(f"AS {self.isd_as} has no hosts")
        return self.hosts[0]

    @property
    def is_core(self) -> bool:
        return self.role is ASRole.CORE

    def address(self) -> str:
        """Primary host address in ``isd-as,[ip]`` notation."""
        return self.isd_as.address(self.primary_host.ip)

    def __str__(self) -> str:
        return f"{self.isd_as} ({self.name})"


@dataclass(frozen=True)
class LinkSpec:
    """An inter-AS link between interface ``a_ifid`` of AS ``a`` and
    interface ``b_ifid`` of AS ``b``.

    Capacities are directional (``capacity_ab`` carries traffic from the
    ``a`` endpoint towards ``b``) so access asymmetry — the cause of the
    paper's upstream-vs-downstream bandwidth gap (Fig 7) — can be modelled
    at the user AS attachment link.
    """

    a: ISDAS
    a_ifid: int
    b: ISDAS
    b_ifid: int
    kind: LinkKind
    capacity_ab_mbps: float = 1000.0
    capacity_ba_mbps: float = 1000.0
    mtu: int = 1472
    base_loss: float = 0.0

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValidationError(f"self-link at {self.a}")
        if self.a_ifid <= 0 or self.b_ifid <= 0:
            raise ValidationError("interface ids must be positive")
        if min(self.capacity_ab_mbps, self.capacity_ba_mbps) <= 0:
            raise ValidationError("link capacities must be positive")
        if not (0.0 <= self.base_loss < 1.0):
            raise ValidationError(f"base_loss out of range: {self.base_loss}")

    def endpoints(self) -> Tuple[ISDAS, ISDAS]:
        return self.a, self.b

    def interface_of(self, side: ISDAS) -> int:
        if side == self.a:
            return self.a_ifid
        if side == self.b:
            return self.b_ifid
        raise ValidationError(f"{side} is not an endpoint of this link")

    def other(self, side: ISDAS) -> ISDAS:
        if side == self.a:
            return self.b
        if side == self.b:
            return self.a
        raise ValidationError(f"{side} is not an endpoint of this link")

    def capacity_from(self, side: ISDAS) -> float:
        """Capacity in Mbps for traffic leaving ``side`` over this link."""
        return self.capacity_ab_mbps if side == self.a else self.capacity_ba_mbps

    def key(self) -> Tuple[str, int, str, int]:
        """A stable hashable identity for the link.

        Memoized on the (frozen) instance: the simulator keys its
        link-state and flow-ledger lookups on this tuple once per
        traversal step on the measurement hot path.
        """
        cached = self.__dict__.get("_key_memo")
        if cached is None:
            cached = (str(self.a), self.a_ifid, str(self.b), self.b_ifid)
            object.__setattr__(self, "_key_memo", cached)
        return cached

    def __str__(self) -> str:
        arrow = {"core": "=", "parent": ">", "peer": "~"}[self.kind.value]
        return f"{self.a}#{self.a_ifid} {arrow} {self.b}#{self.b_ifid}"
