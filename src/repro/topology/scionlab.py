"""The SCIONLab world topology used by all experiments.

This module reconstructs the 35-AS global SCIONLab topology of the
paper's Fig. 1 at the fidelity the evaluation needs.  The public
SCIONLab topology is only published as a figure, so the reconstruction
is *anchored* on every concrete identity the paper names and fills the
remainder with plausible SCIONLab participants:

* ``16-ffaa:0:1002`` AWS Ireland (Fig 5/6 destination),
* ``16-ffaa:0:1003`` AWS N. Virginia (Fig 9 destination),
* ``16-ffaa:0:1004`` AWS Ohio and ``16-ffaa:0:1007`` AWS Singapore —
  the two ASes the paper identifies as long-distance, high-jitter
  detours on Ireland paths (§6.1),
* ``19-ffaa:0:1303`` Magdeburg AP, Germany (Fig 7/8 destination,
  host 141.44.25.144),
* a Korea AS (fifth study destination, §6),
* ETHZ-AP, the attachment point the authors picked for its central
  position (§3.2), and their user AS (``MY_AS``) behind it.

Link capacities model the SCIONLab overlay: core links ride
well-provisioned research networks, leaf/AP links are smaller, and the
user AS access link is asymmetric (upstream below downstream), which is
what surfaces as the paper's Fig 7 upstream/downstream gap.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.topology.builder import TopologyBuilder
from repro.topology.entities import ASRole
from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS

# --- identities the rest of the library refers to ---------------------------

MY_AS = ISDAS.parse("17-ffaa:1:e01")
ETHZ_AP = ISDAS.parse("17-ffaa:0:1107")

AWS_FRANKFURT = ISDAS.parse("16-ffaa:0:1001")
AWS_IRELAND = ISDAS.parse("16-ffaa:0:1002")
AWS_N_VIRGINIA = ISDAS.parse("16-ffaa:0:1003")
AWS_OHIO = ISDAS.parse("16-ffaa:0:1004")
AWS_OREGON = ISDAS.parse("16-ffaa:0:1005")
AWS_TOKYO = ISDAS.parse("16-ffaa:0:1006")
AWS_SINGAPORE = ISDAS.parse("16-ffaa:0:1007")

SCMN_CORE = ISDAS.parse("17-ffaa:0:1101")
ETHZ_CORE = ISDAS.parse("17-ffaa:0:1102")

MAGDEBURG_CORE = ISDAS.parse("19-ffaa:0:1301")
GEANT_CORE = ISDAS.parse("19-ffaa:0:1302")
MAGDEBURG_AP = ISDAS.parse("19-ffaa:0:1303")

KISTI_CORE = ISDAS.parse("20-ffaa:0:1401")
KAIST_AP = ISDAS.parse("20-ffaa:0:1402")

#: ASes the paper singles out as adding "a wide jitter other than high
#: latency peeks" (§6.1).  The network simulator consumes this map as
#: extra per-transit jitter.
JITTERY_ASES: Dict[ISDAS, float] = {
    AWS_SINGAPORE: 6.0,  # ms of extra transit jitter (std dev)
    AWS_OHIO: 5.0,
}

#: The paper's five-destination study subset (§6): Germany, Ireland,
#: North Virginia, Singapore, Korea.
STUDY_DESTINATIONS: Tuple[str, ...] = (
    "19-ffaa:0:1303",  # Germany (Magdeburg AP)
    "16-ffaa:0:1002",  # Ireland
    "16-ffaa:0:1003",  # North Virginia
    "16-ffaa:0:1007",  # Singapore
    "20-ffaa:0:1402",  # Korea
)


def build_scionlab_world() -> Topology:
    """Construct the 35-AS SCIONLab topology plus the attached user AS."""
    b = TopologyBuilder()

    # --- ISD 16: AWS (global cloud ISD) ------------------------------------
    b.add_as(AWS_FRANKFURT, "AWS Frankfurt", role=ASRole.CORE,
             lat=50.11, lon=8.68, country="DE", operator="Amazon",
             city="Frankfurt", ip="172.31.0.10",
             extra_hosts=["172.31.0.11"])
    b.add_as(AWS_IRELAND, "AWS Ireland", role=ASRole.NON_CORE,
             lat=53.35, lon=-6.26, country="IE", operator="Amazon",
             city="Dublin", ip="172.31.43.7")
    b.add_as(AWS_N_VIRGINIA, "AWS N. Virginia", role=ASRole.NON_CORE,
             lat=39.04, lon=-77.49, country="US", operator="Amazon",
             city="Ashburn", ip="172.31.19.144")
    b.add_as(AWS_OHIO, "AWS Ohio", role=ASRole.NON_CORE,
             lat=40.00, lon=-83.00, country="US", operator="Amazon",
             city="Columbus", ip="172.31.8.21")
    b.add_as(AWS_OREGON, "AWS Oregon", role=ASRole.NON_CORE,
             lat=45.84, lon=-119.70, country="US", operator="Amazon",
             city="Boardman", ip="172.31.12.9")
    b.add_as(AWS_TOKYO, "AWS Tokyo", role=ASRole.NON_CORE,
             lat=35.68, lon=139.69, country="JP", operator="Amazon",
             city="Tokyo", ip="172.31.30.2")
    b.add_as(AWS_SINGAPORE, "AWS Singapore", role=ASRole.NON_CORE,
             lat=1.35, lon=103.82, country="SG", operator="Amazon",
             city="Singapore", ip="172.31.26.5")

    # AWS regional tree: Frankfurt is the core; Ireland is additionally a
    # customer of Ohio and Singapore, which is what creates the paper's
    # long-distance detour paths to Ireland (§6.1), and N. Virginia is
    # additionally a customer of Ohio (more path diversity for Fig 9).
    b.parent_link(AWS_FRANKFURT, AWS_IRELAND, capacity_mbps=600)
    b.parent_link(AWS_FRANKFURT, AWS_N_VIRGINIA, capacity_mbps=600)
    b.parent_link(AWS_FRANKFURT, AWS_N_VIRGINIA, capacity_mbps=600)
    b.parent_link(AWS_FRANKFURT, AWS_OHIO, capacity_mbps=500)
    b.parent_link(AWS_FRANKFURT, AWS_SINGAPORE, capacity_mbps=400)
    b.parent_link(AWS_FRANKFURT, AWS_TOKYO, capacity_mbps=400)
    b.parent_link(AWS_OHIO, AWS_IRELAND, capacity_mbps=300)
    b.parent_link(AWS_SINGAPORE, AWS_IRELAND, capacity_mbps=250)
    b.parent_link(AWS_OHIO, AWS_N_VIRGINIA, capacity_mbps=400)
    b.parent_link(AWS_OHIO, AWS_OREGON, capacity_mbps=300)
    b.parent_link(AWS_TOKYO, AWS_SINGAPORE, capacity_mbps=250)

    # --- ISD 17: Switzerland -------------------------------------------------
    b.add_as(SCMN_CORE, "Swisscom", role=ASRole.CORE,
             lat=47.38, lon=8.54, country="CH", operator="Swisscom",
             city="Zurich", ip="10.17.0.1")
    b.add_as(ETHZ_CORE, "ETH Zurich", role=ASRole.CORE,
             lat=47.38, lon=8.55, country="CH", operator="ETH",
             city="Zurich", ip="10.17.0.2")
    b.add_as(ETHZ_AP, "ETHZ-AP", role=ASRole.ATTACHMENT_POINT,
             lat=47.38, lon=8.55, country="CH", operator="ETH",
             city="Zurich", ip="10.17.0.7")
    b.add_as("17-ffaa:0:1108", "SCMN-AP", role=ASRole.ATTACHMENT_POINT,
             lat=46.95, lon=7.45, country="CH", operator="Swisscom",
             city="Bern", ip="10.17.0.8")
    b.add_as("17-ffaa:0:1110", "CYD Campus", role=ASRole.NON_CORE,
             lat=46.76, lon=7.63, country="CH", operator="armasuisse",
             city="Thun", ip="10.17.0.10")

    b.core_link(SCMN_CORE, ETHZ_CORE, capacity_mbps=1000)
    # The ETHZ attachment point is multi-homed to both Swiss cores —
    # this is what multiplies the user's up-segments.
    b.parent_link(ETHZ_CORE, ETHZ_AP, capacity_mbps=500)
    b.parent_link(SCMN_CORE, ETHZ_AP, capacity_mbps=400)
    b.parent_link(SCMN_CORE, "17-ffaa:0:1108", capacity_mbps=400)
    b.parent_link(ETHZ_CORE, "17-ffaa:0:1110", capacity_mbps=300)

    # --- ISD 19: EU research networks ---------------------------------------
    b.add_as(MAGDEBURG_CORE, "OVGU Magdeburg core", role=ASRole.CORE,
             lat=52.14, lon=11.65, country="DE", operator="OVGU",
             city="Magdeburg", ip="141.44.25.140")
    b.add_as(GEANT_CORE, "GEANT Amsterdam", role=ASRole.CORE,
             lat=52.37, lon=4.90, country="NL", operator="GEANT",
             city="Amsterdam", ip="10.19.2.1")
    b.add_as(MAGDEBURG_AP, "Magdeburg AP", role=ASRole.ATTACHMENT_POINT,
             lat=52.14, lon=11.65, country="DE", operator="OVGU",
             city="Magdeburg", ip="141.44.25.144")
    b.add_as("19-ffaa:0:1304", "SIDN Labs", role=ASRole.ATTACHMENT_POINT,
             lat=51.98, lon=5.91, country="NL", operator="SIDN",
             city="Arnhem", ip="10.19.4.1")
    b.add_as("19-ffaa:0:1305", "UPV Valencia", role=ASRole.NON_CORE,
             lat=39.48, lon=-0.34, country="ES", operator="UPV",
             city="Valencia", ip="10.19.5.1")
    b.add_as("19-ffaa:0:1306", "TU Darmstadt", role=ASRole.NON_CORE,
             lat=49.87, lon=8.65, country="DE", operator="TUDa",
             city="Darmstadt", ip="10.19.6.1")

    b.core_link(MAGDEBURG_CORE, GEANT_CORE, capacity_mbps=1000)
    b.parent_link(MAGDEBURG_CORE, MAGDEBURG_AP, capacity_mbps=500)
    b.parent_link(GEANT_CORE, "19-ffaa:0:1304", capacity_mbps=400)
    b.parent_link(MAGDEBURG_CORE, "19-ffaa:0:1305", capacity_mbps=300)
    b.parent_link(GEANT_CORE, "19-ffaa:0:1306", capacity_mbps=300)

    # --- ISD 18: North America ----------------------------------------------
    b.add_as("18-ffaa:0:1201", "CMU Pittsburgh", role=ASRole.CORE,
             lat=40.44, lon=-79.94, country="US", operator="CMU",
             city="Pittsburgh", ip="10.18.1.1")
    b.add_as("18-ffaa:0:1202", "CMU AP", role=ASRole.ATTACHMENT_POINT,
             lat=40.44, lon=-79.94, country="US", operator="CMU",
             city="Pittsburgh", ip="10.18.2.1")
    b.add_as("18-ffaa:0:1203", "Columbia NYC", role=ASRole.NON_CORE,
             lat=40.81, lon=-73.96, country="US", operator="Columbia",
             city="New York", ip="10.18.3.1")
    b.add_as("18-ffaa:0:1204", "UW Madison", role=ASRole.NON_CORE,
             lat=43.07, lon=-89.40, country="US", operator="UW",
             city="Madison", ip="10.18.4.1")
    b.add_as("18-ffaa:0:1205", "UC Berkeley", role=ASRole.NON_CORE,
             lat=37.87, lon=-122.26, country="US", operator="UCB",
             city="Berkeley", ip="10.18.5.1")

    b.add_as("18-ffaa:0:1206", "Virginia Tech", role=ASRole.NON_CORE,
             lat=37.23, lon=-80.42, country="US", operator="VT",
             city="Blacksburg", ip="10.18.6.1")

    b.parent_link("18-ffaa:0:1201", "18-ffaa:0:1202", capacity_mbps=500)
    b.parent_link("18-ffaa:0:1201", "18-ffaa:0:1206", capacity_mbps=300)
    b.parent_link("18-ffaa:0:1202", "18-ffaa:0:1203", capacity_mbps=400)
    b.parent_link("18-ffaa:0:1202", "18-ffaa:0:1204", capacity_mbps=400)
    b.parent_link("18-ffaa:0:1204", "18-ffaa:0:1205", capacity_mbps=300)
    # Lateral peering between the two CMU-AP customers: exercises SCION's
    # peering-shortcut path shape without touching MY_AS's path sets.
    b.peer_link("18-ffaa:0:1203", "18-ffaa:0:1204", capacity_mbps=200)

    # --- ISD 20: South Korea --------------------------------------------------
    b.add_as(KISTI_CORE, "KISTI Daejeon", role=ASRole.CORE,
             lat=36.35, lon=127.38, country="KR", operator="KISTI",
             city="Daejeon", ip="10.20.1.1")
    b.add_as(KAIST_AP, "KAIST AP", role=ASRole.ATTACHMENT_POINT,
             lat=36.37, lon=127.36, country="KR", operator="KAIST",
             city="Daejeon", ip="10.20.2.1")
    b.add_as("20-ffaa:0:1403", "Korea Univ. Seoul", role=ASRole.NON_CORE,
             lat=37.59, lon=127.03, country="KR", operator="KU",
             city="Seoul", ip="10.20.3.1")

    b.parent_link(KISTI_CORE, KAIST_AP, capacity_mbps=400)
    b.parent_link(KAIST_AP, "20-ffaa:0:1403", capacity_mbps=400)

    # --- ISD 21: Taiwan ---------------------------------------------------------
    b.add_as("21-ffaa:0:1501", "NTU Taipei", role=ASRole.CORE,
             lat=25.02, lon=121.54, country="TW", operator="NTU",
             city="Taipei", ip="10.21.1.1")
    b.add_as("21-ffaa:0:1502", "NCHC Hsinchu", role=ASRole.NON_CORE,
             lat=24.78, lon=120.99, country="TW", operator="NCHC",
             city="Hsinchu", ip="10.21.2.1")
    b.parent_link("21-ffaa:0:1501", "21-ffaa:0:1502", capacity_mbps=300)

    # --- ISD 22: Japan ------------------------------------------------------------
    b.add_as("22-ffaa:0:1601", "KDDI Tokyo", role=ASRole.CORE,
             lat=35.68, lon=139.75, country="JP", operator="KDDI",
             city="Tokyo", ip="10.22.1.1")
    b.add_as("22-ffaa:0:1602", "KDDI AP", role=ASRole.ATTACHMENT_POINT,
             lat=35.66, lon=139.70, country="JP", operator="KDDI",
             city="Tokyo", ip="10.22.2.1")
    b.parent_link("22-ffaa:0:1601", "22-ffaa:0:1602", capacity_mbps=300)

    # --- ISD 23: Singapore (NUS) ----------------------------------------------------
    b.add_as("23-ffaa:0:1701", "NUS Singapore", role=ASRole.CORE,
             lat=1.30, lon=103.77, country="SG", operator="NUS",
             city="Singapore", ip="10.23.1.1")
    b.add_as("23-ffaa:0:1702", "NUS AP", role=ASRole.ATTACHMENT_POINT,
             lat=1.30, lon=103.77, country="SG", operator="NUS",
             city="Singapore", ip="10.23.2.1")
    b.parent_link("23-ffaa:0:1701", "23-ffaa:0:1702", capacity_mbps=300)

    # --- ISD 24: United Kingdom ---------------------------------------------------------
    b.add_as("24-ffaa:0:1801", "Imperial London", role=ASRole.CORE,
             lat=51.50, lon=-0.18, country="GB", operator="Imperial",
             city="London", ip="10.24.1.1")
    b.add_as("24-ffaa:0:1802", "Cambridge", role=ASRole.NON_CORE,
             lat=52.20, lon=0.12, country="GB", operator="UCam",
             city="Cambridge", ip="10.24.2.1")
    b.parent_link("24-ffaa:0:1801", "24-ffaa:0:1802", capacity_mbps=300)

    # --- inter-ISD core mesh ---------------------------------------------------
    # European triangle + transit towards the AWS ISD.  There is no direct
    # Swiss-core <-> AWS-core link: every path from MY_AS to an AWS host
    # transits an EU core (Magdeburg or GEANT), matching the paper's
    # 6-hop minimum to AWS Ireland.
    b.core_link(ETHZ_CORE, MAGDEBURG_CORE, capacity_mbps=1000)
    b.core_link(ETHZ_CORE, GEANT_CORE, capacity_mbps=1000)
    b.core_link(SCMN_CORE, MAGDEBURG_CORE, capacity_mbps=800)
    b.core_link(SCMN_CORE, GEANT_CORE, capacity_mbps=800)
    b.core_link(MAGDEBURG_CORE, AWS_FRANKFURT, capacity_mbps=800)
    b.core_link(GEANT_CORE, AWS_FRANKFURT, capacity_mbps=800)
    # UK hangs off GEANT and peers with the AWS core directly, which
    # yields Ireland paths through a *different ISD set* ({16,17,19,24})
    # at equal hop count — the Fig 6 grouping dimension.
    b.core_link(GEANT_CORE, "24-ffaa:0:1801", capacity_mbps=600)
    b.core_link("24-ffaa:0:1801", AWS_FRANKFURT, capacity_mbps=600)
    # Transatlantic and Asian transit.
    b.core_link(MAGDEBURG_CORE, "18-ffaa:0:1201", capacity_mbps=500)
    b.core_link(ETHZ_CORE, KISTI_CORE, capacity_mbps=400)
    b.core_link(KISTI_CORE, "21-ffaa:0:1501", capacity_mbps=400)
    b.core_link("21-ffaa:0:1501", "22-ffaa:0:1601", capacity_mbps=400)
    b.core_link("22-ffaa:0:1601", "23-ffaa:0:1701", capacity_mbps=300)
    b.core_link("21-ffaa:0:1501", "23-ffaa:0:1701", capacity_mbps=300)

    # --- the authors' user AS, attached at ETHZ-AP (§3.2) -------------------------
    # Asymmetric access link: modest upstream, larger downstream — the
    # source of the paper's Fig 7 upstream/downstream bandwidth gap.
    b.add_as(MY_AS, "MY_AS", role=ASRole.USER,
             lat=52.35, lon=4.95, country="NL", operator="UvA",
             city="Amsterdam", ip="127.0.0.1")
    b.parent_link(ETHZ_AP, MY_AS, capacity_mbps=40, capacity_ba_mbps=16)

    return b.build()


#: Ordered server list backing the paper's ``availableServers`` collection
#: (§4.2.1): 21 testable destinations, ids 1..21.  Destination 2 is AWS
#: N. Virginia so Fig 9's path ids (``2_16`` ... ``2_23``) line up, and the
#: AWS Frankfurt AS contributes two servers ("certain ASes contain
#: multiple servers").  Ids 1..5 are the paper's five-destination study
#: subset.
AVAILABLE_SERVERS: List[Tuple[str, str]] = [
    ("16-ffaa:0:1002", "172.31.43.7"),     # 1  Ireland
    ("16-ffaa:0:1003", "172.31.19.144"),   # 2  N. Virginia
    ("19-ffaa:0:1303", "141.44.25.144"),   # 3  Magdeburg AP (Germany)
    ("16-ffaa:0:1007", "172.31.26.5"),     # 4  AWS Singapore
    ("20-ffaa:0:1402", "10.20.2.1"),       # 5  KAIST (Korea)
    ("16-ffaa:0:1001", "172.31.0.10"),     # 6  AWS Frankfurt (server A)
    ("16-ffaa:0:1001", "172.31.0.11"),     # 7  AWS Frankfurt (server B)
    ("16-ffaa:0:1004", "172.31.8.21"),     # 8  AWS Ohio
    ("16-ffaa:0:1005", "172.31.12.9"),     # 9  AWS Oregon
    ("16-ffaa:0:1006", "172.31.30.2"),     # 10 AWS Tokyo
    ("17-ffaa:0:1110", "10.17.0.10"),      # 11 CYD Thun
    ("17-ffaa:0:1108", "10.17.0.8"),       # 12 SCMN-AP Bern
    ("19-ffaa:0:1304", "10.19.4.1"),       # 13 SIDN Arnhem
    ("19-ffaa:0:1305", "10.19.5.1"),       # 14 UPV Valencia
    ("19-ffaa:0:1306", "10.19.6.1"),       # 15 TU Darmstadt
    ("17-ffaa:0:1102", "10.17.0.2"),       # 16 ETH Zurich core
    ("18-ffaa:0:1203", "10.18.3.1"),       # 17 Columbia NYC
    ("18-ffaa:0:1205", "10.18.5.1"),       # 18 UC Berkeley
    ("20-ffaa:0:1403", "10.20.3.1"),       # 19 Korea Univ. Seoul
    ("22-ffaa:0:1602", "10.22.2.1"),       # 20 KDDI AP Tokyo
    ("23-ffaa:0:1702", "10.23.2.1"),       # 21 NUS AP Singapore
]


def scionlab_network_config(seed: int = 20231112):
    """The :class:`repro.netsim.config.NetworkConfig` matching this world.

    Encodes the user-VM router limits (small software router behind the
    ETHZ attachment point) and the extra transit jitter of the two ASes
    the paper flags in §6.1.
    """
    from repro.netsim.config import NetworkConfig, PpsLimits

    return NetworkConfig(
        seed=seed,
        extra_jitter_ms=dict(JITTERY_ASES),
        pps_overrides={
            MY_AS: PpsLimits(send=11_000.0, recv=18_000.0),
            ETHZ_AP: PpsLimits(send=30_000.0, recv=30_000.0),
        },
    )
