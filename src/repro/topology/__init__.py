"""SCION topology model: identifiers, entities, graph, SCIONLab world."""

from repro.topology.isd_as import ISDAS
from repro.topology.entities import (
    ASRole,
    AutonomousSystem,
    Host,
    LinkKind,
    LinkSpec,
)
from repro.topology.graph import Topology
from repro.topology.builder import TopologyBuilder
from repro.topology.scionlab import build_scionlab_world, MY_AS, ETHZ_AP

__all__ = [
    "ISDAS",
    "ASRole",
    "AutonomousSystem",
    "Host",
    "LinkKind",
    "LinkSpec",
    "Topology",
    "TopologyBuilder",
    "build_scionlab_world",
    "MY_AS",
    "ETHZ_AP",
]
