"""Append-only structured journal of everything the monitor does.

Every observation, state transition, revocation and failover lands as
one immutable document in the ``flow_events`` collection, in strict
monotonic sequence order.  The journal is the monitor's source of
truth: ``upin-frontend monitor events`` prints it, the failover report
aggregates it, and :func:`repro.monitor.health.replay_events` rebuilds
the exact tracker state from it (the auditability property the paper's
"possible verification" goal asks of every control decision).

Event types (``EVENT_TYPES`` — docs/MONITOR.md's reference table is
diff-tested against this set):

==================== =====================================================
``flow_registered``  a flow entered monitoring (also re-emitted after a
                     failover re-registers the flow on its new path)
``sample``           one health observation folded into the tracker
``state_transition`` the tracker changed a flow's health state
``revocation``       an interface revocation was injected
``failover``         a flow was atomically rerouted (old/new path, cause,
                     detection→recovery latency)
``failover_suppressed`` a wanted failover was damped by the cooldown
``failover_failed``  reselection found no admissible replacement path
``flow_withdrawn``   a flow left monitoring
==================== =====================================================
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.docdb.collection import Collection

FLOW_EVENTS_COLLECTION = "flow_events"

EVENT_FLOW_REGISTERED = "flow_registered"
EVENT_SAMPLE = "sample"
EVENT_STATE_TRANSITION = "state_transition"
EVENT_REVOCATION = "revocation"
EVENT_FAILOVER = "failover"
EVENT_FAILOVER_SUPPRESSED = "failover_suppressed"
EVENT_FAILOVER_FAILED = "failover_failed"
EVENT_FLOW_WITHDRAWN = "flow_withdrawn"

#: Every event type the journal can emit (tested against the docs).
EVENT_TYPES = frozenset(
    {
        EVENT_FLOW_REGISTERED,
        EVENT_SAMPLE,
        EVENT_STATE_TRANSITION,
        EVENT_REVOCATION,
        EVENT_FAILOVER,
        EVENT_FAILOVER_SUPPRESSED,
        EVENT_FAILOVER_FAILED,
        EVENT_FLOW_WITHDRAWN,
    }
)


class FlowEventJournal:
    """Sequenced writer/reader for the ``flow_events`` collection."""

    def __init__(self, collection: Collection) -> None:
        self.collection = collection
        collection.create_index("type")
        collection.create_index([("user", 1), ("server_id", 1)])
        # Resume the sequence when attached to a pre-existing journal.
        existing = collection.find({}, sort=[("seq", -1)], limit=1)
        self._seq = int(existing[0]["seq"]) + 1 if existing else 0

    def __len__(self) -> int:
        return self.collection.count_documents()

    # -- append side -----------------------------------------------------------

    def append(
        self,
        event_type: str,
        t_s: float,
        *,
        user: Optional[str] = None,
        server_id: Optional[int] = None,
        **payload: Any,
    ) -> Dict[str, Any]:
        """Append one event; returns the stored document."""
        if event_type not in EVENT_TYPES:
            raise ValueError(f"unknown event type: {event_type!r}")
        doc: Dict[str, Any] = {
            "_id": f"flowevt_{self._seq:08d}",
            "seq": self._seq,
            "type": event_type,
            "t_s": t_s,
            "timestamp_ms": int(t_s * 1000.0),
            "user": user,
            "server_id": server_id,
        }
        doc.update(payload)
        self.collection.insert_one(doc)
        self._seq += 1
        return doc

    # -- query side ------------------------------------------------------------

    def events(
        self,
        *,
        event_type: Optional[str] = None,
        user: Optional[str] = None,
        server_id: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Journal entries in append order, optionally filtered."""
        flt: Dict[str, Any] = {}
        if event_type is not None:
            flt["type"] = event_type
        if user is not None:
            flt["user"] = user
        if server_id is not None:
            flt["server_id"] = server_id
        return self.collection.find(flt, sort=[("seq", 1)])

    def failovers(self) -> List[Dict[str, Any]]:
        return self.events(event_type=EVENT_FAILOVER)

    def transitions(
        self, user: Optional[str] = None, server_id: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        return self.events(
            event_type=EVENT_STATE_TRANSITION, user=user, server_id=server_id
        )

    # -- reporting ------------------------------------------------------------

    def failover_report(self) -> str:
        """Human summary of every failover with time-to-repair."""
        failovers = self.failovers()
        suppressed = self.events(event_type=EVENT_FAILOVER_SUPPRESSED)
        failed = self.events(event_type=EVENT_FAILOVER_FAILED)
        lines = [
            f"failover report: {len(failovers)} failover(s), "
            f"{len(suppressed)} suppressed by cooldown, "
            f"{len(failed)} with no replacement path"
        ]
        repairs: List[float] = []
        for doc in failovers:
            ttr = doc.get("detection_to_recovery_s")
            if ttr is not None:
                repairs.append(float(ttr))
            lines.append(
                f"  [{doc['t_s']:8.1f}s] {doc['user']}/{doc['server_id']}: "
                f"{doc['old_path_id']} -> {doc['new_path_id']}"
            )
            lines.append(
                f"             cause: {doc['cause']}"
                + (
                    f"  detection->recovery: {float(ttr):.1f}s"
                    if ttr is not None
                    else ""
                )
            )
        if repairs:
            lines.append(
                f"  mean time-to-repair: {sum(repairs) / len(repairs):.1f}s "
                f"(max {max(repairs):.1f}s)"
            )
        if not failovers:
            lines.append("  (no failovers recorded)")
        return "\n".join(lines)

    def format_events(self, *, limit: Optional[int] = None) -> str:
        """The journal as readable lines (newest last)."""
        docs = self.events()
        if limit is not None:
            docs = docs[-limit:]
        lines: List[str] = []
        for doc in docs:
            flow = (
                f"{doc['user']}/{doc['server_id']}"
                if doc.get("user") is not None
                else "-"
            )
            detail = _event_detail(doc)
            lines.append(
                f"  #{doc['seq']:04d} [{doc['t_s']:8.1f}s] "
                f"{doc['type']:20s} {flow:14s} {detail}"
            )
        return "\n".join(lines) if lines else "  (journal empty)"


def _event_detail(doc: Dict[str, Any]) -> str:
    etype = doc["type"]
    if etype == EVENT_SAMPLE:
        lat = doc.get("latency_ms")
        lat_txt = f"{lat:.1f}ms" if lat is not None else "lost"
        return (
            f"{doc.get('source', 'probe')}: {lat_txt} "
            f"loss {doc.get('loss_pct', 0.0):.0f}% "
            f"breach={doc.get('breach')}"
        )
    if etype == EVENT_STATE_TRANSITION:
        return f"{doc['from']} -> {doc['to']} ({doc['cause']})"
    if etype == EVENT_FAILOVER:
        return (
            f"{doc['old_path_id']} -> {doc['new_path_id']} ({doc['cause']})"
        )
    if etype == EVENT_FAILOVER_SUPPRESSED:
        return f"cooldown {doc.get('cooldown_remaining_s', 0.0):.1f}s left"
    if etype == EVENT_FAILOVER_FAILED:
        return str(doc.get("cause", ""))
    if etype == EVENT_REVOCATION:
        return f"{doc['isd_as']}#{doc['interface']} ({doc.get('reason', '')})"
    if etype == EVENT_FLOW_REGISTERED:
        return f"path {doc['path_id']}"
    return ""
