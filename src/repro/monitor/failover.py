"""The failover engine: reselect-and-swap when a flow's promise breaks.

On a VIOLATED or DEAD flow the engine re-runs the controller's memoized
selection with the *original* user constraints plus an exclusion set —
the failed path and every path currently crossing an active revocation —
resolves the winner to a live path, and atomically swaps the flow rule.
The original :class:`~repro.selection.request.UserRequest` stays on the
rule untouched; only the selection/path move.

Flap damping: a flow that failed over inside its SLO's ``cooldown_s``
window is *suppressed* (journaled, counted) rather than rerouted again —
unless the trigger is a revocation, which makes holding the path
pointless.  Every decision, including the suppressed and the failed
ones, is journaled with cause and detection→recovery latency.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.errors import NoPathError
from repro.monitor import journal as jn
from repro.monitor.health import FlowKey
from repro.monitor.journal import FlowEventJournal
from repro.monitor.revocation import RevocationStore
from repro.monitor.slo import FlowSLO
from repro.suite import metrics as m
from repro.suite.config import PATHS_COLLECTION, SERVERS_COLLECTION
from repro.topology.isd_as import ISDAS
from repro.upin.controller import FlowRule, PathController


@dataclass(frozen=True)
class FailoverOutcome:
    """What one failover attempt did."""

    swapped: bool
    suppressed: bool = False
    old_path_id: Optional[str] = None
    new_path_id: Optional[str] = None
    cause: str = ""
    detected_at_s: Optional[float] = None
    recovered_at_s: Optional[float] = None
    new_rule: Optional[FlowRule] = None
    error: Optional[str] = None

    @property
    def detection_to_recovery_s(self) -> Optional[float]:
        if self.detected_at_s is None or self.recovered_at_s is None:
            return None
        return self.recovered_at_s - self.detected_at_s


class FailoverEngine:
    """Reroutes unhealthy flows through the controller, atomically."""

    def __init__(
        self,
        controller: PathController,
        revocations: RevocationStore,
        journal: FlowEventJournal,
        *,
        metrics: Optional[m.MetricsRegistry] = None,
    ) -> None:
        self.controller = controller
        self.revocations = revocations
        self.journal = journal
        self.metrics = metrics if metrics is not None else m.MetricsRegistry()
        self._last_failover_s: Dict[FlowKey, float] = {}

    # -- cooldown --------------------------------------------------------------

    def cooldown_remaining(
        self, key: FlowKey, slo: FlowSLO, now_s: float
    ) -> float:
        last = self._last_failover_s.get(key)
        if last is None:
            return 0.0
        return max(0.0, last + slo.cooldown_s - now_s)

    # -- the swap --------------------------------------------------------------

    def try_failover(
        self,
        rule: FlowRule,
        slo: FlowSLO,
        cause: str,
        now_s: float,
        *,
        detected_at_s: Optional[float] = None,
        force: bool = False,
    ) -> FailoverOutcome:
        """Reselect around the failed path and swap the flow rule.

        ``force=True`` (revocations) bypasses the cooldown.  Returns a
        :class:`FailoverOutcome`; ``swapped=False`` either means the
        cooldown suppressed the attempt or no admissible replacement
        exists (both journaled).
        """
        key = rule.key
        old_path_id = rule.path_id
        remaining = self.cooldown_remaining(key, slo, now_s)
        if remaining > 0 and not force:
            self.metrics.inc(m.MON_FLAPS_SUPPRESSED)
            self.journal.append(
                jn.EVENT_FAILOVER_SUPPRESSED,
                now_s,
                user=rule.user,
                server_id=rule.server_id,
                path_id=old_path_id,
                cause=cause,
                cooldown_remaining_s=remaining,
            )
            return FailoverOutcome(
                swapped=False,
                suppressed=True,
                old_path_id=old_path_id,
                cause=cause,
            )

        exclusions = self._exclusion_set(rule, old_path_id, now_s)
        reroute_request = replace(
            rule.request,
            exclude_paths=rule.request.exclude_paths | exclusions,
        )
        try:
            selection = self.controller.cached_select(reroute_request)
        except NoPathError as exc:
            return self._failed(rule, old_path_id, cause, now_s, str(exc))
        if selection.best is None:
            return self._failed(
                rule, old_path_id, cause, now_s,
                "no admissible replacement path under the original constraints",
            )

        server = self.controller.selector.db[SERVERS_COLLECTION].find_one(
            {"_id": rule.server_id}
        )
        dst_ia = ISDAS.parse(str(server["isd_as"])) if server else rule.path.dst
        new_path = self.controller.host.daemon.path_by_sequence(
            dst_ia, selection.best.sequence
        )
        if new_path is None:
            return self._failed(
                rule, old_path_id, cause, now_s,
                f"replacement {selection.best.aggregate.path_id} "
                "no longer resolvable",
            )

        new_rule = FlowRule(
            user=rule.user,
            server_id=rule.server_id,
            server_address=rule.server_address,
            path=new_path,
            request=rule.request,  # the original intent, verbatim
            selection=selection,
        )
        self.controller.swap_flow(new_rule)
        self._last_failover_s[key] = now_s
        new_path_id = new_rule.path_id
        detected = detected_at_s if detected_at_s is not None else now_s
        ttr = now_s - detected
        self.metrics.inc(m.MON_FAILOVERS)
        self.metrics.observe(m.MON_MTTR_S, ttr)
        self.journal.append(
            jn.EVENT_FAILOVER,
            now_s,
            user=rule.user,
            server_id=rule.server_id,
            old_path_id=old_path_id,
            new_path_id=new_path_id,
            cause=cause,
            detected_at_s=detected,
            recovered_at_s=now_s,
            detection_to_recovery_s=ttr,
            excluded_paths=sorted(exclusions),
        )
        return FailoverOutcome(
            swapped=True,
            old_path_id=old_path_id,
            new_path_id=new_path_id,
            cause=cause,
            detected_at_s=detected,
            recovered_at_s=now_s,
            new_rule=new_rule,
        )

    def _exclusion_set(
        self, rule: FlowRule, old_path_id: str, now_s: float
    ) -> frozenset:
        """Failed path + everything crossing an active revocation."""
        excluded = {old_path_id}
        if len(self.revocations):
            path_docs = self.controller.selector.db[PATHS_COLLECTION].find(
                {"server_id": rule.server_id}
            )
            excluded |= self.revocations.affected_path_ids(path_docs, now_s)
        return frozenset(excluded)

    def _failed(
        self,
        rule: FlowRule,
        old_path_id: str,
        cause: str,
        now_s: float,
        error: str,
    ) -> FailoverOutcome:
        self.metrics.inc(m.MON_FAILOVERS_FAILED)
        self.journal.append(
            jn.EVENT_FAILOVER_FAILED,
            now_s,
            user=rule.user,
            server_id=rule.server_id,
            path_id=old_path_id,
            cause=f"{cause}: {error}",
        )
        return FailoverOutcome(
            swapped=False,
            old_path_id=old_path_id,
            cause=cause,
            error=error,
        )
