"""Flow health monitoring: keep installed flows inside their SLA.

The paper's UPIN pipeline hands a user the best path *once* (§2.1,
§4.3); this package closes the loop for a deployed path-control domain.
It watches every installed :class:`~repro.upin.controller.FlowRule`
against a per-flow SLO, folds fresh ``paths_stats`` samples and
targeted SCMP probes into hysteresis-filtered health state, reacts to
interface revocations, and — when a flow goes VIOLATED or DEAD — re-runs
selection with the failed path excluded and atomically swaps the flow
rule.  Every observation and decision lands in an append-only journal
(the ``flow_events`` collection) so the whole episode can be audited,
replayed, and reported from the CLI.

Modules
-------
``slo``          per-flow service-level objectives derived from the intent
``health``       EWMA health tracker with K-of-N breach hysteresis
``revocation``   interface revocations (control plane + netsim blackout)
``failover``     reselect-and-swap engine with cooldown suppression
``journal``      append-only structured event journal + failover report
``loop``         the per-round control loop wired into the scheduler
``scenario``     a scripted, deterministic outage/failover demo world
"""

from repro.monitor.failover import FailoverEngine, FailoverOutcome
from repro.monitor.health import FlowHealth, FlowHealthTracker, HealthSample
from repro.monitor.journal import (
    EVENT_TYPES,
    FLOW_EVENTS_COLLECTION,
    FlowEventJournal,
)
from repro.monitor.loop import FlowMonitor
from repro.monitor.revocation import Revocation, RevocationStore
from repro.monitor.scenario import OutageScenario, run_outage_scenario
from repro.monitor.slo import FlowSLO

__all__ = [
    "EVENT_TYPES",
    "FLOW_EVENTS_COLLECTION",
    "FailoverEngine",
    "FailoverOutcome",
    "FlowEventJournal",
    "FlowHealth",
    "FlowHealthTracker",
    "FlowMonitor",
    "FlowSLO",
    "HealthSample",
    "OutageScenario",
    "Revocation",
    "RevocationStore",
    "run_outage_scenario",
]
