"""Interface revocations: the SCION control plane's "this link is gone".

A revocation names an ``(ISD-AS, interface)`` pair and a validity
window.  Injecting one does two things at once:

* **data plane** (netsim): the revoked link gets a total-blackout
  :class:`~repro.netsim.congestion.CongestionEpisode` for the validity
  window, so probes and transfers across it really die;
* **control plane** (this store): every path whose hop predicates use
  the revoked interface is immediately *affected* — the monitor marks
  flows on such paths DEAD without waiting for probe evidence, and the
  failover engine excludes affected paths from reselection until the
  revocation expires.

Both sides run on the shared :class:`~repro.netsim.clock.SimClock`, so
"until expiry" means the same instant everywhere.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ValidationError
from repro.netsim.congestion import CongestionEpisode
from repro.netsim.network import NetworkSim
from repro.scion.path import Path
from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS

_PREDICATE_RE = re.compile(r"^(?P<ia>[^#]+)#(?P<ingress>\d+),(?P<egress>\d+)$")


@dataclass(frozen=True)
class Revocation:
    """One revoked interface with its validity window."""

    isd_as: ISDAS
    interface: int
    issued_at_s: float
    expires_at_s: float
    reason: str = "revoked"

    def __post_init__(self) -> None:
        if self.interface <= 0:
            raise ValidationError("interface ids are positive")
        if self.expires_at_s <= self.issued_at_s:
            raise ValidationError("revocation must have positive validity")

    def active_at(self, t_s: float) -> bool:
        return self.issued_at_s <= t_s < self.expires_at_s

    def to_document(self) -> Dict[str, Any]:
        return {
            "isd_as": str(self.isd_as),
            "interface": self.interface,
            "issued_at_s": self.issued_at_s,
            "expires_at_s": self.expires_at_s,
            "reason": self.reason,
        }

    def __str__(self) -> str:
        return (
            f"{self.isd_as}#{self.interface} revoked "
            f"[{self.issued_at_s:g}s..{self.expires_at_s:g}s): {self.reason}"
        )


def sequence_interfaces(sequence: str) -> Set[Tuple[str, int]]:
    """The ``(isd_as, interface)`` pairs a ``--sequence`` string pins.

    Interface 0 means "unspecified" in hop-predicate notation and is
    never returned.
    """
    used: Set[Tuple[str, int]] = set()
    for predicate in sequence.split():
        match = _PREDICATE_RE.match(predicate)
        if match is None:
            raise ValidationError(f"malformed hop predicate: {predicate!r}")
        ia = match.group("ia")
        for group in ("ingress", "egress"):
            ifid = int(match.group(group))
            if ifid > 0:
                used.add((ia, ifid))
    return used


class RevocationStore:
    """The set of revocations a monitoring domain currently knows."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._revocations: List[Revocation] = []

    def __len__(self) -> int:
        return len(self._revocations)

    def inject(
        self,
        revocation: Revocation,
        *,
        network: Optional[NetworkSim] = None,
    ) -> Revocation:
        """Record a revocation; optionally black-hole the link in netsim.

        With ``network`` given, the revoked link carries a loss-1.0
        zero-capacity episode for the validity window — the data plane
        dies at the same instant the control plane learns about it.
        """
        # Validates the interface actually exists in this topology.
        link = self.topology.link_at(revocation.isd_as, revocation.interface)
        self._revocations.append(revocation)
        if network is not None:
            network.add_episode(
                CongestionEpisode.on_links(
                    [link],
                    revocation.issued_at_s,
                    revocation.expires_at_s,
                    loss=1.0,
                    capacity_factor=0.0,
                    reason=f"revocation: {revocation.reason}",
                )
            )
        return revocation

    def active(self, now_s: float) -> List[Revocation]:
        return [r for r in self._revocations if r.active_at(now_s)]

    def expire(self, now_s: float) -> int:
        """Drop revocations past their expiry; returns count removed."""
        before = len(self._revocations)
        self._revocations = [
            r for r in self._revocations if r.expires_at_s > now_s
        ]
        return before - len(self._revocations)

    # -- path matching ---------------------------------------------------------

    def _active_pairs(self, now_s: float) -> Set[Tuple[str, int]]:
        return {
            (str(r.isd_as), r.interface) for r in self.active(now_s)
        }

    def affecting_path(self, path: Path, now_s: float) -> Optional[Revocation]:
        """The first active revocation ``path`` traverses (or None)."""
        for revocation in self.active(now_s):
            ia = revocation.isd_as
            for hop in path.hops:
                if hop.isd_as != ia:
                    continue
                if revocation.interface in (hop.ingress, hop.egress):
                    return revocation
        return None

    def affects_sequence(self, sequence: str, now_s: float) -> bool:
        """True when a stored ``--sequence`` uses a revoked interface."""
        pairs = self._active_pairs(now_s)
        if not pairs:
            return False
        return bool(sequence_interfaces(sequence) & pairs)

    def affected_path_ids(
        self, path_docs: Iterable[Dict[str, Any]], now_s: float
    ) -> Set[str]:
        """Stored path documents currently unusable due to revocations."""
        pairs = self._active_pairs(now_s)
        if not pairs:
            return set()
        return {
            str(doc["_id"])
            for doc in path_docs
            if sequence_interfaces(str(doc["sequence"])) & pairs
        }
