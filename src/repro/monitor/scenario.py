"""The scripted outage scenario the demo surfaces all share.

CLI (``upin-frontend monitor …``), example
(``examples/continuous_monitoring.py``), tests and the failover
benchmark all need the same thing: a deterministic world in which a
monitored flow actually suffers, fails over, and recovers.  Building it
ad hoc in four places invites drift, so this module is the single
source of truth.

The script (all times on the simulation clock):

1. build the SCIONLab world, collect paths, run one warm-up campaign
   round so selection has data;
2. a user installs an intent (``Metric.LOSS`` — "route me around
   loss") and the flow goes under monitoring;
3. a **congestion episode** blacks out one link of the pinned path for
   ``congest_rounds`` — chosen as a link the best *alternative* path
   avoids, so the failover has somewhere good to land.  Probes breach,
   hysteresis trips (K-of-N), the flow goes VIOLATED and fails over;
4. later one **interface revocation** hits the flow's *current* path
   (again picked so that admissible replacements survive).  The flow is
   marked DEAD and force-failed-over immediately, cooldown bypassed;
5. the monitor rides along as a scheduler round hook for ``rounds``
   periodic rounds; every decision lands in the ``flow_events``
   journal.

Everything is a pure function of ``seed``: two runs produce
byte-identical journals (pinned by the determinism test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.monitor.loop import FlowMonitor
from repro.monitor.revocation import Revocation, sequence_interfaces
from repro.netsim.congestion import CongestionEpisode
from repro.scion.path import Path
from repro.selection.request import Metric, UserRequest
from repro.suite.collect import PathsCollector
from repro.suite.config import PATHS_COLLECTION, SuiteConfig
from repro.suite.runner import TestRunner
from repro.suite.scheduler import MonitoringReport, MonitoringScheduler
from repro.topology.isd_as import ISDAS
from repro.upin.controller import FlowRule
from repro.upin.frontend import Frontend
from repro.experiments.world import CampaignWorld, build_world

DEFAULT_SCENARIO_SEED = 20231112
DEFAULT_SERVER_ID = 3  # Magdeburg, the paper's best-connected target
DEFAULT_USER = "alice"
DEFAULT_PERIOD_S = 120.0
DEFAULT_ROUNDS = 8


@dataclass
class OutageScenario:
    """Everything the demo surfaces need after the script has run."""

    world: CampaignWorld
    frontend: Frontend
    monitor: FlowMonitor
    scheduler: MonitoringScheduler
    user: str
    server_id: int
    initial_rule: FlowRule
    report: Optional[MonitoringReport] = None
    #: ``(isd_as, interface)`` the congestion episode blacked out.
    congested_interface: Optional[Tuple[str, int]] = None
    #: The revocation injected mid-run (None until it fires).
    revocation: Optional[Revocation] = None
    path_history: List[str] = field(default_factory=list)

    @property
    def journal(self):
        return self.monitor.journal

    def current_rule(self) -> Optional[FlowRule]:
        return self.frontend.controller.active_flow(self.user, self.server_id)

    def format_summary(self) -> str:
        """The demo's closing lines: journey, causes, recovery latency."""
        lines = [f"flow {self.user}->server {self.server_id}:"]
        lines.append("  path journey: " + " -> ".join(self.path_history))
        for doc in self.journal.failovers():
            ttr = doc.get("detection_to_recovery_s")
            ttr_txt = f"{ttr:.2f} sim s" if ttr is not None else "n/a"
            lines.append(
                f"  failover @{doc['t_s']:.1f}s: {doc['old_path_id']} -> "
                f"{doc['new_path_id']} ({doc['cause']}; "
                f"detection->recovery {ttr_txt})"
            )
        counts = self.monitor.tracker.counts_by_state()
        lines.append(
            "  final states: "
            + "  ".join(f"{s}={n}" for s, n in sorted(counts.items()) if n)
        )
        return "\n".join(lines)


def _interface_pairs(path: Path) -> List[Tuple[str, int]]:
    """Every concrete ``(isd_as, interface)`` pair a path pins, in order."""
    pairs: List[Tuple[str, int]] = []
    for hop in path.hops:
        for ifid in (hop.ingress, hop.egress):
            if ifid:
                pairs.append((str(hop.isd_as), ifid))
    return pairs


def pick_breakable_interface(
    rule: FlowRule, path_docs: List[dict]
) -> Tuple[str, int]:
    """A pinned interface whose loss leaves the flow a way out.

    Walks the flow's interfaces in hop order and returns the first one
    that (a) the best-ranked *alternative* in the flow's own selection
    avoids, and (b) at least one other stored path to the destination
    avoids — so both the immediate failover target and the wider
    reselection pool survive the outage.  Deterministic given the
    selection result.
    """
    alternatives = rule.selection.ranked[1:]
    alt_iface_sets = [
        sequence_interfaces(alt.sequence) for alt in alternatives
    ]
    doc_iface_sets = {
        str(doc["_id"]): sequence_interfaces(str(doc["sequence"]))
        for doc in path_docs
    }
    for pair in _interface_pairs(rule.path):
        alt_ok = any(pair not in ifaces for ifaces in alt_iface_sets)
        survivors = sum(
            1 for ifaces in doc_iface_sets.values() if pair not in ifaces
        )
        if alt_ok and survivors > 0:
            return pair
    raise ReproError(
        f"no breakable interface on path {rule.path_id}: every stored "
        "route shares every pinned link"
    )


def run_outage_scenario(
    *,
    seed: int = DEFAULT_SCENARIO_SEED,
    server_id: int = DEFAULT_SERVER_ID,
    user: str = DEFAULT_USER,
    rounds: int = DEFAULT_ROUNDS,
    period_s: float = DEFAULT_PERIOD_S,
    congest_rounds: Tuple[int, int] = (2, 5),
    revoke_round: int = 6,
    probe_count: int = 3,
    extra_flows: int = 0,
) -> OutageScenario:
    """Build, break, fail over, recover — the whole scripted episode.

    ``extra_flows`` installs additional monitored flows (users
    ``flow-000``, ``flow-001``, …) on the same destination — the
    benchmark's way of scaling per-round overhead without changing the
    script.

    With fewer rounds than ``revoke_round`` the revocation act is
    skipped (the congestion act still plays) — short runs degrade to a
    congestion-only episode instead of erroring.
    """
    config = SuiteConfig(iterations=1, destination_ids=[server_id])
    world = build_world(seed=seed, config=config)
    host, db = world.host, world.db

    # Warm-up: one collection + campaign pass so selection has data.
    PathsCollector(host, db, config).collect()
    TestRunner(host, db, config).run(iterations=1)

    frontend = Frontend(host, db)
    request = UserRequest.make(server_id, Metric.LOSS)
    rule = frontend.controller.apply_intent(user, request)

    monitor = FlowMonitor(
        host, db, frontend.controller, probe_count=probe_count
    )
    monitor.watch(rule)
    for i in range(extra_flows):
        monitor.watch(
            frontend.controller.apply_intent(f"flow-{i:03d}", request)
        )

    scenario = OutageScenario(
        world=world,
        frontend=frontend,
        monitor=monitor,
        scheduler=None,  # type: ignore[arg-type]  # set just below
        user=user,
        server_id=server_id,
        initial_rule=rule,
        path_history=[rule.path_id],
    )

    scheduler = MonitoringScheduler(
        host, db, config, period_s=period_s, recollect_every=max(rounds, 1)
    )
    scenario.scheduler = scheduler

    def record_path(_record) -> None:
        current = scenario.current_rule()
        if current is not None and current.path_id != scenario.path_history[-1]:
            scenario.path_history.append(current.path_id)

    scheduler.add_round_hook(monitor.after_round)
    scheduler.add_round_hook(record_path)

    origin = host.clock.now_s
    path_docs = db[PATHS_COLLECTION].find({"server_id": server_id})

    # -- act one: congestion blacks out one link of the pinned path -----------
    congested = pick_breakable_interface(rule, path_docs)
    scenario.congested_interface = congested
    ia, ifid = congested
    link = host.topology.link_at(ia, ifid)
    host.network.add_episode(
        CongestionEpisode.on_links(
            [link],
            origin + congest_rounds[0] * period_s,
            origin + congest_rounds[1] * period_s,
            loss=1.0,
            capacity_factor=0.0,
            reason="scripted congestion",
        )
    )

    # -- act two: one interface revocation against the *current* path ---------
    def fire_revocation() -> None:
        current = scenario.current_rule()
        if current is None:  # pragma: no cover - flow is never withdrawn
            return
        now = host.clock.now_s
        pair = pick_breakable_interface(
            current, db[PATHS_COLLECTION].find({"server_id": server_id})
        )
        revocation = Revocation(
            isd_as=ISDAS.parse(pair[0]),
            interface=pair[1],
            issued_at_s=now,
            expires_at_s=now + 2 * period_s * rounds,
            reason="scripted maintenance",
        )
        scenario.revocation = revocation
        monitor.revoke(revocation, blackhole=True)

    if revoke_round < rounds:
        scheduler.events.schedule(
            origin + revoke_round * period_s + 1.0, fire_revocation
        )

    scenario.report = scheduler.run(rounds=rounds)
    return scenario
