"""EWMA flow-health tracking with K-of-N hysteresis.

One :class:`FlowHealthTracker` watches every installed flow.  Each
monitoring round folds fresh measurement samples (``paths_stats``
documents and targeted SCMP probes) into per-flow exponentially
weighted moving averages, evaluates them against the flow's
:class:`~repro.monitor.slo.FlowSLO`, and advances a small state
machine:

::

              breaches appear               >= K of last N breach
      OK  ───────────────────▶  DEGRADED  ─────────────────────▶  VIOLATED
       ▲                            │  window clean again              │
       └────────────────────────────┘◀──── window clean ───────────────┘
                                         (recovery; failover resets)

      any state ──── path traverses an active revocation ────▶  DEAD

Hysteresis laws (property-tested in ``tests/test_monitor_properties``):

* a flow only reaches VIOLATED when at least ``K`` of its last ``N``
  samples breached the SLO — one bad probe never reroutes anybody;
* recovery back to OK requires the *whole* window clean, so a flow
  cannot oscillate OK↔VIOLATED on alternating samples;
* the tracker is a pure fold over its observation stream: replaying
  the journal's sample events through a fresh tracker reconstructs the
  exact tracker state (see :func:`replay_events`).

The tracker never performs I/O; the monitor loop feeds it and reacts
to the transitions it reports.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import ValidationError
from repro.monitor.slo import FlowSLO

FlowKey = Tuple[str, int]  # (user, server_id)

#: EWMA smoothing factor: weight of the newest sample.
DEFAULT_EWMA_ALPHA = 0.4


class FlowHealth(enum.Enum):
    """The four health states of a monitored flow."""

    OK = "ok"
    DEGRADED = "degraded"
    VIOLATED = "violated"
    DEAD = "dead"


@dataclass(frozen=True)
class HealthSample:
    """One health observation for a flow's pinned path.

    ``latency_ms``/``bw_down_mbps`` may be None (a fully lost probe has
    no RTT; stats rows carry no bandwidth when the transfer failed) —
    EWMA state then keeps its previous value and only loss moves.
    """

    t_s: float
    loss_pct: float
    latency_ms: Optional[float] = None
    bw_down_mbps: Optional[float] = None
    source: str = "probe"  # "probe" | "stats"

    def __post_init__(self) -> None:
        if not (0.0 <= self.loss_pct <= 100.0):
            raise ValidationError(f"loss_pct out of range: {self.loss_pct}")
        if self.latency_ms is not None and (
            self.latency_ms < 0 or math.isnan(self.latency_ms)
        ):
            raise ValidationError(f"bad latency sample: {self.latency_ms}")

    def to_payload(self) -> Dict[str, Any]:
        """Journal payload; ``t_s`` travels on the event doc itself."""
        return {
            "loss_pct": self.loss_pct,
            "latency_ms": self.latency_ms,
            "bw_down_mbps": self.bw_down_mbps,
            "source": self.source,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "HealthSample":
        return cls(
            t_s=float(payload["t_s"]),
            loss_pct=float(payload["loss_pct"]),
            latency_ms=payload.get("latency_ms"),
            bw_down_mbps=payload.get("bw_down_mbps"),
            source=str(payload.get("source", "probe")),
        )


@dataclass(frozen=True)
class Observation:
    """What folding one sample did: was it a breach, did state change."""

    breached: bool
    transition: Optional["Transition"]


@dataclass(frozen=True)
class Transition:
    """One state change reported by the tracker."""

    key: FlowKey
    from_state: FlowHealth
    to_state: FlowHealth
    t_s: float
    cause: str
    #: Time of the first breach of the streak that caused the alarm
    #: (None for recoveries) — the "detection" end of time-to-repair.
    first_breach_s: Optional[float] = None


@dataclass
class _FlowState:
    """Mutable per-flow tracking state."""

    slo: FlowSLO
    path_id: str
    state: FlowHealth = FlowHealth.OK
    window: Deque[bool] = field(default_factory=deque)  # newest right
    ewma_latency_ms: Optional[float] = None
    ewma_loss_pct: Optional[float] = None
    ewma_bw_down_mbps: Optional[float] = None
    samples: int = 0
    breaches: int = 0
    last_sample_s: Optional[float] = None
    #: First breach of the current uninterrupted breach presence
    #: (reset when the window goes fully clean).
    first_breach_s: Optional[float] = None
    last_transition_s: float = 0.0
    dead_cause: Optional[str] = None

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly view; equality of snapshots == equality of state."""
        return {
            "path_id": self.path_id,
            "state": self.state.value,
            "window": list(self.window),
            "ewma_latency_ms": self.ewma_latency_ms,
            "ewma_loss_pct": self.ewma_loss_pct,
            "ewma_bw_down_mbps": self.ewma_bw_down_mbps,
            "samples": self.samples,
            "breaches": self.breaches,
            "last_sample_s": self.last_sample_s,
            "first_breach_s": self.first_breach_s,
            "dead_cause": self.dead_cause,
        }


class FlowHealthTracker:
    """Folds health samples into hysteresis-filtered per-flow state."""

    def __init__(self, *, ewma_alpha: float = DEFAULT_EWMA_ALPHA) -> None:
        if not (0.0 < ewma_alpha <= 1.0):
            raise ValidationError("ewma_alpha must be in (0, 1]")
        self.ewma_alpha = ewma_alpha
        self._flows: Dict[FlowKey, _FlowState] = {}

    # -- registration ----------------------------------------------------------

    def register(
        self, key: FlowKey, slo: FlowSLO, path_id: str, t_s: float
    ) -> None:
        """Start (or restart, after a failover) tracking a flow.

        Registration resets all smoothed state — the samples belonged
        to the *old* path, and judging a fresh path by them is exactly
        the staleness bug the failover/verifier interplay fixes.
        """
        self._flows[key] = _FlowState(
            slo=slo, path_id=path_id, last_transition_s=t_s
        )

    def unregister(self, key: FlowKey) -> bool:
        return self._flows.pop(key, None) is not None

    def tracked(self) -> List[FlowKey]:
        return sorted(self._flows)

    def is_tracked(self, key: FlowKey) -> bool:
        return key in self._flows

    def state_of(self, key: FlowKey) -> FlowHealth:
        return self._state(key).state

    def slo_of(self, key: FlowKey) -> FlowSLO:
        return self._state(key).slo

    def path_of(self, key: FlowKey) -> str:
        return self._state(key).path_id

    def first_breach_of(self, key: FlowKey) -> Optional[float]:
        return self._state(key).first_breach_s

    def _state(self, key: FlowKey) -> _FlowState:
        st = self._flows.get(key)
        if st is None:
            raise ValidationError(f"flow {key!r} is not tracked")
        return st

    # -- observation fold ------------------------------------------------------

    def observe(self, key: FlowKey, sample: HealthSample) -> Observation:
        """Fold one sample; reports the breach flag and any transition.

        DEAD is sticky: a revoked path stays dead no matter what later
        samples say — only re-registration (failover) clears it.
        """
        st = self._state(key)
        st.samples += 1
        st.last_sample_s = sample.t_s
        a = self.ewma_alpha

        def fold(prev: Optional[float], x: Optional[float]) -> Optional[float]:
            if x is None:
                return prev
            return x if prev is None else a * x + (1.0 - a) * prev

        st.ewma_latency_ms = fold(st.ewma_latency_ms, sample.latency_ms)
        st.ewma_loss_pct = fold(st.ewma_loss_pct, sample.loss_pct)
        st.ewma_bw_down_mbps = fold(st.ewma_bw_down_mbps, sample.bw_down_mbps)

        breached = bool(self._breach_reasons(st))
        st.window.append(breached)
        while len(st.window) > st.slo.window_n:
            st.window.popleft()
        if breached:
            st.breaches += 1
            if st.first_breach_s is None:
                st.first_breach_s = sample.t_s

        if st.state is FlowHealth.DEAD:
            return Observation(breached=breached, transition=None)
        return Observation(
            breached=breached, transition=self._advance(key, st, sample.t_s)
        )

    def observe_staleness(self, key: FlowKey, now_s: float) -> Optional[Transition]:
        """Count a data gap as a breach (no sample within max_staleness_s).

        Only meaningful when probing is disabled — an actively probed
        flow always has fresh samples.
        """
        st = self._state(key)
        last = st.last_sample_s
        if last is not None and now_s - last <= st.slo.max_staleness_s:
            return None
        st.window.append(True)
        while len(st.window) > st.slo.window_n:
            st.window.popleft()
        st.breaches += 1
        if st.first_breach_s is None:
            st.first_breach_s = now_s
        if st.state is FlowHealth.DEAD:
            return None
        return self._advance(key, st, now_s, cause="staleness")

    def mark_dead(self, key: FlowKey, cause: str, t_s: float) -> Optional[Transition]:
        """Immediately declare the flow dead (revocation path)."""
        st = self._state(key)
        if st.state is FlowHealth.DEAD:
            return None
        prev = st.state
        st.state = FlowHealth.DEAD
        st.dead_cause = cause
        st.last_transition_s = t_s
        if st.first_breach_s is None:
            st.first_breach_s = t_s
        return Transition(
            key=key,
            from_state=prev,
            to_state=FlowHealth.DEAD,
            t_s=t_s,
            cause=cause,
            first_breach_s=st.first_breach_s,
        )

    def _breach_reasons(self, st: _FlowState) -> List[str]:
        """Why the smoothed state currently breaches the SLO."""
        slo = st.slo
        reasons: List[str] = []
        if (
            slo.max_latency_ms is not None
            and st.ewma_latency_ms is not None
            and st.ewma_latency_ms > slo.max_latency_ms
        ):
            reasons.append(
                f"latency {st.ewma_latency_ms:.1f}ms > {slo.max_latency_ms:g}ms"
            )
        if st.ewma_loss_pct is not None and st.ewma_loss_pct > slo.max_loss_pct:
            reasons.append(
                f"loss {st.ewma_loss_pct:.1f}% > {slo.max_loss_pct:g}%"
            )
        if (
            slo.min_bandwidth_down_mbps is not None
            and st.ewma_bw_down_mbps is not None
            and st.ewma_bw_down_mbps < slo.min_bandwidth_down_mbps
        ):
            reasons.append(
                f"bw {st.ewma_bw_down_mbps:.1f}Mbps < "
                f"{slo.min_bandwidth_down_mbps:g}Mbps"
            )
        return reasons

    def breach_reasons(self, key: FlowKey) -> List[str]:
        return self._breach_reasons(self._state(key))

    def _advance(
        self, key: FlowKey, st: _FlowState, t_s: float, *, cause: str = ""
    ) -> Optional[Transition]:
        """Run the K-of-N state machine after the window moved."""
        count = sum(st.window)
        if count >= st.slo.breach_k:
            target = FlowHealth.VIOLATED
        elif count > 0:
            # Hysteresis: an alarmed flow stays alarmed until the window
            # is fully clean — partial recovery only downgrades flows
            # that never alarmed.
            target = (
                FlowHealth.VIOLATED
                if st.state is FlowHealth.VIOLATED
                else FlowHealth.DEGRADED
            )
        else:
            target = FlowHealth.OK
            st.first_breach_s = None
        if target is st.state:
            return None
        prev = st.state
        st.state = target
        st.last_transition_s = t_s
        if not cause:
            if target is FlowHealth.OK:
                cause = "window clean"
            else:
                reasons = self._breach_reasons(st)
                cause = "; ".join(reasons) if reasons else f"{count} breach(es)"
        return Transition(
            key=key,
            from_state=prev,
            to_state=target,
            t_s=t_s,
            cause=cause,
            first_breach_s=st.first_breach_s,
        )

    # -- introspection ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic JSON-friendly dump of every tracked flow."""
        return {
            f"{user}/{server_id}": self._flows[(user, server_id)].snapshot()
            for user, server_id in sorted(self._flows)
        }

    def counts_by_state(self) -> Dict[str, int]:
        out = {h.value: 0 for h in FlowHealth}
        for st in self._flows.values():
            out[st.state.value] += 1
        return out


def replay_events(events: List[Dict[str, Any]]) -> FlowHealthTracker:
    """Reconstruct tracker state from journal documents.

    Consumes ``flow_registered`` (register/reset), ``sample`` (observe),
    ``state_transition`` with ``to == "dead"`` (revocation kills) and
    ``failover`` (the engine re-registers, which the journal records as
    a fresh ``flow_registered`` — nothing extra to do here).  The result
    must satisfy ``replayed.snapshot() == live.snapshot()``; the
    property tests enforce it.
    """
    tracker = FlowHealthTracker()
    for doc in sorted(events, key=lambda d: d["seq"]):
        if doc.get("user") is None or doc.get("server_id") is None:
            # Journal-wide events (revocations, round markers) carry no
            # flow key and do not move tracker state.
            continue
        key = (str(doc["user"]), int(doc["server_id"]))
        etype = doc["type"]
        if etype == "flow_registered":
            tracker.register(
                key,
                FlowSLO.from_document(doc["slo"]),
                str(doc["path_id"]),
                float(doc["t_s"]),
            )
        elif etype == "sample":
            tracker.observe(key, HealthSample.from_payload(doc))
        elif etype == "state_transition" and doc["to"] == FlowHealth.DEAD.value:
            tracker.mark_dead(key, str(doc["cause"]), float(doc["t_s"]))
    return tracker
