"""Per-flow service-level objectives.

A user intent already carries *hard* admission limits
(``max_latency_ms``, ``max_loss_pct``, ``min_bandwidth_down_mbps``);
the SLO turns them into a *continuing* promise the monitor enforces
while the network changes.  Limits the request leaves unset fall back
to domain defaults, so even a "just give me the lowest latency" intent
is protected against blackouts and dead paths.

The hysteresis shape (K-of-N breach before alarm, cooldown before the
next failover) lives here too because it is a per-flow quality knob: a
VoIP flow may want K=2/N=3 and a short cooldown, a bulk transfer can
tolerate K=4/N=6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import ValidationError
from repro.selection.request import UserRequest

#: Domain defaults for limits an intent leaves open.
DEFAULT_MAX_LOSS_PCT = 50.0
DEFAULT_MAX_STALENESS_S = 1800.0
DEFAULT_BREACH_K = 2
DEFAULT_WINDOW_N = 3
DEFAULT_COOLDOWN_S = 120.0


@dataclass(frozen=True)
class FlowSLO:
    """The promise the monitor keeps for one installed flow.

    ``None`` limits are unconstrained.  ``breach_k`` of the last
    ``window_n`` health samples must breach before the flow is declared
    VIOLATED (the K-of-N alarm), and after a failover the flow may not
    fail over again for ``cooldown_s`` simulated seconds (flap
    damping) — except on a revocation, which kills the path outright.
    """

    max_latency_ms: Optional[float] = None
    max_loss_pct: float = DEFAULT_MAX_LOSS_PCT
    min_bandwidth_down_mbps: Optional[float] = None
    max_staleness_s: float = DEFAULT_MAX_STALENESS_S
    breach_k: int = DEFAULT_BREACH_K
    window_n: int = DEFAULT_WINDOW_N
    cooldown_s: float = DEFAULT_COOLDOWN_S

    def __post_init__(self) -> None:
        if self.max_latency_ms is not None and self.max_latency_ms <= 0:
            raise ValidationError("max_latency_ms must be positive")
        if not (0.0 < self.max_loss_pct <= 100.0):
            raise ValidationError("max_loss_pct must be in (0, 100]")
        if (
            self.min_bandwidth_down_mbps is not None
            and self.min_bandwidth_down_mbps <= 0
        ):
            raise ValidationError("min_bandwidth_down_mbps must be positive")
        if self.max_staleness_s <= 0:
            raise ValidationError("max_staleness_s must be positive")
        if self.window_n < 1:
            raise ValidationError("window_n must be >= 1")
        if not (1 <= self.breach_k <= self.window_n):
            raise ValidationError("breach_k must be in [1, window_n]")
        if self.cooldown_s < 0:
            raise ValidationError("cooldown_s must be >= 0")

    @classmethod
    def from_request(
        cls,
        request: UserRequest,
        *,
        latency_headroom: float = 1.5,
        max_staleness_s: float = DEFAULT_MAX_STALENESS_S,
        breach_k: int = DEFAULT_BREACH_K,
        window_n: int = DEFAULT_WINDOW_N,
        cooldown_s: float = DEFAULT_COOLDOWN_S,
    ) -> "FlowSLO":
        """Derive the SLO from the originating intent.

        Hard limits are adopted verbatim where the user stated them —
        except latency, which gets ``latency_headroom`` slack so a path
        admitted *at* the limit is not instantly breached by jitter.
        Loss falls back to :data:`DEFAULT_MAX_LOSS_PCT` when unset; a
        flow with no loss bound at all could never be declared dead.
        """
        if latency_headroom < 1.0:
            raise ValidationError("latency_headroom must be >= 1")
        max_latency = (
            request.max_latency_ms * latency_headroom
            if request.max_latency_ms is not None
            else None
        )
        max_loss = (
            request.max_loss_pct
            if request.max_loss_pct is not None
            else DEFAULT_MAX_LOSS_PCT
        )
        return cls(
            max_latency_ms=max_latency,
            max_loss_pct=max_loss,
            min_bandwidth_down_mbps=request.min_bandwidth_down_mbps,
            max_staleness_s=max_staleness_s,
            breach_k=breach_k,
            window_n=window_n,
            cooldown_s=cooldown_s,
        )

    # -- (de)serialisation for the journal ------------------------------------

    def to_document(self) -> Dict[str, Any]:
        return {
            "max_latency_ms": self.max_latency_ms,
            "max_loss_pct": self.max_loss_pct,
            "min_bandwidth_down_mbps": self.min_bandwidth_down_mbps,
            "max_staleness_s": self.max_staleness_s,
            "breach_k": self.breach_k,
            "window_n": self.window_n,
            "cooldown_s": self.cooldown_s,
        }

    @classmethod
    def from_document(cls, doc: Dict[str, Any]) -> "FlowSLO":
        return cls(
            max_latency_ms=doc.get("max_latency_ms"),
            max_loss_pct=float(doc["max_loss_pct"]),
            min_bandwidth_down_mbps=doc.get("min_bandwidth_down_mbps"),
            max_staleness_s=float(doc["max_staleness_s"]),
            breach_k=int(doc["breach_k"]),
            window_n=int(doc["window_n"]),
            cooldown_s=float(doc["cooldown_s"]),
        )

    def describe(self) -> str:
        parts = []
        if self.max_latency_ms is not None:
            parts.append(f"latency<={self.max_latency_ms:g}ms")
        parts.append(f"loss<={self.max_loss_pct:g}%")
        if self.min_bandwidth_down_mbps is not None:
            parts.append(f"bw>={self.min_bandwidth_down_mbps:g}Mbps")
        parts.append(f"{self.breach_k}-of-{self.window_n}")
        parts.append(f"cooldown {self.cooldown_s:g}s")
        return " ".join(parts)
