"""The monitor control loop: one pass per measurement round.

:class:`FlowMonitor` is the piece that ties the subsystem together and
plugs into :class:`~repro.suite.scheduler.MonitoringScheduler` as a
round hook.  Each pass it

1. reacts to revocations — flows pinned to a revoked interface are
   marked DEAD and force-failed-over immediately;
2. folds every *fresh* ``paths_stats`` sample for each flow's pinned
   path into the health tracker (a per-flow cursor guarantees each
   sample is folded exactly once);
3. sends a lightweight targeted SCMP probe along each flow (3 echoes by
   default — two orders of magnitude cheaper than a measurement round)
   so a flow's health never goes stale between campaign samples;
4. hands VIOLATED flows to the :class:`~repro.monitor.failover.
   FailoverEngine`, which respects the SLO cooldown, and re-registers
   swapped flows on their new path.

Everything runs on the shared :class:`~repro.netsim.clock.SimClock`;
two runs with equal seeds produce byte-identical journals (pinned by
the determinism test).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from repro.docdb.database import Database
from repro.monitor import journal as jn
from repro.monitor.failover import FailoverEngine
from repro.monitor.health import (
    FlowHealth,
    FlowHealthTracker,
    FlowKey,
    HealthSample,
    Transition,
)
from repro.monitor.journal import FLOW_EVENTS_COLLECTION, FlowEventJournal
from repro.monitor.revocation import Revocation, RevocationStore
from repro.monitor.slo import FlowSLO
from repro.scion.snet import ScionHost
from repro.selection.request import UserRequest
from repro.suite import metrics as m
from repro.suite.config import STATS_COLLECTION
from repro.topology.isd_as import ISDAS
from repro.upin.controller import FlowRule, PathController

DEFAULT_PROBE_COUNT = 3
DEFAULT_PROBE_INTERVAL_S = 0.05


class FlowMonitor:
    """Keeps every installed flow rule inside its SLO."""

    def __init__(
        self,
        host: ScionHost,
        db: Database,
        controller: PathController,
        *,
        probe_count: int = DEFAULT_PROBE_COUNT,
        probe_interval_s: float = DEFAULT_PROBE_INTERVAL_S,
        ewma_alpha: float = 0.4,
        slo_factory: Optional[Callable[[UserRequest], FlowSLO]] = None,
        metrics: Optional[m.MetricsRegistry] = None,
    ) -> None:
        self.host = host
        self.db = db
        self.controller = controller
        self.probe_count = probe_count
        self.probe_interval_s = probe_interval_s
        self.slo_factory = slo_factory or FlowSLO.from_request
        self.metrics = metrics if metrics is not None else m.MetricsRegistry()
        self.tracker = FlowHealthTracker(ewma_alpha=ewma_alpha)
        self.revocations = RevocationStore(host.topology)
        self.journal = FlowEventJournal(db[FLOW_EVENTS_COLLECTION])
        self.engine = FailoverEngine(
            self.controller, self.revocations, self.journal,
            metrics=self.metrics,
        )
        #: Per-flow high-water mark over ``paths_stats`` timestamps so
        #: each stored sample is folded into the tracker exactly once.
        self._stats_cursor_ms: Dict[FlowKey, int] = {}
        self.rounds_observed = 0

    @property
    def clock(self):
        return self.host.clock

    # -- flow registration -----------------------------------------------------

    def watch(self, rule: FlowRule, slo: Optional[FlowSLO] = None) -> FlowSLO:
        """Put an installed flow under SLA monitoring."""
        slo = slo if slo is not None else self.slo_factory(rule.request)
        now = self.clock.now_s
        self.tracker.register(rule.key, slo, rule.path_id, now)
        self._stats_cursor_ms[rule.key] = self.clock.now_ms
        self.journal.append(
            jn.EVENT_FLOW_REGISTERED,
            now,
            user=rule.user,
            server_id=rule.server_id,
            path_id=rule.path_id,
            slo=slo.to_document(),
        )
        return slo

    def unwatch(self, user: str, server_id: int) -> bool:
        key = (user, server_id)
        if not self.tracker.unregister(key):
            return False
        self._stats_cursor_ms.pop(key, None)
        self.journal.append(
            jn.EVENT_FLOW_WITHDRAWN,
            self.clock.now_s,
            user=user,
            server_id=server_id,
        )
        return True

    # -- revocations -----------------------------------------------------------

    def revoke(self, revocation: Revocation, *, blackhole: bool = True) -> None:
        """Learn (and optionally enact in netsim) an interface revocation.

        Flows whose pinned path crosses the revoked interface are marked
        DEAD and failed over *now*, bypassing any cooldown.
        """
        self.revocations.inject(
            revocation, network=self.host.network if blackhole else None
        )
        self.metrics.inc(m.MON_REVOCATIONS)
        self.journal.append(
            jn.EVENT_REVOCATION,
            self.clock.now_s,
            isd_as=str(revocation.isd_as),
            interface=revocation.interface,
            issued_at_s=revocation.issued_at_s,
            expires_at_s=revocation.expires_at_s,
            reason=revocation.reason,
        )
        self._handle_revocations(self.clock.now_s)

    # -- the per-round pass ----------------------------------------------------

    def after_round(self, record: Any = None) -> None:
        """One monitoring pass; scheduler round hook (record unused)."""
        start_wall = time.perf_counter()
        now = self.clock.now_s
        self._handle_revocations(now)
        for rule in self.controller.flows():
            key = rule.key
            if not self.tracker.is_tracked(key):
                continue
            if self.tracker.state_of(key) is FlowHealth.DEAD:
                # A dead flow that could not fail over yet: retry.
                self._attempt_failover(rule, cause="path dead", force=True)
                continue
            if self._ingest_stats(rule):
                continue  # failed over mid-pass; fresh path next round
            if self.probe_count > 0:
                self._probe(rule)
            else:
                transition = self.tracker.observe_staleness(key, now)
                if transition is not None:
                    self._journal_transition(rule, transition)
                    if transition.to_state is FlowHealth.VIOLATED:
                        self._attempt_failover(rule, cause="staleness")
        self.rounds_observed += 1
        self.metrics.observe(
            m.MON_ROUND_WALL_S, time.perf_counter() - start_wall
        )

    # -- internals -------------------------------------------------------------

    def _handle_revocations(self, now_s: float) -> None:
        if not len(self.revocations):
            return
        for rule in self.controller.flows():
            key = rule.key
            if not self.tracker.is_tracked(key):
                continue
            revocation = self.revocations.affecting_path(rule.path, now_s)
            if revocation is None:
                continue
            if self.tracker.state_of(key) is not FlowHealth.DEAD:
                transition = self.tracker.mark_dead(
                    key, f"revoked: {revocation.isd_as}#{revocation.interface}",
                    now_s,
                )
                if transition is not None:
                    self._journal_transition(rule, transition)
            self._attempt_failover(
                rule,
                cause=(
                    f"revocation {revocation.isd_as}#{revocation.interface} "
                    f"({revocation.reason})"
                ),
                force=True,
            )

    def _ingest_stats(self, rule: FlowRule) -> bool:
        """Fold fresh campaign samples; True when a failover swapped."""
        key = rule.key
        cursor = self._stats_cursor_ms.get(key, 0)
        docs = self.db[STATS_COLLECTION].find(
            {"path_id": rule.path_id, "timestamp_ms": {"$gte": cursor}},
            sort=[("timestamp_ms", 1)],
        )
        for doc in docs:
            self._stats_cursor_ms[key] = int(doc["timestamp_ms"]) + 1
            sample = HealthSample(
                t_s=float(doc["timestamp_ms"]) / 1000.0,
                loss_pct=float(doc["loss_pct"]),
                latency_ms=doc.get("avg_latency_ms"),
                bw_down_mbps=doc.get("bw_down_mtu_mbps"),
                source="stats",
            )
            if self._feed(rule, sample):
                return True
        return False

    def _probe(self, rule: FlowRule) -> bool:
        """One targeted SCMP probe series; True when a failover swapped."""
        _, dst_ip = ISDAS.parse_address(rule.server_address)
        stats = self.host.scmp.echo_series(
            rule.path,
            dst_ip,
            count=self.probe_count,
            interval_s=self.probe_interval_s,
        )
        self.metrics.inc(m.MON_PROBES, self.probe_count)
        sample = HealthSample(
            t_s=self.clock.now_s,
            loss_pct=stats.loss_pct,
            latency_ms=stats.avg_ms if stats.rtts_ms else None,
            bw_down_mbps=None,
            source="probe",
        )
        return self._feed(rule, sample)

    def _feed(self, rule: FlowRule, sample: HealthSample) -> bool:
        """Fold one sample; journal it; failover on VIOLATED."""
        key = rule.key
        observation = self.tracker.observe(key, sample)
        self.metrics.inc(m.MON_SAMPLES)
        if observation.breached:
            self.metrics.inc(m.MON_BREACHES)
        self.journal.append(
            jn.EVENT_SAMPLE,
            sample.t_s,
            user=rule.user,
            server_id=rule.server_id,
            path_id=rule.path_id,
            breach=observation.breached,
            **sample.to_payload(),
        )
        if observation.transition is not None:
            self._journal_transition(rule, observation.transition)
        if self.tracker.state_of(key) is FlowHealth.VIOLATED:
            reasons = self.tracker.breach_reasons(key)
            cause = "; ".join(reasons) if reasons else "SLO breached"
            return self._attempt_failover(rule, cause=cause)
        return False

    def _attempt_failover(
        self, rule: FlowRule, *, cause: str, force: bool = False
    ) -> bool:
        key = rule.key
        slo = self.tracker.slo_of(key)
        outcome = self.engine.try_failover(
            rule,
            slo,
            cause,
            self.clock.now_s,
            detected_at_s=self.tracker.first_breach_of(key),
            force=force,
        )
        if not outcome.swapped:
            return False
        assert outcome.new_rule is not None
        self.watch(outcome.new_rule, slo)
        return True

    def _journal_transition(self, rule: FlowRule, transition: Transition) -> None:
        self.metrics.inc(m.MON_TRANSITIONS)
        self.journal.append(
            jn.EVENT_STATE_TRANSITION,
            transition.t_s,
            user=rule.user,
            server_id=rule.server_id,
            path_id=rule.path_id,
            **{
                "from": transition.from_state.value,
                "to": transition.to_state.value,
            },
            cause=transition.cause,
            first_breach_s=transition.first_breach_s,
        )

    # -- reporting -------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self.metrics.snapshot()

    def format_status(self) -> str:
        """One line per monitored flow: state, path, smoothed health."""
        lines = ["monitored flows:"]
        snap = self.tracker.snapshot()
        if not snap:
            return "monitored flows:\n  (none)"
        for flow, st in snap.items():
            lat = st["ewma_latency_ms"]
            loss = st["ewma_loss_pct"]
            lat_txt = f"{lat:7.1f}ms" if lat is not None else "    n/a  "
            loss_txt = f"{loss:5.1f}%" if loss is not None else "  n/a "
            lines.append(
                f"  {flow:16s} {st['state']:9s} path {st['path_id']:12s} "
                f"lat {lat_txt} loss {loss_txt}  samples {st['samples']} "
                f"breaches {st['breaches']}"
            )
        counts = self.tracker.counts_by_state()
        lines.append(
            "  totals: "
            + "  ".join(f"{state}={n}" for state, n in sorted(counts.items()))
        )
        return "\n".join(lines)
