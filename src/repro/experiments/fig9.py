"""Figure 9: packet loss per path to AWS N. Virginia.

Paper: most paths show 0 % loss with occasional samples near 10 %, but
paths 2_16, 2_17, 2_18, 2_19, 2_22 and 2_23 register **complete 100 %
loss**; the shared nodes of those paths sit in the first half of the
route, and since the measurements ran in succession the authors
hypothesise "one or more of these common nodes experienced a period of
congestion".

The reproduction realises that hypothesis explicitly: a congestion
episode on the GEANT core AS (19-ffaa:0:1302) is scheduled over the
measurement slots of paths 16-23 in every iteration.  Paths 2_20 and
2_21 are measured inside the window but do not traverse GEANT, so they
survive — reproducing the paper's exact failing set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.loss import (
    LossDotSeries,
    loss_by_path,
    shared_ases,
    total_loss_cluster,
)
from repro.analysis.report import format_table
from repro.netsim.congestion import CongestionEpisode
from repro.experiments.world import (
    DEFAULT_SEED,
    CampaignWorld,
    run_campaign,
    seconds_per_path,
)
from repro.suite.config import PATHS_COLLECTION

N_VIRGINIA_SERVER_ID = 2
CONGESTED_AS = "19-ffaa:0:1302"  # GEANT core
WINDOW_SLOTS = (16, 24)  # measurement slots covered by each episode
DEFAULT_ITERATIONS = 10

PAPER_FAILING_PATHS = ("2_16", "2_17", "2_18", "2_19", "2_22", "2_23")


@dataclass(frozen=True)
class Fig9Result:
    series: Tuple[LossDotSeries, ...]
    total_loss_paths: Tuple[str, ...]
    shared_nodes: Tuple[str, ...]

    def rows(self) -> List[Tuple]:
        out = []
        for s in self.series:
            dots = " ".join(f"{loss:g}%x{count}" for loss, count in s.dots)
            out.append((s.path_id, s.mean_loss_pct, dots))
        return out

    def format_text(self) -> str:
        table = format_table(
            ["path", "mean loss %", "dots (loss x count)"],
            self.rows(),
            title="Fig 9 — packet loss per path to AWS N. Virginia (16-ffaa:0:1003)",
        )
        return (
            f"{table}\n"
            f"total-loss paths: {', '.join(self.total_loss_paths) or 'none'} "
            f"(paper: {', '.join(PAPER_FAILING_PATHS)})\n"
            f"nodes shared by the failing cluster (path order): "
            f"{', '.join(self.shared_nodes)}"
        )


def _schedule_episodes(world: CampaignWorld) -> None:
    """Install one congestion episode per iteration over slots 16-24."""
    n_paths = world.db[PATHS_COLLECTION].count_documents(
        {"server_id": N_VIRGINIA_SERVER_ID}
    )
    slot_s = seconds_per_path(world.config)
    iteration_s = n_paths * slot_s
    t0 = world.campaign_start_s
    lo, hi = WINDOW_SLOTS
    for k in range(world.config.iterations):
        start = t0 + k * iteration_s + lo * slot_s - 0.25
        end = t0 + k * iteration_s + hi * slot_s - 0.25
        world.host.network.add_episode(
            CongestionEpisode.on_ases(
                [CONGESTED_AS], start, end, loss=1.0, reason="transient congestion"
            )
        )


def run(
    *, iterations: int = DEFAULT_ITERATIONS, seed: int = DEFAULT_SEED
) -> Fig9Result:
    world = run_campaign(
        [N_VIRGINIA_SERVER_ID],
        iterations=iterations,
        seed=seed,
        prepare=_schedule_episodes,
    )
    series = loss_by_path(world.db, N_VIRGINIA_SERVER_ID)
    failing = total_loss_cluster(series)
    return Fig9Result(
        series=tuple(series),
        total_loss_paths=tuple(failing),
        shared_nodes=tuple(shared_ases(world.db, failing)) if failing else (),
    )


def main() -> None:  # pragma: no cover
    print(run().format_text())


if __name__ == "__main__":  # pragma: no cover
    main()
