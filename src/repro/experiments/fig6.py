"""Figure 6: Ireland latency grouped by (ISD set, hop count).

Paper: grouping by traversed-ISD set and hop count shows hop count alone
does not explain latency variance; excluding the long-distance paths
(through 16-ffaa:0:1007 and 16-ffaa:0:1004) collapses the 7-hop group to
values comparable with the 6-hop group and shrinks the box — physical
distance is "the predominant component in the latency assessment".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.latency import IsdGroupSeries, latency_by_isd_group
from repro.analysis.report import format_table
from repro.experiments.fig5 import (
    DEFAULT_ITERATIONS,
    IRELAND_SERVER_ID,
    OHIO,
    SINGAPORE,
)
from repro.experiments.world import DEFAULT_SEED, CampaignWorld, run_campaign

LONG_DISTANCE_ASES = (OHIO, SINGAPORE)


@dataclass(frozen=True)
class Fig6Result:
    all_groups: Tuple[IsdGroupSeries, ...]
    filtered_groups: Tuple[IsdGroupSeries, ...]

    @staticmethod
    def _rows(groups: Tuple[IsdGroupSeries, ...]) -> List[Tuple]:
        return [
            (
                "{" + ",".join(str(i) for i in g.isds) + "}",
                g.hop_count,
                len(g.path_ids),
                g.stats.n,
                g.stats.mean,
                g.stats.spread,
            )
            for g in groups
        ]

    def spread_of(self, groups: Tuple[IsdGroupSeries, ...], hop_count: int) -> float:
        """Widest whisker spread among groups of this hop count."""
        spreads = [g.stats.spread for g in groups if g.hop_count == hop_count]
        return max(spreads) if spreads else 0.0

    @property
    def spread_shrinks(self) -> bool:
        """The figure's punchline: filtering long paths compacts the box."""
        return self.spread_of(self.filtered_groups, 7) < self.spread_of(
            self.all_groups, 7
        )

    def format_text(self) -> str:
        left = format_table(
            ["ISD set", "hops", "paths", "n", "mean ms", "spread ms"],
            self._rows(self.all_groups),
            title="Fig 6 (left) — latency per (ISD set, hop count), all paths",
        )
        right = format_table(
            ["ISD set", "hops", "paths", "n", "mean ms", "spread ms"],
            self._rows(self.filtered_groups),
            title=(
                "Fig 6 (right) — long-distance paths (via "
                + ", ".join(LONG_DISTANCE_ASES)
                + ") excluded"
            ),
        )
        return (
            left
            + "\n\n"
            + right
            + f"\n7-hop spread shrinks after exclusion: {self.spread_shrinks} (paper: yes)"
        )


def run(
    *, iterations: int = DEFAULT_ITERATIONS, seed: int = DEFAULT_SEED,
    world: "CampaignWorld | None" = None,
) -> Fig6Result:
    if world is None:
        world = run_campaign([IRELAND_SERVER_ID], iterations=iterations, seed=seed)
    return Fig6Result(
        all_groups=tuple(latency_by_isd_group(world.db, IRELAND_SERVER_ID)),
        filtered_groups=tuple(
            latency_by_isd_group(
                world.db,
                IRELAND_SERVER_ID,
                exclude_transit_ases=LONG_DISTANCE_ASES,
            )
        ),
    )


def main() -> None:  # pragma: no cover
    print(run().format_text())


if __name__ == "__main__":  # pragma: no cover
    main()
