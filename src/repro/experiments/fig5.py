"""Figure 5: per-path latency whiskers to AWS Ireland.

Paper: paths to 16-ffaa:0:1002,[172.31.43.7] split into 6-hop and 7-hop
groups; latency values separate into three layers — Europe-only paths,
paths detouring through Ohio (16-ffaa:0:1004) and paths detouring
through Singapore (16-ffaa:0:1007) — showing geographic distance, not
hop count, drives latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.latency import PathLatencySeries, latency_by_path, latency_layers
from repro.analysis.report import format_table
from repro.experiments.world import DEFAULT_SEED, CampaignWorld, run_campaign

IRELAND_SERVER_ID = 1
OHIO = "16-ffaa:0:1004"
SINGAPORE = "16-ffaa:0:1007"
DEFAULT_ITERATIONS = 30


@dataclass(frozen=True)
class Fig5Result:
    series: Tuple[PathLatencySeries, ...]

    def detour_of(self, s: PathLatencySeries) -> str:
        if s.transits_any([OHIO]):
            return "via Ohio"
        if s.transits_any([SINGAPORE]):
            return "via Singapore"
        return "Europe"

    def rows(self) -> List[Tuple]:
        return [
            (
                s.path_id,
                s.hop_count,
                s.stats.n,
                s.stats.mean,
                s.stats.median,
                s.stats.whisker_low,
                s.stats.whisker_high,
                self.detour_of(s),
            )
            for s in self.series
        ]

    def layers(self) -> List[List[str]]:
        return latency_layers(self.series)

    def layer_means(self) -> List[float]:
        by_id: Dict[str, float] = {s.path_id: s.stats.mean for s in self.series}
        return [
            sum(by_id[p] for p in layer) / len(layer) for layer in self.layers()
        ]

    def format_text(self) -> str:
        table = format_table(
            ["path", "hops", "n", "mean ms", "median", "whisk lo", "whisk hi", "route"],
            self.rows(),
            title="Fig 5 — Average latency per path to AWS Ireland (16-ffaa:0:1002)",
        )
        layers = self.layers()
        means = self.layer_means()
        layer_lines = [
            f"layer {i + 1}: mean {mean:.1f} ms, paths {', '.join(layer)}"
            for i, (layer, mean) in enumerate(zip(layers, means))
        ]
        return table + "\n" + "\n".join(layer_lines) + (
            f"\nlatency layers: {len(layers)} (paper: 3 — Europe, via Ohio, via Singapore)"
        )


def run(
    *, iterations: int = DEFAULT_ITERATIONS, seed: int = DEFAULT_SEED,
    world: "CampaignWorld | None" = None,
) -> Fig5Result:
    """Measure the Ireland paths; pass ``world`` to reuse a campaign."""
    if world is None:
        world = run_campaign([IRELAND_SERVER_ID], iterations=iterations, seed=seed)
    series = latency_by_path(world.db, IRELAND_SERVER_ID)
    return Fig5Result(series=tuple(series))


def main() -> None:  # pragma: no cover
    print(run().format_text())


if __name__ == "__main__":  # pragma: no cover
    main()
