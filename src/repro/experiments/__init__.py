"""Experiment drivers regenerating every figure of the paper (Figs 4-9)."""

from repro.experiments.world import build_world, run_campaign, CampaignWorld

__all__ = ["build_world", "run_campaign", "CampaignWorld"]
