"""Ablation: measurement-driven selection vs SCION's default ranking.

The paper's premise is that storing path measurements and *querying*
them beats taking whatever path the control plane ranks first (hop
count).  This ablation quantifies that premise under exactly the
disturbance the paper observed in Fig 9 — a transient congestion
episode on a node of the default path:

* **default** strategy: always use the first showpaths path (ranked by
  hop count), like a measurement-oblivious application;
* **upin** strategy: before each transfer, re-select using only the
  *latest* round of stored measurements (loss-aware).

Both strategies are probed with the same 30-echo ping per round; the
deliverable is per-strategy delivery rate and latency across rounds,
showing the selection engine routing around the episode the default
strategy keeps hitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.report import format_table
from repro.apps.ping import PingApp
from repro.netsim.congestion import CongestionEpisode
from repro.experiments.world import DEFAULT_SEED, CampaignWorld, run_campaign
from repro.selection.engine import PathSelector
from repro.selection.request import Metric, UserRequest
from repro.suite.config import SuiteConfig
from repro.suite.runner import TestRunner
from repro.topology.isd_as import ISDAS

IRELAND_SERVER_ID = 1
IRELAND_ADDR = "16-ffaa:0:1002,[172.31.43.7]"

#: The AS congested during the disturbance window: the Magdeburg core,
#: which the default (first-ranked) Ireland path transits.
DISTURBED_AS = "19-ffaa:0:1301"

DEFAULT_ROUNDS = 8
DISTURBED_ROUNDS = (2, 6)  # rounds [2, 6) run under congestion


@dataclass(frozen=True)
class RoundOutcome:
    round_index: int
    disturbed: bool
    strategy: str
    path_id: str
    loss_pct: float
    avg_latency_ms: Optional[float]


@dataclass(frozen=True)
class AblationResult:
    outcomes: Tuple[RoundOutcome, ...]

    def delivery_rate(self, strategy: str) -> float:
        mine = [o for o in self.outcomes if o.strategy == strategy]
        return sum(100.0 - o.loss_pct for o in mine) / (100.0 * len(mine))

    def disturbed_delivery_rate(self, strategy: str) -> float:
        mine = [
            o for o in self.outcomes if o.strategy == strategy and o.disturbed
        ]
        if not mine:
            return 1.0
        return sum(100.0 - o.loss_pct for o in mine) / (100.0 * len(mine))

    def switches(self, strategy: str) -> int:
        mine = [o for o in self.outcomes if o.strategy == strategy]
        return sum(1 for a, b in zip(mine, mine[1:]) if a.path_id != b.path_id)

    def rows(self) -> List[Tuple]:
        return [
            (
                o.round_index,
                "yes" if o.disturbed else "no",
                o.strategy,
                o.path_id,
                o.loss_pct,
                o.avg_latency_ms,
            )
            for o in self.outcomes
        ]

    def format_text(self) -> str:
        table = format_table(
            ["round", "congested", "strategy", "path", "loss %", "latency ms"],
            self.rows(),
            title="Ablation — measurement-driven selection vs default ranking",
        )
        return (
            f"{table}\n"
            f"overall delivery:  default {100 * self.delivery_rate('default'):.0f}%  "
            f"upin {100 * self.delivery_rate('upin'):.0f}%\n"
            f"during congestion: default "
            f"{100 * self.disturbed_delivery_rate('default'):.0f}%  "
            f"upin {100 * self.disturbed_delivery_rate('upin'):.0f}%\n"
            f"path switches: default {self.switches('default')}, "
            f"upin {self.switches('upin')}"
        )


def run(
    *, rounds: int = DEFAULT_ROUNDS, seed: int = DEFAULT_SEED
) -> AblationResult:
    world = run_campaign([IRELAND_SERVER_ID], iterations=1, seed=seed)
    host = world.host
    runner = TestRunner(host, world.db, world.config)
    selector = PathSelector(world.db, host.topology)
    ping = PingApp(host)

    default_path = host.paths(ISDAS.parse("16-ffaa:0:1002"), max_paths=1)[0]
    request = UserRequest.make(IRELAND_SERVER_ID, Metric.LOSS)

    outcomes: List[RoundOutcome] = []
    episode_installed = False
    lo, hi = DISTURBED_ROUNDS
    #: Simulated seconds one round occupies (measurement pass + 2 probes).
    round_budget_s = 400.0

    for round_index in range(rounds):
        round_start = host.clock.now_s
        disturbed = lo <= round_index < hi
        if disturbed and not episode_installed:
            host.network.add_episode(
                CongestionEpisode.on_ases(
                    [DISTURBED_AS],
                    round_start,
                    round_start + (hi - lo) * round_budget_s,
                    loss=1.0,
                )
            )
            episode_installed = True

        # One fresh measurement round feeds the selection engine.
        round_stamp = host.clock.now_ms
        runner.run(iterations=1)

        # upin strategy: loss-aware selection over THIS round's samples.
        selection = selector.select(request, since_ms=round_stamp)
        if selection.best is not None:
            upin_path = host.daemon.path_by_sequence(
                ISDAS.parse("16-ffaa:0:1002"), selection.best.sequence
            )
            upin_id = selection.best.aggregate.path_id
        else:  # every path measured dead this round; stick with previous
            upin_path, upin_id = default_path, "1_0"

        for strategy, path, path_id in (
            ("default", default_path, "1_0"),
            ("upin", upin_path, upin_id),
        ):
            stats = ping.run(IRELAND_ADDR, count=30, interval="0.1s", path=path).stats
            outcomes.append(
                RoundOutcome(
                    round_index=round_index,
                    disturbed=disturbed,
                    strategy=strategy,
                    path_id=path_id,
                    loss_pct=stats.loss_pct,
                    avg_latency_ms=(
                        stats.avg_ms if stats.rtts_ms else None
                    ),
                )
            )
        # Idle until the next round boundary so episodes align.
        host.clock.advance_to(round_start + round_budget_s)

    return AblationResult(outcomes=tuple(outcomes))


def main() -> None:  # pragma: no cover
    print(run().format_text())


if __name__ == "__main__":  # pragma: no cover
    main()
