"""Run every figure experiment and render the paper-vs-measured record.

``python -m repro.experiments.runner`` regenerates Figures 4-9 and
prints (or writes) the comparison that EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, List, Optional, Tuple

from repro.experiments import fig4, fig5, fig6, fig7, fig8, fig9
from repro.experiments.world import DEFAULT_SEED, run_campaign


def run_all(
    *,
    iterations: int = 10,
    seed: int = DEFAULT_SEED,
    export_dir: Optional[str] = None,
) -> str:
    """Run figs 4-9; returns the combined text report.

    ``export_dir`` additionally writes each figure's data series as CSV
    (via :mod:`repro.analysis.export`) for external plotting.
    """
    sections: List[str] = []

    def section(name: str, body: str) -> None:
        sections.append(f"{'=' * 72}\n{name}\n{'=' * 72}\n{body}")

    t0 = time.time()
    r4 = fig4.run(seed=seed)
    section("Figure 4", r4.format_text())

    # Figures 5 and 6 share one Ireland campaign.
    ireland = run_campaign([fig5.IRELAND_SERVER_ID], iterations=iterations, seed=seed)
    r5 = fig5.run(world=ireland)
    r6 = fig6.run(world=ireland)
    section("Figure 5", r5.format_text())
    section("Figure 6", r6.format_text())

    r7 = fig7.run(iterations=iterations, seed=seed)
    r8 = fig8.run(iterations=iterations, seed=seed)
    r9 = fig9.run(iterations=iterations, seed=seed)
    section("Figure 7", r7.format_text())
    section("Figure 8", r8.format_text())
    section("Figure 9", r9.format_text())

    if export_dir is not None:
        _export_all(export_dir, r4, r5, r6, r7, r8, r9)
        sections.append(f"CSV series exported under {export_dir}")

    sections.append(
        f"total wall time: {time.time() - t0:.1f}s "
        f"(iterations={iterations}, seed={seed})"
    )
    return "\n\n".join(sections)


def _export_all(export_dir: str, r4, r5, r6, r7, r8, r9) -> None:
    import os

    from repro.analysis.export import (
        bandwidth_records,
        isd_group_records,
        latency_records,
        loss_records,
        reachability_records,
        write_csv,
    )

    os.makedirs(export_dir, exist_ok=True)

    def path(name: str) -> str:
        return os.path.join(export_dir, name)

    write_csv(path("fig4.csv"), reachability_records(r4.reachability))
    write_csv(path("fig5.csv"), latency_records(r5.series))
    write_csv(path("fig6_all.csv"), isd_group_records(r6.all_groups))
    write_csv(path("fig6_filtered.csv"), isd_group_records(r6.filtered_groups))
    write_csv(path("fig7.csv"), bandwidth_records(r7.series))
    write_csv(path("fig8.csv"), bandwidth_records(r8.series))
    write_csv(path("fig9.csv"), loss_records(r9.series))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments", description="Regenerate Figures 4-9"
    )
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--output", default=None, help="write the report to a file")
    parser.add_argument(
        "--export-dir", default=None,
        help="also write per-figure CSV series into this directory",
    )
    args = parser.parse_args(argv)
    report = run_all(
        iterations=args.iterations, seed=args.seed, export_dir=args.export_dir
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        print(f"report written to {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
