"""Multi-user contention: what happens when *everyone* controls paths?

§1 motivates examining "the impact on performance that shifting network
control from operators to end users has on traffic".  The paper measures
one client at a time; this experiment puts N simultaneous users behind
MY_AS, all transferring to the Magdeburg server at once (flows
registered in the ledger so they genuinely contend), under two
assignment policies:

* ``selfish`` — every user takes the selection engine's best path;
* ``spread`` — users are round-robined across the top-k admissible paths.

The result: spreading relieves contention on the *interior* links
(same-path flows queue behind each other at every hop, so the selfish
policy compounds losses and is less fair), but both policies saturate
near the shared access-link capacity and per-user goodput collapses as
~C/N — user-driven path control redistributes routes and fairness, not
access capacity.  The experiment reports per-user mean goodput,
aggregate goodput, and Jain's fairness index per user count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.experiments.world import DEFAULT_SEED, CampaignWorld, run_campaign
from repro.netsim.packet import PacketSpec
from repro.selection.engine import PathSelector
from repro.selection.request import Metric, UserRequest

GERMANY_SERVER_ID = 3
TARGET_MBPS = 10.0
DURATION_S = 3.0
DEFAULT_USER_COUNTS = (1, 2, 4, 8)


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly equal shares."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclass(frozen=True)
class ContentionPoint:
    users: int
    policy: str
    per_user_mbps: Tuple[float, ...]

    @property
    def aggregate_mbps(self) -> float:
        return sum(self.per_user_mbps)

    @property
    def mean_mbps(self) -> float:
        return self.aggregate_mbps / len(self.per_user_mbps)

    @property
    def fairness(self) -> float:
        return jain_index(self.per_user_mbps)


@dataclass(frozen=True)
class MultiUserResult:
    points: Tuple[ContentionPoint, ...]

    def point(self, users: int, policy: str) -> Optional[ContentionPoint]:
        for p in self.points:
            if p.users == users and p.policy == policy:
                return p
        return None

    def rows(self) -> List[Tuple]:
        return [
            (p.users, p.policy, p.mean_mbps, p.aggregate_mbps, p.fairness)
            for p in self.points
        ]

    def format_text(self) -> str:
        table = format_table(
            ["users", "policy", "per-user Mbps", "aggregate Mbps", "Jain fairness"],
            self.rows(),
            title=(
                "Multi-user contention — simultaneous downstream transfers "
                f"({TARGET_MBPS:g} Mbps target each)"
            ),
        )
        return (
            table
            + "\nNote: spreading improves fairness and interior-link "
            "contention, but the shared access link caps the aggregate — "
            "path control cannot create capacity."
        )


def _paths_for_policy(
    world: CampaignWorld, selector: PathSelector, policy: str, users: int
):
    request = UserRequest.make(GERMANY_SERVER_ID, Metric.BANDWIDTH_DOWN)
    result = selector.select(request, top_k=10)
    ranked = result.ranked
    assert ranked, "campaign must have measured Magdeburg paths"
    dst = "19-ffaa:0:1303"
    resolved = []
    for i in range(users):
        pick = ranked[0] if policy == "selfish" else ranked[i % len(ranked)]
        path = world.host.daemon.path_by_sequence(dst, pick.sequence)
        assert path is not None
        resolved.append(path)
    return resolved


def run(
    *,
    user_counts: Sequence[int] = DEFAULT_USER_COUNTS,
    seed: int = DEFAULT_SEED,
    world: "CampaignWorld | None" = None,
) -> MultiUserResult:
    if world is None:
        world = run_campaign([GERMANY_SERVER_ID], iterations=3, seed=seed)
    selector = PathSelector(world.db, world.host.topology)
    network = world.host.network

    points: List[ContentionPoint] = []
    for policy in ("selfish", "spread"):
        for users in user_counts:
            paths = _paths_for_policy(world, selector, policy, users)
            network.flows.clear()
            t0 = world.host.clock.now_s
            achieved: List[float] = []
            for path in paths:
                traversals = [
                    t.reversed() for t in reversed(path.traversals(world.host.topology))
                ]  # downstream: server -> user
                packet = PacketSpec(
                    payload_bytes=1472,
                    n_hops=path.hop_count,
                    n_segments=path.n_segments,
                )
                result = network.fluid_transfer(
                    traversals,
                    TARGET_MBPS * 1e6,
                    packet,
                    DURATION_S,
                    t0,
                    register_flow=True,
                )
                achieved.append(result.achieved_mbps)
            network.flows.clear()
            world.host.clock.advance(DURATION_S)
            points.append(
                ContentionPoint(
                    users=users, policy=policy, per_user_mbps=tuple(achieved)
                )
            )
    return MultiUserResult(points=tuple(points))


def main() -> None:  # pragma: no cover
    print(run().format_text())


if __name__ == "__main__":  # pragma: no cover
    main()
