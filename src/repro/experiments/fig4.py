"""Figure 4: server reachability from MY_AS.

Paper: 21 reachable destinations; "the average path length is 5.66 hops
and about 70% of paths can be reached within 6 hops", highlighting the
central position of the authors' AS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.reachability import ReachabilityResult, reachability
from repro.analysis.report import format_table
from repro.experiments.world import DEFAULT_SEED, build_world

PAPER_MEAN_PATH_LENGTH = 5.66
PAPER_FRACTION_WITHIN_6 = 0.70
PAPER_REACHABLE = 21


@dataclass(frozen=True)
class Fig4Result:
    reachability: ReachabilityResult

    def rows(self) -> List[Tuple[int, int]]:
        return self.reachability.rows()

    def format_text(self) -> str:
        table = format_table(
            ["min hops", "destinations"],
            self.rows(),
            title="Fig 4 — Server reachability from MY_AS",
        )
        r = self.reachability
        return (
            f"{table}\n"
            f"reachable destinations: {r.reachable} (paper: {PAPER_REACHABLE})\n"
            f"mean path length: {r.mean_path_length:.2f} hops "
            f"(paper: {PAPER_MEAN_PATH_LENGTH})\n"
            f"within 6 hops: {100 * r.fraction_within(6):.0f}% "
            f"(paper: ~{100 * PAPER_FRACTION_WITHIN_6:.0f}%)"
        )


def run(*, seed: int = DEFAULT_SEED) -> Fig4Result:
    world = build_world(seed=seed)
    return Fig4Result(reachability=reachability(world.host))


def main() -> None:  # pragma: no cover - exercised via the bench harness
    print(run().format_text())


if __name__ == "__main__":  # pragma: no cover
    main()
