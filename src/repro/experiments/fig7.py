"""Figure 7: achieved bandwidth per path at a 12 Mbps target (Magdeburg).

Paper: against 19-ffaa:0:1303,[141.44.25.144] — upstream achieves less
than downstream ("in line with the internet's inherent asymmetry"), and
64-byte packets achieve less than MTU-sized packets ("smaller packets
increase the total packet count, amplifying the overhead of packet
headers").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.bandwidth import (
    BandwidthSeries,
    BandwidthSummary,
    bandwidth_by_path,
    summarize,
)
from repro.analysis.report import format_table
from repro.experiments.world import DEFAULT_SEED, CampaignWorld, run_campaign

GERMANY_SERVER_ID = 3
DEFAULT_ITERATIONS = 30
TARGET = "12Mbps"
TARGET_MBPS = 12.0


@dataclass(frozen=True)
class FigBandwidthResult:
    """Shared result shape for Fig 7 and Fig 8."""

    title: str
    target_mbps: float
    series: Tuple[BandwidthSeries, ...]

    @property
    def summary(self) -> BandwidthSummary:
        return summarize(list(self.series))

    def rows(self) -> List[Tuple]:
        return [
            (
                s.path_id,
                s.hop_count,
                s.mean("up", "small"),
                s.mean("up", "mtu"),
                s.mean("down", "small"),
                s.mean("down", "mtu"),
            )
            for s in self.series
        ]

    def format_text(self) -> str:
        table = format_table(
            ["path", "hops", "up 64B", "up MTU", "down 64B", "down MTU"],
            self.rows(),
            title=f"{self.title} (mean achieved Mbps, target {self.target_mbps:g} Mbps)",
        )
        s = self.summary
        return (
            f"{table}\n"
            f"downstream > upstream: {s.downstream_beats_upstream}\n"
            f"MTU > 64B: {s.mtu_beats_small}"
        )


def run(
    *, iterations: int = DEFAULT_ITERATIONS, seed: int = DEFAULT_SEED,
    world: "CampaignWorld | None" = None,
) -> FigBandwidthResult:
    if world is None:
        world = run_campaign(
            [GERMANY_SERVER_ID], iterations=iterations, bw_target=TARGET, seed=seed
        )
    series = bandwidth_by_path(world.db, GERMANY_SERVER_ID, target_mbps=TARGET_MBPS)
    return FigBandwidthResult(
        title="Fig 7 — bandwidth per path to Magdeburg AP (19-ffaa:0:1303)",
        target_mbps=TARGET_MBPS,
        series=tuple(series),
    )


def main() -> None:  # pragma: no cover
    print(run().format_text())


if __name__ == "__main__":  # pragma: no cover
    main()
