"""The §1 research question: what does latency-first selection cost?

"For example, we analyze how the choice of a specific path that follows
the lowest latency to a desired destination, as chosen by a user,
affects the available bandwidth within a SCION network."  (§1)

For each study destination this experiment compares three single-metric
selections — latency-first, bandwidth-first, loss-first — and reports
each winner's *other* metrics, quantifying the cross-metric penalty of
optimising one dimension (e.g. the bandwidth a latency-chasing user
leaves on the table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import format_table
from repro.errors import NoPathError
from repro.experiments.world import DEFAULT_SEED, CampaignWorld, run_campaign
from repro.scionlab.defaults import study_destination_ids
from repro.selection.engine import PathSelector
from repro.selection.request import Metric, UserRequest

DEFAULT_ITERATIONS = 8

_POLICIES = (Metric.LATENCY, Metric.BANDWIDTH_DOWN, Metric.LOSS)


@dataclass(frozen=True)
class PolicyPick:
    server_id: int
    policy: str
    path_id: str
    avg_latency_ms: Optional[float]
    avg_bw_down_mbps: Optional[float]
    avg_loss_pct: float


@dataclass(frozen=True)
class TradeoffResult:
    picks: Tuple[PolicyPick, ...]

    def pick(self, server_id: int, policy: Metric) -> Optional[PolicyPick]:
        for p in self.picks:
            if p.server_id == server_id and p.policy == policy.value:
                return p
        return None

    def bandwidth_cost_of_latency_first(self, server_id: int) -> Optional[float]:
        """Mbps of downstream bandwidth given up by latency-first choice."""
        lat = self.pick(server_id, Metric.LATENCY)
        bw = self.pick(server_id, Metric.BANDWIDTH_DOWN)
        if lat is None or bw is None:
            return None
        if lat.avg_bw_down_mbps is None or bw.avg_bw_down_mbps is None:
            return None
        return bw.avg_bw_down_mbps - lat.avg_bw_down_mbps

    def latency_cost_of_bandwidth_first(self, server_id: int) -> Optional[float]:
        """Extra ms of latency paid by bandwidth-first choice."""
        lat = self.pick(server_id, Metric.LATENCY)
        bw = self.pick(server_id, Metric.BANDWIDTH_DOWN)
        if lat is None or bw is None:
            return None
        if lat.avg_latency_ms is None or bw.avg_latency_ms is None:
            return None
        return bw.avg_latency_ms - lat.avg_latency_ms

    def rows(self) -> List[Tuple]:
        return [
            (
                p.server_id,
                p.policy,
                p.path_id,
                p.avg_latency_ms,
                p.avg_bw_down_mbps,
                p.avg_loss_pct,
            )
            for p in self.picks
        ]

    def format_text(self) -> str:
        table = format_table(
            ["dest", "policy", "path", "latency ms", "bw down Mbps", "loss %"],
            self.rows(),
            title="§1 trade-off — each policy's winner, with its other metrics",
        )
        lines = [table]
        for server_id in sorted({p.server_id for p in self.picks}):
            bw_cost = self.bandwidth_cost_of_latency_first(server_id)
            lat_cost = self.latency_cost_of_bandwidth_first(server_id)
            if bw_cost is not None and lat_cost is not None:
                lines.append(
                    f"destination {server_id}: latency-first forfeits "
                    f"{bw_cost:.2f} Mbps downstream; bandwidth-first pays "
                    f"+{lat_cost:.1f} ms latency"
                )
        return "\n".join(lines)


def run(
    *,
    iterations: int = DEFAULT_ITERATIONS,
    seed: int = DEFAULT_SEED,
    destination_ids: Optional[List[int]] = None,
    world: "CampaignWorld | None" = None,
) -> TradeoffResult:
    destinations = destination_ids or study_destination_ids()
    if world is None:
        world = run_campaign(destinations, iterations=iterations, seed=seed)
    selector = PathSelector(world.db, world.host.topology)

    picks: List[PolicyPick] = []
    for server_id in destinations:
        for metric in _POLICIES:
            try:
                result = selector.select(UserRequest.make(server_id, metric))
            except NoPathError:
                continue
            if result.best is None:
                continue
            agg = result.best.aggregate
            picks.append(
                PolicyPick(
                    server_id=server_id,
                    policy=metric.value,
                    path_id=agg.path_id,
                    avg_latency_ms=agg.avg_latency_ms,
                    avg_bw_down_mbps=agg.avg_bw_down_mbps,
                    avg_loss_pct=agg.avg_loss_pct,
                )
            )
    return TradeoffResult(picks=tuple(picks))


def main() -> None:  # pragma: no cover
    print(run().format_text())


if __name__ == "__main__":  # pragma: no cover
    main()
