"""Figure 8: the 150 Mbps target — the 64 B/MTU ordering reverses.

Paper: "This trend reverses when we require a higher bandwidth of
150Mbps ... we observe a higher achieved bandwidth by sending smaller
packets instead of bigger ones", attributed to capacity limits: the
congested network drops MTU packets, and "dropping 64 bytes packets
does not decrease the achieved bandwidth as dropping MTU-sized
packets".  In the substrate the mechanism is explicit: MTU-sized SCION
packets fragment in the UDP overlay, and under overload the
per-fragment clipping compounds.
"""

from __future__ import annotations

from repro.experiments.fig7 import DEFAULT_ITERATIONS, GERMANY_SERVER_ID, FigBandwidthResult
from repro.analysis.bandwidth import bandwidth_by_path
from repro.experiments.world import DEFAULT_SEED, CampaignWorld, run_campaign

TARGET = "150Mbps"
TARGET_MBPS = 150.0


def run(
    *, iterations: int = DEFAULT_ITERATIONS, seed: int = DEFAULT_SEED,
    world: "CampaignWorld | None" = None,
) -> FigBandwidthResult:
    if world is None:
        world = run_campaign(
            [GERMANY_SERVER_ID], iterations=iterations, bw_target=TARGET, seed=seed
        )
    series = bandwidth_by_path(world.db, GERMANY_SERVER_ID, target_mbps=TARGET_MBPS)
    return FigBandwidthResult(
        title="Fig 8 — bandwidth per path to Magdeburg AP at a 150 Mbps target",
        target_mbps=TARGET_MBPS,
        series=tuple(series),
    )


def main() -> None:  # pragma: no cover
    print(run().format_text())


if __name__ == "__main__":  # pragma: no cover
    main()
