"""The canonical experiment world: build, collect, measure.

Every figure driver starts here: the SCIONLab topology with MY_AS
attached at ETHZ-AP, the seeded network simulator, a fresh document
database with the 21 available servers, a path-collection pass, and a
measurement campaign whose knobs (destinations, iterations, bandwidth
target, congestion episodes) each figure sets for itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.docdb.client import DocDBClient
from repro.docdb.database import Database
from repro.scion.snet import ScionHost
from repro.suite.cli import seed_servers
from repro.suite.collect import PathsCollector
from repro.suite.config import SuiteConfig
from repro.suite.runner import CampaignReport, TestRunner

DEFAULT_SEED = 20231112


@dataclass
class CampaignWorld:
    """A built world plus the campaign artifacts figures read."""

    host: ScionHost
    client: DocDBClient
    db: Database
    config: SuiteConfig
    report: Optional[CampaignReport] = None

    @property
    def campaign_start_s(self) -> float:
        return self._campaign_start_s

    _campaign_start_s: float = field(default=0.0, repr=False)


def build_world(*, seed: int = DEFAULT_SEED, config: Optional[SuiteConfig] = None) -> CampaignWorld:
    """Build host + database and seed ``availableServers`` (no campaign)."""
    host = ScionHost.scionlab(seed=seed)
    client = DocDBClient()
    config = config or SuiteConfig()
    db = client[config.database]
    seed_servers(db)
    return CampaignWorld(host=host, client=client, db=db, config=config)


def run_campaign(
    destination_ids: Sequence[int],
    *,
    iterations: int,
    bw_target: str = "12Mbps",
    seed: int = DEFAULT_SEED,
    prepare: Optional[Callable[[CampaignWorld], None]] = None,
) -> CampaignWorld:
    """Collect paths and run a measurement campaign.

    ``prepare`` runs after path collection but before measurements —
    the hook figures use to schedule congestion episodes (Fig 9) once
    they know the stored path set and the campaign start time.
    """
    config = SuiteConfig(
        iterations=iterations,
        destination_ids=list(destination_ids),
        bw_target=bw_target,
    )
    world = build_world(seed=seed, config=config)
    PathsCollector(world.host, world.db, config).collect()
    world._campaign_start_s = world.host.clock.now_s
    if prepare is not None:
        prepare(world)
    runner = TestRunner(world.host, world.db, config)
    world.report = runner.run()
    return world


def seconds_per_path(config: SuiteConfig) -> float:
    """Simulated seconds one path's three measurements occupy.

    ping: count * interval; two bandwidth tests: 2 directions each of
    ``bw_duration_s``.  Fig 9 uses this to position congestion episodes
    over specific measurement slots.
    """
    from repro.util.units import parse_duration

    ping_s = config.ping_count * parse_duration(config.ping_interval).seconds
    return ping_s + 4.0 * config.bw_duration_s
