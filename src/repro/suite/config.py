"""Test-suite configuration.

Defaults reproduce the paper's measurement commands exactly: 30 SCMP
echoes at 0.1 s intervals, 3-second bandwidth tests at a 12 Mbps target
with 64-byte and MTU-sized packets, paths capped at 40 per destination
and filtered to hop count <= minimum + 1 (§5.2-§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ValidationError

#: Collection names from the paper's database schema (Fig 3).
SERVERS_COLLECTION = "availableServers"
PATHS_COLLECTION = "paths"
STATS_COLLECTION = "paths_stats"


@dataclass
class SuiteConfig:
    """All knobs of one campaign."""

    database: str = "upin"

    # -- path collection (collect_paths.py, §5.2) ---------------------------
    showpaths_max: int = 40
    hop_slack: int = 1  # keep paths with hops <= min + hop_slack

    # -- measurement (run_tests.py, §5.3) ------------------------------------
    ping_count: int = 30
    ping_interval: str = "0.1s"
    bw_duration_s: float = 3.0
    bw_small_bytes: int = 64
    bw_target: str = "12Mbps"

    # -- campaign shape --------------------------------------------------------
    iterations: int = 1
    #: Restrict to these server ids (None = all); ``--some_only`` uses [first].
    destination_ids: Optional[Sequence[int]] = None
    skip_collection: bool = False
    some_only: bool = False

    # -- robustness (§4.1.2) ------------------------------------------------------
    max_retries: int = 1
    continue_on_error: bool = True
    #: Exponential-backoff shape for transient-failure retries.  The
    #: delays advance the *simulated* clock only (see ``suite.retry``).
    retry_backoff_s: float = 0.5
    retry_backoff_factor: float = 2.0
    retry_backoff_max_s: float = 30.0
    #: Relative half-width of the deterministic jitter (0 disables).
    retry_jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ValidationError("iterations must be >= 0")
        if self.hop_slack < 0:
            raise ValidationError("hop_slack must be >= 0")
        if self.ping_count < 1:
            raise ValidationError("ping_count must be >= 1")
        if self.bw_duration_s <= 0:
            raise ValidationError("bw_duration_s must be positive")
        if self.max_retries < 0:
            raise ValidationError("max_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValidationError("retry_backoff_s must be >= 0")
        if self.retry_backoff_factor < 1.0:
            raise ValidationError("retry_backoff_factor must be >= 1")
        if self.retry_backoff_max_s < 0:
            raise ValidationError("retry_backoff_max_s must be >= 0")
        if not (0.0 <= self.retry_jitter < 1.0):
            raise ValidationError("retry_jitter must be in [0, 1)")

    def bw_params(self, packet: "int | str") -> str:
        """The ``-cs`` parameter string for one packet class.

        >>> SuiteConfig().bw_params(64)
        '3,64,?,12Mbps'
        >>> SuiteConfig().bw_params("MTU")
        '3,MTU,?,12Mbps'
        """
        return f"{self.bw_duration_s:g},{packet},?,{self.bw_target}"
