"""The test-suite CLI (the ``test_suite.sh`` wrapper, §5.1).

Mirrors the original interface::

    upin-test-suite 100 --skip         # 100 iterations, reuse stored paths
    upin-test-suite 10 --some_only     # only the first destination

plus reproduction conveniences: ``--seed`` for determinism,
``--parallel N`` for the scalability mode, and ``--db-dir`` to persist
the database as JSONL snapshots.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.docdb.client import DocDBClient
from repro.errors import ReproError
from repro.scion.snet import ScionHost
from repro.scionlab.defaults import available_server_documents
from repro.suite.collect import PathsCollector
from repro.suite.config import SERVERS_COLLECTION, SuiteConfig
from repro.suite.metrics import (
    database_stats_snapshot,
    format_database_stats,
    format_metrics,
    format_wal_stats,
    wal_stats_snapshot,
)
from repro.suite.parallel import ParallelCampaign
from repro.suite.runner import TestRunner
from repro.topology.scionlab import MY_AS, scionlab_network_config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="upin-test-suite",
        description="UPIN path measurement campaign over simulated SCIONLab",
    )
    parser.add_argument(
        "iterations", type=int, help="test runs per path (the paper used up to 100)"
    )
    parser.add_argument(
        "--skip",
        action="store_true",
        help="bypass path collection (paths must already be stored)",
    )
    parser.add_argument(
        "--some_only",
        action="store_true",
        help="test only the first destination in availableServers",
    )
    parser.add_argument("--seed", type=int, default=20231112)
    parser.add_argument(
        "--parallel", type=int, default=0, metavar="N",
        help="shard destinations over N worker threads",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort the parallel campaign on the first worker failure "
        "instead of isolating it (§4.1.2 default: isolate)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print retry/backoff/batch telemetry after the campaign",
    )
    parser.add_argument(
        "--db-dir", default=None, help="persist the database under this directory"
    )
    parser.add_argument(
        "--durability",
        choices=["snapshot", "always", "batch", "never"],
        default="snapshot",
        help="persistence mode for --db-dir: 'snapshot' saves JSONL files "
        "once at exit (seed behaviour); 'always'/'batch'/'never' open a "
        "crash-safe write-ahead log with that fsync policy — every batch "
        "flush survives kill -9 and the campaign ends with a checkpoint "
        "(see docs/STORAGE.md)",
    )
    parser.add_argument(
        "--sign",
        action="store_true",
        help="sign every statistics document with a coordinator-issued AS "
        "key and enforce verification on insert (§4.1.4)",
    )
    return parser


def seed_servers(db) -> int:
    """Populate ``availableServers`` (idempotent); returns server count."""
    coll = db[SERVERS_COLLECTION]
    docs = available_server_documents()
    for doc in docs:
        coll.replace_one({"_id": doc["_id"]}, doc, upsert=True)
    return len(docs)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = SuiteConfig(iterations=args.iterations, some_only=args.some_only,
                         skip_collection=args.skip)
    if args.durability != "snapshot" and args.db_dir is None:
        print("error: --durability requires --db-dir", file=sys.stderr)
        return 2
    if args.db_dir is not None and args.durability != "snapshot":
        # Durable mode: recover (snapshot + WAL replay) and auto-journal.
        client = DocDBClient.open(args.db_dir, fsync=args.durability)
        report = client.recovery_report
        assert report is not None
        print(
            f"durable database: wal fsync={args.durability}, "
            f"recovered to lsn {report.last_lsn} "
            f"({report.records_replayed} records replayed"
            + (
                f", {report.torn_bytes_truncated} torn bytes rolled back)"
                if report.torn_bytes_truncated
                else ")"
            )
        )
    elif args.db_dir is not None:
        client = DocDBClient.load_from(args.db_dir)
    else:
        client = DocDBClient()
    db = client[config.database]
    n_servers = seed_servers(db)
    host = ScionHost.scionlab(seed=args.seed)
    print(f"local address: {host.address()}  servers: {n_servers}")

    signer = None
    signer_subject = ""
    if args.sign:
        from repro.crypto.rsa import RSAKeyPair
        from repro.docdb.auth import SignedDocumentVerifier
        from repro.scionlab.coordinator import Coordinator
        from repro.suite.config import STATS_COLLECTION
        from repro.util.rng import RngStreams

        coordinator = Coordinator(host.topology, seed=args.seed)
        signer_subject = str(host.local_ia)
        signer = RSAKeyPair.generate(
            RngStreams(args.seed).get("suite-signer"), bits=256
        )
        certificate = coordinator.issue_as_certificate(
            host.local_ia, signer.public
        )
        # Anyone can check the writer key against the ISD trust root...
        coordinator.trust_store().verify_certificate([certificate])
        # ...and the stats collection now refuses unsigned documents.
        verifier = SignedDocumentVerifier()
        verifier.register_writer(signer_subject, signer.public)
        db[STATS_COLLECTION].validator = verifier
        print(f"signing stats as {signer_subject} "
              f"(key {signer.public.fingerprint()}, PKC verified)")

    try:
        if not args.skip:
            collection = PathsCollector(host, db, config).collect()
            print(
                f"collected {collection.paths_stored} paths over "
                f"{collection.destinations} destinations "
                f"({collection.paths_deleted} stale deleted, "
                f"{len(collection.failures)} failures)"
            )
        if args.parallel > 0:
            campaign = ParallelCampaign(
                host.topology, MY_AS, db, config,
                base_config=scionlab_network_config(seed=args.seed), seed=args.seed,
                signer=signer, signer_subject=signer_subject,
                fail_fast=args.fail_fast,
            )
            preport = campaign.run(iterations=args.iterations, max_workers=args.parallel)
            print(
                f"parallel campaign: {preport.stats_stored} stats stored, "
                f"{preport.paths_tested} path tests, "
                f"{preport.stats_lost} lost, "
                f"{preport.measurement_errors} errors"
            )
            if preport.failed_destinations:
                print(
                    f"failed destinations: "
                    f"{len(preport.failed_destinations)} "
                    f"(of {len(preport.per_destination)})"
                )
                for sid in sorted(preport.failed_destinations):
                    print(f"  - {sid}: {preport.failed_destinations[sid]}")
            if args.metrics:
                block = format_metrics(preport.metrics, indent="  ")
                print("metrics:" + ("\n" + block if block else " (none)"))
                db_block = format_database_stats(database_stats_snapshot(db))
                if db_block:
                    print(db_block)
                wal_block = format_wal_stats(wal_stats_snapshot(client))
                if wal_block:
                    print(wal_block)
        else:
            report = TestRunner(
                host, db, config, signer=signer, signer_subject=signer_subject
            ).run()
            print(
                f"campaign: {report.stats_stored} stats stored, "
                f"{report.paths_tested} path tests, "
                f"{report.stats_lost} lost, {report.measurement_errors} errors, "
                f"{report.sim_seconds:.1f} simulated seconds"
            )
            if args.metrics:
                block = format_metrics(report.metrics, indent="  ")
                print("metrics:" + ("\n" + block if block else " (none)"))
                db_block = format_database_stats(database_stats_snapshot(db))
                if db_block:
                    print(db_block)
                wal_block = format_wal_stats(wal_stats_snapshot(client))
                if wal_block:
                    print(wal_block)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if client.is_durable:
            # Every flushed batch is already on the OS side of the WAL;
            # close without checkpointing so the next open replays it.
            client.close()
        return 1

    if client.is_durable:
        result = client.checkpoint()
        client.close()
        print(
            f"database checkpointed under {args.db_dir} "
            f"(lsn {result.checkpoint_lsn}, "
            f"{result.segments_removed} WAL segment(s) compacted)"
        )
    elif args.db_dir is not None:
        client.save_to(args.db_dir)
        print(f"database saved under {args.db_dir}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
