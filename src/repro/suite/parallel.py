"""Parallel campaigns: scale-out across destinations (§4.1.1).

The paper's scalability requirement — "the system's capability to adapt
to a larger workload ... the amount of data generated grows both with
the number of tests performed per destination, as well as the number of
destinations tested" — is met by sharding destinations over a thread
pool.  Each worker owns its *own* simulated network client (its own
clock and RNG streams, seeded per destination so results do not depend
on scheduling), while all workers write to the shared, thread-safe
document database.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.docdb.database import Database
from repro.netsim.config import NetworkConfig
from repro.scion.snet import ScionHost
from repro.suite.config import SERVERS_COLLECTION, SuiteConfig
from repro.suite.runner import CampaignReport, TestRunner
from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS
from repro.util.rng import derive_seed


@dataclass
class ParallelReport:
    """Aggregate of the per-destination campaign reports."""

    per_destination: Dict[int, CampaignReport] = field(default_factory=dict)

    @property
    def stats_stored(self) -> int:
        return sum(r.stats_stored for r in self.per_destination.values())

    @property
    def paths_tested(self) -> int:
        return sum(r.paths_tested for r in self.per_destination.values())

    @property
    def measurement_errors(self) -> int:
        return sum(r.measurement_errors for r in self.per_destination.values())


class ParallelCampaign:
    """Runs one single-destination campaign per worker thread."""

    def __init__(
        self,
        topology: Topology,
        local_ia: "ISDAS | str",
        db: Database,
        config: SuiteConfig,
        *,
        base_config: Optional[NetworkConfig] = None,
        seed: int = 20231112,
    ) -> None:
        self.topology = topology
        self.local_ia = ISDAS.parse(local_ia)
        self.db = db
        self.config = config
        self.base_config = base_config
        self.seed = seed

    def _host_for(self, server_id: int) -> ScionHost:
        """A fresh host whose network is seeded per destination."""
        if self.base_config is not None:
            from dataclasses import replace

            net_config = replace(
                self.base_config, seed=derive_seed(self.seed, f"dest:{server_id}")
            )
        else:
            net_config = NetworkConfig(seed=derive_seed(self.seed, f"dest:{server_id}"))
        return ScionHost(self.topology, self.local_ia, config=net_config)

    def run(self, *, iterations: int = 1, max_workers: int = 4) -> ParallelReport:
        """Measure every configured destination concurrently."""
        servers = self.db[SERVERS_COLLECTION].find(sort=[("_id", 1)])
        if self.config.destination_ids is not None:
            wanted = set(self.config.destination_ids)
            servers = [s for s in servers if s["_id"] in wanted]
        if self.config.some_only:
            servers = servers[:1]

        report = ParallelReport()
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(self._run_destination, int(s["_id"]), iterations): int(
                    s["_id"]
                )
                for s in servers
            }
            for future in as_completed(futures):
                server_id = futures[future]
                report.per_destination[server_id] = future.result()
        return report

    def _run_destination(self, server_id: int, iterations: int) -> CampaignReport:
        from dataclasses import replace

        host = self._host_for(server_id)
        config = replace(
            self.config,
            destination_ids=[server_id],
            some_only=False,
            iterations=iterations,
        )
        runner = TestRunner(host, self.db, config)
        return runner.run()
