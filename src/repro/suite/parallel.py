"""Parallel campaigns: scale-out across destinations (§4.1.1 + §4.1.2).

The paper's scalability requirement — "the system's capability to adapt
to a larger workload ... the amount of data generated grows both with
the number of tests performed per destination, as well as the number of
destinations tested" — is met by sharding destinations over a thread
pool.  Each worker owns its *own* simulated network client (its own
clock and RNG streams, seeded per destination so results do not depend
on scheduling), while all workers write to the shared, thread-safe
document database.

Fault isolation (§4.1.2) is the second half of the contract: one
unreachable or misbehaving destination must never abort the fleet.  A
worker that raises is converted into a failed per-destination
:class:`~repro.suite.runner.CampaignReport` (the error recorded in
``ParallelReport.failed_destinations``) while every other worker's
results are kept.  ``fail_fast=True`` restores abort-on-first-error for
debugging.

Fault *injection* is live in parallel mode too: a shared
:class:`~repro.suite.faults.FaultPlan` is sliced into per-destination
views (deterministic loss streams, locked shared counters) and the
signing keypair is forwarded to every worker's runner.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.crypto.rsa import RSAKeyPair
from repro.docdb.database import Database
from repro.netsim.config import NetworkConfig
from repro.scion.snet import ScionHost
from repro.suite import metrics as m
from repro.suite.config import SERVERS_COLLECTION, SuiteConfig
from repro.suite.faults import FaultPlan
from repro.suite.runner import CampaignReport, TestRunner
from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS
from repro.util.rng import derive_seed


@dataclass
class ParallelReport:
    """Aggregate of the per-destination campaign reports."""

    per_destination: Dict[int, CampaignReport] = field(default_factory=dict)
    #: server_id -> error string for workers whose whole campaign died.
    failed_destinations: Dict[int, str] = field(default_factory=dict)

    @property
    def stats_stored(self) -> int:
        return sum(r.stats_stored for r in self.per_destination.values())

    @property
    def paths_tested(self) -> int:
        return sum(r.paths_tested for r in self.per_destination.values())

    @property
    def stats_lost(self) -> int:
        return sum(r.stats_lost for r in self.per_destination.values())

    @property
    def measurement_errors(self) -> int:
        return sum(r.measurement_errors for r in self.per_destination.values())

    @property
    def completed_destinations(self) -> int:
        return len(self.per_destination) - len(self.failed_destinations)

    @property
    def metrics(self) -> Dict[str, Any]:
        """Campaign-wide metrics: per-destination snapshots, folded.

        The fold is commutative, so the merged values are independent of
        worker count and completion order.
        """
        return m.merge_snapshots(
            self.per_destination[sid].metrics
            for sid in sorted(self.per_destination)
        )

    def format_text(self) -> str:
        lines = [
            f"parallel campaign: {self.stats_stored} stats stored, "
            f"{self.paths_tested} path tests, "
            f"{self.stats_lost} lost, {self.measurement_errors} errors",
            f"  destinations: {self.completed_destinations} ok, "
            f"{len(self.failed_destinations)} failed",
        ]
        for sid in sorted(self.failed_destinations):
            lines.append(f"    - {sid}: {self.failed_destinations[sid]}")
        metrics_block = m.format_metrics(self.metrics)
        if metrics_block:
            lines.append(metrics_block)
        return "\n".join(lines)


class ParallelCampaign:
    """Runs one single-destination campaign per worker thread.

    ``faults`` and ``signer``/``signer_subject`` are forwarded to every
    worker's :class:`TestRunner` (the plan through a per-destination
    :meth:`~repro.suite.faults.FaultPlan.scoped` view so injected-loss
    draws stay scheduling-independent).  With the default
    ``fail_fast=False`` a crashing worker is isolated: its destination is
    reported in :attr:`ParallelReport.failed_destinations` and every
    other destination completes normally.
    """

    def __init__(
        self,
        topology: Topology,
        local_ia: "ISDAS | str",
        db: Database,
        config: SuiteConfig,
        *,
        base_config: Optional[NetworkConfig] = None,
        seed: int = 20231112,
        faults: Optional[FaultPlan] = None,
        signer: Optional[RSAKeyPair] = None,
        signer_subject: str = "",
        fail_fast: bool = False,
    ) -> None:
        self.topology = topology
        self.local_ia = ISDAS.parse(local_ia)
        self.db = db
        self.config = config
        self.base_config = base_config
        self.seed = seed
        self.faults = faults
        self.signer = signer
        self.signer_subject = signer_subject
        self.fail_fast = fail_fast

    def _host_for(self, server_id: int) -> ScionHost:
        """A fresh host whose network is seeded per destination."""
        if self.base_config is not None:
            from dataclasses import replace

            net_config = replace(
                self.base_config, seed=derive_seed(self.seed, f"dest:{server_id}")
            )
        else:
            net_config = NetworkConfig(seed=derive_seed(self.seed, f"dest:{server_id}"))
        return ScionHost(self.topology, self.local_ia, config=net_config)

    def run(self, *, iterations: int = 1, max_workers: int = 4) -> ParallelReport:
        """Measure every configured destination concurrently.

        A worker exception never aborts the fleet (unless ``fail_fast``):
        it becomes a failed :class:`CampaignReport` for that destination
        and an entry in :attr:`ParallelReport.failed_destinations`.
        """
        servers = self.db[SERVERS_COLLECTION].find(sort=[("_id", 1)])
        if self.config.destination_ids is not None:
            wanted = set(self.config.destination_ids)
            servers = [s for s in servers if s["_id"] in wanted]
        if self.config.some_only:
            servers = servers[:1]

        report = ParallelReport()
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(self._run_destination, int(s["_id"]), iterations): int(
                    s["_id"]
                )
                for s in servers
            }
            for future in as_completed(futures):
                server_id = futures[future]
                try:
                    report.per_destination[server_id] = future.result()
                except Exception as exc:  # worker isolation boundary
                    if self.fail_fast:
                        for other in futures:
                            other.cancel()
                        raise
                    failure = f"{type(exc).__name__}: {exc}"
                    failed = CampaignReport(failure=failure)
                    failed.record_error(f"destination {server_id}: {failure}")
                    report.per_destination[server_id] = failed
                    report.failed_destinations[server_id] = failure
        return report

    def _run_destination(self, server_id: int, iterations: int) -> CampaignReport:
        from dataclasses import replace

        host = self._host_for(server_id)
        config = replace(
            self.config,
            destination_ids=[server_id],
            some_only=False,
            iterations=iterations,
        )
        runner = TestRunner(
            host,
            self.db,
            config,
            faults=self.faults.scoped(server_id) if self.faults is not None else None,
            signer=self.signer,
            signer_subject=self.signer_subject,
        )
        return runner.run()
