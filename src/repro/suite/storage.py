"""Statistics storage with per-destination batching (§4.2.2).

The paper weighs single-measurement inserts (durable but slow) against
batched inserts (fast but a crash loses the buffer) and picks batching
at destination granularity: "We decided to insert all the measurements
after testing once all the paths for one destination.  In this way, a
loss of data can be negligible since one sample for each path would be
lost without unbalancing the number of samples for each path."

:class:`StatsRepository` implements exactly that: ``add`` buffers,
``flush`` commits the whole buffer with one ``insert_many``.  Optional
signing authenticates every document (§4.1.4).

Cache coupling: one ``insert_many`` batch bumps the collection's write
*epoch* exactly once (see :mod:`repro.docdb.cache`), so every cached
selection query — and the memoized best-path answers in
:class:`~repro.upin.controller.PathController` — is invalidated once
per measurement batch, not once per document.  Between campaign
flushes the epoch is stable and repeated user queries are served from
cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.crypto.rsa import RSAKeyPair
from repro.docdb.auth import sign_document
from repro.docdb.collection import Collection
from repro.errors import DataLossError


def stats_document_id(path_id: str, timestamp_ms: int) -> str:
    """The paper's measurement id: path id + timestamp (§4.2.1)."""
    return f"{path_id}_{timestamp_ms}"


class StatsRepository:
    """Buffered writer for the ``paths_stats`` collection."""

    def __init__(
        self,
        collection: Collection,
        *,
        signer: Optional[RSAKeyPair] = None,
        signer_subject: str = "",
        flush_hook: Optional[Callable[[List[Dict[str, Any]]], None]] = None,
    ) -> None:
        self.collection = collection
        self.signer = signer
        self.signer_subject = signer_subject
        #: Test seam: called with the buffer right before insertion —
        #: fault injection raises :class:`DataLossError` here.
        self.flush_hook = flush_hook
        self._buffer: List[Dict[str, Any]] = []
        self.flushed_documents = 0
        #: Cumulative losses over the repository's lifetime...
        self.lost_documents = 0
        #: ...and the loss of the *most recent* flush only.  Callers that
        #: account per batch (``CampaignReport.stats_lost``) must use this
        #: delta — adding the cumulative counter double-counts earlier
        #: losses on every subsequent crash.
        self.lost_last_flush = 0

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def epoch(self) -> int:
        """The backing collection's write epoch.

        Advances by exactly one per successful :meth:`flush` (the batch
        is a single ``insert_many``), which is the signal query caches
        and the controller's best-path memo key on.
        """
        return self.collection.epoch

    def add(self, doc: Dict[str, Any]) -> None:
        """Buffer one statistics document (signing it if configured)."""
        if self.signer is not None:
            doc = sign_document(doc, self.signer_subject, self.signer)
        self._buffer.append(doc)

    def flush(self) -> int:
        """Commit the buffer in one batch insert; returns count stored.

        On :class:`DataLossError` (crash between measurement and storage)
        the buffer is dropped — at most one sample per path of a single
        destination, the bounded loss the paper's design accepts.
        """
        self.lost_last_flush = 0
        if not self._buffer:
            return 0
        batch, self._buffer = self._buffer, []
        try:
            if self.flush_hook is not None:
                self.flush_hook(batch)
        except DataLossError:
            self.lost_documents += len(batch)
            self.lost_last_flush = len(batch)
            raise
        self.collection.insert_many(batch)
        self.flushed_documents += len(batch)
        return len(batch)

    def discard(self) -> int:
        """Drop the buffer without storing (count returned)."""
        n = len(self._buffer)
        self._buffer.clear()
        return n


def prune_stats(collection: Collection, *, before_ms: int) -> int:
    """Delete statistics older than ``before_ms``; returns count removed.

    Continuous monitoring (``repro.suite.scheduler``) grows the
    ``paths_stats`` collection without bound; deployments prune samples
    past their usefulness horizon.  Uses the ``timestamp_ms`` field every
    runner document carries.
    """
    result = collection.delete_many({"timestamp_ms": {"$lt": before_ms}})
    return result.deleted_count
