"""The paper's test-suite: collection, measurement, storage, selection feed.

This is the reproduction of the paper's core artifact (§4-§5): the
3-tier client that discovers paths to every available server, measures
latency/loss/bandwidth over each, and batch-stores statistics in the
document database for later path selection.

Components mirror the original scripts:

* ``test_suite.sh``  -> :mod:`repro.suite.cli`
* ``collect_paths.py`` -> :mod:`repro.suite.collect`
* ``run_tests.py``   -> :mod:`repro.suite.runner`
"""

from repro.suite.config import SuiteConfig
from repro.suite.collect import PathsCollector, CollectionReport
from repro.suite.storage import StatsRepository, stats_document_id
from repro.suite.runner import TestRunner, CampaignReport
from repro.suite.faults import FaultPlan, ServerOutage, DataLossFault
from repro.suite.parallel import ParallelCampaign

__all__ = [
    "SuiteConfig",
    "PathsCollector",
    "CollectionReport",
    "StatsRepository",
    "stats_document_id",
    "TestRunner",
    "CampaignReport",
    "FaultPlan",
    "ServerOutage",
    "DataLossFault",
    "ParallelCampaign",
]
