"""The measurement runner (the ``run_tests.py`` component, §5.3).

Three nested loops — iterations, destinations, paths — and three
measurements per path:

1. latency + loss: ``scion ping -c 30 --interval 0.1s --sequence ...``
2. bandwidth with 64-byte packets: ``scion-bwtestclient -cs 3,64,?,12Mbps``
3. bandwidth with MTU-sized packets: ``-cs 3,MTU,?,12Mbps``

plus the traversed-ISD set, all stored as one ``paths_stats`` document
per (path, timestamp), batch-inserted after each destination completes
(§4.2.2).  Failures are tolerated per the §4.1.2 families: unreachable
or misbehaving servers are retried then skipped, lost batches are
counted but never abort the campaign.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.apps.bwtester import BwtestApp
from repro.apps.ping import PingApp
from repro.crypto.rsa import RSAKeyPair
from repro.docdb.database import Database
from repro.errors import (
    DataLossError,
    MeasurementError,
    NoPathError,
)
from repro.scion.path import Path
from repro.scion.snet import ScionHost
from repro.suite import metrics as m
from repro.suite.collect import PathsCollector
from repro.suite.config import (
    PATHS_COLLECTION,
    STATS_COLLECTION,
    SuiteConfig,
)
from repro.suite.faults import DestinationFaults, FaultPlan
from repro.suite.retry import RetryExecutor, RetryPolicy
from repro.suite.storage import StatsRepository, stats_document_id
from repro.topology.isd_as import ISDAS
from repro.util.rng import derive_seed
from repro.util.timefmt import TimestampSource

#: Anything the runner can consult for fault injection: a whole plan
#: (serial campaigns) or one destination's deterministic view of a
#: shared plan (parallel campaigns).
FaultSource = Union[FaultPlan, DestinationFaults]


@dataclass
class CampaignReport:
    """Summary of one campaign run."""

    iterations: int = 0
    destinations_tested: int = 0
    paths_tested: int = 0
    stats_stored: int = 0
    stats_lost: int = 0
    measurement_errors: int = 0
    error_log: List[str] = field(default_factory=list)
    sim_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: Set when the whole campaign (not one measurement) died — parallel
    #: mode synthesizes such a report for an isolated worker crash.
    failure: Optional[str] = None
    #: Snapshot of the runner's :class:`~repro.suite.metrics.MetricsRegistry`.
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.failure is not None

    @property
    def retries(self) -> int:
        return int(m.counter_value(self.metrics, m.RETRIES))

    @property
    def backoff_seconds(self) -> float:
        hist = m.histogram_stats(self.metrics, m.BACKOFF_S)
        return float(hist["total"]) if hist else 0.0

    def record_error(self, message: str, *, cap: int = 200) -> None:
        self.measurement_errors += 1
        if len(self.error_log) < cap:
            self.error_log.append(message)

    def format_text(self) -> str:
        """Human summary, shaped like the suite CLI's closing line."""
        lines = [
            f"campaign: {self.stats_stored} stats stored over "
            f"{self.iterations} iteration(s)",
            f"  path tests: {self.paths_tested}  "
            f"lost: {self.stats_lost}  errors: {self.measurement_errors}",
            f"  simulated time: {self.sim_seconds:.1f} s",
        ]
        if self.failure is not None:
            lines.append(f"  FAILED: {self.failure}")
        metrics_block = m.format_metrics(self.metrics)
        if metrics_block:
            lines.append(metrics_block)
        if self.error_log:
            lines.append("  first errors:")
            lines.extend(f"    - {msg}" for msg in self.error_log[:5])
        return "\n".join(lines)


class TestRunner:
    """Executes measurement campaigns against the path database."""

    __test__ = False  # "Test" prefix is the paper's naming, not pytest's

    def __init__(
        self,
        host: ScionHost,
        db: Database,
        config: SuiteConfig,
        *,
        faults: Optional[FaultSource] = None,
        signer: Optional[RSAKeyPair] = None,
        signer_subject: str = "",
        metrics: Optional[m.MetricsRegistry] = None,
    ) -> None:
        self.host = host
        self.db = db
        self.config = config
        self.faults = faults
        self.metrics = metrics if metrics is not None else m.MetricsRegistry()
        self.ping_app = PingApp(host)
        self.bw_app = BwtestApp(host)
        self.collector = PathsCollector(host, db, config)
        stats_coll = db[STATS_COLLECTION]
        stats_coll.create_index("path_id")
        stats_coll.create_index("server_id")
        # The best-path hot path filters on (server_id, timestamp_ms >= t):
        # a compound index answers it with an equality prefix + range on
        # the trailing field (see docs/DATABASE.md, "Compound indexes").
        stats_coll.create_index([("server_id", 1), ("timestamp_ms", 1)])
        self.stats = StatsRepository(
            stats_coll,
            signer=signer,
            signer_subject=signer_subject,
            flush_hook=faults.flush_hook if faults is not None else None,
        )
        self._timestamps = TimestampSource(now_ms=lambda: host.clock.now_ms)
        # Backoff jitter draws come from a stream keyed off the host's
        # network seed, so the retry schedule is reproducible and — in
        # parallel mode, where every destination gets its own seeded
        # host — independent of worker scheduling.
        self._retry = RetryExecutor(
            RetryPolicy.from_config(config),
            host.clock,
            seed=derive_seed(host.network.config.seed, "suite:retry"),
            metrics=self.metrics,
        )

    # -- campaign --------------------------------------------------------------------

    def run(self, iterations: Optional[int] = None) -> CampaignReport:
        """Run the full 3-nested-loop campaign."""
        iterations = self.config.iterations if iterations is None else iterations
        report = CampaignReport()
        start_s = self.host.clock.now_s
        start_wall = time.perf_counter()
        destinations = self.collector.destinations()
        for iteration in range(iterations):
            report.iterations = iteration + 1
            for server in destinations:
                self._run_destination(iteration, server, report)
        report.sim_seconds = self.host.clock.now_s - start_s
        report.wall_seconds = time.perf_counter() - start_wall
        # Requested work, not loop-progress: ``report.iterations`` is only
        # written inside the loop, so deriving the count from it reported
        # stale numbers for 0-iteration campaigns.
        report.destinations_tested = len(destinations) * iterations
        # Fold the host's data-plane counters (batch probes, sampler
        # cache, ledger prunes) into the campaign snapshot.  Both sides
        # are deterministic per (world, seed, campaign) and the merge is
        # commutative, so parallel per-destination reports stay
        # byte-identical across worker counts.
        report.metrics = m.merge_snapshots(
            [self.metrics.snapshot(), m.network_stats_snapshot(self.host.network)]
        )
        return report

    def _run_destination(
        self, iteration: int, server: Dict[str, Any], report: CampaignReport
    ) -> None:
        server_id = int(server["_id"])
        isd_as = str(server["isd_as"])
        ip = str(server["ip"])
        start_sim = self.host.clock.now_s
        start_wall = time.perf_counter()
        if self.faults is not None:
            self.faults.apply_server_health(
                self.host.network, iteration, server_id, isd_as, ip
            )
        path_docs = self.db[PATHS_COLLECTION].find(
            {"server_id": server_id}, sort=[("path_index", 1)]
        )
        try:
            for path_doc in path_docs:
                try:
                    doc = self.measure_path(path_doc, server)
                except MeasurementError as exc:
                    report.record_error(f"{path_doc['_id']}: {exc}")
                    if not self.config.continue_on_error:
                        raise
                    continue
                except NoPathError as exc:
                    report.record_error(f"{path_doc['_id']}: {exc}")
                    continue
                self.stats.add(doc)
                report.paths_tested += 1
            # Batch storage per destination (§4.2.2).
            try:
                stored = self.stats.flush()
                report.stats_stored += stored
                if stored:
                    self.metrics.inc(m.FLUSHES)
                    self.metrics.observe(m.BATCH_SIZE, stored)
            except DataLossError as exc:
                # Per-flush delta, NOT the repository's cumulative counter:
                # the cumulative value re-adds every earlier lost batch.
                lost = self.stats.lost_last_flush
                report.stats_lost += lost
                self.metrics.inc(m.FLUSH_FAILURES)
                self.metrics.inc(m.DOCS_LOST, lost)
                report.record_error(f"destination {server_id}: {exc}")
        finally:
            self.metrics.observe(
                m.DEST_SIM_S, self.host.clock.now_s - start_sim
            )
            self.metrics.observe(
                m.DEST_WALL_S, time.perf_counter() - start_wall
            )

    # -- one path -----------------------------------------------------------------------

    def measure_path(
        self, path_doc: Dict[str, Any], server: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Run the three measurements for one stored path."""
        address = str(server["address"])
        dst_ia = ISDAS.parse(str(server["isd_as"]))
        path = self._resolve(path_doc, dst_ia)

        stats = self._with_retries(
            lambda: self.ping_app.run(
                address,
                count=self.config.ping_count,
                interval=self.config.ping_interval,
                path=path,
            ).stats
        )
        bw_small = self._with_retries(
            lambda: self.bw_app.run(
                address, cs=self.config.bw_params(self.config.bw_small_bytes), path=path
            )
        )
        bw_mtu = self._with_retries(
            lambda: self.bw_app.run(address, cs=self.config.bw_params("MTU"), path=path)
        )

        timestamp = self._timestamps.next()
        avg = stats.avg_ms
        doc: Dict[str, Any] = {
            "_id": stats_document_id(str(path_doc["_id"]), timestamp),
            "path_id": str(path_doc["_id"]),
            "server_id": int(server["_id"]),
            "timestamp_ms": timestamp,
            "hop_count": int(path_doc["hop_count"]),
            "isds": list(path_doc["isds"]),
            "avg_latency_ms": None if math.isnan(avg) else avg,
            "min_latency_ms": None if math.isnan(stats.min_ms) else stats.min_ms,
            "max_latency_ms": None if math.isnan(stats.max_ms) else stats.max_ms,
            "mdev_latency_ms": stats.mdev_ms if stats.rtts_ms else None,
            "loss_pct": stats.loss_pct,
            "target_mbps": bw_small.cs.params.target.mbps,
            "bw_up_small_mbps": bw_small.cs.achieved.mbps,
            "bw_down_small_mbps": bw_small.sc.achieved.mbps,
            "bw_up_mtu_mbps": bw_mtu.cs.achieved.mbps,
            "bw_down_mtu_mbps": bw_mtu.sc.achieved.mbps,
        }
        return doc

    def _resolve(self, path_doc: Dict[str, Any], dst_ia: ISDAS) -> Path:
        path = self.host.daemon.path_by_sequence(dst_ia, str(path_doc["sequence"]))
        if path is None:
            raise NoPathError(
                f"stored path {path_doc['_id']} no longer combinable to {dst_ia}"
            )
        return path

    def _with_retries(self, action):
        """Transient failures retry with deterministic exponential backoff.

        Delegates to :class:`~repro.suite.retry.RetryExecutor`: backoff
        advances the simulated clock only, permanent
        :class:`~repro.errors.NoPathError` s are never retried.
        """
        return self._retry.call(action)
