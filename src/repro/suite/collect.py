"""Path collection (the ``collect_paths.py`` component, §5.2).

For every destination in ``availableServers`` the collector runs the
showpaths equivalent (``--extended -m 40``), retains only paths whose
hop count is at most the minimum plus one ("conserving time by excluding
paths that are overly lengthy"), pre-processes the output into path
documents, inserts them, and deletes paths that are no longer available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.showpaths import ShowpathsApp
from repro.docdb.database import Database
from repro.errors import MeasurementError, NoPathError, ReproError
from repro.scion.path import Path
from repro.scion.snet import ScionHost
from repro.suite.config import (
    PATHS_COLLECTION,
    SERVERS_COLLECTION,
    SuiteConfig,
)


def path_document_id(server_id: int, path_index: int) -> str:
    """The paper's compound id: path 15 of destination 2 -> ``"2_15"``."""
    return f"{server_id}_{path_index}"


def path_document(
    server_id: int, path_index: int, path: Path, *, latency_hint_ms: Optional[float]
) -> Dict[str, object]:
    """Pre-process one showpaths entry into a ``paths`` document."""
    return {
        "_id": path_document_id(server_id, path_index),
        "server_id": server_id,
        "path_index": path_index,
        "dst_isd_as": str(path.dst),
        "sequence": path.sequence(),
        "hops_display": path.hops_display(),
        "hop_count": path.hop_count,
        "mtu": path.mtu,
        "isds": sorted(path.isd_set()),
        "ases": [str(ia) for ia in path.ases()],
        "fingerprint": path.fingerprint(),
        "latency_hint_ms": latency_hint_ms,
    }


@dataclass
class CollectionReport:
    """Outcome summary of one collection pass."""

    destinations: int = 0
    paths_stored: int = 0
    paths_deleted: int = 0
    failures: Dict[int, str] = field(default_factory=dict)


class PathsCollector:
    """Populates the ``paths`` collection from live path lookups."""

    def __init__(self, host: ScionHost, db: Database, config: SuiteConfig) -> None:
        self.host = host
        self.db = db
        self.config = config
        self._showpaths = ShowpathsApp(host)

    def destinations(self) -> List[Dict[str, object]]:
        """The server documents this campaign will test, in id order."""
        servers = self.db[SERVERS_COLLECTION].find(sort=[("_id", 1)])
        if self.config.some_only:
            servers = servers[:1]
        elif self.config.destination_ids is not None:
            wanted = set(self.config.destination_ids)
            servers = [s for s in servers if s["_id"] in wanted]
        return servers

    def collect(self) -> CollectionReport:
        """Discover and store paths for every destination."""
        report = CollectionReport()
        paths_coll = self.db[PATHS_COLLECTION]
        paths_coll.create_index("server_id")
        for server in self.destinations():
            server_id = int(server["_id"])
            report.destinations += 1
            try:
                kept = self.collect_one(server_id, str(server["isd_as"]))
            except ReproError as exc:
                report.failures[server_id] = str(exc)
                if not self.config.continue_on_error:
                    raise
                continue
            report.paths_stored += len(kept)
            # Delete paths that are no longer available (§5.2).
            fresh_ids = {d["_id"] for d in kept}
            stale = paths_coll.find({"server_id": server_id})
            victims = [d["_id"] for d in stale if d["_id"] not in fresh_ids]
            for victim in victims:
                paths_coll.delete_one({"_id": victim})
            report.paths_deleted += len(victims)
        return report

    def collect_one(self, server_id: int, isd_as: str) -> List[Dict[str, object]]:
        """Collect, filter and upsert paths for one destination."""
        result = self._showpaths.run(
            isd_as,
            max_paths=self.config.showpaths_max,
            extended=True,
            refresh=True,
        )
        if not result.entries:
            raise NoPathError(f"no paths advertised for {isd_as}")
        min_hops = min(e.path.hop_count for e in result.entries)
        kept_docs: List[Dict[str, object]] = []
        paths_coll = self.db[PATHS_COLLECTION]
        index = 0
        for entry in result.entries:
            if entry.path.hop_count > min_hops + self.config.hop_slack:
                continue
            doc = path_document(
                server_id, index, entry.path, latency_hint_ms=entry.latency_hint_ms
            )
            paths_coll.replace_one({"_id": doc["_id"]}, doc, upsert=True)
            kept_docs.append(doc)
            index += 1
        return kept_docs
