"""Retry policy: exponential backoff with deterministic jitter (§4.1.2).

The paper's fault-tolerance requirement distinguishes failure families:
*server failure* and *error messages* are transient — the destination
may answer on the next attempt — while a path that no longer combines
(:class:`~repro.errors.NoPathError`) is permanent and retrying it only
wastes campaign time.  The seed's retry loop hammered the destination
immediately; real measurement fleets back off exponentially so a
struggling server is not made worse by its own monitors.

Two properties matter for a *simulated* fleet:

* **Backoff advances only the simulated clock.**  ``clock.advance`` is
  called with the computed delay; no wall-clock sleeping ever happens,
  so campaigns with thousands of retries still run in milliseconds.
* **Jitter is deterministic.**  Each executor owns a PCG64 stream
  seeded via :func:`repro.util.rng.derive_seed`, so the exact backoff
  schedule is a pure function of ``(seed, draw order)`` — never of
  thread scheduling.  Two runs of the same campaign produce identical
  simulated timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, TYPE_CHECKING

import numpy as np

from repro.errors import MeasurementError, NoPathError, ValidationError
from repro.netsim.clock import SimClock
from repro.suite import metrics as m

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.suite.config import SuiteConfig


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff shape: ``base * factor**retry`` capped, jittered.

    ``jitter`` is the relative half-width of the uniform perturbation:
    a computed delay ``d`` becomes ``d * (1 + jitter * u)`` with
    ``u ~ U[-1, 1)``.  ``jitter=0`` disables it.
    """

    max_retries: int = 1
    base_backoff_s: float = 0.5
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError("max_retries must be >= 0")
        if self.base_backoff_s < 0:
            raise ValidationError("base_backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValidationError("backoff_factor must be >= 1")
        if self.max_backoff_s < 0:
            raise ValidationError("max_backoff_s must be >= 0")
        if not (0.0 <= self.jitter < 1.0):
            raise ValidationError("jitter must be in [0, 1)")

    @classmethod
    def from_config(cls, config: "SuiteConfig") -> "RetryPolicy":
        return cls(
            max_retries=config.max_retries,
            base_backoff_s=config.retry_backoff_s,
            backoff_factor=config.retry_backoff_factor,
            max_backoff_s=config.retry_backoff_max_s,
            jitter=config.retry_jitter,
        )

    def backoff_s(self, retry_index: int, u: float = 0.5) -> float:
        """Delay before retry ``retry_index`` (0-based); ``u`` in [0, 1)."""
        delay = min(
            self.base_backoff_s * self.backoff_factor ** retry_index,
            self.max_backoff_s,
        )
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * float(u) - 1.0)
        return delay


class RetryExecutor:
    """Runs actions under a :class:`RetryPolicy` on a simulated clock.

    Transient :class:`MeasurementError` s are retried with backoff;
    permanent :class:`NoPathError` s (and any non-measurement error)
    propagate immediately.  Counters land in the optional metrics
    registry under ``retries`` / ``retry_exhausted`` / ``backoff_s``.
    """

    def __init__(
        self,
        policy: RetryPolicy,
        clock: SimClock,
        *,
        seed: int = 0,
        metrics: Optional[m.MetricsRegistry] = None,
    ) -> None:
        self.policy = policy
        self.clock = clock
        self.metrics = metrics
        self._rng = np.random.default_rng(seed)

    def call(self, action: Callable[[], Any], *, label: str = "") -> Any:
        """Execute ``action``, retrying transient failures with backoff."""
        last: Optional[MeasurementError] = None
        for retry_index in range(self.policy.max_retries + 1):
            if retry_index > 0:
                assert last is not None
                delay = self.policy.backoff_s(
                    retry_index - 1, float(self._rng.random())
                )
                if self.metrics is not None:
                    self.metrics.inc(m.RETRIES)
                    self.metrics.observe(m.BACKOFF_S, delay)
                # Simulated time only: no wall-clock sleep, ever.
                self.clock.advance(delay)
            try:
                return action()
            except NoPathError:
                # Permanent: the path no longer combines; retrying is futile.
                raise
            except MeasurementError as exc:
                last = exc
        assert last is not None
        if self.metrics is not None:
            self.metrics.inc(m.RETRY_EXHAUSTED)
        raise last
