"""Fault injection and tolerance plans (§4.1.2).

The paper names three failure families the suite must survive: *data
loss*, *server failure* (no answer) and *error messages* (bad answer).
:class:`FaultPlan` schedules all three against a campaign:

* :class:`ServerOutage` marks a destination DOWN or ERROR for a range
  of campaign iterations,
* :class:`DataLossFault` makes a fraction of batch flushes crash before
  the insert (exercising the §4.2.2 bounded-loss design),
* :class:`CrashPlan` kills the *storage writer itself* at a scheduled
  point in the write-ahead log — after the Nth append (``kill -9``
  mid-batch), mid-record (a torn write), or right after a segment
  rotation before any checkpoint.  ``tools/crash_fuzz.py`` drives
  seeded random crash plans in subprocesses and asserts that recovery
  restores exactly the committed prefix.

Parallel campaigns share one plan across worker threads, which imposes
two extra obligations:

* the ``injected_*`` counters are guarded by a lock, and
* the data-loss RNG must not be a single sequential stream (draw order
  would then depend on thread scheduling).  :meth:`FaultPlan.scoped`
  returns a per-destination view whose crash draws come from a stream
  derived via :func:`~repro.util.rng.derive_seed` over the destination
  id, so the set of lost batches is a pure function of the seed — the
  same for 1 worker or 8.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import DataLossError, ValidationError
from repro.netsim.network import NetworkSim, ServerHealth
from repro.topology.isd_as import ISDAS
from repro.util.rng import derive_seed


class SimulatedCrash(BaseException):
    """In-process stand-in for ``kill -9`` at a WAL crash point.

    Deliberately a :class:`BaseException`: production code catching
    ``Exception`` must not be able to "survive" a simulated machine
    crash.  Tests catch it explicitly, discard the in-memory client
    (the process's memory is considered lost) and recover from disk.
    """


@dataclass
class CrashPlan:
    """Kill the storage writer at a scheduled WAL crash point.

    Exactly one trigger is normally set:

    ``at_append``       crash right *after* the Nth record is fully on
                        the OS side of the file buffer (the record is
                        committed; everything after it is lost);
    ``torn_at_append``  crash *mid-write* of the Nth record, leaving
                        ``torn_fraction`` of its bytes on disk (the
                        record is torn; recovery rolls it back);
    ``at_rotation``     crash immediately after the Kth segment
                        rotation, before the triggering record is
                        written (exercises multi-segment recovery with
                        no checkpoint past the rotation).

    ``mode`` selects the crash mechanism: ``"raise"`` throws
    :class:`SimulatedCrash` (in-process tests), ``"exit"`` calls
    ``os._exit(exit_code)`` — a real no-cleanup process death for the
    subprocess crash-fuzz harness.  Append counting is 1-based and
    cumulative across the writer's lifetime (LSNs, effectively).

    Install with ``plan.install(client.wal)`` or by assigning
    ``wal.crash_hook = plan.wal_hook``.
    """

    at_append: Optional[int] = None
    torn_at_append: Optional[int] = None
    torn_fraction: float = 0.5
    at_rotation: Optional[int] = None
    mode: str = "raise"
    exit_code: int = 137  # what `kill -9` leaves in $?

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "exit"):
            raise ValidationError(f"bad crash mode: {self.mode!r}")
        if not (0.0 <= self.torn_fraction < 1.0):
            raise ValidationError(
                f"torn_fraction must be in [0, 1): {self.torn_fraction}"
            )
        triggers = [self.at_append, self.torn_at_append, self.at_rotation]
        if all(t is None for t in triggers):
            raise ValidationError("CrashPlan needs at least one trigger")
        if any(t is not None and t < 1 for t in triggers):
            raise ValidationError("crash triggers are 1-based")
        self.appends_seen = 0
        self.rotations_seen = 0
        self.crashed = False

    # -- the WAL hook --------------------------------------------------------

    def install(self, wal: Any) -> "CrashPlan":
        """Attach this plan to a :class:`~repro.docdb.wal.WalWriter`."""
        wal.crash_hook = self.wal_hook
        return self

    def wal_hook(self, event: str, writer: Any, lsn: int, data: bytes) -> None:
        """``WalWriter.crash_hook`` entry point (see repro.docdb.wal)."""
        if event == "post_rotate":
            self.rotations_seen += 1
            if self.at_rotation is not None and self.rotations_seen == self.at_rotation:
                self._crash(f"crash after rotation #{self.rotations_seen}")
        elif event == "pre_append":
            if (
                self.torn_at_append is not None
                and self.appends_seen + 1 == self.torn_at_append
            ):
                # Write a strict prefix of the record, push it to the OS
                # (kill -9 does not lose OS-buffered bytes), then die.
                cut = max(1, int(len(data) * self.torn_fraction))
                cut = min(cut, len(data) - 1)
                writer._fh.write(data[:cut])
                writer._fh.flush()
                self._crash(
                    f"torn write at lsn {lsn}: {cut}/{len(data)} bytes"
                )
        elif event == "post_append":
            self.appends_seen += 1
            if self.at_append is not None and self.appends_seen == self.at_append:
                self._crash(f"kill -9 after append #{self.appends_seen} (lsn {lsn})")

    def _crash(self, reason: str) -> None:
        self.crashed = True
        if self.mode == "exit":
            import os

            os._exit(self.exit_code)
        raise SimulatedCrash(reason)


@dataclass(frozen=True)
class ServerOutage:
    """Destination ``server_id`` is unhealthy for iterations [start, end)."""

    server_id: int
    start_iteration: int
    end_iteration: int
    health: ServerHealth = ServerHealth.DOWN

    def __post_init__(self) -> None:
        if self.end_iteration <= self.start_iteration:
            raise ValidationError("outage must span at least one iteration")

    def active(self, iteration: int) -> bool:
        return self.start_iteration <= iteration < self.end_iteration


@dataclass(frozen=True)
class DataLossFault:
    """Each flush independently crashes with ``probability``."""

    probability: float
    seed: int = 13

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ValidationError(f"bad probability: {self.probability}")


class FaultPlan:
    """A schedule of faults the runner consults during a campaign.

    Thread-safe: one plan may be shared by every worker of a
    :class:`~repro.suite.parallel.ParallelCampaign`.
    """

    def __init__(
        self,
        outages: Sequence[ServerOutage] = (),
        data_loss: Optional[DataLossFault] = None,
    ) -> None:
        self.outages = list(outages)
        self.data_loss = data_loss
        self._lock = threading.Lock()
        self._rng = (
            np.random.default_rng(data_loss.seed) if data_loss is not None else None
        )
        self.injected_outages = 0
        self.injected_losses = 0

    # -- shared counters (thread-safe) --------------------------------------------

    def record_outage(self) -> None:
        with self._lock:
            self.injected_outages += 1

    def record_loss(self) -> None:
        with self._lock:
            self.injected_losses += 1

    # -- server health ------------------------------------------------------------

    def outage_health(self, iteration: int, server_id: int) -> Optional[ServerHealth]:
        """The scheduled health override, or None when the server is UP."""
        for outage in self.outages:
            if outage.server_id == server_id and outage.active(iteration):
                return outage.health
        return None

    def apply_server_health(
        self,
        network: NetworkSim,
        iteration: int,
        server_id: int,
        isd_as: str,
        ip: str,
    ) -> None:
        """Set the destination's health for this iteration."""
        health = self.outage_health(iteration, server_id)
        if health is not None:
            self.record_outage()
        network.servers.set_health(
            ISDAS.parse(isd_as), ip, health if health is not None else ServerHealth.UP
        )

    # -- data loss -----------------------------------------------------------------

    def _loss_draw(self) -> float:
        assert self._rng is not None
        with self._lock:
            return float(self._rng.random())

    def flush_hook(self, batch: List[Dict[str, Any]]) -> None:
        """Install as :attr:`StatsRepository.flush_hook`."""
        if self._rng is None or self.data_loss is None:
            return
        if self._loss_draw() < self.data_loss.probability:
            self.record_loss()
            raise DataLossError(
                f"simulated crash before storing {len(batch)} documents"
            )

    # -- per-destination views ------------------------------------------------------

    def scoped(self, server_id: int) -> "DestinationFaults":
        """A view of this plan for one destination worker.

        Shares the outage schedule and the (locked) ``injected_*``
        counters, but owns a deterministic per-destination loss stream so
        parallel draws are scheduling-independent.
        """
        return DestinationFaults(self, server_id)


class DestinationFaults:
    """One destination's deterministic slice of a shared :class:`FaultPlan`.

    Duck-types the plan interface the runner uses
    (:meth:`apply_server_health`, :meth:`flush_hook`); counters route to
    the parent plan under its lock.
    """

    def __init__(self, plan: FaultPlan, server_id: int) -> None:
        self.plan = plan
        self.server_id = server_id
        self._rng = (
            np.random.default_rng(
                derive_seed(plan.data_loss.seed, f"dest:{server_id}")
            )
            if plan.data_loss is not None
            else None
        )

    @property
    def data_loss(self) -> Optional[DataLossFault]:
        return self.plan.data_loss

    def apply_server_health(
        self,
        network: NetworkSim,
        iteration: int,
        server_id: int,
        isd_as: str,
        ip: str,
    ) -> None:
        self.plan.apply_server_health(network, iteration, server_id, isd_as, ip)

    def flush_hook(self, batch: List[Dict[str, Any]]) -> None:
        if self._rng is None or self.plan.data_loss is None:
            return
        if float(self._rng.random()) < self.plan.data_loss.probability:
            self.plan.record_loss()
            raise DataLossError(
                f"simulated crash before storing {len(batch)} documents"
            )
