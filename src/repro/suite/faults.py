"""Fault injection and tolerance plans (§4.1.2).

The paper names three failure families the suite must survive: *data
loss*, *server failure* (no answer) and *error messages* (bad answer).
:class:`FaultPlan` schedules all three against a campaign:

* :class:`ServerOutage` marks a destination DOWN or ERROR for a range
  of campaign iterations,
* :class:`DataLossFault` makes a fraction of batch flushes crash before
  the insert (exercising the §4.2.2 bounded-loss design).

Parallel campaigns share one plan across worker threads, which imposes
two extra obligations:

* the ``injected_*`` counters are guarded by a lock, and
* the data-loss RNG must not be a single sequential stream (draw order
  would then depend on thread scheduling).  :meth:`FaultPlan.scoped`
  returns a per-destination view whose crash draws come from a stream
  derived via :func:`~repro.util.rng.derive_seed` over the destination
  id, so the set of lost batches is a pure function of the seed — the
  same for 1 worker or 8.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import DataLossError, ValidationError
from repro.netsim.network import NetworkSim, ServerHealth
from repro.topology.isd_as import ISDAS
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class ServerOutage:
    """Destination ``server_id`` is unhealthy for iterations [start, end)."""

    server_id: int
    start_iteration: int
    end_iteration: int
    health: ServerHealth = ServerHealth.DOWN

    def __post_init__(self) -> None:
        if self.end_iteration <= self.start_iteration:
            raise ValidationError("outage must span at least one iteration")

    def active(self, iteration: int) -> bool:
        return self.start_iteration <= iteration < self.end_iteration


@dataclass(frozen=True)
class DataLossFault:
    """Each flush independently crashes with ``probability``."""

    probability: float
    seed: int = 13

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ValidationError(f"bad probability: {self.probability}")


class FaultPlan:
    """A schedule of faults the runner consults during a campaign.

    Thread-safe: one plan may be shared by every worker of a
    :class:`~repro.suite.parallel.ParallelCampaign`.
    """

    def __init__(
        self,
        outages: Sequence[ServerOutage] = (),
        data_loss: Optional[DataLossFault] = None,
    ) -> None:
        self.outages = list(outages)
        self.data_loss = data_loss
        self._lock = threading.Lock()
        self._rng = (
            np.random.default_rng(data_loss.seed) if data_loss is not None else None
        )
        self.injected_outages = 0
        self.injected_losses = 0

    # -- shared counters (thread-safe) --------------------------------------------

    def record_outage(self) -> None:
        with self._lock:
            self.injected_outages += 1

    def record_loss(self) -> None:
        with self._lock:
            self.injected_losses += 1

    # -- server health ------------------------------------------------------------

    def outage_health(self, iteration: int, server_id: int) -> Optional[ServerHealth]:
        """The scheduled health override, or None when the server is UP."""
        for outage in self.outages:
            if outage.server_id == server_id and outage.active(iteration):
                return outage.health
        return None

    def apply_server_health(
        self,
        network: NetworkSim,
        iteration: int,
        server_id: int,
        isd_as: str,
        ip: str,
    ) -> None:
        """Set the destination's health for this iteration."""
        health = self.outage_health(iteration, server_id)
        if health is not None:
            self.record_outage()
        network.servers.set_health(
            ISDAS.parse(isd_as), ip, health if health is not None else ServerHealth.UP
        )

    # -- data loss -----------------------------------------------------------------

    def _loss_draw(self) -> float:
        assert self._rng is not None
        with self._lock:
            return float(self._rng.random())

    def flush_hook(self, batch: List[Dict[str, Any]]) -> None:
        """Install as :attr:`StatsRepository.flush_hook`."""
        if self._rng is None or self.data_loss is None:
            return
        if self._loss_draw() < self.data_loss.probability:
            self.record_loss()
            raise DataLossError(
                f"simulated crash before storing {len(batch)} documents"
            )

    # -- per-destination views ------------------------------------------------------

    def scoped(self, server_id: int) -> "DestinationFaults":
        """A view of this plan for one destination worker.

        Shares the outage schedule and the (locked) ``injected_*``
        counters, but owns a deterministic per-destination loss stream so
        parallel draws are scheduling-independent.
        """
        return DestinationFaults(self, server_id)


class DestinationFaults:
    """One destination's deterministic slice of a shared :class:`FaultPlan`.

    Duck-types the plan interface the runner uses
    (:meth:`apply_server_health`, :meth:`flush_hook`); counters route to
    the parent plan under its lock.
    """

    def __init__(self, plan: FaultPlan, server_id: int) -> None:
        self.plan = plan
        self.server_id = server_id
        self._rng = (
            np.random.default_rng(
                derive_seed(plan.data_loss.seed, f"dest:{server_id}")
            )
            if plan.data_loss is not None
            else None
        )

    @property
    def data_loss(self) -> Optional[DataLossFault]:
        return self.plan.data_loss

    def apply_server_health(
        self,
        network: NetworkSim,
        iteration: int,
        server_id: int,
        isd_as: str,
        ip: str,
    ) -> None:
        self.plan.apply_server_health(network, iteration, server_id, isd_as, ip)

    def flush_hook(self, batch: List[Dict[str, Any]]) -> None:
        if self._rng is None or self.plan.data_loss is None:
            return
        if float(self._rng.random()) < self.plan.data_loss.probability:
            self.plan.record_loss()
            raise DataLossError(
                f"simulated crash before storing {len(batch)} documents"
            )
