"""Fault injection and tolerance plans (§4.1.2).

The paper names three failure families the suite must survive: *data
loss*, *server failure* (no answer) and *error messages* (bad answer).
:class:`FaultPlan` schedules all three against a campaign:

* :class:`ServerOutage` marks a destination DOWN or ERROR for a range
  of campaign iterations,
* :class:`DataLossFault` makes a fraction of batch flushes crash before
  the insert (exercising the §4.2.2 bounded-loss design).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import DataLossError, ValidationError
from repro.netsim.network import NetworkSim, ServerHealth
from repro.topology.isd_as import ISDAS


@dataclass(frozen=True)
class ServerOutage:
    """Destination ``server_id`` is unhealthy for iterations [start, end)."""

    server_id: int
    start_iteration: int
    end_iteration: int
    health: ServerHealth = ServerHealth.DOWN

    def __post_init__(self) -> None:
        if self.end_iteration <= self.start_iteration:
            raise ValidationError("outage must span at least one iteration")

    def active(self, iteration: int) -> bool:
        return self.start_iteration <= iteration < self.end_iteration


@dataclass(frozen=True)
class DataLossFault:
    """Each flush independently crashes with ``probability``."""

    probability: float
    seed: int = 13

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ValidationError(f"bad probability: {self.probability}")


class FaultPlan:
    """A schedule of faults the runner consults during a campaign."""

    def __init__(
        self,
        outages: Sequence[ServerOutage] = (),
        data_loss: Optional[DataLossFault] = None,
    ) -> None:
        self.outages = list(outages)
        self.data_loss = data_loss
        self._rng = (
            np.random.default_rng(data_loss.seed) if data_loss is not None else None
        )
        self.injected_outages = 0
        self.injected_losses = 0

    # -- server health ------------------------------------------------------------

    def apply_server_health(
        self,
        network: NetworkSim,
        iteration: int,
        server_id: int,
        isd_as: str,
        ip: str,
    ) -> None:
        """Set the destination's health for this iteration."""
        health = ServerHealth.UP
        for outage in self.outages:
            if outage.server_id == server_id and outage.active(iteration):
                health = outage.health
                self.injected_outages += 1
                break
        network.servers.set_health(ISDAS.parse(isd_as), ip, health)

    # -- data loss -----------------------------------------------------------------

    def flush_hook(self, batch: List[Dict[str, Any]]) -> None:
        """Install as :attr:`StatsRepository.flush_hook`."""
        if self._rng is None or self.data_loss is None:
            return
        if float(self._rng.random()) < self.data_loss.probability:
            self.injected_losses += 1
            raise DataLossError(
                f"simulated crash before storing {len(batch)} documents"
            )
