"""Lightweight campaign telemetry: counters and histograms.

Production measurement fleets (cf. the SCIONLab coordinator, which must
tolerate flaky user ASes) live and die by their retry/backoff/batch
telemetry.  This module gives the test-suite the same discipline at
simulation scale:

* :class:`MetricsRegistry` — a thread-safe named-instrument registry.
  Counters accumulate monotonically (``retries``, ``flush_failures``);
  histograms track ``count/total/min/max`` (``backoff_s``,
  ``batch_size``, ``destination_wall_s``, ``destination_sim_s``).
* ``snapshot()`` renders the registry as a plain, JSON-friendly dict so
  :class:`~repro.suite.runner.CampaignReport` can carry it across thread
  boundaries by value.
* :func:`merge_snapshots` folds per-destination snapshots into a
  campaign-wide view.  The fold is commutative and associative, so the
  merged numbers are independent of worker scheduling.

Only the ``*_wall_s`` instruments observe the host's real clock; every
other metric is a pure function of ``(world, seed, campaign)`` and is
therefore byte-stable across runs.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional

#: Snapshot schema version (bumped if the dict layout ever changes).
SNAPSHOT_VERSION = 1

# Canonical instrument names used by the suite.
RETRIES = "retries"
RETRY_EXHAUSTED = "retry_exhausted"
FLUSHES = "flushes"
FLUSH_FAILURES = "flush_failures"
DOCS_LOST = "docs_lost"
BACKOFF_S = "backoff_s"
BATCH_SIZE = "batch_size"
DEST_WALL_S = "destination_wall_s"
DEST_SIM_S = "destination_sim_s"

# Flow-health monitor counters (recorded by ``repro.monitor.loop`` into
# its own registry and folded into the campaign view the same way the
# planner counters are — see docs/MONITOR.md).
MON_PROBES = "monitor_probes_sent"
MON_SAMPLES = "monitor_samples"
MON_BREACHES = "monitor_breaches"
MON_TRANSITIONS = "monitor_transitions"
MON_FLAPS_SUPPRESSED = "monitor_flaps_suppressed"
MON_FAILOVERS = "monitor_failovers"
MON_FAILOVERS_FAILED = "monitor_failovers_failed"
MON_REVOCATIONS = "monitor_revocations"
MON_MTTR_S = "monitor_time_to_repair_s"
MON_ROUND_WALL_S = "monitor_round_wall_s"

# Durability / write-ahead-log counters (folded from
# ``DocDBClient.wal_stats()`` by :func:`wal_stats_snapshot`; zero/absent
# for volatile clients).  See docs/STORAGE.md.
WAL_APPENDS = "wal_appends"
WAL_BYTES = "wal_bytes_written"
WAL_FSYNCS = "wal_fsyncs"
WAL_ROTATIONS = "wal_segment_rotations"
WAL_SEGMENTS = "wal_segments"
WAL_CHECKPOINTS = "wal_checkpoints"
WAL_SEGMENTS_REMOVED = "wal_segments_removed"
WAL_LAST_LSN = "wal_last_lsn"
WAL_CHECKPOINT_LSN = "wal_checkpoint_lsn"
WAL_RECORDS_REPLAYED = "wal_records_replayed"
WAL_TORN_BYTES = "wal_torn_bytes_truncated"

#: ``DocDBClient.wal_stats()`` key -> canonical instrument name.
_WAL_STAT_NAMES = {
    "appends": WAL_APPENDS,
    "bytes_written": WAL_BYTES,
    "fsyncs": WAL_FSYNCS,
    "rotations": WAL_ROTATIONS,
    "segments": WAL_SEGMENTS,
    "checkpoints": WAL_CHECKPOINTS,
    "segments_removed": WAL_SEGMENTS_REMOVED,
    "last_lsn": WAL_LAST_LSN,
    "checkpoint_lsn": WAL_CHECKPOINT_LSN,
    "records_replayed": WAL_RECORDS_REPLAYED,
    "torn_bytes_truncated": WAL_TORN_BYTES,
}

# Database/query-planner counters (folded from ``Collection.stats`` by
# :func:`database_stats_snapshot` — read-time aggregation, deliberately
# NOT recorded per-destination so worker scheduling cannot perturb the
# per-runner snapshots the determinism tests compare byte-for-byte).
DB_COLLSCANS = "db_collection_scans"
DB_INDEX_HITS = "db_index_hits"
DB_DOCS_EXAMINED = "db_docs_examined"
DB_CACHE_HITS = "db_query_cache_hits"
DB_CACHE_MISSES = "db_query_cache_misses"

#: ``Collection.stats`` key -> canonical instrument name.
_DB_STAT_NAMES = {
    "scans": DB_COLLSCANS,
    "index_hits": DB_INDEX_HITS,
    "docs_examined": DB_DOCS_EXAMINED,
    "cache_hits": DB_CACHE_HITS,
    "cache_misses": DB_CACHE_MISSES,
}

# Simulated data-plane counters (folded from ``NetworkSim.counters`` by
# :func:`network_stats_snapshot`).  Every value is a pure function of
# ``(world, seed, campaign)`` — see docs/ARCHITECTURE.md, "Measurement
# fast path", whose metric table is diff-tested against this mapping.
NET_BATCH_SERIES = "net_batch_probe_series"
NET_BATCH_PACKETS = "net_batch_packets"
NET_SCALAR_FALLBACKS = "net_scalar_fallback_series"
NET_SCALAR_PROBES = "net_scalar_probes"
NET_SAMPLER_HITS = "net_sampler_cache_hits"
NET_SAMPLER_MISSES = "net_sampler_cache_misses"
NET_LEDGER_PRUNED = "net_ledger_pruned_flows"

#: ``NetCounters`` slot -> canonical instrument name.
_NET_STAT_NAMES = {
    "batch_series": NET_BATCH_SERIES,
    "batch_packets": NET_BATCH_PACKETS,
    "scalar_fallback_series": NET_SCALAR_FALLBACKS,
    "scalar_probes": NET_SCALAR_PROBES,
    "sampler_hits": NET_SAMPLER_HITS,
    "sampler_misses": NET_SAMPLER_MISSES,
    "ledger_pruned_flows": NET_LEDGER_PRUNED,
}


class MetricsRegistry:
    """Thread-safe counters + histograms, snapshotted as a plain dict."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        # name -> [count, total, min, max]
        self._histograms: Dict[str, List[float]] = {}

    # -- write side -----------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        v = float(value)
        with self._lock:
            agg = self._histograms.get(name)
            if agg is None:
                self._histograms[name] = [1.0, v, v, v]
            else:
                agg[0] += 1.0
                agg[1] += v
                agg[2] = min(agg[2], v)
                agg[3] = max(agg[3], v)

    # -- read side ------------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def snapshot(self) -> Dict[str, Any]:
        """A deep, JSON-friendly copy with deterministically sorted keys."""
        with self._lock:
            return {
                "version": SNAPSHOT_VERSION,
                "counters": {k: self._counters[k] for k in sorted(self._counters)},
                "histograms": {
                    k: {
                        "count": int(agg[0]),
                        "total": agg[1],
                        "min": agg[2],
                        "max": agg[3],
                    }
                    for k, agg in sorted(self._histograms.items())
                },
            }


def empty_snapshot() -> Dict[str, Any]:
    return {"version": SNAPSHOT_VERSION, "counters": {}, "histograms": {}}


def counter_value(snapshot: Optional[Dict[str, Any]], name: str) -> float:
    """Counter ``name`` out of a snapshot dict (0 when absent)."""
    if not snapshot:
        return 0.0
    return float(snapshot.get("counters", {}).get(name, 0.0))


def histogram_stats(
    snapshot: Optional[Dict[str, Any]], name: str
) -> Optional[Dict[str, float]]:
    """Histogram aggregate for ``name`` (None when never observed)."""
    if not snapshot:
        return None
    return snapshot.get("histograms", {}).get(name)


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold snapshots into one (commutative: scheduling-independent)."""
    counters: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, float]] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + float(value)
        for name, agg in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = dict(agg)
            else:
                merged["count"] += agg["count"]
                merged["total"] += agg["total"]
                merged["min"] = min(merged["min"], agg["min"])
                merged["max"] = max(merged["max"], agg["max"])
    return {
        "version": SNAPSHOT_VERSION,
        "counters": {k: counters[k] for k in sorted(counters)},
        "histograms": {k: histograms[k] for k in sorted(histograms)},
    }


def database_stats_snapshot(db: Any) -> Dict[str, Any]:
    """Fold every collection's planner/cache counters into one snapshot.

    ``db`` is a :class:`~repro.docdb.database.Database`.  Returns a
    metrics-shaped dict (``{"version", "counters", "histograms"}``) with
    both database-wide totals under the canonical ``db_*`` names and
    per-collection counters under ``db.<collection>.<stat>`` — the
    "planner counters folded into suite metrics" surface the CLI prints
    with ``--metrics``.
    """
    counters: Dict[str, float] = {}
    for coll_name in db.list_collection_names():
        stats = db[coll_name].stats
        for stat_key, canonical in _DB_STAT_NAMES.items():
            value = float(stats.get(stat_key, 0))
            counters[canonical] = counters.get(canonical, 0.0) + value
            counters[f"db.{coll_name}.{stat_key}"] = value
    return {
        "version": SNAPSHOT_VERSION,
        "counters": {k: counters[k] for k in sorted(counters)},
        "histograms": {},
    }


def network_stats_snapshot(network: Any) -> Dict[str, Any]:
    """Fold a :class:`~repro.netsim.network.NetworkSim`'s data-plane
    counters into a metrics-shaped snapshot.

    Returns the canonical ``net_*`` instrument names; every counter is
    deterministic per ``(world, seed, campaign)``, so the fold keeps the
    1-vs-N-worker determinism suites byte-identical.
    """
    raw = network.counters.snapshot() if hasattr(network, "counters") else {}
    counters: Dict[str, float] = {}
    for stat_key, canonical in _NET_STAT_NAMES.items():
        if stat_key in raw:
            counters[canonical] = float(raw[stat_key])
    return {
        "version": SNAPSHOT_VERSION,
        "counters": {k: counters[k] for k in sorted(counters)},
        "histograms": {},
    }


def wal_stats_snapshot(client: Any) -> Dict[str, Any]:
    """Fold a durable client's WAL counters into a metrics snapshot.

    ``client`` is a :class:`~repro.docdb.client.DocDBClient`; volatile
    clients yield an empty snapshot (nothing to report).
    """
    raw = client.wal_stats() if hasattr(client, "wal_stats") else {}
    counters: Dict[str, float] = {}
    for stat_key, canonical in _WAL_STAT_NAMES.items():
        if stat_key in raw:
            counters[canonical] = float(raw[stat_key])
    return {
        "version": SNAPSHOT_VERSION,
        "counters": {k: counters[k] for k in sorted(counters)},
        "histograms": {},
    }


def format_wal_stats(
    snapshot: Optional[Dict[str, Any]], *, indent: str = "  "
) -> str:
    """Human-readable durability block (empty when volatile)."""
    if not snapshot or not snapshot.get("counters"):
        return ""
    appends = counter_value(snapshot, WAL_APPENDS)
    wal_bytes = counter_value(snapshot, WAL_BYTES)
    fsyncs = counter_value(snapshot, WAL_FSYNCS)
    rotations = counter_value(snapshot, WAL_ROTATIONS)
    last_lsn = counter_value(snapshot, WAL_LAST_LSN)
    ckpt_lsn = counter_value(snapshot, WAL_CHECKPOINT_LSN)
    checkpoints = counter_value(snapshot, WAL_CHECKPOINTS)
    replayed = counter_value(snapshot, WAL_RECORDS_REPLAYED)
    lines = [
        f"{indent}wal: {appends:g} appends ({wal_bytes:g} bytes), "
        f"{fsyncs:g} fsyncs, {rotations:g} rotations",
        f"{indent}wal: lsn {last_lsn:g} (checkpoint {ckpt_lsn:g}, "
        f"{checkpoints:g} checkpoints, {replayed:g} records replayed at open)",
    ]
    torn = counter_value(snapshot, WAL_TORN_BYTES)
    if torn:
        lines.append(f"{indent}wal: torn tail rolled back ({torn:g} bytes)")
    return "\n".join(lines)


def format_database_stats(
    snapshot: Optional[Dict[str, Any]], *, indent: str = "  "
) -> str:
    """Human-readable query-planner block (empty when nothing recorded)."""
    if not snapshot:
        return ""
    hits = counter_value(snapshot, DB_INDEX_HITS)
    scans = counter_value(snapshot, DB_COLLSCANS)
    examined = counter_value(snapshot, DB_DOCS_EXAMINED)
    cache_h = counter_value(snapshot, DB_CACHE_HITS)
    cache_m = counter_value(snapshot, DB_CACHE_MISSES)
    if not any((hits, scans, examined, cache_h, cache_m)):
        return ""
    lines = [
        f"{indent}query planner: {hits:g} index hits, {scans:g} collection "
        f"scans, {examined:g} docs examined",
        f"{indent}query cache: {cache_h:g} hits / {cache_m:g} misses",
    ]
    return "\n".join(lines)


def format_metrics(snapshot: Optional[Dict[str, Any]], *, indent: str = "  ") -> str:
    """Human-readable metrics block (empty string when nothing recorded)."""
    if not snapshot:
        return ""
    lines: List[str] = []
    retries = counter_value(snapshot, RETRIES)
    exhausted = counter_value(snapshot, RETRY_EXHAUSTED)
    backoff = histogram_stats(snapshot, BACKOFF_S)
    if retries or exhausted:
        backoff_total = backoff["total"] if backoff else 0.0
        lines.append(
            f"{indent}retries: {retries:g} "
            f"(gave up: {exhausted:g}, backoff: {backoff_total:.2f} sim s)"
        )
    batches = histogram_stats(snapshot, BATCH_SIZE)
    if batches and batches["count"]:
        mean = batches["total"] / batches["count"]
        lines.append(
            f"{indent}batches: {batches['count']} flushed "
            f"(avg {mean:.1f} docs, max {batches['max']:g})"
        )
    failures = counter_value(snapshot, FLUSH_FAILURES)
    lost = counter_value(snapshot, DOCS_LOST)
    if failures or lost:
        lines.append(
            f"{indent}flush failures: {failures:g} ({lost:g} documents lost)"
        )
    probes = counter_value(snapshot, MON_PROBES)
    breaches = counter_value(snapshot, MON_BREACHES)
    failovers = counter_value(snapshot, MON_FAILOVERS)
    if probes or breaches or failovers:
        suppressed = counter_value(snapshot, MON_FLAPS_SUPPRESSED)
        mttr = histogram_stats(snapshot, MON_MTTR_S)
        line = (
            f"{indent}monitor: {probes:g} probes, {breaches:g} breaches, "
            f"{failovers:g} failovers ({suppressed:g} flaps suppressed)"
        )
        if mttr and mttr["count"]:
            line += f", MTTR {mttr['total'] / mttr['count']:.1f} sim s"
        lines.append(line)
    batch_series = counter_value(snapshot, NET_BATCH_SERIES)
    batch_packets = counter_value(snapshot, NET_BATCH_PACKETS)
    scalar_series = counter_value(snapshot, NET_SCALAR_FALLBACKS)
    scalar_probes = counter_value(snapshot, NET_SCALAR_PROBES)
    if batch_series or scalar_series or scalar_probes:
        lines.append(
            f"{indent}data plane: {batch_series:g} batch series "
            f"({batch_packets:g} packets), {scalar_series:g} scalar "
            f"fallback series, {scalar_probes:g} scalar probes"
        )
        sampler_h = counter_value(snapshot, NET_SAMPLER_HITS)
        sampler_m = counter_value(snapshot, NET_SAMPLER_MISSES)
        pruned = counter_value(snapshot, NET_LEDGER_PRUNED)
        if sampler_h or sampler_m or pruned:
            lines.append(
                f"{indent}data plane: sampler cache {sampler_h:g} hits / "
                f"{sampler_m:g} misses, {pruned:g} ledger flows pruned"
            )
    wall = histogram_stats(snapshot, DEST_WALL_S)
    sim = histogram_stats(snapshot, DEST_SIM_S)
    if wall and sim and wall["count"]:
        lines.append(
            f"{indent}per destination: "
            f"{sim['total'] / sim['count']:.1f} sim s, "
            f"{wall['total'] / wall['count'] * 1e3:.1f} wall ms (avg)"
        )
    return "\n".join(lines)
