"""Continuous monitoring: periodic campaigns on the simulation clock.

§4.1.2: "continuous measurements require continuous functioning."  The
paper's scripts run campaigns by hand; a deployed UPIN domain needs the
test-suite on a schedule.  :class:`MonitoringScheduler` drives rounds
of measurement through the discrete-event queue: a measurement round
starts at each period boundary (or immediately after the previous round
when a round overruns its period), and path collection is refreshed
every ``recollect_every`` rounds so topology changes are picked up.

All timing lives on the shared :class:`~repro.netsim.clock.SimClock`,
so scheduled congestion episodes, server outages and monitoring rounds
compose on one time axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.docdb.database import Database
from repro.errors import ValidationError
from repro.netsim.events import EventQueue
from repro.scion.snet import ScionHost
from repro.suite.collect import PathsCollector
from repro.suite.config import SuiteConfig
from repro.suite.faults import FaultPlan
from repro.suite.runner import CampaignReport, TestRunner


@dataclass(frozen=True)
class RoundRecord:
    """Bookkeeping for one monitoring round."""

    index: int
    scheduled_at_s: float
    started_at_s: float
    finished_at_s: float
    recollected: bool
    stats_stored: int
    errors: int

    @property
    def duration_s(self) -> float:
        return self.finished_at_s - self.started_at_s

    @property
    def lag_s(self) -> float:
        """How late the round started relative to its period boundary."""
        return self.started_at_s - self.scheduled_at_s


@dataclass
class MonitoringReport:
    """Outcome of a monitoring run."""

    rounds: List[RoundRecord] = field(default_factory=list)

    @property
    def stats_stored(self) -> int:
        return sum(r.stats_stored for r in self.rounds)

    @property
    def total_errors(self) -> int:
        return sum(r.errors for r in self.rounds)

    @property
    def overrun_rounds(self) -> int:
        """Rounds that started late because the previous one overran."""
        return sum(1 for r in self.rounds if r.lag_s > 1e-9)


class MonitoringScheduler:
    """Runs measurement rounds periodically on the simulated clock."""

    def __init__(
        self,
        host: ScionHost,
        db: Database,
        config: SuiteConfig,
        *,
        period_s: float,
        recollect_every: int = 5,
        faults: Optional[FaultPlan] = None,
        round_hooks: Optional[Sequence[Callable[[RoundRecord], None]]] = None,
    ) -> None:
        if period_s <= 0:
            raise ValidationError("monitoring period must be positive")
        if recollect_every < 1:
            raise ValidationError("recollect_every must be >= 1")
        self.host = host
        self.db = db
        self.config = config
        self.period_s = period_s
        self.recollect_every = recollect_every
        self.collector = PathsCollector(host, db, config)
        self.runner = TestRunner(host, db, config, faults=faults)
        self.events = EventQueue(host.clock)
        #: Called with each finished :class:`RoundRecord`, in order, on
        #: the simulation clock — this is how :class:`~repro.monitor.
        #: loop.FlowMonitor.after_round` plugs into the round cadence.
        self.round_hooks: List[Callable[[RoundRecord], None]] = list(
            round_hooks or []
        )

    def add_round_hook(self, hook: Callable[[RoundRecord], None]) -> None:
        """Register ``hook`` to run after every measurement round."""
        self.round_hooks.append(hook)

    def run(self, *, rounds: int) -> MonitoringReport:
        """Execute ``rounds`` monitoring rounds; returns the report.

        Path collection runs before round 0 and then every
        ``recollect_every`` rounds.
        """
        if rounds < 1:
            raise ValidationError("need at least one round")
        report = MonitoringReport()
        origin = self.host.clock.now_s

        def schedule_round(index: int) -> None:
            boundary = origin + index * self.period_s
            fire_at = max(boundary, self.host.clock.now_s)
            self.events.schedule(fire_at, lambda: run_round(index, boundary))

        def run_round(index: int, boundary: float) -> None:
            started = self.host.clock.now_s
            recollected = index % self.recollect_every == 0
            if recollected:
                self.collector.collect()
            campaign = self.runner.run(iterations=1)
            record = RoundRecord(
                index=index,
                scheduled_at_s=boundary,
                started_at_s=started,
                finished_at_s=self.host.clock.now_s,
                recollected=recollected,
                stats_stored=campaign.stats_stored,
                errors=campaign.measurement_errors,
            )
            report.rounds.append(record)
            for hook in self.round_hooks:
                hook(record)
            if index + 1 < rounds:
                schedule_round(index + 1)

        schedule_round(0)
        self.events.run_all()
        return report
