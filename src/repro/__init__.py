"""Reproduction of *"Evaluation of SCION for User-driven Path Control:
a Usability Study"* (Battipaglia, Boldrini, Koning, Grosso — SC-W 2023).

The library rebuilds, offline and deterministically, the full stack the
paper's study ran on SCIONLab:

* a 35-AS SCIONLab world topology with the authors' user AS attached at
  ETHZ-AP (:mod:`repro.topology`),
* a seeded network substrate with geographic latency, cross-traffic,
  capacity limits, overlay fragmentation and congestion episodes
  (:mod:`repro.netsim`),
* the SCION control plane — beaconing, segment combination, a per-host
  daemon — and SCMP services (:mod:`repro.scion`),
* the SCION applications the paper drives: showpaths, ping, traceroute
  and the bwtester (:mod:`repro.apps`),
* a MongoDB-equivalent document store with PKC-backed write access
  control (:mod:`repro.docdb`, :mod:`repro.crypto`),
* the paper's test-suite — path collection, the three-measurement
  runner, batched statistics storage, fault tolerance
  (:mod:`repro.suite`),
* the user-driven path-selection engine with sovereignty exclusions
  (:mod:`repro.selection`) inside the UPIN framework (:mod:`repro.upin`),
* experiment drivers regenerating Figures 4-9 (:mod:`repro.experiments`).

Quickstart::

    from repro import ScionHost

    host = ScionHost.scionlab()
    paths = host.paths("16-ffaa:0:1002", max_paths=5)
    stats = host.ping("16-ffaa:0:1002", "172.31.43.7", count=10)
    print(stats.avg_ms, "ms,", stats.loss_pct, "% loss")
"""

from repro.errors import ReproError
from repro.topology import ISDAS, Topology, build_scionlab_world, MY_AS
from repro.scion import Path, ScionHost
from repro.netsim import NetworkConfig, NetworkSim, CongestionEpisode
from repro.docdb import DocDBClient
from repro.suite import SuiteConfig, TestRunner, PathsCollector
from repro.selection import PathSelector, UserRequest, Metric
from repro.upin import Frontend

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ISDAS",
    "Topology",
    "build_scionlab_world",
    "MY_AS",
    "Path",
    "ScionHost",
    "NetworkConfig",
    "NetworkSim",
    "CongestionEpisode",
    "DocDBClient",
    "SuiteConfig",
    "TestRunner",
    "PathsCollector",
    "PathSelector",
    "UserRequest",
    "Metric",
    "Frontend",
    "__version__",
]
