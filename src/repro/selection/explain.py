"""Human-readable rendering of selection results (the Front-end's voice)."""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.selection.engine import SelectionResult


def render_selection(result: "SelectionResult") -> str:
    """Multi-line explanation of a selection outcome."""
    req = result.request
    lines: List[str] = [
        f"Path selection for destination {req.server_id} "
        f"(optimising {req.metric.value})"
    ]
    constraints = []
    if req.exclude_countries:
        constraints.append(f"avoid countries {sorted(req.exclude_countries)}")
    if req.exclude_operators:
        constraints.append(f"avoid operators {sorted(req.exclude_operators)}")
    if req.exclude_ases:
        constraints.append(f"avoid ASes {sorted(req.exclude_ases)}")
    if req.exclude_isds:
        constraints.append(f"avoid ISDs {sorted(req.exclude_isds)}")
    if req.max_latency_ms is not None:
        constraints.append(f"latency <= {req.max_latency_ms:g} ms")
    if req.max_loss_pct is not None:
        constraints.append(f"loss <= {req.max_loss_pct:g}%")
    if req.min_bandwidth_down_mbps is not None:
        constraints.append(f"downstream >= {req.min_bandwidth_down_mbps:g} Mbps")
    if constraints:
        lines.append("constraints: " + "; ".join(constraints))

    if result.best is None:
        lines.append("NO ADMISSIBLE PATH — every candidate was excluded:")
        for path_id, reasons in sorted(result.excluded.items()):
            lines.append(f"  {path_id}: {reasons[0]}")
        return "\n".join(lines)

    best = result.best
    lines.append(f"selected path {best.aggregate.path_id}: {best.explanation}")
    lines.append(f"  hops: {best.hops_display}")
    if result.alternatives:
        lines.append("alternatives:")
        for alt in result.alternatives:
            lines.append(f"  {alt.aggregate.path_id}: {alt.explanation}")
    if result.excluded:
        lines.append(f"excluded {len(result.excluded)} path(s):")
        for path_id, reasons in sorted(result.excluded.items())[:10]:
            lines.append(f"  {path_id}: {reasons[0]}")
    return "\n".join(lines)
