"""User-driven path selection over the measurement database.

The end goal of the paper: "gather data on these paths and store it in
a database, that we then query to select the best path to give to a
user to reach a destination, following their request on performance or
devices to exclude for geographical or sovereignty reasons."
"""

from repro.selection.request import Metric, UserRequest
from repro.selection.policies import (
    BandwidthPolicy,
    CompositePolicy,
    JitterPolicy,
    LatencyPolicy,
    LossPolicy,
    policy_for,
)
from repro.selection.engine import PathSelector, RankedPath, SelectionResult

__all__ = [
    "Metric",
    "UserRequest",
    "LatencyPolicy",
    "JitterPolicy",
    "BandwidthPolicy",
    "LossPolicy",
    "CompositePolicy",
    "policy_for",
    "PathSelector",
    "RankedPath",
    "SelectionResult",
]
