"""The selection engine: query the database, filter, score, rank.

This is the query side of the paper's pipeline — "this database is then
queried to provide users with the best possible path they can choose
for reaching a specific destination, based on performance, geographic
placement of devices traversed, and operators that run them".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.docdb.database import Database
from repro.errors import NoPathError
from repro.selection.policies import (
    CompositePolicy,
    PathAggregate,
    Policy,
    policy_for,
)
from repro.selection.request import Metric, UserRequest
from repro.suite.config import PATHS_COLLECTION, STATS_COLLECTION
from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS


@dataclass(frozen=True)
class RankedPath:
    """One candidate path with its score and human explanation."""

    aggregate: PathAggregate
    score: float
    explanation: str
    sequence: str
    hops_display: str


@dataclass
class SelectionResult:
    """Outcome of a selection query."""

    request: UserRequest
    best: Optional[RankedPath]
    alternatives: List[RankedPath] = field(default_factory=list)
    excluded: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def ranked(self) -> List[RankedPath]:
        return ([self.best] if self.best else []) + self.alternatives

    def format_text(self) -> str:
        from repro.selection.explain import render_selection

        return render_selection(self)


class PathSelector:
    """Answers user path requests from the measurement database."""

    def __init__(self, db: Database, topology: Topology) -> None:
        self.db = db
        self.topology = topology

    # -- aggregation -------------------------------------------------------------

    def aggregates(
        self, server_id: int, *, since_ms: Optional[int] = None
    ) -> List[PathAggregate]:
        """Per-path measurement summaries for one destination.

        ``since_ms`` restricts to samples taken at or after that
        timestamp — what a *live* controller uses so stale measurements
        do not dilute fresh congestion signals.
        """
        match: Dict[str, object] = {"server_id": server_id}
        if since_ms is not None:
            match["timestamp_ms"] = {"$gte": since_ms}
        grouped = self.db[STATS_COLLECTION].aggregate(
            [
                {"$match": match},
                {
                    "$group": {
                        "_id": "$path_id",
                        "samples": {"$sum": 1},
                        "avg_latency": {"$avg": "$avg_latency_ms"},
                        "latencies": {"$push": "$avg_latency_ms"},
                        "avg_loss": {"$avg": "$loss_pct"},
                        "avg_bw_down": {"$avg": "$bw_down_mtu_mbps"},
                        "avg_bw_up": {"$avg": "$bw_up_mtu_mbps"},
                    }
                },
            ]
        )
        by_path = {g["_id"]: g for g in grouped}
        out: List[PathAggregate] = []
        for path_doc in self.db[PATHS_COLLECTION].find(
            {"server_id": server_id}, sort=[("path_index", 1)]
        ):
            g = by_path.get(path_doc["_id"])
            if g is None:
                continue
            latencies = [l for l in g["latencies"] if l is not None]
            stddev = float(np.std(latencies)) if len(latencies) >= 2 else (
                0.0 if latencies else None
            )
            out.append(
                PathAggregate(
                    path_id=str(path_doc["_id"]),
                    server_id=server_id,
                    hop_count=int(path_doc["hop_count"]),
                    isds=list(path_doc["isds"]),
                    ases=list(path_doc["ases"]),
                    samples=int(g["samples"]),
                    avg_latency_ms=g["avg_latency"],
                    latency_stddev_ms=stddev,
                    avg_loss_pct=float(g["avg_loss"] or 0.0),
                    avg_bw_down_mbps=g["avg_bw_down"],
                    avg_bw_up_mbps=g["avg_bw_up"],
                )
            )
        return out

    # -- filtering ------------------------------------------------------------------

    def _violations(self, agg: PathAggregate, request: UserRequest) -> List[str]:
        """Why this path is inadmissible (empty = admissible)."""
        reasons: List[str] = []
        if agg.path_id in request.exclude_paths:
            reasons.append("path explicitly excluded (failover/revocation)")
        for ia_str in agg.ases:
            asys = self.topology.as_of(ia_str)
            if asys.country.upper() in request.exclude_countries:
                reasons.append(f"traverses country {asys.country} ({ia_str})")
            if asys.operator in request.exclude_operators:
                reasons.append(f"traverses operator {asys.operator} ({ia_str})")
            if ia_str in request.exclude_ases:
                reasons.append(f"traverses excluded AS {ia_str}")
        for isd in agg.isds:
            if isd in request.exclude_isds:
                reasons.append(f"traverses excluded ISD {isd}")
        if not agg.usable():
            reasons.append("no successful measurements")
        if (
            request.max_latency_ms is not None
            and agg.avg_latency_ms is not None
            and agg.avg_latency_ms > request.max_latency_ms
        ):
            reasons.append(
                f"latency {agg.avg_latency_ms:.1f} ms exceeds "
                f"{request.max_latency_ms:.1f} ms"
            )
        if request.max_loss_pct is not None and agg.avg_loss_pct > request.max_loss_pct:
            reasons.append(
                f"loss {agg.avg_loss_pct:.1f}% exceeds {request.max_loss_pct:.1f}%"
            )
        if (
            request.min_bandwidth_down_mbps is not None
            and (agg.avg_bw_down_mbps or 0.0) < request.min_bandwidth_down_mbps
        ):
            reasons.append(
                f"downstream bandwidth below {request.min_bandwidth_down_mbps:.1f} Mbps"
            )
        return reasons

    # -- selection ----------------------------------------------------------------------

    def select(
        self,
        request: UserRequest,
        *,
        top_k: int = 5,
        since_ms: Optional[int] = None,
    ) -> SelectionResult:
        """Pick the best admissible path for ``request``."""
        candidates = self.aggregates(request.server_id, since_ms=since_ms)
        if not candidates:
            raise NoPathError(
                f"no measured paths for destination {request.server_id} "
                "(run the test-suite first)"
            )
        admissible: List[PathAggregate] = []
        excluded: Dict[str, List[str]] = {}
        for agg in candidates:
            reasons = self._violations(agg, request)
            if reasons:
                excluded[agg.path_id] = reasons
            else:
                admissible.append(agg)

        result = SelectionResult(request=request, best=None, excluded=excluded)
        if not admissible:
            return result

        policy = policy_for(request.metric, request.weights)
        if isinstance(policy, CompositePolicy):
            policy.fit(admissible)

        ranked = sorted(
            (self._rank(agg, policy) for agg in admissible),
            key=lambda r: (r.score, r.aggregate.path_id),
        )
        result.best = ranked[0]
        result.alternatives = ranked[1 : 1 + max(0, top_k - 1)]
        return result

    def _rank(self, agg: PathAggregate, policy: Policy) -> RankedPath:
        path_doc = self.db[PATHS_COLLECTION].find_one({"_id": agg.path_id}) or {}
        return RankedPath(
            aggregate=agg,
            score=policy.score(agg),
            explanation=policy.describe(agg),
            sequence=str(path_doc.get("sequence", "")),
            hops_display=str(path_doc.get("hops_display", "")),
        )

    # -- recommendation (the paper's stated future-work feature) ---------------------------

    def recommend(self, server_id: int, *, top_k: int = 3) -> Dict[str, List[RankedPath]]:
        """Best paths per optimisation criterion — a menu for the user."""
        menu: Dict[str, List[RankedPath]] = {}
        for metric in (
            Metric.LATENCY,
            Metric.JITTER,
            Metric.BANDWIDTH_DOWN,
            Metric.LOSS,
        ):
            request = UserRequest.make(server_id, metric)
            try:
                result = self.select(request, top_k=top_k)
            except NoPathError:
                continue
            menu[metric.value] = result.ranked[:top_k]
        return menu
