"""Scoring policies: turn aggregated path statistics into a rank score.

Lower scores are better across every policy so the engine can sort
uniformly.  ``PathAggregate`` is the per-path summary the engine
computes from ``paths_stats`` documents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ValidationError
from repro.selection.request import Metric


@dataclass(frozen=True)
class PathAggregate:
    """Aggregated measurements for one stored path."""

    path_id: str
    server_id: int
    hop_count: int
    isds: Sequence[int]
    ases: Sequence[str]
    samples: int
    avg_latency_ms: Optional[float]
    latency_stddev_ms: Optional[float]
    avg_loss_pct: float
    avg_bw_down_mbps: Optional[float]
    avg_bw_up_mbps: Optional[float]

    def usable(self) -> bool:
        """A path with zero successful samples cannot be recommended."""
        return self.samples > 0 and self.avg_latency_ms is not None


class Policy:
    """Base scoring policy; lower score = preferred path."""

    name = "policy"

    def score(self, agg: PathAggregate) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self, agg: PathAggregate) -> str:
        return f"{self.name} score {self.score(agg):.3f}"


class LatencyPolicy(Policy):
    """Prefer the lowest average round-trip latency."""

    name = "latency"

    def score(self, agg: PathAggregate) -> float:
        return agg.avg_latency_ms if agg.avg_latency_ms is not None else math.inf

    def describe(self, agg: PathAggregate) -> str:
        return f"avg latency {agg.avg_latency_ms:.1f} ms over {agg.samples} samples"


class JitterPolicy(Policy):
    """Prefer latency *consistency* — the §6.1 VoIP/streaming criterion.

    Score = stddev + a small latency tiebreaker, so among equally stable
    paths the faster one wins.
    """

    name = "jitter"

    def score(self, agg: PathAggregate) -> float:
        if agg.latency_stddev_ms is None:
            return math.inf
        tiebreak = (agg.avg_latency_ms or 0.0) * 1e-3
        return agg.latency_stddev_ms + tiebreak

    def describe(self, agg: PathAggregate) -> str:
        return (
            f"latency spread {agg.latency_stddev_ms:.2f} ms "
            f"(avg {agg.avg_latency_ms:.1f} ms)"
        )


class BandwidthPolicy(Policy):
    """Prefer the highest measured bandwidth (down- or upstream)."""

    def __init__(self, *, downstream: bool = True) -> None:
        self.downstream = downstream
        self.name = "bandwidth_down" if downstream else "bandwidth_up"

    def score(self, agg: PathAggregate) -> float:
        bw = agg.avg_bw_down_mbps if self.downstream else agg.avg_bw_up_mbps
        return -bw if bw is not None else math.inf

    def describe(self, agg: PathAggregate) -> str:
        bw = agg.avg_bw_down_mbps if self.downstream else agg.avg_bw_up_mbps
        direction = "downstream" if self.downstream else "upstream"
        return f"avg {direction} bandwidth {bw:.1f} Mbps"


class LossPolicy(Policy):
    """Prefer the lowest average packet loss."""

    name = "loss"

    def score(self, agg: PathAggregate) -> float:
        # Latency tiebreaker: most paths sit at 0% loss (Fig 9).
        return agg.avg_loss_pct + (agg.avg_latency_ms or 0.0) * 1e-4

    def describe(self, agg: PathAggregate) -> str:
        return f"avg loss {agg.avg_loss_pct:.2f}%"


class CompositePolicy(Policy):
    """Weighted blend of normalised metrics.

    Each metric is min-max normalised over the candidate set (so weights
    are comparable), then combined; the candidate set must therefore be
    supplied via :meth:`fit` before scoring.
    """

    name = "composite"

    _EXTRACTORS = {
        "latency": lambda a: a.avg_latency_ms,
        "jitter": lambda a: a.latency_stddev_ms,
        "loss": lambda a: a.avg_loss_pct,
        # Bandwidths are benefits: negate so that lower stays better.
        "bandwidth_down": lambda a: -(a.avg_bw_down_mbps or 0.0),
        "bandwidth_up": lambda a: -(a.avg_bw_up_mbps or 0.0),
    }

    def __init__(self, weights: Dict[str, float]) -> None:
        unknown = set(weights) - set(self._EXTRACTORS)
        if unknown:
            raise ValidationError(f"unknown composite metrics: {sorted(unknown)}")
        if not weights or all(w == 0 for w in weights.values()):
            raise ValidationError("composite weights must not be empty/zero")
        self.weights = dict(weights)
        self._ranges: Dict[str, tuple] = {}

    def fit(self, candidates: List[PathAggregate]) -> "CompositePolicy":
        for metric in self.weights:
            values = [
                v
                for v in (self._EXTRACTORS[metric](a) for a in candidates)
                if v is not None
            ]
            if values:
                self._ranges[metric] = (min(values), max(values))
        return self

    def score(self, agg: PathAggregate) -> float:
        total = 0.0
        for metric, weight in self.weights.items():
            raw = self._EXTRACTORS[metric](agg)
            if raw is None:
                return math.inf
            lo, hi = self._ranges.get(metric, (raw, raw))
            normalised = 0.0 if hi == lo else (raw - lo) / (hi - lo)
            total += weight * normalised
        return total

    def describe(self, agg: PathAggregate) -> str:
        parts = ", ".join(f"{m}*{w:g}" for m, w in self.weights.items())
        return f"composite({parts}) = {self.score(agg):.3f}"


def policy_for(metric: Metric, weights: Optional[Dict[str, float]] = None) -> Policy:
    """Factory mapping a request metric onto a policy instance."""
    if metric is Metric.LATENCY:
        return LatencyPolicy()
    if metric is Metric.JITTER:
        return JitterPolicy()
    if metric is Metric.BANDWIDTH_DOWN:
        return BandwidthPolicy(downstream=True)
    if metric is Metric.BANDWIDTH_UP:
        return BandwidthPolicy(downstream=False)
    if metric is Metric.LOSS:
        return LossPolicy()
    if metric is Metric.COMPOSITE:
        return CompositePolicy(weights or {})
    raise ValidationError(f"unsupported metric: {metric}")
