"""User requests: performance preferences plus exclusion constraints.

A UPIN user states *what the path should optimise* (latency, latency
consistency, bandwidth, loss — or a weighted blend) and *what it must
avoid*: countries and operators (sovereignty, paper abstract), specific
ASes (the §6.1 jitter offenders), or whole ISDs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional

from repro.errors import ValidationError
from repro.topology.isd_as import ISDAS


class Metric(enum.Enum):
    """Path qualities a user can optimise for."""

    LATENCY = "latency"
    JITTER = "jitter"  # latency consistency (VoIP/streaming, §6.1)
    BANDWIDTH_DOWN = "bandwidth_down"
    BANDWIDTH_UP = "bandwidth_up"
    LOSS = "loss"
    COMPOSITE = "composite"


@dataclass(frozen=True)
class UserRequest:
    """One user's path intent towards a destination server."""

    server_id: int
    metric: Metric = Metric.LATENCY
    #: For ``Metric.COMPOSITE``: weight per metric name.
    weights: Dict[str, float] = field(default_factory=dict)

    # -- exclusions (sovereignty / geography / trust) ---------------------------
    exclude_countries: FrozenSet[str] = frozenset()
    exclude_operators: FrozenSet[str] = frozenset()
    exclude_ases: FrozenSet[str] = frozenset()
    exclude_isds: FrozenSet[int] = frozenset()
    #: Specific stored path ids to avoid — the failover engine's channel
    #: for "anything but the path that just died / was revoked".
    exclude_paths: FrozenSet[str] = frozenset()

    # -- hard performance requirements ---------------------------------------------
    max_latency_ms: Optional[float] = None
    max_loss_pct: Optional[float] = None
    min_bandwidth_down_mbps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.server_id < 1:
            raise ValidationError(f"invalid server id: {self.server_id}")
        if self.metric is Metric.COMPOSITE and not self.weights:
            raise ValidationError("composite metric requires weights")
        for ia in self.exclude_ases:
            ISDAS.parse(ia)  # validates format

    @classmethod
    def make(
        cls,
        server_id: int,
        metric: "Metric | str" = Metric.LATENCY,
        *,
        weights: Optional[Dict[str, float]] = None,
        exclude_countries: Iterable[str] = (),
        exclude_operators: Iterable[str] = (),
        exclude_ases: Iterable[str] = (),
        exclude_isds: Iterable[int] = (),
        exclude_paths: Iterable[str] = (),
        max_latency_ms: Optional[float] = None,
        max_loss_pct: Optional[float] = None,
        min_bandwidth_down_mbps: Optional[float] = None,
    ) -> "UserRequest":
        """Convenience constructor accepting loose types."""
        return cls(
            server_id=server_id,
            metric=Metric(metric) if isinstance(metric, str) else metric,
            weights=dict(weights or {}),
            exclude_countries=frozenset(c.upper() for c in exclude_countries),
            exclude_operators=frozenset(exclude_operators),
            exclude_ases=frozenset(str(a) for a in exclude_ases),
            exclude_isds=frozenset(int(i) for i in exclude_isds),
            exclude_paths=frozenset(str(p) for p in exclude_paths),
            max_latency_ms=max_latency_ms,
            max_loss_pct=max_loss_pct,
            min_bandwidth_down_mbps=min_bandwidth_down_mbps,
        )
