"""Exception hierarchy for the whole reproduction library.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch library failures without masking programming errors.  The test-suite
fault-tolerance requirements of the paper (§4.1.2) distinguish three
failure families — data loss, server failure and bad responses — which map
onto :class:`DataLossError`, :class:`ServerUnreachableError` and
:class:`ServerErrorResponse`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


# ---------------------------------------------------------------------------
# generic / utility errors
# ---------------------------------------------------------------------------


class ValidationError(ReproError, ValueError):
    """An input value failed validation (bad unit string, bad id, ...)."""


class ParseError(ValidationError):
    """A textual artefact (CLI output, parameter string) failed to parse."""


# ---------------------------------------------------------------------------
# topology / control-plane errors
# ---------------------------------------------------------------------------


class TopologyError(ReproError):
    """The topology is malformed or an entity is unknown."""


class UnknownASError(TopologyError, KeyError):
    """Referenced an ISD-AS that is not part of the topology."""


class NoPathError(ReproError):
    """No SCION path could be constructed between two ASes."""


# ---------------------------------------------------------------------------
# network / measurement errors (paper §4.1.2 fault families)
# ---------------------------------------------------------------------------


class MeasurementError(ReproError):
    """A measurement could not be completed."""


class ServerUnreachableError(MeasurementError):
    """The destination server is down or not answering (server failure)."""


class ServerErrorResponse(MeasurementError):
    """The server answered but with a malformed or error response."""


class DataLossError(MeasurementError):
    """Collected statistics were lost before they could be stored."""


class BandwidthTestError(MeasurementError):
    """The bwtester could not run (bad parameter string, refused test...)."""


# ---------------------------------------------------------------------------
# database errors
# ---------------------------------------------------------------------------


class DocDBError(ReproError):
    """Base class for document-database failures."""


class DuplicateKeyError(DocDBError):
    """Insertion would violate the unique ``_id`` constraint."""


class QueryError(DocDBError):
    """A filter/update/aggregation document is malformed."""


class AuthError(DocDBError):
    """Write access denied: missing, invalid, or unauthorized credential."""


class StorageError(DocDBError):
    """Persistence layer failure (corrupt file, bad checkpoint...)."""


class WalCorruptionError(StorageError):
    """A WAL record failed its checksum or continuity check.

    Raised (never silently skipped) for *interior* corruption — a
    size-complete record with a bad CRC32, an LSN discontinuity, or an
    incomplete record that is not the final one of the final segment.
    ``lsn`` names the log sequence number at which verification failed.
    """

    def __init__(self, message: str, *, lsn: int) -> None:
        super().__init__(message)
        self.lsn = lsn


# ---------------------------------------------------------------------------
# crypto errors
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for PKI failures."""


class SignatureError(CryptoError):
    """A signature failed verification."""


class CertificateError(CryptoError):
    """A certificate is invalid, expired, or its chain does not verify."""
