"""Public-key certificates (PKCs) and chain verification.

Mirrors the SCION model at the granularity this reproduction needs: a
certificate binds a *subject* name (an ISD-AS string) to a public key and
is signed by an *issuer* (the ISD's core AS, whose own certificate is
anchored in the TRC — see :mod:`repro.crypto.trc`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Mapping, Optional

from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, sign, verify
from repro.errors import CertificateError


def _canonical_payload(data: Mapping) -> bytes:
    """Deterministic byte encoding of the signed portion of a certificate."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass(frozen=True)
class Certificate:
    """A signed binding of ``subject`` to ``public_key``.

    ``not_before``/``not_after`` are logical validity bounds in integer
    "epoch" units (the coordinator bumps the epoch when re-issuing); the
    simulation does not tie them to wall time.
    """

    subject: str
    issuer: str
    public_key: RSAPublicKey
    not_before: int = 0
    not_after: int = 2**31
    serial: int = 0
    signature: int = field(default=0, compare=False)

    def payload(self) -> bytes:
        return _canonical_payload(
            {
                "subject": self.subject,
                "issuer": self.issuer,
                "public_key": self.public_key.to_dict(),
                "not_before": self.not_before,
                "not_after": self.not_after,
                "serial": self.serial,
            }
        )

    def is_valid_at(self, epoch: int) -> bool:
        return self.not_before <= epoch <= self.not_after

    def verify_with(self, issuer_key: RSAPublicKey) -> bool:
        return verify(issuer_key, self.payload(), self.signature)

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "issuer": self.issuer,
            "public_key": self.public_key.to_dict(),
            "not_before": self.not_before,
            "not_after": self.not_after,
            "serial": self.serial,
            "signature": hex(self.signature),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Certificate":
        return cls(
            subject=data["subject"],
            issuer=data["issuer"],
            public_key=RSAPublicKey.from_dict(data["public_key"]),
            not_before=int(data["not_before"]),
            not_after=int(data["not_after"]),
            serial=int(data["serial"]),
            signature=int(data["signature"], 16),
        )


def issue_certificate(
    issuer_name: str,
    issuer_keypair: RSAKeyPair,
    subject: str,
    subject_public_key: RSAPublicKey,
    *,
    not_before: int = 0,
    not_after: int = 2**31,
    serial: int = 0,
) -> Certificate:
    """Create a certificate for ``subject`` signed by ``issuer_keypair``."""
    unsigned = Certificate(
        subject=subject,
        issuer=issuer_name,
        public_key=subject_public_key,
        not_before=not_before,
        not_after=not_after,
        serial=serial,
    )
    signature = sign(issuer_keypair, unsigned.payload())
    return Certificate(
        subject=subject,
        issuer=issuer_name,
        public_key=subject_public_key,
        not_before=not_before,
        not_after=not_after,
        serial=serial,
        signature=signature,
    )


def self_signed(
    name: str, keypair: RSAKeyPair, *, serial: int = 0
) -> Certificate:
    """A root certificate: subject == issuer, signed by its own key."""
    return issue_certificate(name, keypair, name, keypair.public, serial=serial)


def verify_chain(
    chain: List[Certificate],
    trusted_roots: Mapping[str, RSAPublicKey],
    *,
    epoch: Optional[int] = None,
) -> RSAPublicKey:
    """Verify ``chain`` (leaf first) against ``trusted_roots``.

    Returns the leaf public key on success.  The last certificate's issuer
    must be present in ``trusted_roots``; every link must verify and, when
    ``epoch`` is given, be within its validity window.
    """
    if not chain:
        raise CertificateError("empty certificate chain")
    for i, cert in enumerate(chain):
        if epoch is not None and not cert.is_valid_at(epoch):
            raise CertificateError(
                f"certificate for {cert.subject!r} not valid at epoch {epoch}"
            )
        if i + 1 < len(chain):
            issuer_key = chain[i + 1].public_key
            if cert.issuer != chain[i + 1].subject:
                raise CertificateError(
                    f"chain break: {cert.subject!r} issued by {cert.issuer!r}, "
                    f"next cert is for {chain[i + 1].subject!r}"
                )
        else:
            root_key = trusted_roots.get(cert.issuer)
            if root_key is None:
                raise CertificateError(
                    f"issuer {cert.issuer!r} is not a trusted root"
                )
            issuer_key = root_key
        if not cert.verify_with(issuer_key):
            raise CertificateError(
                f"bad signature on certificate for {cert.subject!r}"
            )
    return chain[0].public_key
