"""Textbook RSA signatures over SHA-256 digests (simulation grade).

Signing computes ``sig = H(m)^d mod n``; verification checks
``sig^e mod n == H(m)``.  There is no padding — this is intentionally the
simplest construction that still gives the library *real* asymmetric
verification semantics for certificate chains and database write
authentication.  Never use for actual security.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.crypto.primes import generate_prime
from repro.errors import CryptoError, SignatureError

DEFAULT_MODULUS_BITS = 512
_PUBLIC_EXPONENT = 65537


def _digest_int(message: bytes, modulus: int) -> int:
    """SHA-256 digest of ``message`` reduced below the modulus."""
    return int.from_bytes(hashlib.sha256(message).digest(), "big") % modulus


@dataclass(frozen=True)
class RSAPublicKey:
    """The public half: modulus ``n`` and exponent ``e``."""

    n: int
    e: int = _PUBLIC_EXPONENT

    def fingerprint(self) -> str:
        """Short stable identifier for the key (hex SHA-256 prefix)."""
        raw = self.n.to_bytes((self.n.bit_length() + 7) // 8, "big")
        return hashlib.sha256(raw).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {"n": hex(self.n), "e": self.e}

    @classmethod
    def from_dict(cls, data: dict) -> "RSAPublicKey":
        return cls(n=int(data["n"], 16), e=int(data["e"]))


@dataclass(frozen=True)
class RSAKeyPair:
    """A full RSA key pair.  Only :attr:`public` should ever leave a host."""

    public: RSAPublicKey
    d: int  # private exponent

    @classmethod
    def generate(
        cls,
        rng: np.random.Generator,
        *,
        bits: int = DEFAULT_MODULUS_BITS,
    ) -> "RSAKeyPair":
        """Generate a key pair deterministically from ``rng``."""
        half = bits // 2
        while True:
            p = generate_prime(half, rng)
            q = generate_prime(bits - half, rng)
            if p == q:
                continue
            n = p * q
            phi = (p - 1) * (q - 1)
            if math.gcd(_PUBLIC_EXPONENT, phi) != 1:
                continue
            d = pow(_PUBLIC_EXPONENT, -1, phi)
            return cls(public=RSAPublicKey(n=n, e=_PUBLIC_EXPONENT), d=d)

    def sign(self, message: bytes) -> int:
        return sign(self, message)


def sign(keypair: RSAKeyPair, message: bytes) -> int:
    """Sign ``message`` with the private exponent."""
    if not isinstance(message, (bytes, bytearray)):
        raise CryptoError(f"message must be bytes, got {type(message).__name__}")
    h = _digest_int(bytes(message), keypair.public.n)
    return pow(h, keypair.d, keypair.public.n)


def verify(public: RSAPublicKey, message: bytes, signature: int) -> bool:
    """Return True iff ``signature`` is valid for ``message`` under ``public``."""
    if not isinstance(signature, int) or not (0 <= signature < public.n):
        return False
    h = _digest_int(bytes(message), public.n)
    return pow(signature, public.e, public.n) == h


def require_valid(public: RSAPublicKey, message: bytes, signature: int) -> None:
    """Raise :class:`SignatureError` if verification fails."""
    if not verify(public, message, signature):
        raise SignatureError("signature verification failed")


def keypair_from_seed(seed: int, *, bits: int = DEFAULT_MODULUS_BITS) -> RSAKeyPair:
    """Convenience: derive a key pair straight from an integer seed."""
    return RSAKeyPair.generate(np.random.default_rng(seed), bits=bits)


# Re-exported for callers that want a lightweight optional-type signature.
OptionalKeyPair = Optional[RSAKeyPair]
