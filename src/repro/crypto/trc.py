"""Trust Root Configurations (TRCs) and the per-host trust store.

In SCION every isolation domain (ISD) publishes a TRC naming the core
ASes that act as roots of trust for that ISD (§3.1: "A Core AS is the
root of trust inside the [ISD], which is the entity that signs PKC of
other ASes in the same ISD").  A host's :class:`TrustStore` holds the
TRCs of all ISDs it knows and verifies AS certificate chains against
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.crypto.certs import Certificate, verify_chain
from repro.crypto.rsa import RSAPublicKey
from repro.errors import CertificateError


@dataclass(frozen=True)
class TRC:
    """The trust anchors of one ISD: core-AS name -> core public key."""

    isd: int
    version: int
    core_keys: Dict[str, RSAPublicKey] = field(default_factory=dict)

    def core_ases(self) -> List[str]:
        return sorted(self.core_keys)

    def to_dict(self) -> dict:
        return {
            "isd": self.isd,
            "version": self.version,
            "core_keys": {name: key.to_dict() for name, key in self.core_keys.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TRC":
        return cls(
            isd=int(data["isd"]),
            version=int(data["version"]),
            core_keys={
                name: RSAPublicKey.from_dict(kd)
                for name, kd in data["core_keys"].items()
            },
        )


class TrustStore:
    """Holds TRCs for many ISDs and verifies certificates against them."""

    def __init__(self, trcs: Iterable[TRC] = ()) -> None:
        self._trcs: Dict[int, TRC] = {}
        for trc in trcs:
            self.add_trc(trc)

    def add_trc(self, trc: TRC) -> None:
        """Install a TRC; a newer version replaces an older one."""
        current = self._trcs.get(trc.isd)
        if current is None or trc.version >= current.version:
            self._trcs[trc.isd] = trc

    def trc_for(self, isd: int) -> TRC:
        trc = self._trcs.get(isd)
        if trc is None:
            raise CertificateError(f"no TRC installed for ISD {isd}")
        return trc

    def isds(self) -> List[int]:
        return sorted(self._trcs)

    def trusted_roots(self, isd: Optional[int] = None) -> Dict[str, RSAPublicKey]:
        """All trusted core keys, optionally restricted to one ISD."""
        roots: Dict[str, RSAPublicKey] = {}
        trcs = [self.trc_for(isd)] if isd is not None else self._trcs.values()
        for trc in trcs:
            roots.update(trc.core_keys)
        return roots

    def verify_certificate(
        self, chain: List[Certificate], *, isd: Optional[int] = None,
        epoch: Optional[int] = None,
    ) -> RSAPublicKey:
        """Verify a leaf-first certificate chain; returns the leaf key."""
        return verify_chain(chain, self.trusted_roots(isd), epoch=epoch)
