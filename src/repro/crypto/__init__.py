"""Simulation-grade PKI for the SCION trust model.

SCION assigns every AS a public/private key pair certified by its ISD's
core AS (§3.1: "Each AS is assigned a globally unique AS number (ASN) and
a public/private key pair. This key pair is certified through the
issuance of a public key certificate (PKC)").  The paper's security
design (§4.1.4, §4.2.2) then reuses those PKCs for database write access
and statistics authentication.

This package implements the machinery end to end — prime generation,
textbook RSA signatures, certificates, and per-ISD trust-root
configurations (TRCs).  **It is simulation-grade crypto**: key sizes are
small for speed and RSA is unpadded-hash textbook RSA; it exercises the
same verification code paths as a real deployment but must never be used
to protect anything.
"""

from repro.crypto.primes import is_probable_prime, generate_prime
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, sign, verify
from repro.crypto.certs import Certificate, issue_certificate, verify_chain
from repro.crypto.trc import TRC, TrustStore

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "RSAKeyPair",
    "RSAPublicKey",
    "sign",
    "verify",
    "Certificate",
    "issue_certificate",
    "verify_chain",
    "TRC",
    "TrustStore",
]
