"""Probabilistic primality testing and prime generation.

Implements deterministic-for-64-bit Miller–Rabin plus random-witness
rounds for larger candidates, and a seeded prime generator used by RSA
key generation.  Pure Python big-int arithmetic is fast enough at the
simulation key sizes we use (512-bit moduli by default).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ValidationError

# Witness set proven sufficient for n < 3,317,044,064,679,887,385,961,981
# (covers all 64-bit integers and then some).
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller-Rabin round; True means 'probably prime for witness a'."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(
    n: int, *, rounds: int = 24, rng: Optional[np.random.Generator] = None
) -> bool:
    """Return True if ``n`` is prime with overwhelming probability.

    For ``n`` below the deterministic bound the answer is exact.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1

    if n < 3_317_044_064_679_887_385_961_981:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n - 1]
    else:
        rng = rng or np.random.default_rng()
        witnesses = [
            2 + int(rng.integers(0, min(n - 4, 2**63 - 1))) for _ in range(rounds)
        ]
    return all(_miller_rabin_round(n, a, d, r) for a in witnesses)


def generate_prime(bits: int, rng: np.random.Generator) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    The candidate stream is drawn from ``rng`` so key generation is fully
    deterministic under :class:`repro.util.rng.RngStreams`.
    """
    if bits < 8:
        raise ValidationError(f"prime size too small: {bits} bits")
    while True:
        # Draw `bits` random bits, force the top bit (exact size) and the
        # bottom bit (odd).
        nwords = (bits + 63) // 64
        words = [int(rng.integers(0, 2**63)) | (int(rng.integers(0, 2)) << 63)
                 for _ in range(nwords)]
        n = 0
        for w in words:
            n = (n << 64) | w
        n &= (1 << bits) - 1
        n |= (1 << (bits - 1)) | 1
        # Cheap sieve before Miller-Rabin.
        if any(n % p == 0 for p in _SMALL_PRIMES if p < n):
            continue
        if is_probable_prime(n, rng=rng):
            return n
