"""Tests for great-circle geometry and propagation delay (repro.util.geo)."""

import pytest

from repro.errors import ValidationError
from repro.util.geo import (
    DEFAULT_CIRCUITY,
    GeoPoint,
    haversine_km,
    propagation_delay_ms,
)

ZURICH = GeoPoint(47.38, 8.54)
DUBLIN = GeoPoint(53.35, -6.26)
SINGAPORE = GeoPoint(1.35, 103.82)
AMSTERDAM = GeoPoint(52.37, 4.90)


class TestGeoPoint:
    def test_valid_point(self):
        p = GeoPoint(0.0, 0.0)
        assert p.lat == 0.0 and p.lon == 0.0

    @pytest.mark.parametrize("lat,lon", [(91, 0), (-91, 0), (0, 181), (0, -181)])
    def test_rejects_out_of_range(self, lat, lon):
        with pytest.raises(ValidationError):
            GeoPoint(lat, lon)

    def test_distance_method_matches_function(self):
        assert ZURICH.distance_km(DUBLIN) == haversine_km(ZURICH, DUBLIN)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(ZURICH, ZURICH) == pytest.approx(0.0)

    def test_symmetry(self):
        assert haversine_km(ZURICH, DUBLIN) == pytest.approx(
            haversine_km(DUBLIN, ZURICH)
        )

    def test_known_distance_zurich_dublin(self):
        # Great-circle Zurich-Dublin is roughly 1250 km.
        assert haversine_km(ZURICH, DUBLIN) == pytest.approx(1250, rel=0.05)

    def test_known_distance_zurich_singapore(self):
        # Roughly 10,300 km.
        assert haversine_km(ZURICH, SINGAPORE) == pytest.approx(10_300, rel=0.05)

    def test_triangle_inequality(self):
        d_direct = haversine_km(AMSTERDAM, SINGAPORE)
        d_via = haversine_km(AMSTERDAM, ZURICH) + haversine_km(ZURICH, SINGAPORE)
        assert d_direct <= d_via + 1e-6


class TestPropagationDelay:
    def test_floor_for_colocated_hosts(self):
        assert propagation_delay_ms(ZURICH, ZURICH) == pytest.approx(0.05)

    def test_scales_with_distance(self):
        near = propagation_delay_ms(ZURICH, DUBLIN)
        far = propagation_delay_ms(ZURICH, SINGAPORE)
        assert far > 5 * near

    def test_circuity_increases_delay(self):
        straight = propagation_delay_ms(ZURICH, DUBLIN, circuity=1.0)
        real = propagation_delay_ms(ZURICH, DUBLIN, circuity=DEFAULT_CIRCUITY)
        assert real == pytest.approx(straight * DEFAULT_CIRCUITY, rel=1e-6)

    def test_rejects_sub_unit_circuity(self):
        with pytest.raises(ValidationError):
            propagation_delay_ms(ZURICH, DUBLIN, circuity=0.5)

    def test_fibre_speed_sanity(self):
        # 1250 km at 2/3 c with 1.4 circuity: ~8.7 ms one way.
        delay = propagation_delay_ms(ZURICH, DUBLIN)
        assert 6.0 < delay < 12.0
