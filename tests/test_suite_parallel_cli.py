"""Tests for the parallel campaign and the test-suite CLI."""

import pytest

from repro.docdb.client import DocDBClient
from repro.scion.snet import ScionHost
from repro.suite.cli import build_parser, main, seed_servers
from repro.suite.collect import PathsCollector
from repro.suite.config import STATS_COLLECTION, SERVERS_COLLECTION, SuiteConfig
from repro.suite.parallel import ParallelCampaign
from repro.topology.scionlab import (
    MY_AS,
    build_scionlab_world,
    scionlab_network_config,
)


class TestParallelCampaign:
    @pytest.fixture()
    def env(self):
        client = DocDBClient()
        db = client["upin"]
        seed_servers(db)
        host = ScionHost.scionlab(seed=3)
        config = SuiteConfig(iterations=1, destination_ids=[3, 5])
        PathsCollector(host, db, config).collect()
        return host, db, config

    def test_all_destinations_measured(self, env):
        host, db, config = env
        campaign = ParallelCampaign(
            host.topology, MY_AS, db, config,
            base_config=scionlab_network_config(seed=3), seed=3,
        )
        report = campaign.run(iterations=1, max_workers=2)
        assert set(report.per_destination) == {3, 5}
        assert report.stats_stored == 8  # 6 Magdeburg + 2 KAIST paths
        assert report.measurement_errors == 0
        assert db[STATS_COLLECTION].count_documents() == 8

    def test_results_independent_of_worker_count(self, env):
        host, db, config = env

        def run(workers):
            client = DocDBClient()
            fresh = client["upin"]
            seed_servers(fresh)
            PathsCollector(
                ScionHost.scionlab(seed=3), fresh, config
            ).collect()
            ParallelCampaign(
                host.topology, MY_AS, fresh, config,
                base_config=scionlab_network_config(seed=3), seed=3,
            ).run(iterations=1, max_workers=workers)
            docs = fresh[STATS_COLLECTION].find(sort=[("_id", 1)])
            return [
                (d["path_id"], round(d["avg_latency_ms"], 6)) for d in docs
            ]

        assert run(1) == run(4)


class TestSuiteCli:
    def test_parser_mirrors_test_suite_sh(self):
        args = build_parser().parse_args(["100", "--skip"])
        assert args.iterations == 100 and args.skip and not args.some_only

    def test_some_only_flag(self):
        args = build_parser().parse_args(["10", "--some_only"])
        assert args.some_only

    def test_seed_servers_idempotent(self):
        db = DocDBClient()["upin"]
        assert seed_servers(db) == 21
        assert seed_servers(db) == 21
        assert db[SERVERS_COLLECTION].count_documents() == 21

    def test_main_some_only(self, capsys):
        assert main(["1", "--some_only"]) == 0
        out = capsys.readouterr().out
        assert "collected 22 paths" in out
        assert "stats stored" in out

    def test_main_skip_without_paths_stores_nothing(self, capsys):
        assert main(["1", "--skip", "--some_only"]) == 0
        out = capsys.readouterr().out
        assert "campaign: 0 stats stored" in out

    def test_main_persists_db(self, tmp_path, capsys):
        db_dir = str(tmp_path / "db")
        assert main(["1", "--some_only", "--db-dir", db_dir]) == 0
        restored = DocDBClient.load_from(db_dir)
        assert restored["upin"][STATS_COLLECTION].count_documents() == 22

    def test_main_parallel_mode(self, capsys):
        assert main(["1", "--some_only", "--parallel", "2"]) == 0
        assert "parallel campaign" in capsys.readouterr().out

    def test_main_metrics_flag(self, capsys):
        assert main(["1", "--some_only", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "batches:" in out

    def test_main_parallel_metrics_and_fail_fast_flags(self, capsys):
        assert main(
            ["1", "--some_only", "--parallel", "2", "--metrics", "--fail-fast"]
        ) == 0
        out = capsys.readouterr().out
        assert "parallel campaign" in out
        assert "metrics:" in out

    def test_main_parallel_signed(self, capsys):
        assert main(["1", "--some_only", "--parallel", "2", "--sign"]) == 0
        out = capsys.readouterr().out
        assert "signing stats as" in out
        assert "parallel campaign: 22 stats stored" in out
