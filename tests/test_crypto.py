"""Tests for the simulation-grade PKI (repro.crypto)."""

import numpy as np
import pytest

from repro.crypto.certs import issue_certificate, self_signed, verify_chain
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rsa import (
    RSAKeyPair,
    RSAPublicKey,
    keypair_from_seed,
    require_valid,
    sign,
    verify,
)
from repro.crypto.trc import TRC, TrustStore
from repro.errors import CertificateError, SignatureError, ValidationError


@pytest.fixture(scope="module")
def core_kp():
    return keypair_from_seed(1, bits=256)


@pytest.fixture(scope="module")
def leaf_kp():
    return keypair_from_seed(2, bits=256)


class TestPrimes:
    @pytest.mark.parametrize("p", [2, 3, 5, 7, 97, 7919, 104729])
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", [0, 1, 4, 100, 7917, 104730, 561, 41041])
    def test_known_composites(self, n):
        # 561 and 41041 are Carmichael numbers — Fermat liars.
        assert not is_probable_prime(n)

    def test_generate_prime_bit_length(self):
        rng = np.random.default_rng(0)
        p = generate_prime(96, rng)
        assert p.bit_length() == 96
        assert is_probable_prime(p)

    def test_generate_prime_odd(self):
        rng = np.random.default_rng(1)
        assert generate_prime(64, rng) % 2 == 1

    def test_generate_prime_deterministic(self):
        a = generate_prime(64, np.random.default_rng(5))
        b = generate_prime(64, np.random.default_rng(5))
        assert a == b

    def test_rejects_tiny_sizes(self):
        with pytest.raises(ValidationError):
            generate_prime(4, np.random.default_rng(0))


class TestRSA:
    def test_sign_verify_roundtrip(self, leaf_kp):
        sig = sign(leaf_kp, b"hello scion")
        assert verify(leaf_kp.public, b"hello scion", sig)

    def test_tampered_message_fails(self, leaf_kp):
        sig = sign(leaf_kp, b"hello scion")
        assert not verify(leaf_kp.public, b"hello scionX", sig)

    def test_wrong_key_fails(self, leaf_kp, core_kp):
        sig = sign(leaf_kp, b"msg")
        assert not verify(core_kp.public, b"msg", sig)

    def test_signature_out_of_range_rejected(self, leaf_kp):
        assert not verify(leaf_kp.public, b"msg", leaf_kp.public.n + 1)
        assert not verify(leaf_kp.public, b"msg", -1)

    def test_require_valid_raises(self, leaf_kp):
        with pytest.raises(SignatureError):
            require_valid(leaf_kp.public, b"msg", 12345)

    def test_keygen_deterministic_from_seed(self):
        assert keypair_from_seed(9, bits=256).public == keypair_from_seed(
            9, bits=256
        ).public

    def test_public_key_serialization_roundtrip(self, leaf_kp):
        data = leaf_kp.public.to_dict()
        assert RSAPublicKey.from_dict(data) == leaf_kp.public

    def test_fingerprint_stable_and_short(self, leaf_kp):
        fp = leaf_kp.public.fingerprint()
        assert fp == leaf_kp.public.fingerprint()
        assert len(fp) == 16

    def test_keypair_sign_method(self, leaf_kp):
        assert verify(leaf_kp.public, b"x", leaf_kp.sign(b"x"))


class TestCertificates:
    def test_issue_and_verify(self, core_kp, leaf_kp):
        cert = issue_certificate("core", core_kp, "leaf", leaf_kp.public)
        assert cert.verify_with(core_kp.public)

    def test_tampered_subject_fails(self, core_kp, leaf_kp):
        cert = issue_certificate("core", core_kp, "leaf", leaf_kp.public)
        from dataclasses import replace

        forged = replace(cert, subject="other")
        assert not forged.verify_with(core_kp.public)

    def test_self_signed_root(self, core_kp):
        root = self_signed("core", core_kp)
        assert root.subject == root.issuer == "core"
        assert root.verify_with(core_kp.public)

    def test_serialization_roundtrip(self, core_kp, leaf_kp):
        from repro.crypto.certs import Certificate

        cert = issue_certificate("core", core_kp, "leaf", leaf_kp.public, serial=7)
        again = Certificate.from_dict(cert.to_dict())
        assert again.payload() == cert.payload()
        assert again.signature == cert.signature

    def test_chain_verifies_against_root(self, core_kp, leaf_kp):
        cert = issue_certificate("core", core_kp, "leaf", leaf_kp.public)
        key = verify_chain([cert], {"core": core_kp.public})
        assert key == leaf_kp.public

    def test_chain_with_intermediate(self, core_kp, leaf_kp):
        inter_kp = keypair_from_seed(3, bits=256)
        inter_cert = issue_certificate("core", core_kp, "inter", inter_kp.public)
        leaf_cert = issue_certificate("inter", inter_kp, "leaf", leaf_kp.public)
        key = verify_chain([leaf_cert, inter_cert], {"core": core_kp.public})
        assert key == leaf_kp.public

    def test_untrusted_root_rejected(self, core_kp, leaf_kp):
        cert = issue_certificate("core", core_kp, "leaf", leaf_kp.public)
        with pytest.raises(CertificateError):
            verify_chain([cert], {"other-root": leaf_kp.public})

    def test_broken_chain_rejected(self, core_kp, leaf_kp):
        inter_kp = keypair_from_seed(3, bits=256)
        leaf_cert = issue_certificate("inter", inter_kp, "leaf", leaf_kp.public)
        unrelated = issue_certificate("core", core_kp, "someone", core_kp.public)
        with pytest.raises(CertificateError):
            verify_chain([leaf_cert, unrelated], {"core": core_kp.public})

    def test_empty_chain_rejected(self):
        with pytest.raises(CertificateError):
            verify_chain([], {})

    def test_expiry_epoch_enforced(self, core_kp, leaf_kp):
        cert = issue_certificate(
            "core", core_kp, "leaf", leaf_kp.public, not_before=5, not_after=10
        )
        verify_chain([cert], {"core": core_kp.public}, epoch=7)
        with pytest.raises(CertificateError):
            verify_chain([cert], {"core": core_kp.public}, epoch=11)


class TestTrustStore:
    def test_trc_roundtrip(self, core_kp):
        trc = TRC(isd=17, version=2, core_keys={"core": core_kp.public})
        again = TRC.from_dict(trc.to_dict())
        assert again.core_keys["core"] == core_kp.public
        assert again.isd == 17 and again.version == 2

    def test_newer_trc_replaces_older(self, core_kp, leaf_kp):
        store = TrustStore()
        store.add_trc(TRC(isd=1, version=1, core_keys={"a": core_kp.public}))
        store.add_trc(TRC(isd=1, version=2, core_keys={"b": leaf_kp.public}))
        assert store.trc_for(1).version == 2
        assert "b" in store.trusted_roots(1)

    def test_older_trc_ignored(self, core_kp, leaf_kp):
        store = TrustStore()
        store.add_trc(TRC(isd=1, version=2, core_keys={"b": leaf_kp.public}))
        store.add_trc(TRC(isd=1, version=1, core_keys={"a": core_kp.public}))
        assert store.trc_for(1).version == 2

    def test_missing_isd_raises(self):
        with pytest.raises(CertificateError):
            TrustStore().trc_for(99)

    def test_verify_certificate_via_store(self, core_kp, leaf_kp):
        store = TrustStore(
            [TRC(isd=17, version=1, core_keys={"core": core_kp.public})]
        )
        cert = issue_certificate("core", core_kp, "leaf", leaf_kp.public)
        assert store.verify_certificate([cert]) == leaf_kp.public

    def test_isds_listing(self, core_kp):
        store = TrustStore(
            [
                TRC(isd=17, version=1, core_keys={"a": core_kp.public}),
                TRC(isd=19, version=1, core_keys={"b": core_kp.public}),
            ]
        )
        assert store.isds() == [17, 19]
