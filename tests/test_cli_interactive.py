"""Tests for the interactive ping mode of the scion-sim CLI."""

import io

import pytest

from repro.apps.cli import main


class TestInteractivePing:
    def test_menu_and_choice(self, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO("2\n"))
        monkeypatch.setattr("builtins.input", lambda prompt="": "2")
        rc = main(
            ["ping", "19-ffaa:0:1303,[141.44.25.144]", "-c", "2", "--interactive"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Available paths:" in out
        assert "[ 2]" in out
        assert "packets transmitted" in out

    def test_out_of_range_choice_fails(self, capsys, monkeypatch):
        monkeypatch.setattr("builtins.input", lambda prompt="": "99")
        rc = main(
            ["ping", "19-ffaa:0:1303,[141.44.25.144]", "-c", "1", "--interactive"]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_garbage_choice_fails(self, capsys, monkeypatch):
        monkeypatch.setattr("builtins.input", lambda prompt="": "banana")
        rc = main(
            ["ping", "19-ffaa:0:1303,[141.44.25.144]", "-c", "1", "--interactive"]
        )
        assert rc == 1
        assert "not a path index" in capsys.readouterr().err

    def test_interactive_lists_all_paths_not_just_ten(self, capsys, monkeypatch):
        """Ireland has 42 combinable paths; interactive mode shows all."""
        monkeypatch.setattr("builtins.input", lambda prompt="": "0")
        rc = main(
            ["ping", "16-ffaa:0:1002,[172.31.43.7]", "-c", "1", "--interactive"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[41]" in out
