"""Property-based tests for the WAL durability contract (§4.2.2).

The acceptance criteria of the storage engine, stated as laws:

1. **committed prefix** — for *every* crash point, the recovered state
   equals the no-crash state restricted to the operations whose WAL
   records were committed before the crash;
2. **flush atomicity** — a campaign batch (one
   :meth:`StatsRepository.flush` = one ``insert_many`` = one WAL
   record) is all-or-nothing: a crash never leaves part of a batch;
3. **corruption detection** — flipping any payload byte of any record
   is always detected at recovery and names the record's LSN;
4. **idempotence** — recovering twice yields exactly the state of
   recovering once.
"""

import json
import os
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docdb.client import DocDBClient
from repro.docdb.wal import HEADER_BYTES
from repro.errors import DataLossError, WalCorruptionError
from repro.suite.faults import CrashPlan, SimulatedCrash
from repro.suite.storage import StatsRepository

WAL_SETTINGS = settings(max_examples=25, deadline=None)


def canonical(client: DocDBClient):
    """A comparable dump: every doc of every collection, plus indexes."""
    out = {}
    for db_name in client.list_database_names():
        db = client.database(db_name)
        for coll_name in db.list_collection_names():
            coll = db[coll_name]
            docs = sorted(
                (json.dumps(d, sort_keys=True, default=str) for d in coll.find({})),
            )
            out[f"{db_name}.{coll_name}"] = (docs, sorted(coll.list_indexes()))
    return out


# Each op appends exactly one WAL record, so "crash after the Nth
# append" is "commit exactly the first N ops".
batches = st.lists(
    st.integers(min_value=1, max_value=5),  # docs per batch
    min_size=1,
    max_size=12,
)


def apply_batches(client, sizes):
    doc_id = 0
    for size in sizes:
        # Look the collection up lazily so an empty prefix creates nothing
        # (matching what recovery reconstructs from an empty log).
        coll = client["upin"]["paths_stats"]
        coll.insert_many(
            [{"_id": f"d{doc_id + j}", "batch": size} for j in range(size)]
        )
        doc_id += size


class TestCommittedPrefix:
    @WAL_SETTINGS
    @given(sizes=st.data())
    def test_recovered_state_is_the_committed_prefix(self, tmp_path_factory, sizes):
        ops = sizes.draw(batches)
        crash_at = sizes.draw(st.integers(min_value=1, max_value=len(ops)))
        base = str(tmp_path_factory.mktemp("wal-prefix"))

        # Crashed run: die right after the crash_at-th WAL append.
        client = DocDBClient.open(base, segment_bytes=512)
        CrashPlan(at_append=crash_at).install(client.wal)
        with pytest.raises(SimulatedCrash):
            apply_batches(client, ops)
            raise AssertionError("crash plan never fired")  # pragma: no cover

        recovered = DocDBClient.open(base)
        got = canonical(recovered)
        recovered.close()

        # Oracle: a volatile client that ran only the committed prefix.
        oracle = DocDBClient()
        apply_batches(oracle, ops[:crash_at])
        assert got == canonical(oracle)

    @WAL_SETTINGS
    @given(sizes=st.data())
    def test_torn_write_commits_strictly_before(self, tmp_path_factory, sizes):
        ops = sizes.draw(batches)
        torn_at = sizes.draw(st.integers(min_value=1, max_value=len(ops)))
        base = str(tmp_path_factory.mktemp("wal-torn"))

        client = DocDBClient.open(base, segment_bytes=512)
        CrashPlan(torn_at_append=torn_at, torn_fraction=0.4).install(client.wal)
        with pytest.raises(SimulatedCrash):
            apply_batches(client, ops)
            raise AssertionError("crash plan never fired")  # pragma: no cover

        recovered = DocDBClient.open(base)
        report = recovered.recovery_report
        got = canonical(recovered)
        recovered.close()
        assert report.torn_bytes_truncated > 0

        oracle = DocDBClient()
        apply_batches(oracle, ops[: torn_at - 1])
        assert got == canonical(oracle)


class TestFlushAtomicity:
    @WAL_SETTINGS
    @given(
        n_batches=st.integers(min_value=1, max_value=6),
        batch_size=st.integers(min_value=1, max_value=8),
        crash_batch=st.integers(min_value=1, max_value=6),
    )
    def test_flush_is_all_or_nothing(
        self, tmp_path_factory, n_batches, batch_size, crash_batch
    ):
        """A crash mid-batch loses the whole batch, never a slice of it."""
        crash_batch = min(crash_batch, n_batches)
        base = str(tmp_path_factory.mktemp("wal-flush"))
        client = DocDBClient.open(base)
        repo = StatsRepository(client["upin"]["paths_stats"])
        CrashPlan(torn_at_append=crash_batch).install(client.wal)

        doc_id = 0
        with pytest.raises(SimulatedCrash):
            for _ in range(n_batches):
                for _ in range(batch_size):
                    repo.add({"_id": f"s{doc_id}", "lat": doc_id})
                    doc_id += 1
                repo.flush()  # one WAL record per flush
            raise AssertionError("crash plan never fired")  # pragma: no cover

        recovered = DocDBClient.open(base)
        stored = {d["_id"] for d in recovered["upin"]["paths_stats"].find({})}
        recovered.close()
        expected = {
            f"s{i}" for i in range((crash_batch - 1) * batch_size)
        }
        assert stored == expected  # complete batches only, no partial slice

    def test_data_loss_fault_drops_whole_buffer(self):
        """The §4.1.2 data-loss fault also respects batch atomicity."""
        def exploding_hook(batch):
            raise DataLossError("injected")

        repo = StatsRepository(
            DocDBClient()["upin"]["paths_stats"], flush_hook=exploding_hook
        )
        for i in range(5):
            repo.add({"_id": i})
        with pytest.raises(DataLossError):
            repo.flush()
        assert repo.lost_last_flush == 5
        assert len(repo.collection) == 0  # nothing partially stored
        assert len(repo) == 0  # and the buffer is gone


class TestCorruptionDetection:
    @WAL_SETTINGS
    @given(data=st.data())
    def test_any_payload_byte_flip_is_detected(self, tmp_path_factory, data):
        n_ops = data.draw(st.integers(min_value=1, max_value=8))
        base = str(tmp_path_factory.mktemp("wal-corrupt"))
        with DocDBClient.open(base) as client:
            for i in range(n_ops):
                client["upin"]["paths"].insert_one({"_id": i, "pad": "x" * 16})

        # Pick a record, then a byte inside its *payload* (CRC-covered).
        wal_dir = os.path.join(base, "wal")
        [seg] = [os.path.join(wal_dir, n) for n in os.listdir(wal_dir)
                 if n.endswith(".log")]
        with open(seg, "rb") as fh:
            blob = bytearray(fh.read())
        # Walk the records to find their payload extents.
        extents = []
        offset, lsn = 0, 1
        while offset < len(blob):
            length = int.from_bytes(blob[offset:offset + 4], "little")
            extents.append((lsn, offset + HEADER_BYTES, length))
            offset += HEADER_BYTES + length
            lsn += 1
        target_lsn, body_start, body_len = data.draw(st.sampled_from(extents))
        flip_at = body_start + data.draw(
            st.integers(min_value=0, max_value=body_len - 1)
        )
        flip_to = data.draw(st.integers(min_value=1, max_value=255))
        blob[flip_at] ^= flip_to
        with open(seg, "wb") as fh:
            fh.write(bytes(blob))

        with pytest.raises(WalCorruptionError) as err:
            DocDBClient.open(base)
        assert err.value.lsn == target_lsn
        assert str(target_lsn) in str(err.value)

    def test_crc32_actually_covers_the_payload(self, tmp_path):
        # Guard against a refactor that checksums the wrong slice.
        with DocDBClient.open(str(tmp_path)) as client:
            client["upin"]["paths"].insert_one({"_id": 1})
        wal_dir = os.path.join(str(tmp_path), "wal")
        [seg] = [os.path.join(wal_dir, n) for n in os.listdir(wal_dir)
                 if n.endswith(".log")]
        with open(seg, "rb") as fh:
            blob = fh.read()
        length = int.from_bytes(blob[0:4], "little")
        crc = int.from_bytes(blob[4:8], "little")
        assert zlib.crc32(blob[8:8 + length]) == crc


class TestRecoveryIdempotence:
    @WAL_SETTINGS
    @given(data=st.data())
    def test_recover_twice_equals_once(self, tmp_path_factory, data):
        ops = data.draw(batches)
        crash_at = data.draw(st.integers(min_value=1, max_value=len(ops)))
        kind = data.draw(st.sampled_from(["kill", "torn"]))
        base = str(tmp_path_factory.mktemp("wal-idem"))

        client = DocDBClient.open(base, segment_bytes=512)
        plan = (
            CrashPlan(at_append=crash_at)
            if kind == "kill"
            else CrashPlan(torn_at_append=crash_at)
        )
        plan.install(client.wal)
        with pytest.raises(SimulatedCrash):
            apply_batches(client, ops)
            raise AssertionError("crash plan never fired")  # pragma: no cover

        first = DocDBClient.open(base)
        dump1 = canonical(first)
        lsn1 = first.recovery_report.last_lsn
        first.close()
        second = DocDBClient.open(base)
        dump2 = canonical(second)
        lsn2 = second.recovery_report.last_lsn
        # The second recovery found an already-clean log.
        assert second.recovery_report.torn_bytes_truncated == 0
        second.close()
        assert dump1 == dump2
        assert lsn1 == lsn2
