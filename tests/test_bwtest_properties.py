"""Property-based tests for bwtester parameter resolution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.bwtester import parse_bwtest_params
from repro.errors import BandwidthTestError, ParseError

durations = st.floats(min_value=0.5, max_value=10.0, allow_nan=False)
sizes = st.integers(min_value=4, max_value=9000)
packet_counts = st.integers(min_value=1, max_value=10**6)


class TestBwtestParamProperties:
    @given(durations, sizes, packet_counts)
    def test_derived_bandwidth_consistent(self, duration, size, packets):
        text = f"{duration},{size},{packets},?"
        params = parse_bwtest_params(text)
        expected = packets * size * 8.0 / duration
        assert params.target.bps == pytest.approx(expected, rel=1e-9)

    @given(durations, sizes, st.floats(min_value=0.1, max_value=500.0,
                                       allow_nan=False))
    def test_derived_packets_consistent(self, duration, size, mbps):
        params = parse_bwtest_params(f"{duration},{size},?,{mbps}Mbps")
        implied = params.num_packets * size * 8.0 / duration
        # Rounding to whole packets keeps the rate within one packet.
        assert implied == pytest.approx(mbps * 1e6, abs=size * 8.0 / duration + 1)

    @given(durations, sizes, packet_counts)
    def test_spec_string_reparses_equivalently(self, duration, size, packets):
        params = parse_bwtest_params(f"{duration},{size},{packets},?")
        again = parse_bwtest_params(params.spec_string())
        assert again.packet_bytes == params.packet_bytes
        assert again.duration_s == pytest.approx(params.duration_s, rel=0.01)
        assert again.target.bps == pytest.approx(params.target.bps, rel=0.02)

    @given(sizes, packet_counts, st.floats(min_value=1.0, max_value=100.0,
                                           allow_nan=False))
    def test_derived_duration_consistent(self, size, packets, mbps):
        target_bps = mbps * 1e6
        duration = packets * size * 8.0 / target_bps
        if not (0 < duration <= 10.0):
            return
        params = parse_bwtest_params(f"?,{size},{packets},{mbps}Mbps")
        assert params.duration_s == pytest.approx(duration, rel=1e-9)

    @given(st.floats(min_value=10.01, max_value=100.0, allow_nan=False))
    def test_duration_cap_always_enforced(self, duration):
        with pytest.raises(BandwidthTestError):
            parse_bwtest_params(f"{duration},64,?,12Mbps")

    @given(st.integers(min_value=-10, max_value=3))
    def test_packet_floor_always_enforced(self, size):
        with pytest.raises((BandwidthTestError, ParseError, ValueError)):
            parse_bwtest_params(f"3,{size},?,12Mbps")
