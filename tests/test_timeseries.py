"""Tests for time-series loss analysis (repro.analysis.timeseries)."""

import pytest

from repro.analysis.timeseries import (
    LossSample,
    LossWindow,
    heavy_loss_windows,
    loss_timeline,
    path_latency_series,
    temporal_concentration,
)
from repro.experiments import fig9


def _sample(path, t, loss):
    return LossSample(path_id=path, timestamp_ms=t, loss_pct=loss)


class TestWindowDetection:
    def test_no_heavy_samples_no_windows(self):
        timeline = [_sample("a", t, 0.0) for t in range(0, 10_000, 1000)]
        assert heavy_loss_windows(timeline) == []

    def test_single_burst_one_window(self):
        timeline = (
            [_sample("a", t, 0.0) for t in (0, 1000)]
            + [_sample("a", t, 100.0) for t in (2000, 3000, 4000)]
            + [_sample("a", 5000, 0.0)]
        )
        windows = heavy_loss_windows(timeline, merge_gap_ms=1500)
        assert len(windows) == 1
        w = windows[0]
        assert (w.start_ms, w.end_ms, w.samples) == (2000, 4000, 3)
        assert w.affected_paths == ("a",)
        assert w.duration_ms == 2000

    def test_distant_bursts_split(self):
        timeline = [
            _sample("a", 1000, 100.0),
            _sample("a", 500_000, 100.0),
        ]
        windows = heavy_loss_windows(timeline, merge_gap_ms=60_000)
        assert len(windows) == 2

    def test_threshold_respected(self):
        timeline = [_sample("a", 0, 49.0), _sample("a", 100, 51.0)]
        windows = heavy_loss_windows(timeline, threshold_pct=50.0)
        assert len(windows) == 1 and windows[0].samples == 1

    def test_multiple_paths_in_window(self):
        timeline = [
            _sample("a", 0, 100.0),
            _sample("b", 100, 100.0),
        ]
        windows = heavy_loss_windows(timeline)
        assert windows[0].affected_paths == ("a", "b")


class TestConcentration:
    def test_all_inside(self):
        timeline = [_sample("a", t, 100.0) for t in (0, 100, 200)]
        windows = heavy_loss_windows(timeline)
        assert temporal_concentration(timeline, windows) == 1.0

    def test_none_heavy(self):
        timeline = [_sample("a", 0, 0.0)]
        assert temporal_concentration(timeline, []) == 1.0

    def test_partial(self):
        timeline = [
            _sample("a", 0, 100.0),
            _sample("a", 10**9, 100.0),
        ]
        window = LossWindow(start_ms=0, end_ms=0, samples=1, affected_paths=("a",))
        assert temporal_concentration(timeline, [window]) == 0.5


class TestOnFig9Campaign:
    """The payoff: verify the paper's temporal-congestion hypothesis."""

    @pytest.fixture(scope="class")
    def world(self):
        from repro.experiments.world import run_campaign

        return run_campaign(
            [fig9.N_VIRGINIA_SERVER_ID],
            iterations=2,
            seed=20231112,
            prepare=fig9._schedule_episodes,
        )

    def test_failures_are_temporally_concentrated(self, world):
        timeline = loss_timeline(world.db, fig9.N_VIRGINIA_SERVER_ID)
        windows = heavy_loss_windows(timeline, threshold_pct=90.0)
        assert windows, "the scheduled episodes must show up"
        assert temporal_concentration(timeline, windows, threshold_pct=90.0) == 1.0

    def test_one_window_per_iteration(self, world):
        timeline = loss_timeline(world.db, fig9.N_VIRGINIA_SERVER_ID)
        windows = heavy_loss_windows(
            timeline, threshold_pct=90.0, merge_gap_ms=120_000
        )
        assert len(windows) == 2  # one episode per campaign iteration

    def test_windows_hit_the_paper_cluster(self, world):
        timeline = loss_timeline(world.db, fig9.N_VIRGINIA_SERVER_ID)
        windows = heavy_loss_windows(timeline, threshold_pct=90.0)
        for w in windows:
            assert set(w.affected_paths) == set(fig9.PAPER_FAILING_PATHS)

    def test_latency_series_ordered(self, world):
        series = path_latency_series(world.db, "2_0")
        stamps = [t for t, _ in series]
        assert stamps == sorted(stamps)
        assert len(series) == 2
