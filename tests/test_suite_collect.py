"""Tests for path collection and suite configuration."""

import pytest

from repro.docdb.client import DocDBClient
from repro.errors import ValidationError
from repro.scion.snet import ScionHost
from repro.suite.cli import seed_servers
from repro.suite.collect import PathsCollector, path_document_id
from repro.suite.config import PATHS_COLLECTION, SERVERS_COLLECTION, SuiteConfig


@pytest.fixture()
def env():
    client = DocDBClient()
    db = client["upin"]
    seed_servers(db)
    host = ScionHost.scionlab(seed=1)
    return host, db


class TestSuiteConfig:
    def test_defaults_match_paper_commands(self):
        config = SuiteConfig()
        assert config.ping_count == 30
        assert config.ping_interval == "0.1s"
        assert config.showpaths_max == 40
        assert config.hop_slack == 1
        assert config.bw_params(64) == "3,64,?,12Mbps"
        assert config.bw_params("MTU") == "3,MTU,?,12Mbps"

    def test_validation(self):
        with pytest.raises(ValidationError):
            SuiteConfig(iterations=-1)
        with pytest.raises(ValidationError):
            SuiteConfig(hop_slack=-1)
        with pytest.raises(ValidationError):
            SuiteConfig(ping_count=0)
        with pytest.raises(ValidationError):
            SuiteConfig(bw_duration_s=0)

    def test_path_document_id_scheme(self):
        assert path_document_id(2, 15) == "2_15"


class TestDestinationSelection:
    def test_all_by_default(self, env):
        host, db = env
        collector = PathsCollector(host, db, SuiteConfig())
        assert len(collector.destinations()) == 21

    def test_some_only_first_destination(self, env):
        host, db = env
        collector = PathsCollector(host, db, SuiteConfig(some_only=True))
        dests = collector.destinations()
        assert len(dests) == 1 and dests[0]["_id"] == 1

    def test_explicit_ids(self, env):
        host, db = env
        collector = PathsCollector(host, db, SuiteConfig(destination_ids=[3, 5]))
        assert [d["_id"] for d in collector.destinations()] == [3, 5]


class TestCollection:
    def test_collect_one_filters_min_plus_one(self, env):
        host, db = env
        collector = PathsCollector(host, db, SuiteConfig())
        docs = collector.collect_one(1, "16-ffaa:0:1002")
        hop_counts = [d["hop_count"] for d in docs]
        assert min(hop_counts) == 6
        assert max(hop_counts) == 7
        assert len(docs) == 22

    def test_documents_have_paper_schema(self, env):
        host, db = env
        collector = PathsCollector(host, db, SuiteConfig())
        docs = collector.collect_one(3, "19-ffaa:0:1303")
        doc = docs[0]
        assert doc["_id"] == "3_0"
        assert doc["server_id"] == 3
        assert doc["sequence"].count("#") == doc["hop_count"]
        assert doc["mtu"] == 1472
        assert doc["isds"] == sorted(doc["isds"])
        assert len(doc["ases"]) == doc["hop_count"]

    def test_collect_all_populates_collection(self, env):
        host, db = env
        config = SuiteConfig(destination_ids=[1, 3])
        report = PathsCollector(host, db, config).collect()
        assert report.destinations == 2
        assert report.paths_stored == 28  # 22 Ireland + 6 Magdeburg
        assert db[PATHS_COLLECTION].count_documents() == 28

    def test_recollection_idempotent(self, env):
        host, db = env
        config = SuiteConfig(destination_ids=[3])
        collector = PathsCollector(host, db, config)
        collector.collect()
        report = collector.collect()
        assert report.paths_stored == 6
        assert report.paths_deleted == 0
        assert db[PATHS_COLLECTION].count_documents() == 6

    def test_stale_paths_deleted(self, env):
        host, db = env
        config = SuiteConfig(destination_ids=[3])
        collector = PathsCollector(host, db, config)
        collector.collect()
        # Simulate a path that disappeared from the network.
        db[PATHS_COLLECTION].insert_one(
            {"_id": "3_99", "server_id": 3, "path_index": 99, "hop_count": 5,
             "isds": [17], "ases": [], "sequence": "", "hops_display": "",
             "mtu": 1472, "dst_isd_as": "19-ffaa:0:1303",
             "fingerprint": "x", "latency_hint_ms": None}
        )
        report = collector.collect()
        assert report.paths_deleted == 1
        assert db[PATHS_COLLECTION].find_one({"_id": "3_99"}) is None

    def test_hop_slack_zero_keeps_only_min(self, env):
        host, db = env
        collector = PathsCollector(host, db, SuiteConfig(hop_slack=0))
        docs = collector.collect_one(1, "16-ffaa:0:1002")
        assert {d["hop_count"] for d in docs} == {6}

    def test_failure_recorded_and_campaign_continues(self, env):
        host, db = env
        db[SERVERS_COLLECTION].insert_one(
            {"_id": 99, "isd_as": "17-ffaa:1:e01", "ip": "127.0.0.1",
             "address": "17-ffaa:1:e01,[127.0.0.1]"}
        )
        config = SuiteConfig(destination_ids=[3, 99])
        report = PathsCollector(host, db, config).collect()
        # Destination 99 is ourselves -> no path; 3 still collected.
        assert 99 in report.failures
        assert report.paths_stored == 6
