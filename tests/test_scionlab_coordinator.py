"""Tests for the coordinator, VM artifacts and defaults (repro.scionlab)."""

import pytest

from repro.errors import ValidationError
from repro.scionlab.coordinator import Coordinator
from repro.scionlab.defaults import (
    available_server_documents,
    server_id_of,
    study_destination_ids,
)
from repro.scionlab.vm import render_vagrantfile
from repro.topology.entities import ASRole
from repro.topology.scionlab import ETHZ_AP, build_scionlab_world

from tests.helpers import build_tiny_world


@pytest.fixture()
def coordinator():
    return Coordinator(build_tiny_world(), seed=5)


class TestTrustPlane:
    def test_trc_per_isd(self, coordinator):
        store = coordinator.trust_store()
        assert store.isds() == [1, 2]

    def test_core_keys_registered(self, coordinator):
        trc = coordinator.trc_for(1)
        assert set(trc.core_ases()) == {"1-ffaa:0:1", "1-ffaa:0:2"}

    def test_issue_as_certificate_verifies(self, coordinator):
        from repro.crypto.rsa import keypair_from_seed

        kp = keypair_from_seed(77, bits=256)
        cert = coordinator.issue_as_certificate("2-ffaa:0:2", kp.public)
        store = coordinator.trust_store()
        assert store.verify_certificate([cert]) == kp.public

    def test_core_keypair_lookup(self, coordinator):
        kp = coordinator.core_keypair("1-ffaa:0:1")
        assert kp.public.n > 0

    def test_core_keypair_for_non_core_raises(self, coordinator):
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            coordinator.core_keypair("2-ffaa:0:2")


class TestUserASLifecycle:
    def test_create_user_as(self, coordinator):
        topo, user = coordinator.create_user_as("1-ffaa:0:3", name="my-as")
        assert user.isd_as.isd == 1
        assert user.attachment_point == coordinator.topology.as_of("1-ffaa:0:3").isd_as
        assert user.isd_as in topo
        assert topo.as_of(user.isd_as).role is ASRole.USER

    def test_certificate_chains_to_core(self, coordinator):
        _topo, user = coordinator.create_user_as("1-ffaa:0:3")
        store = coordinator.trust_store()
        assert store.verify_certificate(user.certificate_chain) == user.keypair.public

    def test_user_as_linked_under_ap(self, coordinator):
        topo, user = coordinator.create_user_as("1-ffaa:0:3")
        parents = topo.parents_of(user.isd_as)
        assert [str(p) for p in parents] == ["1-ffaa:0:3"]

    def test_access_link_asymmetric(self, coordinator):
        topo, user = coordinator.create_user_as("1-ffaa:0:3")
        link = topo.link_between("1-ffaa:0:3", user.isd_as)[0]
        assert link.capacity_from(user.isd_as) < link.capacity_from(
            topo.as_of("1-ffaa:0:3").isd_as
        )

    def test_unique_asns_for_multiple_users(self, coordinator):
        _t1, u1 = coordinator.create_user_as("1-ffaa:0:3")
        _t2, u2 = coordinator.create_user_as("1-ffaa:0:3")
        assert u1.isd_as != u2.isd_as

    def test_non_ap_attachment_rejected(self, coordinator):
        with pytest.raises(ValidationError):
            coordinator.create_user_as("1-ffaa:0:1")

    def test_original_topology_not_mutated(self):
        topo = build_tiny_world()
        coordinator = Coordinator(topo, seed=5)
        coordinator.create_user_as("1-ffaa:0:3")
        assert len(topo) == 6  # untouched; coordinator tracks the new one

    def test_user_as_registry(self, coordinator):
        _t, user = coordinator.create_user_as("1-ffaa:0:3")
        assert coordinator.user_as(user.isd_as) is user
        assert coordinator.list_user_ases() == [user]

    def test_new_world_paths_work(self, coordinator):
        """A freshly attached AS can immediately combine paths (§3.2 aha)."""
        from repro.scion.snet import ScionHost

        topo, user = coordinator.create_user_as("1-ffaa:0:3")
        host = ScionHost(topo, user.isd_as)
        paths = host.paths("2-ffaa:0:2", max_paths=None)
        assert paths and paths[0].hop_count == 5

    def test_works_on_scionlab_world(self):
        coordinator = Coordinator(build_scionlab_world(), seed=5)
        topo, user = coordinator.create_user_as(ETHZ_AP)
        assert user.isd_as.isd == 17
        assert len(topo) == 37


class TestVMConfig:
    def test_vagrantfile_rendering(self, coordinator):
        _t, user = coordinator.create_user_as("1-ffaa:0:3")
        text = render_vagrantfile(user.vm_config)
        assert "Vagrant.configure" in text
        assert str(user.isd_as) in text
        assert "scionlab-services" in text
        assert user.vm_config.certificate_fingerprint in text

    def test_vm_config_dict(self, coordinator):
        _t, user = coordinator.create_user_as("1-ffaa:0:3")
        data = user.vm_config.to_dict()
        assert data["attachment_point"] == "1-ffaa:0:3"
        assert data["memory_mb"] == 2048


class TestDefaults:
    def test_server_documents_shape(self):
        docs = available_server_documents()
        assert len(docs) == 21
        assert docs[0]["_id"] == 1
        assert docs[1]["isd_as"] == "16-ffaa:0:1003"
        assert all("," in d["address"] for d in docs)

    def test_study_ids_are_first_five(self):
        assert study_destination_ids() == [1, 2, 3, 4, 5]

    def test_server_id_lookup(self):
        assert server_id_of("16-ffaa:0:1002") == 1
        assert server_id_of("16-ffaa:0:1001", ip="172.31.0.11") == 7

    def test_server_id_unknown_raises(self):
        with pytest.raises(KeyError):
            server_id_of("9-0:0:9")
