"""Integration tests: every figure reproduces the paper's *shape*.

These run the actual experiment drivers (with few iterations for speed)
and assert the qualitative claims of the evaluation section.
"""

import pytest

from repro.experiments import fig4, fig5, fig6, fig7, fig8, fig9
from repro.experiments.world import run_campaign, seconds_per_path
from repro.suite.config import SuiteConfig

SEED = 20231112


@pytest.fixture(scope="module")
def ireland_world():
    return run_campaign([1], iterations=4, seed=SEED)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run(seed=SEED)

    def test_21_destinations_reachable(self, result):
        assert result.reachability.reachable == 21

    def test_mean_close_to_566(self, result):
        assert result.reachability.mean_path_length == pytest.approx(5.66, abs=0.25)

    def test_roughly_70pct_within_6(self, result):
        assert 0.6 <= result.reachability.fraction_within(6) <= 0.85

    def test_histogram_spans_3_to_8(self, result):
        hops = dict(result.rows())
        assert min(hops) == 3 and max(hops) == 8

    def test_format_text(self, result):
        text = result.format_text()
        assert "Fig 4" in text and "paper: 5.66" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self, ireland_world):
        return fig5.run(world=ireland_world)

    def test_paths_split_into_6_and_7_hops(self, result):
        hop_counts = {s.hop_count for s in result.series}
        assert hop_counts == {6, 7}

    def test_three_latency_layers(self, result):
        assert len(result.layers()) == 3

    def test_layer_ordering_europe_ohio_singapore(self, result):
        means = result.layer_means()
        assert means[0] < 100  # Europe
        assert 150 < means[1] < 300  # via Ohio
        assert means[2] > 300  # via Singapore

    def test_detour_paths_identified(self, result):
        ohio = [s for s in result.series if result.detour_of(s) == "via Ohio"]
        sg = [s for s in result.series if result.detour_of(s) == "via Singapore"]
        assert len(ohio) == 4 and len(sg) == 4
        assert all(s.hop_count == 7 for s in ohio + sg)

    def test_detours_dominate_hop_count(self, result):
        """The paper's core claim: geography beats hop count."""
        six_hop = [s.stats.mean for s in result.series if s.hop_count == 6]
        europe_seven = [
            s.stats.mean
            for s in result.series
            if s.hop_count == 7 and result.detour_of(s) == "Europe"
        ]
        detour_seven = [
            s.stats.mean
            for s in result.series
            if result.detour_of(s) != "Europe"
        ]
        # Same-geography 7-hop paths are close to 6-hop paths...
        assert max(europe_seven) < 1.5 * max(six_hop)
        # ...while detours are far slower despite equal hop count.
        assert min(detour_seven) > 3 * max(europe_seven)

    def test_format_text(self, result):
        assert "Fig 5" in result.format_text()


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self, ireland_world):
        return fig6.run(world=ireland_world)

    def test_multiple_isd_sets(self, result):
        sets = {g.isds for g in result.all_groups}
        assert len(sets) >= 2

    def test_hop_count_alone_insufficient(self, result):
        """Same ISD set, +1 hop -> much bigger latency gap (left panel)."""
        six = next(
            g for g in result.all_groups
            if g.isds == (16, 17, 19) and g.hop_count == 6
        )
        seven = next(
            g for g in result.all_groups
            if g.isds == (16, 17, 19) and g.hop_count == 7
        )
        assert seven.stats.spread > 10 * six.stats.spread

    def test_exclusion_compacts_the_box(self, result):
        assert result.spread_shrinks

    def test_filtered_means_comparable_across_hops(self, result):
        """Right panel: without long-distance paths, 6- and 7-hop groups
        have comparable latency."""
        groups = {
            (g.isds, g.hop_count): g.stats.mean for g in result.filtered_groups
        }
        six = groups[((16, 17, 19), 6)]
        seven = groups[((16, 17, 19), 7)]
        assert seven < 1.5 * six

    def test_format_text(self, result):
        text = result.format_text()
        assert "Fig 6 (left)" in text and "Fig 6 (right)" in text


class TestFig7And8:
    @pytest.fixture(scope="class")
    def r7(self):
        return fig7.run(iterations=4, seed=SEED)

    @pytest.fixture(scope="class")
    def r8(self):
        return fig8.run(iterations=4, seed=SEED)

    def test_fig7_mtu_beats_small(self, r7):
        assert r7.summary.mtu_beats_small

    def test_fig7_downstream_beats_upstream(self, r7):
        assert r7.summary.downstream_beats_upstream

    def test_fig7_mtu_near_target(self, r7):
        assert r7.summary.mean_down_mtu == pytest.approx(12.0, abs=1.5)

    def test_fig8_reversal(self, r8):
        """The headline crossover: 64B beats MTU at 150 Mbps."""
        assert not r8.summary.mtu_beats_small
        assert r8.summary.mean_down_small > r8.summary.mean_down_mtu
        assert r8.summary.mean_up_small > r8.summary.mean_up_mtu

    def test_fig8_everything_far_below_target(self, r8):
        s = r8.summary
        assert max(
            s.mean_up_small, s.mean_up_mtu, s.mean_down_small, s.mean_down_mtu
        ) < 30.0

    def test_64b_similar_across_targets(self, r7, r8):
        """The 64B rate is pps-limited, so the target barely matters."""
        assert r8.summary.mean_down_small == pytest.approx(
            r7.summary.mean_down_small, rel=0.3
        )

    def test_format_text(self, r7):
        assert "target 12" in r7.format_text()


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run(iterations=3, seed=SEED)

    def test_exact_failing_cluster(self, result):
        assert result.total_loss_paths == fig9.PAPER_FAILING_PATHS

    def test_survivors_inside_window(self, result):
        """Paths 2_20 and 2_21 sit inside the congestion window but do
        not traverse the congested node."""
        by_id = {s.path_id: s for s in result.series}
        assert by_id["2_20"].mean_loss_pct < 20
        assert by_id["2_21"].mean_loss_pct < 20

    def test_majority_of_paths_near_zero_loss(self, result):
        healthy = [s for s in result.series if not s.always_total_loss]
        near_zero = [s for s in healthy if s.mean_loss_pct < 5.0]
        assert len(near_zero) >= 0.8 * len(healthy)

    def test_failing_cluster_shares_first_half_node(self, result):
        assert fig9.CONGESTED_AS in result.shared_nodes
        # The shared nodes are concentrated in the first half of the path.
        idx = result.shared_nodes.index(fig9.CONGESTED_AS)
        assert idx < 4

    def test_format_text(self, result):
        text = result.format_text()
        assert "Fig 9" in text and "2_16" in text


class TestWorldHelpers:
    def test_seconds_per_path(self):
        config = SuiteConfig()
        assert seconds_per_path(config) == pytest.approx(15.0)

    def test_campaign_determinism(self):
        a = run_campaign([3], iterations=1, seed=5)
        b = run_campaign([3], iterations=1, seed=5)
        docs_a = a.db["paths_stats"].find(sort=[("_id", 1)])
        docs_b = b.db["paths_stats"].find(sort=[("_id", 1)])
        assert docs_a == docs_b

    def test_different_seed_different_samples(self):
        a = run_campaign([3], iterations=1, seed=5)
        b = run_campaign([3], iterations=1, seed=6)
        lat_a = [d["avg_latency_ms"] for d in a.db["paths_stats"].find()]
        lat_b = [d["avg_latency_ms"] for d in b.db["paths_stats"].find()]
        assert lat_a != lat_b
