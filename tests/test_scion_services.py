"""Tests for the daemon, SCMP services and the host facade."""

import math

import pytest

from repro.errors import ValidationError
from repro.netsim.congestion import CongestionEpisode
from repro.netsim.network import ServerHealth
from repro.scion.daemon import Sciond
from repro.scion.scmp import EchoStats
from repro.scion.snet import ScionHost
from repro.topology.isd_as import ISDAS

from tests.helpers import build_tiny_world

LEAF = "2-ffaa:0:2"
LEAF_IP = "10.2.0.2"


@pytest.fixture()
def host():
    return ScionHost(build_tiny_world(), "1-ffaa:1:1")


class TestSciond:
    def test_default_cap_is_ten(self, host):
        daemon = Sciond(host.topology, "1-ffaa:1:1")
        paths = daemon.paths(LEAF)
        assert 0 < len(paths) <= 10

    def test_max_paths_none_returns_all(self, host):
        daemon = Sciond(host.topology, "1-ffaa:1:1")
        assert len(daemon.paths(LEAF, max_paths=None)) == 4

    def test_cache_hit_counting(self, host):
        daemon = Sciond(host.topology, "1-ffaa:1:1")
        daemon.paths(LEAF)
        daemon.paths(LEAF)
        assert daemon.lookups == 2
        assert daemon.cache_hits == 1

    def test_refresh_bypasses_cache(self, host):
        daemon = Sciond(host.topology, "1-ffaa:1:1")
        daemon.paths(LEAF)
        daemon.paths(LEAF, refresh=True)
        assert daemon.cache_hits == 0

    def test_flush_clears_cache(self, host):
        daemon = Sciond(host.topology, "1-ffaa:1:1")
        daemon.paths(LEAF)
        daemon.flush()
        daemon.paths(LEAF)
        assert daemon.cache_hits == 0

    def test_path_by_sequence_roundtrip(self, host):
        daemon = Sciond(host.topology, "1-ffaa:1:1")
        want = daemon.paths(LEAF, max_paths=None)[2]
        found = daemon.path_by_sequence(LEAF, want.sequence())
        assert found is not None and found.sequence() == want.sequence()

    def test_path_by_sequence_unknown(self, host):
        daemon = Sciond(host.topology, "1-ffaa:1:1")
        assert daemon.path_by_sequence(LEAF, "1-0:0:1#0,0") is None


class TestEcho:
    def test_full_series_received(self, host):
        path = host.paths(LEAF)[0]
        stats = host.scmp.echo_series(path, LEAF_IP, count=10, interval_s=0.01)
        assert stats.sent == 10
        assert stats.received >= 8  # tiny base loss may eat a probe
        assert stats.loss_pct == pytest.approx(
            100.0 * (1 - stats.received / stats.sent)
        )

    def test_clock_advances_by_interval_times_count(self, host):
        path = host.paths(LEAF)[0]
        before = host.clock.now_s
        host.scmp.echo_series(path, LEAF_IP, count=30, interval_s=0.1)
        assert host.clock.now_s - before == pytest.approx(3.0)

    def test_rtt_stats_consistent(self, host):
        path = host.paths(LEAF)[0]
        stats = host.scmp.echo_series(path, LEAF_IP, count=10, interval_s=0.01)
        assert stats.min_ms <= stats.avg_ms <= stats.max_ms
        assert stats.mdev_ms >= 0.0

    def test_down_server_all_lost(self, host):
        host.network.servers.set_health(LEAF, LEAF_IP, ServerHealth.DOWN)
        path = host.paths(LEAF)[0]
        stats = host.scmp.echo_series(path, LEAF_IP, count=5, interval_s=0.01)
        assert stats.received == 0
        assert stats.loss_pct == 100.0
        assert math.isnan(stats.avg_ms)

    def test_blackout_window_loses_probes(self, host):
        host.network.add_episode(
            CongestionEpisode.on_ases(["2-ffaa:0:1"], 0.0, 1000.0, loss=1.0)
        )
        path = host.paths(LEAF)[0]
        stats = host.scmp.echo_series(path, LEAF_IP, count=5, interval_s=0.01)
        assert stats.loss_pct == 100.0

    def test_validation(self, host):
        path = host.paths(LEAF)[0]
        with pytest.raises(ValidationError):
            host.scmp.echo_series(path, LEAF_IP, count=0)
        with pytest.raises(ValidationError):
            host.scmp.echo_series(path, LEAF_IP, count=1, interval_s=0.0)

    def test_empty_stats_helpers(self):
        stats = EchoStats(destination="x", sent=5, received=0, rtts_ms=())
        assert stats.loss_fraction == 1.0
        assert math.isnan(stats.min_ms)
        assert stats.mdev_ms == 0.0


class TestTraceroute:
    def test_one_entry_per_link(self, host):
        path = host.paths(LEAF)[0]
        hops = host.scmp.traceroute(path)
        assert len(hops) == path.n_links
        assert hops[-1].isd_as == path.dst

    def test_rtts_increase_with_depth(self, host):
        path = host.paths(LEAF)[0]
        hops = host.scmp.traceroute(path)
        firsts = [
            min(r for r in hop.rtts_ms if r is not None) for hop in hops
        ]
        assert firsts[0] < firsts[-1]

    def test_probe_count(self, host):
        path = host.paths(LEAF)[0]
        hops = host.scmp.traceroute(path, probes_per_hop=5)
        assert all(len(h.rtts_ms) == 5 for h in hops)


class TestScionHost:
    def test_address(self, host):
        assert host.address() == "1-ffaa:1:1,[127.0.0.1]"

    def test_ping_default_path(self, host):
        stats = host.ping(LEAF, LEAF_IP, count=5, interval_s=0.01)
        assert stats.sent == 5

    def test_scionlab_factory(self):
        lab = ScionHost.scionlab(seed=1)
        assert str(lab.local_ia) == "17-ffaa:1:e01"
        assert len(lab.topology) == 36
