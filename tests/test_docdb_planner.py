"""Query planner, explain(), query cache and epoch tests.

Covers the planner's plan-selection rules, the reconciliation between
``explain()``'s reported ``docsExamined`` and the collection's
``docs_examined`` counter, epoch/cache interaction (one ``insert_many``
batch = one bump), and the docs/DATABASE.md operator table staying in
sync with the matcher's dispatch set.
"""

from __future__ import annotations

import os
import re

import pytest

from repro.docdb.aggregate import SUPPORTED_STAGES
from repro.docdb.cache import QueryCache, freeze
from repro.docdb.collection import Collection
from repro.docdb.planner import (
    STAGE_COLLSCAN,
    STAGE_IDHACK,
    STAGE_IXSCAN,
    extract_predicates,
    format_plan,
)
from repro.docdb.query import supported_operators

DOCS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "docs")


def campaign_collection(*, indexed: bool = True, n_servers: int = 4,
                        n_paths: int = 6, n_rounds: int = 5) -> Collection:
    """A small ``paths_stats``-shaped collection."""
    coll = Collection("paths_stats")
    if indexed:
        coll.create_index("path_id")
        coll.create_index([("server_id", 1), ("timestamp_ms", 1)])
    t = 0
    for rnd in range(n_rounds):
        batch = []
        for sid in range(1, n_servers + 1):
            for p in range(n_paths):
                batch.append(
                    {
                        "_id": f"s{sid}p{p}_{t}",
                        "server_id": sid,
                        "path_id": f"s{sid}p{p}",
                        "timestamp_ms": 1000 + t,
                        "avg_latency_ms": 10.0 + p,
                        "isds": [16, 17 + (p % 2)],
                    }
                )
                t += 1
        coll.insert_many(batch)
    return coll


class TestPlanSelection:
    def test_idhack_for_scalar_id(self):
        coll = campaign_collection()
        plan = coll.explain({"_id": "s1p0_0"})
        assert plan["winningPlan"]["inputStage"]["stage"] == STAGE_IDHACK
        assert plan["executionStats"]["docsExamined"] == 1
        assert plan["executionStats"]["nReturned"] == 1

    def test_compound_index_wins_equality_plus_range(self):
        coll = campaign_collection()
        plan = coll.explain({"server_id": 2, "timestamp_ms": {"$gte": 1096}})
        stage = plan["winningPlan"]["inputStage"]
        assert stage["stage"] == STAGE_IXSCAN
        assert stage["indexName"] == "server_id_1_timestamp_ms_1"
        # Only server 2's final-round slice is materialised.
        assert plan["executionStats"]["docsExamined"] < len(coll) / 3
        rejected = {
            p["inputStage"]["stage"] for p in plan["rejectedPlans"]
        }
        assert STAGE_COLLSCAN in rejected

    def test_collscan_when_nothing_sargable(self):
        coll = campaign_collection()
        plan = coll.explain({"path_id": {"$regex": "p0$"}})
        assert plan["winningPlan"]["inputStage"]["stage"] == STAGE_COLLSCAN
        assert plan["executionStats"]["docsExamined"] == len(coll)

    def test_array_valued_equality_not_sargable(self):
        # {"isds": [16, 17]} must match whole-array equality, which the
        # element-keyed index cannot answer — planner must not use it.
        coll = Collection("t")
        coll.create_index("isds")
        coll.insert_many(
            [
                {"_id": 1, "isds": [16, 17]},
                {"_id": 2, "isds": [16]},
                {"_id": 3, "isds": [17, 16]},
            ]
        )
        got = {d["_id"] for d in coll.find({"isds": [16, 17]})}
        assert got == {1}
        plan = coll.explain({"isds": [16, 17]})
        assert plan["winningPlan"]["inputStage"]["stage"] == STAGE_COLLSCAN

    def test_mixed_type_bounds_not_sargable(self):
        coll = Collection("t")
        coll.create_index("v")
        coll.insert_many([{"_id": i, "v": v} for i, v in
                          enumerate([1, 2, "x", 3])])
        # A string bound over a numeric field must not crash the planner.
        plan = coll.explain({"v": {"$gte": "x"}})
        assert plan["winningPlan"]["inputStage"]["stage"] in (
            STAGE_COLLSCAN, STAGE_IXSCAN,
        )
        assert {d["_id"] for d in coll.find({"v": {"$gte": "x"}})} == {2}

    def test_residual_filter_reapplied(self):
        coll = campaign_collection()
        flt = {"server_id": 1, "avg_latency_ms": {"$lte": 11.0}}
        got = coll.find(flt)
        assert got and all(
            d["server_id"] == 1 and d["avg_latency_ms"] <= 11.0 for d in got
        )

    def test_format_plan_mentions_winner(self):
        coll = campaign_collection()
        text = format_plan(coll.explain({"server_id": 1}))
        assert "IXSCAN" in text
        assert "server_id" in text

    def test_extract_predicates_skips_logical(self):
        preds = extract_predicates(
            {"a": 1, "$or": [{"b": 2}], "c": {"$regex": "x"}}
        )
        assert "a" in preds and preds["a"].has_eq
        assert "b" not in preds and "c" not in preds


class TestExplainReconciliation:
    def test_docs_examined_matches_counter_delta(self):
        coll = campaign_collection()
        flt = {"server_id": 3, "timestamp_ms": {"$gte": 1050}}
        before = coll.stats["docs_examined"]
        plan = coll.explain(flt)
        # explain() executes: the counter advanced by exactly what it reports.
        assert coll.stats["docs_examined"] - before == (
            plan["executionStats"]["docsExamined"]
        )
        # ...and a plain find() of the same filter examines the same number.
        coll.cache.clear()
        before = coll.stats["docs_examined"]
        results = coll.find(flt)
        assert coll.stats["docs_examined"] - before == (
            plan["executionStats"]["docsExamined"]
        )
        assert len(results) == plan["executionStats"]["nReturned"]

    def test_scans_counts_only_collscans(self):
        coll = campaign_collection()
        scans0 = coll.stats["scans"]
        hits0 = coll.stats["index_hits"]
        coll.find({"server_id": 1})
        assert coll.stats["scans"] == scans0           # index answered it
        assert coll.stats["index_hits"] == hits0 + 1
        coll.find({"avg_latency_ms": {"$gte": 0}})     # not indexed
        assert coll.stats["scans"] == scans0 + 1

    def test_aggregate_leading_match_uses_index(self):
        coll = campaign_collection()
        scans0 = coll.stats["scans"]
        out = coll.aggregate(
            [
                {"$match": {"server_id": 2}},
                {"$group": {"_id": "$path_id", "lat": {"$avg": "$avg_latency_ms"}}},
            ]
        )
        assert len(out) == 6
        assert coll.stats["scans"] == scans0  # pushed-down $match hit the index


class TestEpochAndCache:
    def test_insert_many_is_one_epoch_bump(self):
        coll = Collection("t")
        e0 = coll.epoch
        coll.insert_many([{"_id": i} for i in range(50)])
        assert coll.epoch == e0 + 1
        coll.insert_one({"_id": 99})
        assert coll.epoch == e0 + 2

    def test_noop_write_does_not_invalidate(self):
        coll = Collection("t")
        coll.insert_many([{"_id": 1, "v": 1}])
        e = coll.epoch
        coll.update_one({"_id": 1}, {"$set": {"v": 1}})  # no change
        assert coll.epoch == e
        assert coll.delete_many({"v": 999}).deleted_count == 0
        assert coll.epoch == e

    def test_repeat_find_is_cache_hit(self):
        coll = campaign_collection()
        flt = {"server_id": 1, "timestamp_ms": {"$gte": 1000}}
        first = coll.find(flt)
        hits0 = coll.stats["cache_hits"]
        again = coll.find(flt)
        assert coll.stats["cache_hits"] == hits0 + 1
        assert again == first

    def test_cached_results_are_isolated_copies(self):
        coll = Collection("t")
        coll.insert_one({"_id": 1, "xs": [1, 2]})
        a = coll.find({"_id": 1})
        a[0]["xs"].append(99)
        b = coll.find({"_id": 1})   # cache hit must be unpolluted
        assert b[0]["xs"] == [1, 2]

    def test_write_invalidates(self):
        coll = Collection("t")
        coll.insert_many([{"_id": 1, "v": 1}])
        assert [d["v"] for d in coll.find({"v": {"$gte": 0}})] == [1]
        coll.insert_many([{"_id": 2, "v": 5}])
        assert sorted(
            d["v"] for d in coll.find({"v": {"$gte": 0}})
        ) == [1, 5]

    def test_ttl_expiry(self):
        clock = [0.0]
        cache = QueryCache(capacity=4, ttl_s=10.0, time_source=lambda: clock[0])
        cache.put("k", 1, [42])
        assert cache.get("k", 1) == [42]
        clock[0] = 11.0
        assert cache.get("k", 1) is None

    def test_lru_eviction(self):
        cache = QueryCache(capacity=2, ttl_s=None)
        cache.put("a", 1, 1)
        cache.put("b", 1, 2)
        assert cache.get("a", 1) == 1   # refresh a
        cache.put("c", 1, 3)            # evicts b
        assert cache.get("b", 1) is None
        assert cache.get("a", 1) == 1

    def test_freeze_unhashable_returns_none(self):
        assert freeze({"a": [1, {"b": 2}]}) is not None
        assert freeze({"from": Collection("x")}) is None


class TestDocsStayInSync:
    def _section(self, text: str, start: str, end: str) -> str:
        i = text.index(start)
        return text[i:text.index(end, i)]

    def test_operator_table_matches_dispatch(self):
        with open(os.path.join(DOCS_DIR, "DATABASE.md"), encoding="utf-8") as fh:
            doc = fh.read()
        section = self._section(doc, "## Query language", "## Aggregation pipeline")
        documented = set(re.findall(r"^\| `(\$\w+)`", section, flags=re.M))
        assert documented == set(supported_operators())

    def test_stage_table_matches_executor(self):
        with open(os.path.join(DOCS_DIR, "DATABASE.md"), encoding="utf-8") as fh:
            doc = fh.read()
        section = self._section(doc, "## Aggregation pipeline", "## Index creation")
        documented = set(re.findall(r"^\| `(\$\w+)`", section, flags=re.M))
        assert documented == set(SUPPORTED_STAGES)


class TestIndexManagement:
    def test_compound_roundtrips_through_persistence(self, tmp_path):
        from repro.docdb.client import DocDBClient

        client = DocDBClient()
        coll = client["upin"]["paths_stats"]
        coll.create_index([("server_id", 1), ("timestamp_ms", 1)])
        coll.insert_many(
            [{"_id": i, "server_id": i % 2, "timestamp_ms": i} for i in range(8)]
        )
        client.save_to(str(tmp_path))
        reloaded = DocDBClient.load_from(str(tmp_path))["upin"]["paths_stats"]
        assert "server_id_1_timestamp_ms_1" in reloaded.list_indexes()
        plan = reloaded.explain({"server_id": 1, "timestamp_ms": {"$gte": 5}})
        assert plan["winningPlan"]["inputStage"]["stage"] == STAGE_IXSCAN

    def test_drop_index_by_spec(self):
        coll = campaign_collection()
        coll.drop_index([("server_id", 1), ("timestamp_ms", 1)])
        assert "server_id_1_timestamp_ms_1" not in coll.list_indexes()
        plan = coll.explain({"server_id": 1, "timestamp_ms": {"$gte": 0}})
        assert plan["winningPlan"]["inputStage"]["stage"] == STAGE_COLLSCAN

    def test_index_information_shape(self):
        coll = campaign_collection()
        info = coll.index_information()
        assert info["server_id_1_timestamp_ms_1"]["fields"] == [
            ("server_id", 1), ("timestamp_ms", 1),
        ]

    def test_unknown_explain_filter_still_correct(self):
        coll = campaign_collection()
        plan = coll.explain({"missing_field": 7})
        assert plan["executionStats"]["nReturned"] == 0


class TestSelectionMemoInvalidation:
    """A flushed measurement batch must invalidate stale best-path
    answers (the controller memo keys on the stats collection's write
    epoch, which `StatsRepository.flush` bumps exactly once)."""

    def test_batch_flush_invalidates_best_path(self):
        from repro.experiments.world import run_campaign
        from repro.selection.engine import PathSelector
        from repro.selection.request import UserRequest
        from repro.suite.config import STATS_COLLECTION
        from repro.suite.storage import StatsRepository, stats_document_id
        from repro.upin.controller import PathController

        world = run_campaign([1], iterations=2, seed=424242)
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        request = UserRequest.make(1, "latency")

        first = controller.cached_select(request)
        assert controller.cached_select(request) is first  # memo hit
        assert controller.selection_cache_info() == {
            "size": 1, "hits": 1, "misses": 1,
        }
        best_before = first.best.aggregate.path_id

        # A new measurement batch makes a different path clearly best.
        stats_coll = world.db[STATS_COLLECTION]
        rival = stats_coll.find_one(
            {"server_id": 1, "path_id": {"$ne": best_before}}
        )
        repo = StatsRepository(stats_coll)
        epoch_before = repo.epoch
        for k in range(50):
            doc = dict(rival)
            ts = doc["timestamp_ms"] + 10_000 + k
            doc["_id"] = stats_document_id(doc["path_id"], ts)
            doc["timestamp_ms"] = ts
            doc["avg_latency_ms"] = 0.001
            doc["loss_pct"] = 0.0
            repo.add(doc)
        assert repo.flush() == 50
        assert repo.epoch == epoch_before + 1  # whole batch: ONE bump

        updated = controller.cached_select(request)
        assert updated is not first            # stale answer invalidated
        assert controller.selection_cache_info()["misses"] == 2
        assert updated.best.aggregate.path_id == rival["path_id"]
        assert (
            updated.best.aggregate.avg_latency_ms
            < first.best.aggregate.avg_latency_ms
        )
