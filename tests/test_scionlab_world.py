"""Tests for the SCIONLab world reconstruction (repro.topology.scionlab).

These pin the paper-anchored facts: 35 infrastructure ASes + MY_AS, the
named destinations, reachability statistics close to §6, and the path
structure to Ireland and N. Virginia.
"""

import pytest

from repro.analysis.reachability import reachability
from repro.topology.entities import ASRole
from repro.topology.isd_as import ISDAS
from repro.topology.scionlab import (
    AVAILABLE_SERVERS,
    AWS_IRELAND,
    AWS_N_VIRGINIA,
    AWS_OHIO,
    AWS_SINGAPORE,
    ETHZ_AP,
    JITTERY_ASES,
    MAGDEBURG_AP,
    MY_AS,
    STUDY_DESTINATIONS,
    build_scionlab_world,
    scionlab_network_config,
)


@pytest.fixture(scope="module")
def world():
    return build_scionlab_world()


class TestWorldShape:
    def test_35_infrastructure_ases_plus_user(self, world):
        assert len(world) == 36
        infra = [a for a in world.all_ases() if a.role is not ASRole.USER]
        assert len(infra) == 35

    def test_user_as_attached_at_ethz_ap(self, world):
        assert world.parents_of(MY_AS) == [ETHZ_AP]

    def test_ethz_ap_is_attachment_point(self, world):
        assert world.as_of(ETHZ_AP).role is ASRole.ATTACHMENT_POINT

    def test_paper_named_ases_present(self, world):
        for ia in (AWS_IRELAND, AWS_N_VIRGINIA, AWS_OHIO, AWS_SINGAPORE, MAGDEBURG_AP):
            assert ia in world

    def test_magdeburg_ip_matches_paper(self, world):
        assert world.as_of(MAGDEBURG_AP).primary_host.ip == "141.44.25.144"

    def test_ireland_ip_matches_paper(self, world):
        assert world.as_of(AWS_IRELAND).primary_host.ip == "172.31.43.7"

    def test_nvirginia_ip_matches_paper(self, world):
        assert world.as_of(AWS_N_VIRGINIA).primary_host.ip == "172.31.19.144"

    def test_access_link_asymmetric(self, world):
        link = world.link_between(ETHZ_AP, MY_AS)[0]
        up = link.capacity_from(MY_AS)
        down = link.capacity_from(ETHZ_AP)
        assert up < down

    def test_user_country_is_nl(self, world):
        assert world.as_of(MY_AS).country == "NL"


class TestAvailableServers:
    def test_21_servers(self):
        assert len(AVAILABLE_SERVERS) == 21

    def test_nvirginia_is_destination_2(self):
        assert AVAILABLE_SERVERS[1][0] == str(AWS_N_VIRGINIA)

    def test_ireland_is_destination_1(self):
        assert AVAILABLE_SERVERS[0][0] == str(AWS_IRELAND)

    def test_one_as_hosts_two_servers(self):
        ases = [ia for ia, _ in AVAILABLE_SERVERS]
        assert ases.count("16-ffaa:0:1001") == 2

    def test_all_servers_exist_in_world(self, world):
        for ia, ip in AVAILABLE_SERVERS:
            hosts = world.as_of(ia).hosts
            assert any(h.ip == ip for h in hosts), (ia, ip)

    def test_study_destinations_cover_five_regions(self, world):
        countries = {world.as_of(ia).country for ia in STUDY_DESTINATIONS}
        assert countries == {"DE", "IE", "US", "SG", "KR"}


class TestReachabilityAnchors:
    """The §6 statistics the reconstruction was tuned against."""

    @pytest.fixture(scope="class")
    def result(self, world):
        from repro.scion.snet import ScionHost

        host = ScionHost(world, MY_AS, config=scionlab_network_config())
        return reachability(host)

    def test_all_21_reachable(self, result):
        assert result.reachable == 21

    def test_mean_path_length_close_to_paper(self, result):
        assert result.mean_path_length == pytest.approx(5.66, abs=0.25)

    def test_about_70pct_within_6_hops(self, result):
        assert 0.6 <= result.fraction_within(6) <= 0.85

    def test_histogram_totals(self, result):
        assert sum(count for _, count in result.rows()) == 21


class TestJitterConfig:
    def test_jittery_ases_are_the_paper_pair(self):
        assert set(JITTERY_ASES) == {AWS_SINGAPORE, AWS_OHIO}

    def test_network_config_carries_jitter(self):
        config = scionlab_network_config()
        assert config.extra_jitter_ms[AWS_SINGAPORE] > 0
        assert config.jitter_for(AWS_OHIO) > config.base_jitter_ms

    def test_user_as_pps_limits_below_default(self):
        config = scionlab_network_config()
        assert config.pps_for(MY_AS).send < config.default_pps.send
