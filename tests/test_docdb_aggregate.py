"""Tests for the aggregation pipeline subset (repro.docdb.aggregate)."""

import pytest

from repro.docdb.aggregate import evaluate, run_pipeline
from repro.docdb.collection import Collection
from repro.errors import QueryError

DOCS = [
    {"_id": "1_0", "server_id": 1, "lat": 40.0, "isds": [16, 17]},
    {"_id": "1_1", "server_id": 1, "lat": 50.0, "isds": [16, 17]},
    {"_id": "2_0", "server_id": 2, "lat": 100.0, "isds": [16, 18]},
    {"_id": "2_1", "server_id": 2, "lat": None, "isds": [16, 18]},
]


@pytest.fixture()
def coll():
    c = Collection("stats")
    c.insert_many(DOCS)
    return c


class TestEvaluate:
    def test_field_reference(self):
        assert evaluate(DOCS[0], "$lat") == 40.0

    def test_missing_field_none(self):
        assert evaluate(DOCS[0], "$zzz") is None

    def test_dotted_reference(self):
        assert evaluate({"a": {"b": 3}}, "$a.b") == 3

    def test_constant(self):
        assert evaluate(DOCS[0], 7) == 7

    def test_composite_dict(self):
        assert evaluate(DOCS[0], {"s": "$server_id"}) == {"s": 1}


class TestStages:
    def test_match(self, coll):
        out = coll.aggregate([{"$match": {"server_id": 2}}])
        assert len(out) == 2

    def test_group_sum_avg(self, coll):
        out = coll.aggregate(
            [
                {
                    "$group": {
                        "_id": "$server_id",
                        "n": {"$sum": 1},
                        "avg": {"$avg": "$lat"},
                    }
                },
                {"$sort": {"_id": 1}},
            ]
        )
        assert out == [
            {"_id": 1, "n": 2, "avg": 45.0},
            {"_id": 2, "n": 2, "avg": 100.0},  # None excluded from avg
        ]

    def test_group_min_max(self, coll):
        out = coll.aggregate(
            [{"$group": {"_id": None, "lo": {"$min": "$lat"}, "hi": {"$max": "$lat"}}}]
        )
        assert out[0]["lo"] == 40.0 and out[0]["hi"] == 100.0

    def test_group_push_addtoset_first_last(self, coll):
        out = coll.aggregate(
            [
                {
                    "$group": {
                        "_id": "$server_id",
                        "ids": {"$push": "$_id"},
                        "sets": {"$addToSet": "$server_id"},
                        "first": {"$first": "$_id"},
                        "last": {"$last": "$_id"},
                    }
                },
                {"$sort": {"_id": 1}},
            ]
        )
        assert out[0]["ids"] == ["1_0", "1_1"]
        assert out[0]["sets"] == [1]
        assert out[0]["first"] == "1_0" and out[0]["last"] == "1_1"

    def test_group_by_composite_key(self, coll):
        out = coll.aggregate(
            [{"$group": {"_id": {"s": "$server_id"}, "n": {"$sum": 1}}}]
        )
        assert sorted(g["n"] for g in out) == [2, 2]

    def test_group_requires_id(self, coll):
        with pytest.raises(QueryError):
            coll.aggregate([{"$group": {"n": {"$sum": 1}}}])

    def test_sort_limit_skip(self, coll):
        out = coll.aggregate(
            [{"$sort": {"lat": -1}}, {"$skip": 1}, {"$limit": 2}]
        )
        assert [d["_id"] for d in out] == ["1_1", "1_0"]

    def test_project_include_and_computed(self, coll):
        out = coll.aggregate(
            [
                {"$match": {"_id": "1_0"}},
                {"$project": {"lat": 1, "sid": "$server_id", "_id": 0}},
            ]
        )
        assert out == [{"lat": 40.0, "sid": 1}]

    def test_unwind(self, coll):
        out = coll.aggregate(
            [{"$match": {"_id": "1_0"}}, {"$unwind": "$isds"}]
        )
        assert [d["isds"] for d in out] == [16, 17]

    def test_unwind_requires_dollar(self, coll):
        with pytest.raises(QueryError):
            coll.aggregate([{"$unwind": "isds"}])

    def test_count(self, coll):
        assert coll.aggregate([{"$count": "total"}]) == [{"total": 4}]

    def test_unknown_stage_rejected(self, coll):
        with pytest.raises(QueryError):
            coll.aggregate([{"$teleport": {}}])

    def test_stage_shape_validated(self):
        with pytest.raises(QueryError):
            run_pipeline([], [{"$match": {}, "$sort": {}}])

    def test_fig6_style_pipeline(self, coll):
        """The aggregation the selection engine runs: group by path prefix."""
        out = coll.aggregate(
            [
                {"$match": {"lat": {"$ne": None}}},
                {
                    "$group": {
                        "_id": "$server_id",
                        "latencies": {"$push": "$lat"},
                    }
                },
                {"$sort": {"_id": 1}},
            ]
        )
        assert out[0]["latencies"] == [40.0, 50.0]
