"""Tests for the UPIN framework components (repro.upin)."""

import pytest

from repro.errors import NoPathError
from repro.selection.engine import PathSelector
from repro.selection.request import Metric, UserRequest
from repro.upin.controller import PathController
from repro.upin.explorer import NODES_COLLECTION, DomainExplorer
from repro.upin.frontend import Frontend
from repro.upin.tracer import TRACES_COLLECTION, PathTracer
from repro.upin.verifier import PathVerifier, Verdict


@pytest.fixture(scope="module")
def world(measured_world):
    return measured_world


@pytest.fixture(scope="module")
def frontend(world):
    return Frontend(world.host, world.db, upin_isds=[17, 19])


class TestDomainExplorer:
    def test_explore_publishes_every_as(self, world):
        explorer = DomainExplorer(world.host.topology, world.db)
        count = explorer.explore()
        assert count == 36
        assert world.db[NODES_COLLECTION].count_documents() == 36

    def test_node_lookup(self, frontend):
        node = frontend.explorer.node("16-ffaa:0:1002")
        assert node["country"] == "IE"
        assert node["operator"] == "Amazon"
        assert node["role"] == "non-core"

    def test_country_query(self, frontend):
        nodes = frontend.explorer.nodes_in_country("us")
        assert {n["_id"] for n in nodes} >= {"16-ffaa:0:1003", "16-ffaa:0:1004"}

    def test_operator_query(self, frontend):
        nodes = frontend.explorer.nodes_of_operator("Amazon")
        assert len(nodes) == 7

    def test_countries_and_operators(self, frontend):
        assert "CH" in frontend.explorer.countries()
        assert "Amazon" in frontend.explorer.operators()

    def test_degree_recorded(self, frontend):
        node = frontend.explorer.node("16-ffaa:0:1001")
        assert node["degree"] >= 5


class TestPathController:
    def test_apply_intent_installs_flow(self, world):
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        rule = controller.apply_intent("alice", UserRequest.make(1))
        assert rule.path.dst.isd == 16
        assert controller.active_flow("alice", 1) is rule
        assert controller.flows() == [rule]

    def test_intent_constraints_respected(self, world):
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        rule = controller.apply_intent(
            "bob", UserRequest.make(1, exclude_countries=["US", "SG"])
        )
        assert not rule.path.transits("16-ffaa:0:1004")
        assert not rule.path.transits("16-ffaa:0:1007")

    def test_unsatisfiable_intent_raises(self, world):
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        with pytest.raises(NoPathError):
            controller.apply_intent("eve", UserRequest.make(1, exclude_isds=[16]))

    def test_withdraw(self, world):
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        controller.apply_intent("alice", UserRequest.make(1))
        assert controller.withdraw("alice", 1)
        assert controller.active_flow("alice", 1) is None
        assert not controller.withdraw("alice", 1)


class TestTracerAndVerifier:
    def test_trace_stores_record(self, world):
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        tracer = PathTracer(world.host, world.db)
        rule = controller.apply_intent("carol", UserRequest.make(3))
        record = tracer.trace_flow(rule)
        assert record.observed_hops == tuple(str(a) for a in rule.path.ases()[1:])
        stored = tracer.traces_for("carol", 3)
        assert len(stored) >= 1

    def test_verifier_satisfied_within_upin_domains(self, world):
        """Magdeburg paths stay in ISDs 17+19 — fully verifiable."""
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        tracer = PathTracer(world.host, world.db)
        verifier = PathVerifier(world.host.topology, upin_isds=[17, 19])
        rule = controller.apply_intent("dave", UserRequest.make(3))
        report = verifier.verify(rule, tracer.trace_flow(rule))
        assert report.verdict is Verdict.SATISFIED
        assert not report.mismatches

    def test_verifier_unverifiable_outside_upin(self, world):
        """Ireland paths cross ISD 16, which does not run UPIN."""
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        tracer = PathTracer(world.host, world.db)
        verifier = PathVerifier(world.host.topology, upin_isds=[17, 19])
        rule = controller.apply_intent("erin", UserRequest.make(1))
        report = verifier.verify(rule, tracer.trace_flow(rule))
        assert report.verdict is Verdict.UNVERIFIABLE
        assert all(h.startswith("16-") for h in report.unverified_hops)

    def test_verifier_detects_route_deviation(self, world):
        from dataclasses import replace

        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        tracer = PathTracer(world.host, world.db)
        verifier = PathVerifier(world.host.topology, upin_isds=[17, 19])
        rule = controller.apply_intent("frank", UserRequest.make(3))
        trace = tracer.trace_flow(rule)
        # Forge an observation that deviates via GEANT.
        forged = replace(
            trace,
            observed_hops=tuple(
                "19-ffaa:0:1302" if h == "19-ffaa:0:1301" else h
                for h in trace.observed_hops
            ),
        )
        report = verifier.verify(rule, forged)
        assert report.verdict is Verdict.VIOLATED
        assert report.mismatches

    def test_verifier_flags_constraint_violation_on_observed_route(self, world):
        from dataclasses import replace

        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        tracer = PathTracer(world.host, world.db)
        verifier = PathVerifier(world.host.topology, upin_isds=[17, 19])
        rule = controller.apply_intent(
            "grace", UserRequest.make(1, exclude_countries=["US"])
        )
        trace = tracer.trace_flow(rule)
        forged = replace(
            trace,
            observed_hops=trace.observed_hops[:-1] + ("16-ffaa:0:1004",),
        )
        report = verifier.verify(rule, forged)
        assert report.verdict is Verdict.VIOLATED
        assert any("excluded country" in m for m in report.mismatches)


class TestFrontend:
    def test_submit_intent_end_to_end(self, frontend):
        outcome = frontend.submit_intent("henry", UserRequest.make(3))
        assert outcome.rule.server_id == 3
        assert outcome.verification.verdict is Verdict.SATISFIED
        text = outcome.format_text()
        assert "selected path" in text and "verdict:" in text

    def test_recommend_menu(self, frontend):
        menu = frontend.recommend(1)
        assert "latency" in menu and menu["latency"]

    def test_describe_network(self, frontend):
        text = frontend.describe_network()
        assert "36 ASes" in text
        assert "countries" in text
