"""Tests for the UPIN framework components (repro.upin)."""

import pytest

from repro.errors import NoPathError
from repro.selection.engine import PathSelector
from repro.selection.request import Metric, UserRequest
from repro.upin.controller import PathController
from repro.upin.explorer import NODES_COLLECTION, DomainExplorer
from repro.upin.frontend import Frontend
from repro.upin.tracer import TRACES_COLLECTION, PathTracer
from repro.upin.verifier import PathVerifier, Verdict


@pytest.fixture(scope="module")
def world(measured_world):
    return measured_world


@pytest.fixture(scope="module")
def frontend(world):
    return Frontend(world.host, world.db, upin_isds=[17, 19])


class TestDomainExplorer:
    def test_explore_publishes_every_as(self, world):
        explorer = DomainExplorer(world.host.topology, world.db)
        count = explorer.explore()
        assert count == 36
        assert world.db[NODES_COLLECTION].count_documents() == 36

    def test_node_lookup(self, frontend):
        node = frontend.explorer.node("16-ffaa:0:1002")
        assert node["country"] == "IE"
        assert node["operator"] == "Amazon"
        assert node["role"] == "non-core"

    def test_country_query(self, frontend):
        nodes = frontend.explorer.nodes_in_country("us")
        assert {n["_id"] for n in nodes} >= {"16-ffaa:0:1003", "16-ffaa:0:1004"}

    def test_operator_query(self, frontend):
        nodes = frontend.explorer.nodes_of_operator("Amazon")
        assert len(nodes) == 7

    def test_countries_and_operators(self, frontend):
        assert "CH" in frontend.explorer.countries()
        assert "Amazon" in frontend.explorer.operators()

    def test_degree_recorded(self, frontend):
        node = frontend.explorer.node("16-ffaa:0:1001")
        assert node["degree"] >= 5


class TestPathController:
    def test_apply_intent_installs_flow(self, world):
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        rule = controller.apply_intent("alice", UserRequest.make(1))
        assert rule.path.dst.isd == 16
        assert controller.active_flow("alice", 1) is rule
        assert controller.flows() == [rule]

    def test_intent_constraints_respected(self, world):
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        rule = controller.apply_intent(
            "bob", UserRequest.make(1, exclude_countries=["US", "SG"])
        )
        assert not rule.path.transits("16-ffaa:0:1004")
        assert not rule.path.transits("16-ffaa:0:1007")

    def test_unsatisfiable_intent_raises(self, world):
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        with pytest.raises(NoPathError):
            controller.apply_intent("eve", UserRequest.make(1, exclude_isds=[16]))

    def test_withdraw(self, world):
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        controller.apply_intent("alice", UserRequest.make(1))
        assert controller.withdraw("alice", 1)
        assert controller.active_flow("alice", 1) is None
        assert not controller.withdraw("alice", 1)


class TestTracerAndVerifier:
    def test_trace_stores_record(self, world):
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        tracer = PathTracer(world.host, world.db)
        rule = controller.apply_intent("carol", UserRequest.make(3))
        record = tracer.trace_flow(rule)
        assert record.observed_hops == tuple(str(a) for a in rule.path.ases()[1:])
        stored = tracer.traces_for("carol", 3)
        assert len(stored) >= 1

    def test_verifier_satisfied_within_upin_domains(self, world):
        """Magdeburg paths stay in ISDs 17+19 — fully verifiable."""
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        tracer = PathTracer(world.host, world.db)
        verifier = PathVerifier(world.host.topology, upin_isds=[17, 19])
        rule = controller.apply_intent("dave", UserRequest.make(3))
        report = verifier.verify(rule, tracer.trace_flow(rule))
        assert report.verdict is Verdict.SATISFIED
        assert not report.mismatches

    def test_verifier_unverifiable_outside_upin(self, world):
        """Ireland paths cross ISD 16, which does not run UPIN."""
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        tracer = PathTracer(world.host, world.db)
        verifier = PathVerifier(world.host.topology, upin_isds=[17, 19])
        rule = controller.apply_intent("erin", UserRequest.make(1))
        report = verifier.verify(rule, tracer.trace_flow(rule))
        assert report.verdict is Verdict.UNVERIFIABLE
        assert all(h.startswith("16-") for h in report.unverified_hops)

    def test_verifier_detects_route_deviation(self, world):
        from dataclasses import replace

        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        tracer = PathTracer(world.host, world.db)
        verifier = PathVerifier(world.host.topology, upin_isds=[17, 19])
        rule = controller.apply_intent("frank", UserRequest.make(3))
        trace = tracer.trace_flow(rule)
        # Forge an observation that deviates via GEANT.
        forged = replace(
            trace,
            observed_hops=tuple(
                "19-ffaa:0:1302" if h == "19-ffaa:0:1301" else h
                for h in trace.observed_hops
            ),
        )
        report = verifier.verify(rule, forged)
        assert report.verdict is Verdict.VIOLATED
        assert report.mismatches

    def test_verifier_flags_constraint_violation_on_observed_route(self, world):
        from dataclasses import replace

        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        tracer = PathTracer(world.host, world.db)
        verifier = PathVerifier(world.host.topology, upin_isds=[17, 19])
        rule = controller.apply_intent(
            "grace", UserRequest.make(1, exclude_countries=["US"])
        )
        trace = tracer.trace_flow(rule)
        forged = replace(
            trace,
            observed_hops=trace.observed_hops[:-1] + ("16-ffaa:0:1004",),
        )
        report = verifier.verify(rule, forged)
        assert report.verdict is Verdict.VIOLATED
        assert any("excluded country" in m for m in report.mismatches)


class TestVerifierAfterFailover:
    """Old-path traces must not fail verification of the new flow."""

    def _failed_over(self, world, user="iris", server_id=3):
        """Install a flow, then swap it to its best alternative path."""
        from dataclasses import replace as dc_replace

        from repro.upin.controller import FlowRule

        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        rule = controller.apply_intent(user, UserRequest.make(server_id))
        reroute = dc_replace(
            rule.request, exclude_paths=frozenset({rule.path_id})
        )
        selection = controller.cached_select(reroute)
        assert selection.best is not None
        new_path = world.host.daemon.path_by_sequence(
            rule.path.dst, selection.best.sequence
        )
        assert new_path is not None
        new_rule = FlowRule(
            user=user,
            server_id=server_id,
            server_address=rule.server_address,
            path=new_path,
            request=rule.request,
            selection=selection,
        )
        controller.swap_flow(new_rule)
        return controller, rule, new_rule

    def test_trace_records_path_fingerprint(self, world):
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        tracer = PathTracer(world.host, world.db)
        rule = controller.apply_intent("judy", UserRequest.make(3))
        record = tracer.trace_flow(rule)
        assert record.path_fingerprint == rule.path.fingerprint()
        stored = tracer.traces_for("judy", 3)[-1]
        assert stored["path_fingerprint"] == rule.path.fingerprint()

    def test_old_trace_is_stale_not_violated_after_failover(self, world):
        tracer = PathTracer(world.host, world.db)
        verifier = PathVerifier(world.host.topology, upin_isds=[17, 19])
        controller, old_rule, new_rule = self._failed_over(world)
        old_trace = tracer.trace_flow(old_rule)  # taken pre-swap
        assert new_rule.path.fingerprint() != old_rule.path.fingerprint()
        report = verifier.verify(new_rule, old_trace)
        assert report.verdict is Verdict.STALE
        assert not report.mismatches
        assert any("failed over" in note for note in report.notes)

    def test_fresh_trace_of_new_path_verifies_clean(self, world):
        tracer = PathTracer(world.host, world.db)
        verifier = PathVerifier(world.host.topology, upin_isds=[17, 19])
        controller, _old_rule, new_rule = self._failed_over(world, user="kate")
        report = verifier.verify(new_rule, tracer.trace_flow(new_rule))
        assert report.verdict is Verdict.SATISFIED

    def test_legacy_trace_without_fingerprint_still_compares_hops(self, world):
        from dataclasses import replace as dc_replace

        tracer = PathTracer(world.host, world.db)
        verifier = PathVerifier(world.host.topology, upin_isds=[17, 19])
        controller, old_rule, new_rule = self._failed_over(world, user="liam")
        legacy = dc_replace(
            tracer.trace_flow(old_rule), path_fingerprint=""
        )
        report = verifier.verify(new_rule, legacy)
        # Without a fingerprint the verifier cannot tell stale from
        # deviating — the legacy behaviour (VIOLATED) is preserved.
        assert report.verdict is Verdict.VIOLATED

    def test_forged_trace_with_current_fingerprint_still_violates(self, world):
        from dataclasses import replace as dc_replace

        tracer = PathTracer(world.host, world.db)
        verifier = PathVerifier(world.host.topology, upin_isds=[17, 19])
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        rule = controller.apply_intent("mona", UserRequest.make(3))
        trace = tracer.trace_flow(rule)
        forged = dc_replace(
            trace,
            observed_hops=tuple(
                "19-ffaa:0:1302" if h == "19-ffaa:0:1301" else h
                for h in trace.observed_hops
            ),
        )
        report = verifier.verify(rule, forged)
        assert report.verdict is Verdict.VIOLATED


class TestFrontend:
    def test_submit_intent_end_to_end(self, frontend):
        outcome = frontend.submit_intent("henry", UserRequest.make(3))
        assert outcome.rule.server_id == 3
        assert outcome.verification.verdict is Verdict.SATISFIED
        text = outcome.format_text()
        assert "selected path" in text and "verdict:" in text

    def test_recommend_menu(self, frontend):
        menu = frontend.recommend(1)
        assert "latency" in menu and menu["latency"]

    def test_describe_network(self, frontend):
        text = frontend.describe_network()
        assert "36 ASes" in text
        assert "countries" in text
