"""Property-based tests for the document store.

Strategy: generate random-but-valid documents and filters, then check
invariants the query engine must satisfy regardless of input shape —
complement laws, index/scan result equivalence, update idempotence.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docdb.collection import Collection
from repro.docdb.query import matches
from repro.docdb.update import apply_update

# -- strategies ------------------------------------------------------------

scalars = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
    st.booleans(),
    st.none(),
)

field_names = st.sampled_from(["a", "b", "c", "lat", "loss", "tag"])

flat_documents = st.dictionaries(field_names, scalars, max_size=5)

documents = st.dictionaries(
    field_names,
    st.one_of(
        scalars,
        st.lists(scalars, max_size=4),
        st.dictionaries(st.sampled_from(["x", "y"]), scalars, max_size=3),
    ),
    max_size=5,
)

numbers = st.integers(min_value=-100, max_value=100)


class TestQueryLaws:
    @given(documents)
    def test_empty_filter_matches_everything(self, doc):
        assert matches(doc, {})

    @given(documents, field_names, numbers)
    def test_eq_and_ne_complementary(self, doc, field, value):
        eq = matches(doc, {field: {"$eq": value}})
        ne = matches(doc, {field: {"$ne": value}})
        assert eq != ne

    @given(documents, field_names)
    def test_exists_complementary(self, doc, field):
        there = matches(doc, {field: {"$exists": True}})
        gone = matches(doc, {field: {"$exists": False}})
        assert there != gone

    @given(documents, field_names, numbers)
    def test_not_negates(self, doc, field, value):
        plain = matches(doc, {field: {"$gt": value}})
        negated = matches(doc, {field: {"$not": {"$gt": value}}})
        assert plain != negated

    @given(documents, field_names, numbers, numbers)
    def test_and_is_conjunction(self, doc, field, v1, v2):
        both = matches(doc, {"$and": [{field: {"$gte": v1}}, {field: {"$lte": v2}}]})
        separate = matches(doc, {field: {"$gte": v1}}) and matches(
            doc, {field: {"$lte": v2}}
        )
        assert both == separate

    @given(documents, field_names, numbers)
    def test_or_with_self_idempotent(self, doc, field, value):
        single = matches(doc, {field: value})
        doubled = matches(doc, {"$or": [{field: value}, {field: value}]})
        assert single == doubled

    @given(documents, field_names, st.lists(numbers, min_size=1, max_size=5))
    def test_in_equals_or_of_eqs(self, doc, field, values):
        via_in = matches(doc, {field: {"$in": values}})
        via_or = matches(doc, {"$or": [{field: {"$eq": v}} for v in values]})
        assert via_in == via_or


class TestCollectionLaws:
    @given(st.lists(flat_documents, max_size=20))
    @settings(max_examples=50)
    def test_insert_count_and_roundtrip(self, docs):
        coll = Collection("t")
        ids = []
        for doc in docs:
            ids.append(coll.insert_one(doc).inserted_id)
        assert len(coll) == len(docs)
        for doc, doc_id in zip(docs, ids):
            stored = coll.find_one({"_id": doc_id})
            for key, value in doc.items():
                assert stored[key] == value or (
                    value != value and stored[key] != stored[key]
                )

    @given(st.lists(flat_documents, max_size=25), numbers)
    @settings(max_examples=50)
    def test_index_and_scan_agree(self, docs, threshold):
        plain = Collection("scan")
        indexed = Collection("indexed")
        indexed.create_index("lat")
        for i, doc in enumerate(docs):
            doc = dict(doc, _id=i)
            plain.insert_one(doc)
            indexed.insert_one(doc)
        flt = {"lat": {"$gte": threshold}}
        assert sorted(d["_id"] for d in plain.find(flt)) == sorted(
            d["_id"] for d in indexed.find(flt)
        )

    @given(st.lists(flat_documents, max_size=15))
    @settings(max_examples=50)
    def test_find_partitioned_by_filter(self, docs):
        coll = Collection("t")
        for i, doc in enumerate(docs):
            coll.insert_one(dict(doc, _id=i))
        flt = {"a": {"$exists": True}}
        inside = {d["_id"] for d in coll.find(flt)}
        outside = {d["_id"] for d in coll.find({"a": {"$exists": False}})}
        assert inside | outside == set(range(len(docs)))
        assert inside & outside == set()

    @given(st.lists(flat_documents, min_size=1, max_size=15))
    @settings(max_examples=50)
    def test_delete_complement(self, docs):
        coll = Collection("t")
        for i, doc in enumerate(docs):
            coll.insert_one(dict(doc, _id=i))
        flt = {"b": {"$exists": True}}
        expected_deleted = coll.count_documents(flt)
        assert coll.delete_many(flt).deleted_count == expected_deleted
        assert len(coll) == len(docs) - expected_deleted
        assert coll.count_documents(flt) == 0

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_sort_is_correct(self, values):
        coll = Collection("t")
        for i, v in enumerate(values):
            coll.insert_one({"_id": i, "v": v})
        got = [d["v"] for d in coll.find(sort=[("v", 1)])]
        assert got == sorted(values)

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_group_sum_matches_python(self, values):
        coll = Collection("t")
        for i, v in enumerate(values):
            coll.insert_one({"_id": i, "v": v})
        out = coll.aggregate(
            [{"$group": {"_id": None, "total": {"$sum": "$v"}, "n": {"$sum": 1}}}]
        )
        assert out[0]["total"] == sum(values)
        assert out[0]["n"] == len(values)


class TestUpdateLaws:
    @given(flat_documents, field_names, scalars)
    def test_set_then_read(self, doc, field, value):
        doc = dict(doc, _id=1)
        updated = apply_update(doc, {"$set": {field: value}})
        assert (updated[field] == value) or (value != value)

    @given(flat_documents, field_names, scalars)
    def test_set_idempotent(self, doc, field, value):
        doc = dict(doc, _id=1)
        once = apply_update(doc, {"$set": {field: value}})
        twice = apply_update(once, {"$set": {field: value}})
        assert once == twice

    @given(flat_documents, field_names)
    def test_unset_idempotent(self, doc, field):
        doc = dict(doc, _id=1)
        once = apply_update(doc, {"$unset": {field: ""}})
        twice = apply_update(once, {"$unset": {field: ""}})
        assert once == twice
        assert field not in once

    @given(flat_documents, field_names, numbers, numbers)
    def test_inc_composes_additively(self, doc, field, d1, d2):
        doc = {k: v for k, v in doc.items() if not isinstance(v, (str, bool)) or k != field}
        doc = dict(doc, _id=1)
        doc.pop(field, None)
        one_step = apply_update(doc, {"$inc": {field: d1 + d2}})
        two_step = apply_update(
            apply_update(doc, {"$inc": {field: d1}}), {"$inc": {field: d2}}
        )
        assert one_step[field] == two_step[field]

    @given(flat_documents)
    def test_update_never_mutates_input(self, doc):
        doc = dict(doc, _id=1)
        snapshot = copy.deepcopy(doc)
        apply_update(doc, {"$set": {"zz": 1}, "$unset": {"a": ""}})
        assert doc == snapshot


class TestPlannerCacheLaws:
    """The planner/cache stack must be invisible: any access path —
    linear scan, single-field index, compound index, warm cache —
    returns exactly the brute-force `matches()` result set."""

    @given(st.lists(flat_documents, max_size=25), numbers, numbers)
    @settings(max_examples=50)
    def test_all_access_paths_agree_with_brute_force(
        self, docs, eq_value, threshold
    ):
        stored = [dict(doc, _id=i) for i, doc in enumerate(docs)]
        plain = Collection("scan")
        single = Collection("single")
        single.create_index("a")
        single.create_index("lat")
        compound = Collection("compound")
        compound.create_index([("a", 1), ("lat", 1)])
        for coll in (plain, single, compound):
            if stored:
                coll.insert_many(copy.deepcopy(stored))
        filters = [
            {"a": eq_value},
            {"a": eq_value, "lat": {"$gte": threshold}},
            {"lat": {"$gte": threshold, "$lte": threshold + 50}},
            {"a": {"$in": [eq_value, eq_value + 1]}},
        ]
        for flt in filters:
            brute = sorted(
                (d["_id"] for d in stored if matches(d, flt)), key=str
            )
            for coll in (plain, single, compound):
                first = sorted((d["_id"] for d in coll.find(flt)), key=str)
                cached = sorted((d["_id"] for d in coll.find(flt)), key=str)
                assert first == brute, (coll.name, flt)
                assert cached == brute, (coll.name, flt)

    @given(
        st.lists(
            st.lists(flat_documents, min_size=1, max_size=5), max_size=5
        ),
        numbers,
    )
    @settings(max_examples=50)
    def test_cache_never_stale_across_batches(self, batches, threshold):
        coll = Collection("t")
        coll.create_index("lat")
        flt = {"lat": {"$gte": threshold}}
        all_docs = []
        next_id = 0
        for batch in batches:
            prepared = [
                dict(d, _id=next_id + i) for i, d in enumerate(batch)
            ]
            next_id += len(prepared)
            coll.insert_many(copy.deepcopy(prepared))
            all_docs.extend(prepared)
            expected = sorted(
                d["_id"] for d in all_docs if matches(d, flt)
            )
            # Fresh answer after the batch's single epoch bump...
            assert sorted(d["_id"] for d in coll.find(flt)) == expected
            # ...and the immediately-cached repeat is identical.
            assert sorted(d["_id"] for d in coll.find(flt)) == expected
