"""Tests for the CSV/JSON figure-data exporters (repro.analysis.export)."""

import csv
import io
import json

import pytest

from repro.analysis.bandwidth import bandwidth_by_path
from repro.analysis.export import (
    bandwidth_records,
    isd_group_records,
    latency_records,
    loss_records,
    reachability_records,
    to_csv,
    to_json,
    write_csv,
    write_json,
)
from repro.analysis.latency import latency_by_isd_group, latency_by_path
from repro.analysis.loss import loss_by_path
from repro.analysis.reachability import reachability


class TestRecordBuilders:
    def test_reachability_records(self, world_host):
        records = reachability_records(reachability(world_host))
        assert sum(r["destinations"] for r in records) == 21
        assert all(set(r) == {"min_hops", "destinations"} for r in records)

    def test_latency_records(self, measured_world):
        records = latency_records(latency_by_path(measured_world.db, 1))
        assert len(records) == 22
        first = records[0]
        assert first["path_id"] == "1_0"
        assert first["whisker_low"] <= first["median"] <= first["whisker_high"]

    def test_isd_group_records(self, measured_world):
        records = isd_group_records(latency_by_isd_group(measured_world.db, 1))
        assert any(r["isds"] == "16+17+19" for r in records)
        assert all(r["paths"] >= 1 for r in records)

    def test_bandwidth_records_four_series_per_path(self, measured_world):
        series = bandwidth_by_path(measured_world.db, 3, target_mbps=12.0)
        records = bandwidth_records(series)
        assert len(records) == 4 * len(series)
        keys = {(r["direction"], r["packet"]) for r in records}
        assert keys == {("up", "small"), ("up", "mtu"), ("down", "small"), ("down", "mtu")}

    def test_loss_records(self, measured_world):
        records = loss_records(loss_by_path(measured_world.db, 1))
        assert all(r["measurements"] >= 1 for r in records)
        per_path = {}
        for r in records:
            per_path[r["path_id"]] = per_path.get(r["path_id"], 0) + r["measurements"]
        assert all(total == 2 for total in per_path.values())


class TestSerializers:
    RECORDS = [
        {"a": 1, "b": "x", "outliers": [1.5, 2.5]},
        {"a": 2, "b": "y", "outliers": []},
    ]

    def test_csv_roundtrip(self):
        text = to_csv(self.RECORDS)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["a"] == "1"
        assert rows[0]["outliers"] == "1.5;2.5"
        assert rows[1]["outliers"] == ""

    def test_csv_empty(self):
        assert to_csv([]) == ""

    def test_json_roundtrip(self):
        parsed = json.loads(to_json(self.RECORDS))
        assert parsed[0]["outliers"] == [1.5, 2.5]

    def test_file_writers(self, tmp_path):
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        write_csv(str(csv_path), self.RECORDS)
        write_json(str(json_path), self.RECORDS)
        assert csv_path.read_text().startswith("a,b,outliers")
        assert json.loads(json_path.read_text())[1]["a"] == 2

    def test_full_pipeline_to_disk(self, measured_world, tmp_path):
        records = latency_records(latency_by_path(measured_world.db, 1))
        path = tmp_path / "fig5.csv"
        write_csv(str(path), records)
        rows = list(csv.DictReader(io.StringIO(path.read_text())))
        assert len(rows) == 22
        assert {r["hop_count"] for r in rows} == {"6", "7"}
