"""Tests for the what-if exclusion-policy analysis (repro.analysis.whatif)."""

import pytest

from repro.analysis.whatif import ExclusionPolicy, path_diversity


@pytest.fixture(scope="module")
def host(world_host):
    return world_host


class TestExclusionPolicy:
    def test_country_normalised(self):
        policy = ExclusionPolicy.make(countries=["us", "Sg"])
        assert policy.countries == frozenset({"US", "SG"})

    def test_admits_checks_every_hop(self, host):
        policy = ExclusionPolicy.make(countries=["US"])
        paths = host.paths("16-ffaa:0:1002", max_paths=None)
        via_ohio = next(p for p in paths if p.transits("16-ffaa:0:1004"))
        europe = next(
            p for p in paths
            if not p.transits("16-ffaa:0:1004") and not p.transits("16-ffaa:0:1007")
        )
        assert not policy.admits(host, via_ohio)
        assert policy.admits(host, europe)


class TestPathDiversity:
    def test_empty_policy_everything_reachable(self, host):
        result = path_diversity(host, ExclusionPolicy.make())
        assert result.reachable_count == 21
        assert all(
            d.admissible_paths == d.total_paths for d in result.destinations
        )

    def test_excluding_us_and_sg_keeps_ireland_reachable(self, host):
        """The sovereignty demo: Ireland loses its 8 detour paths but
        stays reachable; the US and Singapore servers themselves drop."""
        result = path_diversity(
            host, ExclusionPolicy.make(countries=["US", "SG"])
        )
        ireland = result.diversity_of(1)
        assert ireland.reachable
        assert ireland.total_paths - ireland.admissible_paths == 8
        # Destination ASes inside excluded countries become unreachable.
        lost = {d.isd_as for d in result.unreachable}
        assert "16-ffaa:0:1003" in lost  # N. Virginia
        assert "16-ffaa:0:1007" in lost  # AWS Singapore
        assert "18-ffaa:0:1203" in lost  # Columbia NYC

    def test_excluding_amazon_kills_all_aws_destinations(self, host):
        result = path_diversity(host, ExclusionPolicy.make(operators=["Amazon"]))
        lost = {d.isd_as for d in result.unreachable}
        assert {
            "16-ffaa:0:1001", "16-ffaa:0:1002", "16-ffaa:0:1003",
            "16-ffaa:0:1004", "16-ffaa:0:1005", "16-ffaa:0:1006",
            "16-ffaa:0:1007",
        } <= lost
        # Non-AWS destinations keep full diversity.
        magdeburg = result.diversity_of(3)
        assert magdeburg.admissible_paths == magdeburg.total_paths

    def test_excluding_home_isd_kills_everything(self, host):
        """Every path starts in ISD 17, so excluding it is total."""
        result = path_diversity(host, ExclusionPolicy.make(isds=[17]))
        assert result.reachable_count == 0

    def test_excluding_single_as_reduces_not_kills(self, host):
        result = path_diversity(
            host, ExclusionPolicy.make(ases=["19-ffaa:0:1302"])  # GEANT
        )
        ireland = result.diversity_of(1)
        assert ireland.reachable
        assert 0 < ireland.admissible_paths < ireland.total_paths

    def test_survival_fraction(self, host):
        result = path_diversity(host, ExclusionPolicy.make(countries=["US"]))
        nv = result.diversity_of(2)
        assert nv.survival_fraction == 0.0
        ireland = result.diversity_of(1)
        assert 0.0 < ireland.survival_fraction < 1.0

    def test_format_text(self, host):
        result = path_diversity(host, ExclusionPolicy.make(countries=["US"]))
        text = result.format_text()
        assert "What-if" in text
        assert "unreachable" in text
