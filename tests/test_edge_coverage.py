"""Edge-case coverage: jitter config, path status, index internals,
big-number primes, retention, the all-figures runner."""

import numpy as np
import pytest

from repro.analysis.stats import whisker_stats
from repro.crypto.primes import is_probable_prime
from repro.docdb.client import DocDBClient
from repro.docdb.index import FieldIndex
from repro.netsim.congestion import CongestionEpisode
from repro.netsim.network import ServerHealth
from repro.scion.snet import ScionHost
from repro.suite.storage import prune_stats
from repro.apps.showpaths import ShowpathsApp


class TestJitteryAses:
    """§6.1: 16-ffaa:0:1007 / 16-ffaa:0:1004 'introduce a wide jitter'."""

    def test_detour_paths_have_wider_spread(self, fresh_world_host):
        host = fresh_world_host
        paths = host.paths("16-ffaa:0:1002", max_paths=None)
        kept = [p for p in paths if p.hop_count <= paths[0].hop_count + 1]
        europe = next(
            p for p in kept
            if not p.transits("16-ffaa:0:1004") and not p.transits("16-ffaa:0:1007")
        )
        detour = next(p for p in kept if p.transits("16-ffaa:0:1007"))

        def spread(path):
            stats = host.scmp.echo_series(
                path, "172.31.43.7", count=20, interval_s=0.05
            )
            return whisker_stats(list(stats.rtts_ms)).spread

        assert spread(detour) > 2.0 * spread(europe)


class TestShowpathsStatusUnderFailure:
    def test_probe_times_out_during_blackout(self, fresh_world_host):
        host = fresh_world_host
        host.network.add_episode(
            CongestionEpisode.on_ases(["16-ffaa:0:1001"], 0.0, 10_000.0, loss=1.0)
        )
        result = ShowpathsApp(host).run("16-ffaa:0:1002", max_paths=4, probe=True)
        assert all(e.status == "timeout" for e in result.entries)

    def test_mixed_status(self, fresh_world_host):
        host = fresh_world_host
        # Kill only the Ohio AS: direct paths stay alive.
        host.network.add_episode(
            CongestionEpisode.on_ases(["16-ffaa:0:1004"], 0.0, 10_000.0, loss=1.0)
        )
        result = ShowpathsApp(host).run("16-ffaa:0:1002", max_paths=40, probe=True)
        statuses = {e.status for e in result.entries}
        assert statuses == {"alive", "timeout"}
        for e in result.entries:
            expected = "timeout" if e.path.transits("16-ffaa:0:1004") else "alive"
            assert e.status == expected


class TestFieldIndexInternals:
    def test_add_remove_cycle(self):
        index = FieldIndex("v")
        doc = {"_id": 1, "v": 5}
        index.add(doc)
        assert index.ids_equal(5) == {1}
        index.remove(doc)
        assert index.ids_equal(5) == set()
        assert len(index) == 0

    def test_missing_field_bucketed(self):
        index = FieldIndex("v")
        index.add({"_id": 1})
        assert index.ids_equal(None) == {1}

    def test_bool_and_number_keys_distinct(self):
        index = FieldIndex("v")
        index.add({"_id": 1, "v": True})
        index.add({"_id": 2, "v": 1})
        assert index.ids_equal(True) == {1}
        assert index.ids_equal(1) == {2}

    def test_string_range(self):
        index = FieldIndex("name")
        for i, name in enumerate(["alpha", "beta", "gamma"]):
            index.add({"_id": i, "name": name})
        assert index.ids_range(gte="b", lt="g") == {1}

    def test_unbounded_range_returns_everything(self):
        index = FieldIndex("v")
        index.add({"_id": 1, "v": 1})
        index.add({"_id": 2, "v": "text"})
        assert index.ids_range() == {1, 2}

    def test_array_values_indexed_per_element(self):
        index = FieldIndex("tags")
        index.add({"_id": 1, "tags": ["a", "b"]})
        assert index.ids_equal("a") == {1}
        assert index.ids_equal("b") == {1}

    def test_distinct_keys_sorted_stable(self):
        index = FieldIndex("v")
        index.add({"_id": 1, "v": 2})
        index.add({"_id": 2, "v": 1})
        keys = index.distinct_keys()
        assert keys == sorted(keys, key=repr)


class TestBigNumberPrimes:
    def test_mersenne_prime_m89(self):
        # 2^89 - 1 is prime and exceeds the deterministic-witness bound.
        assert is_probable_prime(2**89 - 1, rng=np.random.default_rng(0))

    def test_large_composite(self):
        n = (2**89 - 1) * (2**61 - 1)
        assert not is_probable_prime(n, rng=np.random.default_rng(0))


class TestRetention:
    def test_prune_stats(self):
        coll = DocDBClient()["upin"]["paths_stats"]
        coll.create_index("timestamp_ms")
        coll.insert_many(
            [{"_id": f"1_0_{t}", "timestamp_ms": t} for t in range(10)]
        )
        removed = prune_stats(coll, before_ms=6)
        assert removed == 6
        remaining = sorted(d["timestamp_ms"] for d in coll.find())
        assert remaining == [6, 7, 8, 9]

    def test_prune_nothing(self):
        coll = DocDBClient()["upin"]["paths_stats"]
        coll.insert_one({"_id": "x", "timestamp_ms": 100})
        assert prune_stats(coll, before_ms=50) == 0


class TestRunAllSmoke:
    def test_runner_produces_all_sections(self):
        from repro.experiments.runner import run_all

        report = run_all(iterations=1, seed=77)
        for section in ("Figure 4", "Figure 5", "Figure 6", "Figure 7",
                        "Figure 8", "Figure 9"):
            assert section in report
        assert "total wall time" in report

    def test_runner_cli_writes_file(self, tmp_path):
        from repro.experiments.runner import main

        out = tmp_path / "report.txt"
        assert main(["--iterations", "1", "--seed", "77", "--output", str(out)]) == 0
        assert "Figure 9" in out.read_text()
