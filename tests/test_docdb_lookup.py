"""Tests for the $lookup and $addFields aggregation stages."""

import pytest

from repro.docdb.client import DocDBClient
from repro.errors import QueryError


@pytest.fixture()
def db():
    client = DocDBClient()
    db = client["upin"]
    db["paths"].insert_many(
        [
            {"_id": "1_0", "server_id": 1, "hop_count": 6},
            {"_id": "1_1", "server_id": 1, "hop_count": 7},
        ]
    )
    db["paths_stats"].insert_many(
        [
            {"_id": "1_0_1", "path_id": "1_0", "lat": 40.0},
            {"_id": "1_0_2", "path_id": "1_0", "lat": 42.0},
            {"_id": "1_1_1", "path_id": "1_1", "lat": 50.0},
        ]
    )
    return db


class TestLookup:
    def test_join_paths_with_stats(self, db):
        out = db["paths"].aggregate(
            [
                {
                    "$lookup": {
                        "from": db["paths_stats"],
                        "localField": "_id",
                        "foreignField": "path_id",
                        "as": "samples",
                    }
                },
                {"$sort": {"_id": 1}},
            ]
        )
        assert len(out[0]["samples"]) == 2
        assert len(out[1]["samples"]) == 1
        assert out[0]["samples"][0]["lat"] == 40.0

    def test_left_outer_semantics(self, db):
        db["paths"].insert_one({"_id": "1_2", "server_id": 1, "hop_count": 7})
        out = db["paths"].aggregate(
            [
                {
                    "$lookup": {
                        "from": db["paths_stats"],
                        "localField": "_id",
                        "foreignField": "path_id",
                        "as": "samples",
                    }
                },
                {"$match": {"_id": "1_2"}},
            ]
        )
        assert out[0]["samples"] == []

    def test_from_plain_list(self, db):
        foreign = [{"k": 1, "v": "a"}, {"k": 1, "v": "b"}]
        out = db["paths"].aggregate(
            [
                {"$addFields": {"k": 1}},
                {
                    "$lookup": {
                        "from": foreign,
                        "localField": "k",
                        "foreignField": "k",
                        "as": "joined",
                    }
                },
            ]
        )
        assert all(len(d["joined"]) == 2 for d in out)

    def test_lookup_then_group(self, db):
        """The selection-engine query shape expressed as a pipeline."""
        out = db["paths"].aggregate(
            [
                {
                    "$lookup": {
                        "from": db["paths_stats"],
                        "localField": "_id",
                        "foreignField": "path_id",
                        "as": "samples",
                    }
                },
                {"$unwind": "$samples"},
                {
                    "$group": {
                        "_id": "$_id",
                        "avg_lat": {"$avg": "$samples.lat"},
                        "n": {"$sum": 1},
                    }
                },
                {"$sort": {"_id": 1}},
            ]
        )
        assert out[0] == {"_id": "1_0", "avg_lat": 41.0, "n": 2}
        assert out[1] == {"_id": "1_1", "avg_lat": 50.0, "n": 1}

    def test_missing_spec_key_rejected(self, db):
        with pytest.raises(QueryError):
            db["paths"].aggregate(
                [{"$lookup": {"from": [], "localField": "x", "as": "y"}}]
            )

    def test_join_does_not_mutate_sources(self, db):
        db["paths"].aggregate(
            [
                {
                    "$lookup": {
                        "from": db["paths_stats"],
                        "localField": "_id",
                        "foreignField": "path_id",
                        "as": "samples",
                    }
                }
            ]
        )
        assert "samples" not in db["paths"].find_one({"_id": "1_0"})


class TestAddFields:
    def test_computed_field(self, db):
        out = db["paths"].aggregate(
            [{"$addFields": {"double_hops": "$hop_count"}},
             {"$sort": {"_id": 1}}]
        )
        assert out[0]["double_hops"] == 6
        assert out[0]["hop_count"] == 6  # original kept

    def test_nested_target_path(self, db):
        out = db["paths"].aggregate(
            [{"$addFields": {"meta.src": "$server_id"}}]
        )
        assert out[0]["meta"]["src"] == 1

    def test_constant_value(self, db):
        out = db["paths"].aggregate([{"$addFields": {"tag": "x"}}])
        assert all(d["tag"] == "x" for d in out)
