"""Tests for the SCION application layer (repro.apps)."""

import pytest

from repro.apps.address import AddressApp
from repro.apps.bwtester import BwtestApp, parse_bwtest_params
from repro.apps.ping import PingApp
from repro.apps.sequence import HopPredicate, Sequence
from repro.apps.showpaths import ShowpathsApp
from repro.apps.traceroute import TracerouteApp
from repro.errors import (
    BandwidthTestError,
    NoPathError,
    ParseError,
    ServerErrorResponse,
    ServerUnreachableError,
)
from repro.netsim.network import ServerHealth
from repro.scion.snet import ScionHost

from tests.helpers import build_tiny_world

LEAF_ADDR = "2-ffaa:0:2,[10.2.0.2]"


@pytest.fixture()
def host():
    return ScionHost(build_tiny_world(), "1-ffaa:1:1")


class TestSequenceLanguage:
    def test_parse_full_predicate(self):
        p = HopPredicate.parse("17-ffaa:0:1107#3,1")
        assert p.isd == 17 and p.ingress == 3 and p.egress == 1

    def test_parse_as_only(self):
        p = HopPredicate.parse("17-ffaa:0:1107")
        assert p.ingress == 0 and p.egress == 0

    def test_single_interface_means_both(self):
        p = HopPredicate.parse("17-ffaa:0:1107#2")
        assert p.ingress == 2 and p.egress == 2

    def test_wildcard_as(self):
        p = HopPredicate.parse("17-0#0,0")
        assert p.asn is None

    @pytest.mark.parametrize("bad", ["", "x", "17", "17-ffaa", "17-ffaa:0:1#a,b"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ParseError):
            HopPredicate.parse(bad)

    def test_sequence_matches_own_path(self, host):
        path = host.paths("2-ffaa:0:2", max_paths=None)[1]
        seq = Sequence.parse(path.sequence())
        assert seq.matches(path)

    def test_sequence_selects_exactly_one(self, host):
        paths = host.paths("2-ffaa:0:2", max_paths=None)
        seq = Sequence.parse(paths[2].sequence())
        selected = seq.select(paths)
        assert [p.sequence() for p in selected] == [paths[2].sequence()]

    def test_wildcard_interfaces_match_more(self, host):
        paths = host.paths("2-ffaa:0:2", max_paths=None)
        # Same AS chain, any interfaces: matches both parallel variants.
        loose = " ".join(f"{h.isd_as}" for h in paths[0].hops)
        selected = Sequence.parse(loose).select(paths)
        assert len(selected) >= 1

    def test_length_mismatch_no_match(self, host):
        paths = host.paths("2-ffaa:0:2", max_paths=None)
        seq = Sequence.parse("1-ffaa:1:1")
        assert not seq.matches(paths[0])

    def test_roundtrip_str(self):
        seq = Sequence.parse("17-ffaa:0:1107#3,1 16-ffaa:0:1002#0,0")
        assert Sequence.parse(str(seq)) == seq


class TestAddressApp:
    def test_address_output(self, host):
        result = AddressApp(host).run()
        assert result.format_text() == "1-ffaa:1:1,[127.0.0.1]"


class TestShowpathsApp:
    def test_default_cap(self, host):
        result = ShowpathsApp(host).run("2-ffaa:0:2")
        assert len(result.entries) <= 10

    def test_extended_has_latency_and_mtu(self, host):
        result = ShowpathsApp(host).run("2-ffaa:0:2", extended=True)
        entry = result.entries[0]
        assert entry.mtu == 1472
        assert entry.latency_hint_ms is not None and entry.latency_hint_ms > 0

    def test_probe_marks_alive(self, host):
        result = ShowpathsApp(host).run("2-ffaa:0:2", extended=True, probe=True)
        assert all(e.status == "alive" for e in result.entries)

    def test_format_text_extended(self, host):
        result = ShowpathsApp(host).run("2-ffaa:0:2", extended=True, probe=True)
        text = result.format_text(extended=True)
        assert "Available paths to 2-ffaa:0:2" in text
        assert "MTU: 1472" in text
        assert "Status: alive" in text

    def test_m_option_increases_list(self, host):
        few = ShowpathsApp(host).run("2-ffaa:0:2", max_paths=2)
        more = ShowpathsApp(host).run("2-ffaa:0:2", max_paths=40)
        assert len(few.entries) == 2
        assert len(more.entries) == 4


class TestPingApp:
    def test_basic_run(self, host):
        report = PingApp(host).run(LEAF_ADDR, count=5, interval="0.01s")
        assert report.stats.sent == 5
        assert "packets transmitted" in report.format_text()

    def test_sequence_pins_path(self, host):
        paths = host.paths("2-ffaa:0:2", max_paths=None)
        want = paths[3]
        report = PingApp(host).run(
            LEAF_ADDR, count=2, interval="0.01s", sequence=want.sequence()
        )
        assert report.path.sequence() == want.sequence()

    def test_bad_sequence_raises(self, host):
        with pytest.raises(NoPathError):
            PingApp(host).run(LEAF_ADDR, count=1, sequence="9-0:0:9#0,0")

    def test_interactive_selector(self, host):
        chosen = {}

        def selector(paths):
            chosen["n"] = len(paths)
            return len(paths) - 1

        report = PingApp(host).run(
            LEAF_ADDR, count=1, interval="0.01s", interactive=selector,
            max_paths=None,
        )
        assert chosen["n"] == 4
        assert report.path.sequence() == host.paths(
            "2-ffaa:0:2", max_paths=None
        )[-1].sequence()

    def test_interactive_out_of_range(self, host):
        with pytest.raises(NoPathError):
            PingApp(host).run(LEAF_ADDR, count=1, interactive=lambda paths: 99)


class TestTracerouteApp:
    def test_run_and_format(self, host):
        report = TracerouteApp(host).run(LEAF_ADDR)
        assert len(report.hops) == report.path.n_links
        text = report.format_text()
        assert text.startswith("traceroute to")

    def test_per_link_latency_monotone_structure(self, host):
        report = TracerouteApp(host).run(LEAF_ADDR)
        increments = report.per_link_latency_ms()
        assert len(increments) == len(report.hops)
        assert all(v is None or v >= 0 for v in increments)


class TestBwtestParams:
    def test_paper_string(self):
        params = parse_bwtest_params("3,64,?,12Mbps")
        assert params.duration_s == 3.0
        assert params.packet_bytes == 64
        assert params.target.mbps == pytest.approx(12.0)
        # 12 Mbps at 64 B = 23437.5 pkt/s * 3 s
        assert params.num_packets == pytest.approx(70312, abs=2)

    def test_mtu_token(self):
        params = parse_bwtest_params("3,MTU,?,12Mbps", mtu=1472)
        assert params.packet_bytes == 1472

    def test_wildcard_bandwidth(self):
        params = parse_bwtest_params("5,100,?,150Mbps")
        assert params.target.mbps == pytest.approx(150.0)

    def test_derive_target_from_packets(self):
        params = parse_bwtest_params("1,1000,1000,?")
        assert params.target.bps == pytest.approx(8e6)

    def test_derive_duration(self):
        params = parse_bwtest_params("?,1000,1000,8Mbps")
        assert params.duration_s == pytest.approx(1.0)

    def test_derive_size(self):
        params = parse_bwtest_params("1,?,1000,8Mbps")
        assert params.packet_bytes == 1000

    def test_two_wildcards_rejected(self):
        with pytest.raises(ParseError):
            parse_bwtest_params("?,64,?,12Mbps")

    def test_wrong_field_count_rejected(self):
        with pytest.raises(ParseError):
            parse_bwtest_params("3,64,12Mbps")

    def test_duration_cap_10s(self):
        with pytest.raises(BandwidthTestError):
            parse_bwtest_params("11,64,?,12Mbps")

    def test_min_packet_size_4(self):
        with pytest.raises(BandwidthTestError):
            parse_bwtest_params("3,2,?,12Mbps")

    def test_spec_string_roundtrip(self):
        params = parse_bwtest_params("3,64,?,12Mbps")
        again = parse_bwtest_params(params.spec_string())
        assert again.target.bps == pytest.approx(params.target.bps, rel=0.01)


class TestBwtestApp:
    def test_both_directions_measured(self, host):
        result = BwtestApp(host).run(LEAF_ADDR, cs="3,64,?,12Mbps")
        assert 0 < result.cs.achieved.mbps <= 12.0
        assert 0 < result.sc.achieved.mbps <= 12.0

    def test_sc_defaults_to_cs(self, host):
        result = BwtestApp(host).run(LEAF_ADDR, cs="3,64,?,12Mbps")
        assert result.sc.params == result.cs.params

    def test_separate_sc_params(self, host):
        result = BwtestApp(host).run(
            LEAF_ADDR, cs="3,64,?,12Mbps", sc="3,MTU,?,12Mbps"
        )
        assert result.sc.params.packet_bytes == 1472

    def test_clock_advances_by_both_durations(self, host):
        before = host.clock.now_s
        BwtestApp(host).run(LEAF_ADDR, cs="3,64,?,12Mbps")
        assert host.clock.now_s - before == pytest.approx(6.0)

    def test_down_server_raises(self, host):
        host.network.servers.set_health("2-ffaa:0:2", "10.2.0.2", ServerHealth.DOWN)
        with pytest.raises(ServerUnreachableError):
            BwtestApp(host).run(LEAF_ADDR)

    def test_error_server_raises(self, host):
        host.network.servers.set_health("2-ffaa:0:2", "10.2.0.2", ServerHealth.ERROR)
        with pytest.raises(ServerErrorResponse):
            BwtestApp(host).run(LEAF_ADDR)

    def test_format_text(self, host):
        result = BwtestApp(host).run(LEAF_ADDR, cs="3,64,?,12Mbps")
        text = result.format_text()
        assert "S->C results:" in text and "C->S results:" in text
        assert "Achieved bandwidth:" in text
