"""Property tests on randomly generated topologies.

A generator builds arbitrary (but structurally valid) two-ISD worlds;
the combinator's invariants must hold on all of them: loop-freedom,
ranking, endpoint correctness, resolvable traversals, and symmetry of
reachability.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NoPathError
from repro.scion.beaconing import Beaconer
from repro.scion.combinator import combine_paths
from repro.topology.builder import TopologyBuilder
from repro.topology.entities import ASRole
from repro.topology.isd_as import ISDAS


def random_world(seed: int):
    """A random valid world: 2 ISDs, chained cores, random leaf trees."""
    rng = np.random.default_rng(seed)
    b = TopologyBuilder()
    nodes = {1: [], 2: []}
    for isd in (1, 2):
        n_cores = int(rng.integers(1, 3))
        for i in range(n_cores):
            ia = f"{isd}-0:0:{i + 1:x}"
            b.add_as(ia, f"core{isd}.{i}", role=ASRole.CORE,
                     lat=float(rng.uniform(-60, 60)),
                     lon=float(rng.uniform(-150, 150)),
                     country="XX", operator="Op")
            nodes[isd].append(ia)
        # Chain the ISD's cores.
        for a, c in zip(nodes[isd], nodes[isd][1:]):
            b.core_link(a, c)
        # Random leaves, each parented to an existing node of the ISD.
        n_leaves = int(rng.integers(1, 5))
        for j in range(n_leaves):
            ia = f"{isd}-0:1:{j + 1:x}"
            b.add_as(ia, f"leaf{isd}.{j}", role=ASRole.NON_CORE,
                     lat=float(rng.uniform(-60, 60)),
                     lon=float(rng.uniform(-150, 150)),
                     country="XX", operator="Op")
            parent = nodes[isd][int(rng.integers(0, len(nodes[isd])))]
            b.parent_link(parent, ia)
            # Occasionally multi-home the leaf.
            if rng.random() < 0.3 and len(nodes[isd]) > 1:
                second = nodes[isd][int(rng.integers(0, len(nodes[isd])))]
                if second != parent:
                    b.parent_link(second, ia)
            nodes[isd].append(ia)
    # Inter-ISD core link so the two ISDs connect.
    b.core_link(nodes[1][0], nodes[2][0])
    topo = b.build()
    leaves = [ia for isd in (1, 2) for ia in nodes[isd]]
    return topo, leaves


@st.composite
def world_and_pair(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    topo, nodes = random_world(seed)
    i = draw(st.integers(min_value=0, max_value=len(nodes) - 1))
    j = draw(st.integers(min_value=0, max_value=len(nodes) - 1))
    return topo, nodes[i], nodes[j]


class TestRandomWorldInvariants:
    @given(world_and_pair())
    @settings(max_examples=60, deadline=None)
    def test_combinator_invariants(self, case):
        topo, src, dst = case
        beaconer = Beaconer(topo)
        try:
            paths = combine_paths(beaconer, src, dst)
        except NoPathError:
            return  # disconnection / src == dst: acceptable outcomes
        counts = [p.hop_count for p in paths]
        assert counts == sorted(counts)
        sequences = [p.sequence() for p in paths]
        assert len(sequences) == len(set(sequences))
        for p in paths:
            ases = p.ases()
            assert len(ases) == len(set(ases))
            assert str(ases[0]) == src and str(ases[-1]) == dst
            steps = p.traversals(topo)
            assert len(steps) == p.hop_count - 1
            # Each traversal must chain: receiver of one = sender of next.
            for s1, s2 in zip(steps, steps[1:]):
                assert s1.link.other(s1.sender) == s2.sender

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_reachability_symmetric(self, seed):
        """If src reaches dst, dst reaches src (undirected substrate)."""
        topo, nodes = random_world(seed)
        rng = np.random.default_rng(seed + 1)
        src, dst = (
            nodes[int(rng.integers(0, len(nodes)))],
            nodes[int(rng.integers(0, len(nodes)))],
        )
        if src == dst:
            return
        beaconer = Beaconer(topo)

        def reachable(a, b):
            try:
                combine_paths(beaconer, a, b)
                return True
            except NoPathError:
                return False

        assert reachable(src, dst) == reachable(dst, src)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_min_hops_matches_graph_distance(self, seed):
        """The best path's hop count can never beat the plain shortest
        path in the undirected link graph (SCION only restricts)."""
        import networkx as nx

        topo, nodes = random_world(seed)
        g = topo.to_networkx()
        beaconer = Beaconer(topo)
        rng = np.random.default_rng(seed + 2)
        src = nodes[int(rng.integers(0, len(nodes)))]
        dst = nodes[int(rng.integers(0, len(nodes)))]
        if src == dst:
            return
        try:
            best = combine_paths(beaconer, src, dst)[0]
        except NoPathError:
            return
        shortest = nx.shortest_path_length(
            g, ISDAS.parse(src), ISDAS.parse(dst)
        )
        assert best.hop_count >= shortest + 1  # hops count ASes, not links
