"""Property-based tests for the network substrate and control plane."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import whisker_stats
from repro.netsim.config import NetworkConfig, UtilizationParams
from repro.netsim.packet import (
    FRAGMENT_HEADER_BYTES,
    PacketSpec,
    fragment_count,
    wire_size_bytes,
)
from repro.netsim.procs import UtilizationProcess
from repro.util.rng import RngStreams

payloads = st.integers(min_value=0, max_value=9000)
hops = st.integers(min_value=1, max_value=16)
mtus = st.integers(min_value=576, max_value=9000)


class TestPacketProperties:
    @given(payloads, hops)
    def test_wire_size_monotone_in_payload_and_hops(self, payload, n_hops):
        assert wire_size_bytes(payload + 1, n_hops) > wire_size_bytes(payload, n_hops)
        assert wire_size_bytes(payload, n_hops + 1) > wire_size_bytes(payload, n_hops)

    @given(st.integers(min_value=1, max_value=100_000), mtus)
    def test_fragments_cover_packet(self, wire, mtu):
        """k fragments must be enough, and k-1 must not be."""
        k = fragment_count(wire, mtu)
        capacity_k = mtu + (k - 1) * (mtu - FRAGMENT_HEADER_BYTES)
        assert capacity_k >= wire
        if k > 1:
            capacity_km1 = mtu + (k - 2) * (mtu - FRAGMENT_HEADER_BYTES)
            assert capacity_km1 < wire

    @given(payloads, hops)
    def test_goodput_fraction_bounds(self, payload, n_hops):
        spec = PacketSpec(payload_bytes=payload, n_hops=n_hops)
        assert 0.0 <= spec.goodput_fraction < 1.0

    @given(hops)
    def test_paper_packet_classes(self, n_hops):
        """64 B never fragments; 1472 B always does (1500 underlay MTU)."""
        assert PacketSpec(payload_bytes=64, n_hops=n_hops).fragments == 1
        assert PacketSpec(payload_bytes=1472, n_hops=n_hops).fragments >= 2


class TestUtilizationProperties:
    @given(
        st.floats(min_value=0.05, max_value=0.9, allow_nan=False),
        st.floats(min_value=0.0, max_value=0.95, allow_nan=False),
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=50)
    def test_always_within_bounds(self, mean, rho, sigma, t):
        params = UtilizationParams(mean=mean, rho=rho, sigma=sigma)
        proc = UtilizationProcess(params, RngStreams(3).get("u"))
        value = proc.value_at(float(t))
        assert params.floor <= value <= params.ceil

    @given(st.integers(min_value=0, max_value=500))
    def test_point_in_mean_window(self, t):
        proc = UtilizationProcess(UtilizationParams(), RngStreams(4).get("u"))
        window_mean = proc.mean_over(float(t), float(t) + 10.0)
        values = [proc.value_at(float(t) + k) for k in range(11)]
        assert min(values) <= window_mean <= max(values)


class TestWhiskerProperties:
    @given(st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1, max_size=200,
    ))
    def test_order_invariants(self, samples):
        w = whisker_stats(samples)
        assert w.minimum <= w.whisker_low <= w.q1 <= w.median <= w.q3
        assert w.q3 <= w.whisker_high <= w.maximum
        eps = 1e-9 * max(1.0, abs(w.minimum), abs(w.maximum))
        assert w.minimum - eps <= w.mean <= w.maximum + eps
        assert w.n == len(samples)

    @given(st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1, max_size=100,
    ))
    def test_outliers_outside_whiskers(self, samples):
        w = whisker_stats(samples)
        for outlier in w.outliers:
            assert outlier < w.whisker_low or outlier > w.whisker_high

    @given(st.lists(
        st.floats(min_value=0, max_value=1e3, allow_nan=False),
        min_size=1, max_size=50,
    ), st.floats(min_value=1.0, max_value=100.0, allow_nan=False))
    def test_translation_equivariance(self, samples, shift):
        base = whisker_stats(samples)
        moved = whisker_stats([s + shift for s in samples])
        assert moved.median == pytest_approx(base.median + shift)
        assert moved.spread == pytest_approx(base.spread)


def pytest_approx(value, rel=1e-9, abs_tol=1e-6):
    import pytest

    return pytest.approx(value, rel=rel, abs=abs_tol)


class TestScionProperties:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_combined_paths_always_loop_free_and_ranked(self, seed):
        """Across arbitrary destinations of the world: no loops, ranked."""
        from repro.scion.snet import ScionHost
        from repro.topology.scionlab import AVAILABLE_SERVERS

        host = _shared_host()
        ia, _ip = AVAILABLE_SERVERS[seed % len(AVAILABLE_SERVERS)]
        paths = host.paths(ia, max_paths=None)
        counts = [p.hop_count for p in paths]
        assert counts == sorted(counts)
        for p in paths:
            assert len(p.ases()) == len(set(p.ases()))
            assert str(p.ases()[0]) == "17-ffaa:1:e01"
            assert str(p.dst) == ia

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_sequence_roundtrip_for_any_path(self, seed):
        from repro.apps.sequence import Sequence
        from repro.topology.scionlab import AVAILABLE_SERVERS

        host = _shared_host()
        ia, _ip = AVAILABLE_SERVERS[seed % len(AVAILABLE_SERVERS)]
        paths = host.paths(ia, max_paths=None)
        path = paths[seed % len(paths)]
        assert Sequence.parse(path.sequence()).matches(path)


_HOST_CACHE = {}


def _shared_host():
    if "host" not in _HOST_CACHE:
        from repro.scion.snet import ScionHost

        _HOST_CACHE["host"] = ScionHost.scionlab(seed=8)
    return _HOST_CACHE["host"]
