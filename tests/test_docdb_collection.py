"""Tests for collections, indexes and the query planner."""

import threading

import pytest

from repro.docdb.collection import Collection
from repro.docdb.database import Database
from repro.docdb.client import DocDBClient
from repro.errors import DocDBError, DuplicateKeyError, QueryError


@pytest.fixture()
def coll():
    c = Collection("paths_stats")
    c.insert_many(
        [
            {"_id": f"1_{i}", "server_id": 1, "lat": 40 + i, "isds": [16, 17]}
            for i in range(5)
        ]
        + [
            {"_id": f"2_{i}", "server_id": 2, "lat": 100 + i, "isds": [16, 18]}
            for i in range(5)
        ]
    )
    return c


class TestInserts:
    def test_insert_one_returns_id(self):
        c = Collection("t")
        result = c.insert_one({"_id": "x", "v": 1})
        assert result.inserted_id == "x"
        assert len(c) == 1

    def test_insert_generates_id(self):
        c = Collection("t")
        result = c.insert_one({"v": 1})
        assert result.inserted_id

    def test_duplicate_id_rejected(self):
        c = Collection("t")
        c.insert_one({"_id": 1})
        with pytest.raises(DuplicateKeyError):
            c.insert_one({"_id": 1})

    def test_insert_many_atomic_on_duplicate(self):
        c = Collection("t")
        c.insert_one({"_id": 2})
        with pytest.raises(DuplicateKeyError):
            c.insert_many([{"_id": 1}, {"_id": 2}, {"_id": 3}])
        # Nothing from the failed batch must have landed.
        assert len(c) == 1

    def test_insert_many_intra_batch_duplicate(self):
        c = Collection("t")
        with pytest.raises(DuplicateKeyError):
            c.insert_many([{"_id": 1}, {"_id": 1}])

    def test_insert_returns_copy_semantics(self):
        c = Collection("t")
        doc = {"_id": 1, "arr": [1]}
        c.insert_one(doc)
        doc["arr"].append(2)
        assert c.find_one({"_id": 1})["arr"] == [1]


class TestFind:
    def test_find_all(self, coll):
        assert len(coll.find()) == 10

    def test_find_filtered(self, coll):
        assert len(coll.find({"server_id": 1})) == 5

    def test_find_returns_copies(self, coll):
        doc = coll.find_one({"_id": "1_0"})
        doc["lat"] = 999
        assert coll.find_one({"_id": "1_0"})["lat"] == 40

    def test_sort_ascending_descending(self, coll):
        up = coll.find({"server_id": 1}, sort=[("lat", 1)])
        down = coll.find({"server_id": 1}, sort=[("lat", -1)])
        assert [d["lat"] for d in up] == [40, 41, 42, 43, 44]
        assert [d["lat"] for d in down] == [44, 43, 42, 41, 40]

    def test_multi_key_sort(self, coll):
        docs = coll.find(sort=[("server_id", -1), ("lat", 1)])
        assert docs[0]["server_id"] == 2 and docs[0]["lat"] == 100

    def test_bad_sort_direction(self, coll):
        with pytest.raises(QueryError):
            coll.find(sort=[("lat", 2)])

    def test_limit_skip(self, coll):
        docs = coll.find(sort=[("lat", 1)], skip=2, limit=3)
        assert [d["lat"] for d in docs] == [42, 43, 44]

    def test_find_one_missing_none(self, coll):
        assert coll.find_one({"_id": "zzz"}) is None

    def test_projection_include(self, coll):
        doc = coll.find_one({"_id": "1_0"}, projection={"lat": 1})
        assert set(doc) == {"_id", "lat"}

    def test_projection_exclude(self, coll):
        doc = coll.find_one({"_id": "1_0"}, projection={"isds": 0})
        assert "isds" not in doc and "lat" in doc

    def test_projection_mixed_rejected(self, coll):
        with pytest.raises(QueryError):
            coll.find_one({"_id": "1_0"}, projection={"lat": 1, "isds": 0})

    def test_count_documents(self, coll):
        assert coll.count_documents() == 10
        assert coll.count_documents({"lat": {"$gte": 100}}) == 5

    def test_distinct(self, coll):
        assert coll.distinct("server_id") == [1, 2]

    def test_distinct_array_field(self, coll):
        assert set(coll.distinct("isds")) == {16, 17, 18}


class TestIndexesAndPlanner:
    def test_index_used_for_equality(self, coll):
        coll.create_index("server_id")
        before = coll.stats["index_hits"]
        coll.find({"server_id": 1})
        assert coll.stats["index_hits"] == before + 1

    def test_id_lookup_never_scans(self, coll):
        before = coll.stats["scans"]
        coll.find({"_id": "1_3"})
        assert coll.stats["scans"] == before

    def test_full_scan_counted_without_index(self, coll):
        before = coll.stats["scans"]
        coll.find({"lat": {"$gt": 100}})
        assert coll.stats["scans"] == before + 1

    def test_index_range_query(self, coll):
        coll.create_index("lat")
        docs = coll.find({"lat": {"$gte": 102, "$lt": 104}})
        assert sorted(d["lat"] for d in docs) == [102, 103]

    def test_index_in_query(self, coll):
        coll.create_index("server_id")
        assert len(coll.find({"server_id": {"$in": [1, 99]}})) == 5

    def test_index_consistency_after_update(self, coll):
        coll.create_index("lat")
        coll.update_one({"_id": "1_0"}, {"$set": {"lat": 500}})
        assert coll.find({"lat": 500})[0]["_id"] == "1_0"
        assert coll.find({"lat": 40}) == []

    def test_index_consistency_after_delete(self, coll):
        coll.create_index("server_id")
        coll.delete_many({"server_id": 1})
        assert coll.find({"server_id": 1}) == []
        assert coll.count_documents() == 5

    def test_index_on_array_field(self, coll):
        coll.create_index("isds")
        docs = coll.find({"isds": 18})
        assert len(docs) == 5

    def test_results_identical_with_and_without_index(self, coll):
        flt = {"lat": {"$gt": 41, "$lte": 103}}
        without = sorted(d["_id"] for d in coll.find(flt))
        coll.create_index("lat")
        with_index = sorted(d["_id"] for d in coll.find(flt))
        assert without == with_index

    def test_list_and_drop_index(self, coll):
        coll.create_index("lat")
        assert coll.list_indexes() == ["lat"]
        coll.drop_index("lat")
        assert coll.list_indexes() == []


class TestUpdates:
    def test_update_one(self, coll):
        result = coll.update_one({"server_id": 1}, {"$set": {"flag": True}})
        assert result.matched_count == 1 and result.modified_count == 1
        assert coll.count_documents({"flag": True}) == 1

    def test_update_many(self, coll):
        result = coll.update_many({"server_id": 1}, {"$inc": {"lat": 100}})
        assert result.matched_count == 5 and result.modified_count == 5

    def test_noop_update_not_counted_as_modified(self, coll):
        result = coll.update_one({"_id": "1_0"}, {"$set": {"lat": 40}})
        assert result.matched_count == 1 and result.modified_count == 0

    def test_upsert_inserts(self, coll):
        result = coll.update_one(
            {"_id": "9_9", "server_id": 9}, {"$set": {"lat": 1}}, upsert=True
        )
        assert result.upserted_id == "9_9"
        assert coll.find_one({"_id": "9_9"})["server_id"] == 9

    def test_replace_one(self, coll):
        coll.replace_one({"_id": "1_0"}, {"fresh": True})
        doc = coll.find_one({"_id": "1_0"})
        assert doc == {"_id": "1_0", "fresh": True}

    def test_replace_rejects_operators(self, coll):
        with pytest.raises(QueryError):
            coll.replace_one({"_id": "1_0"}, {"$set": {"x": 1}})

    def test_validator_blocks_bad_update(self, coll):
        def validator(doc):
            if doc.get("lat", 0) > 1000:
                raise DocDBError("lat too big")

        coll.validator = validator
        with pytest.raises(DocDBError):
            coll.update_one({"_id": "1_0"}, {"$set": {"lat": 5000}})
        assert coll.find_one({"_id": "1_0"})["lat"] == 40


class TestDeletes:
    def test_delete_one(self, coll):
        assert coll.delete_one({"server_id": 1}).deleted_count == 1
        assert coll.count_documents({"server_id": 1}) == 4

    def test_delete_many(self, coll):
        assert coll.delete_many({"server_id": 2}).deleted_count == 5

    def test_delete_everything(self, coll):
        assert coll.delete_many().deleted_count == 10
        assert len(coll) == 0


class TestConcurrency:
    def test_parallel_inserts_all_land(self):
        c = Collection("t")
        c.create_index("worker")
        errors = []

        def worker(w):
            try:
                for i in range(100):
                    c.insert_one({"_id": f"{w}_{i}", "worker": w})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(c) == 800
        assert all(len(c.find({"worker": w})) == 100 for w in range(8))

    def test_contains_is_consistent_under_concurrent_creation(self):
        """Regression: ``Database.__contains__`` read the collection map
        without the lock every other accessor takes."""
        db = Database("upin")
        errors = []
        n_names = 200

        def creator():
            try:
                for i in range(n_names):
                    db.collection(f"c{i}")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def prober():
            try:
                for _ in range(20):
                    for i in range(n_names):
                        if f"c{i}" in db:
                            # Membership must agree with the accessor.
                            db.collection(f"c{i}")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=creator)] + [
            threading.Thread(target=prober) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert all(f"c{i}" in db for i in range(n_names))
        assert "nope" not in db


class TestDatabaseAndClient:
    def test_lazy_collection_creation(self):
        db = Database("upin")
        db["a"].insert_one({"_id": 1})
        assert db.list_collection_names() == ["a"]

    def test_invalid_collection_name(self):
        db = Database("upin")
        with pytest.raises(DocDBError):
            db.collection("$bad")

    def test_drop_collection(self):
        db = Database("upin")
        db["a"].insert_one({"_id": 1})
        db.drop_collection("a")
        assert "a" not in db

    def test_client_database_reuse(self):
        client = DocDBClient()
        assert client["x"] is client["x"]
        assert client.list_database_names() == ["x"]

    def test_client_drop_database(self):
        client = DocDBClient()
        client["x"]["c"].insert_one({"_id": 1})
        client.drop_database("x")
        assert client.list_database_names() == []
