"""Tests for the retry/backoff engine and the campaign metrics layer."""

import threading

import pytest

from repro.docdb.client import DocDBClient
from repro.errors import (
    MeasurementError,
    NoPathError,
    ServerUnreachableError,
    ValidationError,
)
from repro.netsim.clock import SimClock
from repro.netsim.network import ServerHealth
from repro.scion.snet import ScionHost
from repro.suite import metrics as m
from repro.suite.cli import seed_servers
from repro.suite.collect import PathsCollector
from repro.suite.config import PATHS_COLLECTION, SuiteConfig
from repro.suite.faults import FaultPlan, ServerOutage
from repro.suite.retry import RetryExecutor, RetryPolicy
from repro.suite.runner import CampaignReport, TestRunner


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, backoff_factor=2.0, max_backoff_s=5.0, jitter=0.0
        )
        assert policy.backoff_s(0) == 1.0
        assert policy.backoff_s(1) == 2.0
        assert policy.backoff_s(2) == 4.0
        assert policy.backoff_s(3) == 5.0  # capped
        assert policy.backoff_s(10) == 5.0

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_backoff_s=1.0, jitter=0.2)
        lo = policy.backoff_s(0, u=0.0)
        hi = policy.backoff_s(0, u=0.999999)
        assert lo == pytest.approx(0.8)
        assert hi == pytest.approx(1.2, abs=1e-5)

    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValidationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValidationError):
            RetryPolicy(base_backoff_s=-1.0)

    def test_from_config(self):
        config = SuiteConfig(max_retries=3, retry_backoff_s=0.25, retry_jitter=0.0)
        policy = RetryPolicy.from_config(config)
        assert policy.max_retries == 3
        assert policy.base_backoff_s == 0.25
        assert policy.jitter == 0.0

    def test_config_validates_retry_knobs(self):
        with pytest.raises(ValidationError):
            SuiteConfig(retry_backoff_factor=0.0)
        with pytest.raises(ValidationError):
            SuiteConfig(retry_jitter=1.0)
        with pytest.raises(ValidationError):
            SuiteConfig(max_retries=-1)


class TestRetryExecutor:
    def _flaky(self, failures):
        calls = {"n": 0}

        def action():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise ServerUnreachableError(f"attempt {calls['n']}")
            return "ok"

        return action, calls

    def test_success_after_transient_failures(self):
        clock = SimClock()
        registry = m.MetricsRegistry()
        ex = RetryExecutor(
            RetryPolicy(max_retries=3, base_backoff_s=1.0, jitter=0.0),
            clock,
            metrics=registry,
        )
        action, calls = self._flaky(failures=2)
        assert ex.call(action) == "ok"
        assert calls["n"] == 3
        assert registry.counter(m.RETRIES) == 2
        # Backoff 1.0 + 2.0 advanced the simulated clock only.
        assert clock.now_s == pytest.approx(3.0)

    def test_exhaustion_raises_last_error(self):
        ex = RetryExecutor(
            RetryPolicy(max_retries=1, base_backoff_s=0.5, jitter=0.0), SimClock()
        )
        action, calls = self._flaky(failures=10)
        with pytest.raises(MeasurementError, match="attempt 2"):
            ex.call(action)
        assert calls["n"] == 2

    def test_no_path_error_is_permanent(self):
        clock = SimClock()
        ex = RetryExecutor(RetryPolicy(max_retries=5, base_backoff_s=1.0), clock)
        calls = {"n": 0}

        def action():
            calls["n"] += 1
            raise NoPathError("gone")

        with pytest.raises(NoPathError):
            ex.call(action)
        assert calls["n"] == 1  # never retried
        assert clock.now_s == 0.0  # and no backoff was charged

    def test_jitter_deterministic_for_fixed_seed(self):
        def total_backoff(seed):
            clock = SimClock()
            ex = RetryExecutor(
                RetryPolicy(max_retries=4, base_backoff_s=1.0, jitter=0.5),
                clock,
                seed=seed,
            )
            action, _ = self._flaky(failures=10)
            with pytest.raises(MeasurementError):
                ex.call(action)
            return clock.now_s

        assert total_backoff(7) == total_backoff(7)
        assert total_backoff(7) != total_backoff(8)

    def test_zero_retries_never_backs_off(self):
        clock = SimClock()
        ex = RetryExecutor(RetryPolicy(max_retries=0, base_backoff_s=9.0), clock)
        action, _ = self._flaky(failures=1)
        with pytest.raises(MeasurementError):
            ex.call(action)
        assert clock.now_s == 0.0


class TestMetricsRegistry:
    def test_counters_and_histograms(self):
        reg = m.MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2)
        reg.observe("h", 1.0)
        reg.observe("h", 3.0)
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 3
        hist = snap["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["total"] == 4.0
        assert hist["min"] == 1.0 and hist["max"] == 3.0

    def test_accessors_tolerate_missing(self):
        assert m.counter_value({}, "nope") == 0.0
        assert m.counter_value(None, "nope") == 0.0
        assert m.histogram_stats(m.empty_snapshot(), "nope") is None

    def test_merge_is_order_independent(self):
        a = m.MetricsRegistry()
        b = m.MetricsRegistry()
        a.inc("retries", 2)
        b.inc("retries", 3)
        a.observe("backoff_s", 1.0)
        b.observe("backoff_s", 4.0)
        merged_ab = m.merge_snapshots([a.snapshot(), b.snapshot()])
        merged_ba = m.merge_snapshots([b.snapshot(), a.snapshot()])
        assert merged_ab == merged_ba
        assert merged_ab["counters"]["retries"] == 5
        assert merged_ab["histograms"]["backoff_s"]["max"] == 4.0

    def test_thread_safety_under_contention(self):
        reg = m.MetricsRegistry()

        def hammer():
            for _ in range(1000):
                reg.inc("c")
                reg.observe("h", 1.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 8000
        assert snap["histograms"]["h"]["count"] == 8000

    def test_format_metrics_renders_key_lines(self):
        reg = m.MetricsRegistry()
        reg.inc(m.RETRIES, 2)
        reg.observe(m.BACKOFF_S, 0.5)
        reg.observe(m.BACKOFF_S, 1.0)
        reg.inc(m.FLUSHES)
        reg.observe(m.BATCH_SIZE, 6)
        text = m.format_metrics(reg.snapshot())
        assert "retries: 2" in text
        assert "backoff: 1.50 sim s" in text
        assert "batches: 1 flushed" in text
        assert m.format_metrics({}) == ""


@pytest.fixture()
def env():
    client = DocDBClient()
    db = client["upin"]
    seed_servers(db)
    host = ScionHost.scionlab(seed=2)
    config = SuiteConfig(iterations=1, destination_ids=[3])
    PathsCollector(host, db, config).collect()
    return host, db, config


class TestRunnerRetryIntegration:
    def _outage_run(self, *, backoff_s, jitter=0.0, max_retries=2, seed=2):
        client = DocDBClient()
        db = client["upin"]
        seed_servers(db)
        host = ScionHost.scionlab(seed=seed)
        config = SuiteConfig(
            iterations=1,
            destination_ids=[3],
            max_retries=max_retries,
            retry_backoff_s=backoff_s,
            retry_jitter=jitter,
        )
        PathsCollector(host, db, config).collect()
        plan = FaultPlan(outages=[ServerOutage(3, 0, 1, ServerHealth.DOWN)])
        report = TestRunner(host, db, config, faults=plan).run()
        return report

    def test_backoff_advances_only_simulated_clock(self):
        # 100-second backoffs: a wall-clock sleeper would take minutes.
        with_backoff = self._outage_run(backoff_s=100.0)
        without = self._outage_run(backoff_s=0.0)
        assert with_backoff.retries > 0
        assert with_backoff.retries == without.retries
        extra_sim = with_backoff.sim_seconds - without.sim_seconds
        assert extra_sim == pytest.approx(with_backoff.backoff_seconds)
        assert with_backoff.backoff_seconds >= 100.0

    def test_retry_schedule_deterministic_for_fixed_seed(self):
        a = self._outage_run(backoff_s=1.0, jitter=0.5)
        b = self._outage_run(backoff_s=1.0, jitter=0.5)
        assert a.sim_seconds == b.sim_seconds
        assert a.backoff_seconds == b.backoff_seconds
        # A different world seed draws a different jitter schedule.
        c = self._outage_run(backoff_s=1.0, jitter=0.5, seed=5)
        assert c.backoff_seconds != a.backoff_seconds

    def test_retry_metrics_counted_per_failing_measurement(self):
        report = self._outage_run(backoff_s=0.25, max_retries=2)
        # Every path fails its bandwidth test; each failure retries twice.
        assert report.retries == report.measurement_errors * 2
        assert m.counter_value(report.metrics, m.RETRY_EXHAUSTED) == (
            report.measurement_errors
        )


class TestCampaignReportAccounting:
    def test_destinations_tested_from_requested_iterations(self, env):
        host, db, config = env
        report = TestRunner(host, db, config).run(iterations=0)
        assert report.iterations == 0
        assert report.destinations_tested == 0
        assert report.stats_stored == 0

    def test_destinations_tested_multiplies_iterations(self, env):
        host, db, config = env
        report = TestRunner(host, db, config).run(iterations=3)
        assert report.iterations == 3
        assert report.destinations_tested == 3  # 1 destination x 3 iterations

    def test_report_carries_metrics_snapshot(self, env):
        host, db, config = env
        report = TestRunner(host, db, config).run()
        batches = m.histogram_stats(report.metrics, m.BATCH_SIZE)
        assert batches is not None
        assert batches["total"] == report.stats_stored
        assert report.wall_seconds > 0.0

    def test_format_text_includes_metrics_and_failure(self):
        report = CampaignReport(stats_stored=3, failure="RuntimeError: boom")
        report.metrics = {
            "version": 1,
            "counters": {m.RETRIES: 1.0},
            "histograms": {m.BACKOFF_S: {"count": 1, "total": 0.5, "min": 0.5, "max": 0.5}},
        }
        text = report.format_text()
        assert "FAILED: RuntimeError: boom" in text
        assert "retries: 1" in text
        assert report.failed
