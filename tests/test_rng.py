"""Tests for deterministic RNG stream derivation (repro.util.rng)."""

import numpy as np

from repro.util.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "link:a>b") == derive_seed(42, "link:a>b")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        seed = derive_seed(123456789, "some-stream")
        assert 0 <= seed < 2**64

    def test_negative_root_seed_ok(self):
        assert derive_seed(-5, "x") == derive_seed(-5, "x")


class TestRngStreams:
    def test_same_name_same_generator_object(self):
        streams = RngStreams(7)
        assert streams.get("s") is streams.get("s")

    def test_different_names_independent_draws(self):
        streams = RngStreams(7)
        a = streams.get("a").random(8)
        b = streams.get("b").random(8)
        assert not np.allclose(a, b)

    def test_reproducible_across_instances(self):
        a = RngStreams(99).get("jitter").random(16)
        b = RngStreams(99).get("jitter").random(16)
        assert np.allclose(a, b)

    def test_new_consumer_does_not_perturb_existing_stream(self):
        """The key refactoring-stability property."""
        s1 = RngStreams(5)
        s1.get("x")  # x exists alone
        draws_alone = s1.get("x").random(4)

        s2 = RngStreams(5)
        s2.get("unrelated")  # create another stream FIRST
        s2.get("x")
        draws_with_sibling = s2.get("x").random(4)
        assert np.allclose(draws_alone, draws_with_sibling)

    def test_fresh_resets_stream(self):
        streams = RngStreams(3)
        first = streams.get("s").random(4)
        streams.fresh("s")
        again = streams.get("s").random(4)
        assert np.allclose(first, again)

    def test_spawn_child_space_differs_from_parent(self):
        parent = RngStreams(11)
        child = parent.spawn("worker:1")
        assert not np.allclose(
            parent.get("m").random(4), child.get("m").random(4)
        )

    def test_spawn_deterministic(self):
        a = RngStreams(11).spawn("w").get("m").random(4)
        b = RngStreams(11).spawn("w").get("m").random(4)
        assert np.allclose(a, b)
