"""Tests for document primitives (repro.docdb.document)."""

import pytest

from repro.docdb.document import (
    get_path,
    iter_path_values,
    new_object_id,
    normalize_document,
    set_path,
    unset_path,
)
from repro.errors import QueryError, ValidationError


class TestNormalize:
    def test_assigns_id(self):
        doc = normalize_document({"a": 1})
        assert "_id" in doc and len(doc["_id"]) == 24

    def test_keeps_explicit_id(self):
        assert normalize_document({"_id": "2_15"})["_id"] == "2_15"

    def test_deep_copies(self):
        inner = {"x": [1, 2]}
        doc = normalize_document({"_id": 1, "inner": inner})
        inner["x"].append(3)
        assert doc["inner"]["x"] == [1, 2]

    def test_rejects_non_dict(self):
        with pytest.raises(ValidationError):
            normalize_document([1, 2])

    def test_rejects_non_string_keys(self):
        with pytest.raises(ValidationError):
            normalize_document({1: "x"})

    def test_rejects_exotic_values(self):
        with pytest.raises(ValidationError):
            normalize_document({"x": object()})

    def test_rejects_deep_nesting(self):
        doc = {}
        cursor = doc
        for _ in range(70):
            cursor["d"] = {}
            cursor = cursor["d"]
        with pytest.raises(ValidationError):
            normalize_document(doc)

    def test_object_ids_unique(self):
        assert new_object_id() != new_object_id()


class TestPathResolution:
    DOC = {
        "a": {"b": {"c": 7}},
        "arr": [{"x": 1}, {"x": 2}, {"y": 3}],
        "plain": 5,
    }

    def test_top_level(self):
        assert get_path(self.DOC, "plain") == (True, 5)

    def test_nested(self):
        assert get_path(self.DOC, "a.b.c") == (True, 7)

    def test_missing(self):
        found, value = get_path(self.DOC, "a.b.zzz")
        assert not found and value is None

    def test_numeric_index_into_array(self):
        assert get_path(self.DOC, "arr.1.x") == (True, 2)

    def test_index_out_of_range(self):
        assert get_path(self.DOC, "arr.9.x")[0] is False

    def test_array_fanout(self):
        assert list(iter_path_values(self.DOC, "arr.x")) == [1, 2]

    def test_empty_path_returns_doc(self):
        assert get_path(self.DOC, "") == (True, self.DOC)


class TestSetUnset:
    def test_set_creates_intermediates(self):
        doc = {}
        set_path(doc, "a.b.c", 1)
        assert doc == {"a": {"b": {"c": 1}}}

    def test_set_overwrites(self):
        doc = {"a": 1}
        set_path(doc, "a", 2)
        assert doc["a"] == 2

    def test_set_list_index_pads(self):
        doc = {"arr": [1]}
        set_path(doc, "arr.3", 9)
        assert doc["arr"] == [1, None, None, 9]

    def test_set_creates_list_for_numeric_component(self):
        doc = {}
        set_path(doc, "a.0", "x")
        assert doc == {"a": ["x"]}

    def test_set_non_numeric_into_list_rejected(self):
        doc = {"arr": [1, 2]}
        with pytest.raises(QueryError):
            set_path(doc, "arr.k", 1)

    def test_unset_removes(self):
        doc = {"a": {"b": 1, "c": 2}}
        assert unset_path(doc, "a.b") is True
        assert doc == {"a": {"c": 2}}

    def test_unset_missing_false(self):
        assert unset_path({"a": 1}, "zzz") is False

    def test_unset_list_slot_nulls(self):
        doc = {"arr": [1, 2, 3]}
        assert unset_path(doc, "arr.1") is True
        assert doc["arr"] == [1, None, 3]
