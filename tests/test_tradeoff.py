"""Tests for the §1 trade-off experiment (repro.experiments.tradeoff)."""

import pytest

from repro.experiments import tradeoff
from repro.experiments.world import run_campaign
from repro.selection.request import Metric


@pytest.fixture(scope="module")
def result():
    world = run_campaign([1, 3], iterations=3, seed=20231112)
    return tradeoff.run(destination_ids=[1, 3], world=world)


class TestTradeoff:
    def test_one_pick_per_policy_per_destination(self, result):
        keys = {(p.server_id, p.policy) for p in result.picks}
        assert keys == {
            (d, m.value)
            for d in (1, 3)
            for m in (Metric.LATENCY, Metric.BANDWIDTH_DOWN, Metric.LOSS)
        }

    def test_latency_pick_is_fastest(self, result):
        lat = result.pick(1, Metric.LATENCY)
        others = [p for p in result.picks if p.server_id == 1 and p != lat]
        assert all(lat.avg_latency_ms <= o.avg_latency_ms + 1e-9 for o in others)

    def test_bandwidth_pick_has_most_bandwidth(self, result):
        bw = result.pick(1, Metric.BANDWIDTH_DOWN)
        others = [p for p in result.picks if p.server_id == 1 and p != bw]
        assert all(
            bw.avg_bw_down_mbps >= o.avg_bw_down_mbps - 1e-9 for o in others
        )

    def test_costs_are_consistent(self, result):
        """By optimality, both cross-metric costs are non-negative."""
        for server_id in (1, 3):
            assert result.bandwidth_cost_of_latency_first(server_id) >= -1e-9
            assert result.latency_cost_of_bandwidth_first(server_id) >= -1e-9

    def test_access_link_dominates_bandwidth(self, result):
        """The reproduction's (and SCIONLab's) structural finding: the
        user's access link is the bandwidth bottleneck on *every* path,
        so latency-first selection forfeits almost no bandwidth."""
        cost = result.bandwidth_cost_of_latency_first(1)
        assert cost < 1.0  # Mbps

    def test_format_text(self, result):
        text = result.format_text()
        assert "trade-off" in text
        assert "latency-first forfeits" in text

    def test_missing_destination_pick_none(self, result):
        assert result.pick(99, Metric.LATENCY) is None
        assert result.bandwidth_cost_of_latency_first(99) is None


class TestCampaignReportFormat:
    def test_format_text(self):
        from repro.suite.runner import CampaignReport

        report = CampaignReport(iterations=2, stats_stored=44, paths_tested=44)
        report.record_error("3_0: boom")
        text = report.format_text()
        assert "44 stats stored" in text
        assert "errors: 1" in text
        assert "3_0: boom" in text
