"""Tests for link dynamics, congestion and the network facade."""

import pytest

from repro.errors import TopologyError, ValidationError
from repro.netsim.config import NetworkConfig, PpsLimits
from repro.netsim.congestion import CongestionEpisode, EpisodeSchedule
from repro.netsim.link import LinkDirection
from repro.netsim.network import (
    LinkTraversal,
    NetworkSim,
    ServerDirectory,
    ServerHealth,
)
from repro.netsim.packet import PacketSpec
from repro.topology.isd_as import ISDAS

from tests.helpers import build_tiny_world


@pytest.fixture()
def net():
    return NetworkSim(build_tiny_world(), NetworkConfig(seed=7))


def _path_user_to_leaf(topology):
    """user -> ap -> core1a -> core2 -> leaf as LinkTraversals."""
    hops = ["1-ffaa:1:1", "1-ffaa:0:3", "1-ffaa:0:1", "2-ffaa:0:1", "2-ffaa:0:2"]
    steps = []
    for a, b in zip(hops, hops[1:]):
        link = topology.link_between(a, b)[0]
        steps.append(LinkTraversal(link=link, sender=ISDAS.parse(a)))
    return steps


class TestCongestionEpisode:
    def test_requires_target(self):
        with pytest.raises(ValidationError):
            CongestionEpisode(start_s=0, end_s=1)

    def test_requires_positive_duration(self):
        with pytest.raises(ValidationError):
            CongestionEpisode.on_ases(["1-0:0:1"], 5, 5)

    def test_active_window_half_open(self):
        ep = CongestionEpisode.on_ases(["1-0:0:1"], 1.0, 2.0)
        assert not ep.active_at(0.99)
        assert ep.active_at(1.0)
        assert ep.active_at(1.99)
        assert not ep.active_at(2.0)

    def test_affects_by_as(self):
        topo = build_tiny_world()
        link = topo.link_between("1-ffaa:0:1", "2-ffaa:0:1")[0]
        ep = CongestionEpisode.on_ases(["2-ffaa:0:1"], 0, 1)
        assert ep.affects(link)
        other = topo.link_between("1-ffaa:0:3", "1-ffaa:1:1")[0]
        assert not ep.affects(other)

    def test_affects_by_link(self):
        topo = build_tiny_world()
        link = topo.link_between("1-ffaa:0:1", "2-ffaa:0:1")[0]
        ep = CongestionEpisode.on_links([link], 0, 1)
        assert ep.affects(link)

    def test_schedule_composition(self):
        topo = build_tiny_world()
        link = topo.link_between("1-ffaa:0:1", "2-ffaa:0:1")[0]
        sched = EpisodeSchedule(
            [
                CongestionEpisode.on_links([link], 0, 10, loss=0.5, capacity_factor=0.5),
                CongestionEpisode.on_links([link], 0, 10, loss=0.5, capacity_factor=0.5),
            ]
        )
        loss, cap = sched.disturbance(link, 5.0)
        assert loss == pytest.approx(0.75)  # 1 - 0.5*0.5
        assert cap == pytest.approx(0.25)

    def test_window_disturbance_time_weighted(self):
        topo = build_tiny_world()
        link = topo.link_between("1-ffaa:0:1", "2-ffaa:0:1")[0]
        sched = EpisodeSchedule(
            [CongestionEpisode.on_links([link], 5.0, 10.0, loss=1.0)]
        )
        loss, _cap = sched.window_disturbance(link, 0.0, 10.0)
        assert loss == pytest.approx(0.5)

    def test_inactive_schedule_is_clean(self):
        topo = build_tiny_world()
        link = topo.link_between("1-ffaa:0:1", "2-ffaa:0:1")[0]
        loss, cap = EpisodeSchedule().disturbance(link, 0.0)
        assert loss == 0.0 and cap == 1.0


class TestLinkState:
    def test_propagation_from_geography(self, net):
        topo = net.topology
        short = net.link_state(topo.link_between("1-ffaa:0:1", "1-ffaa:0:3")[0])
        long = net.link_state(topo.link_between("2-ffaa:0:1", "2-ffaa:0:2")[0])
        assert long.propagation_ms > short.propagation_ms

    def test_direction_from(self, net):
        link = net.topology.link_between("1-ffaa:0:1", "2-ffaa:0:1")[0]
        state = net.link_state(link)
        assert state.direction_from(link.a) is LinkDirection.A_TO_B
        assert state.direction_from(link.b) is LinkDirection.B_TO_A

    def test_transit_packet_delay_positive(self, net):
        link = net.topology.link_between("1-ffaa:0:1", "2-ffaa:0:1")[0]
        state = net.link_state(link)
        sample = state.transit_packet(LinkDirection.A_TO_B, 1000, 1, 0.0)
        assert sample.delay_ms > state.propagation_ms

    def test_blackout_episode_drops_everything(self, net):
        link = net.topology.link_between("1-ffaa:0:1", "2-ffaa:0:1")[0]
        net.add_episode(CongestionEpisode.on_links([link], 0.0, 100.0, loss=1.0))
        state = net.link_state(link)
        drops = [
            state.transit_packet(LinkDirection.A_TO_B, 100, 1, 1.0).dropped
            for _ in range(20)
        ]
        assert all(drops)

    def test_fluid_share_clips_offered_load(self, net):
        link = net.topology.link_between("1-ffaa:0:3", "1-ffaa:1:1")[0]
        state = net.link_state(link)
        # Upstream (user -> ap) capacity is 16 Mbps; offer 160 Mbps.
        byte_ratio, _ = state.fluid_share(
            LinkDirection.B_TO_A, 160e6, 1000.0, 0.0, 3.0
        )
        assert byte_ratio < 0.15

    def test_fluid_share_pps_budget(self):
        config = NetworkConfig(
            seed=7,
            pps_overrides={ISDAS.parse("1-ffaa:1:1"): PpsLimits(send=1000, recv=1000)},
        )
        net = NetworkSim(build_tiny_world(), config)
        link = net.topology.link_between("1-ffaa:0:3", "1-ffaa:1:1")[0]
        state = net.link_state(link)
        _, pps_ratio = state.fluid_share(LinkDirection.B_TO_A, 1e6, 10_000.0, 0.0, 3.0)
        assert pps_ratio == pytest.approx(0.1)


class TestNetworkSim:
    def test_oneway_transit_accumulates_delay(self, net):
        steps = _path_user_to_leaf(net.topology)
        packet = PacketSpec(payload_bytes=64, n_hops=5)
        sample = net.oneway_transit(steps, packet, 0.0)
        assert sample.delay_ms > 10.0  # Amsterdam->Zurich->Frankfurt->Dublin

    def test_empty_path_rejected(self, net):
        with pytest.raises(ValidationError):
            net.oneway_transit([], PacketSpec(payload_bytes=64, n_hops=1))

    def test_roundtrip_roughly_double_oneway(self, net):
        steps = _path_user_to_leaf(net.topology)
        packet = PacketSpec(payload_bytes=64, n_hops=5)
        one = net.oneway_transit(steps, packet, 0.0).delay_ms
        rtt = net.probe_roundtrip(steps, packet, 0.0).rtt_ms
        assert rtt == pytest.approx(2 * one, rel=0.5)

    def test_probe_partial_shorter_than_full(self, net):
        steps = _path_user_to_leaf(net.topology)
        packet = PacketSpec(payload_bytes=64, n_hops=5)
        partial = net.probe_partial(steps, 1, packet, 0.0).rtt_ms
        full = net.probe_roundtrip(steps, packet, 0.0).rtt_ms
        assert partial < full

    def test_probe_partial_bounds(self, net):
        steps = _path_user_to_leaf(net.topology)
        packet = PacketSpec(payload_bytes=64, n_hops=5)
        with pytest.raises(ValidationError):
            net.probe_partial(steps, 0, packet)
        with pytest.raises(ValidationError):
            net.probe_partial(steps, len(steps) + 1, packet)

    def test_probe_lost_during_blackout(self, net):
        steps = _path_user_to_leaf(net.topology)
        net.add_episode(CongestionEpisode.on_ases(["2-ffaa:0:1"], 0.0, 100.0))
        packet = PacketSpec(payload_bytes=64, n_hops=5)
        assert net.probe_roundtrip(steps, packet, 1.0).lost

    def test_unknown_link_rejected(self, net):
        from repro.topology.entities import LinkKind, LinkSpec

        foreign = LinkSpec(
            a=ISDAS.parse("1-ffaa:0:1"), a_ifid=90,
            b=ISDAS.parse("2-ffaa:0:1"), b_ifid=91, kind=LinkKind.CORE,
        )
        with pytest.raises(TopologyError):
            net.link_state(foreign)

    def test_fluid_transfer_at_low_rate_near_target(self, net):
        steps = _path_user_to_leaf(net.topology)
        packet = PacketSpec(payload_bytes=1472, n_hops=5)
        result = net.fluid_transfer(steps, 1e6, packet, 3.0)
        assert result.achieved_bps == pytest.approx(1e6, rel=0.2)
        assert result.loss_fraction < 0.1

    def test_fluid_transfer_clipped_at_capacity(self, net):
        steps = _path_user_to_leaf(net.topology)
        packet = PacketSpec(payload_bytes=1472, n_hops=5)
        result = net.fluid_transfer(steps, 200e6, packet, 3.0)
        assert result.achieved_bps < 40e6

    def test_fluid_transfer_counts_packets(self, net):
        steps = _path_user_to_leaf(net.topology)
        packet = PacketSpec(payload_bytes=1000, n_hops=5)
        result = net.fluid_transfer(steps, 8e6, packet, 3.0)
        assert result.sent_packets == 3000
        assert 0 < result.received_packets <= result.sent_packets

    def test_fluid_transfer_validation(self, net):
        steps = _path_user_to_leaf(net.topology)
        packet = PacketSpec(payload_bytes=64, n_hops=5)
        with pytest.raises(ValidationError):
            net.fluid_transfer(steps, 0.0, packet, 3.0)
        with pytest.raises(ValidationError):
            net.fluid_transfer([], 1e6, packet, 3.0)

    def test_blackout_zeroes_fluid_transfer(self, net):
        steps = _path_user_to_leaf(net.topology)
        net.add_episode(
            CongestionEpisode.on_ases(["2-ffaa:0:1"], 0.0, 100.0, loss=1.0)
        )
        packet = PacketSpec(payload_bytes=1472, n_hops=5)
        result = net.fluid_transfer(steps, 1e6, packet, 3.0)
        assert result.achieved_bps < 5e4
        assert result.loss_fraction > 0.95

    def test_determinism_across_instances(self):
        topo = build_tiny_world()
        results = []
        for _ in range(2):
            net = NetworkSim(topo, NetworkConfig(seed=99))
            steps = _path_user_to_leaf(topo)
            packet = PacketSpec(payload_bytes=64, n_hops=5)
            rtt = net.probe_roundtrip(steps, packet, 0.0).rtt_ms
            bw = net.fluid_transfer(steps, 5e6, packet, 3.0).achieved_bps
            results.append((rtt, bw))
        assert results[0] == results[1]


class TestServerDirectory:
    def test_default_up(self):
        d = ServerDirectory()
        assert d.health("1-0:0:1", "10.0.0.1") is ServerHealth.UP

    def test_set_and_reset(self):
        d = ServerDirectory()
        d.set_health("1-0:0:1", "10.0.0.1", ServerHealth.DOWN)
        assert d.health("1-0:0:1", "10.0.0.1") is ServerHealth.DOWN
        # Distinct IPs on the same AS tracked separately.
        assert d.health("1-0:0:1", "10.0.0.2") is ServerHealth.UP
        d.reset()
        assert d.health("1-0:0:1", "10.0.0.1") is ServerHealth.UP
