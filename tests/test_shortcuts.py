"""Tests for SCION shortcut paths (common-AS and peering)."""

import pytest

from repro.scion.beaconing import Beaconer
from repro.scion.combinator import combine_paths
from repro.scion.snet import ScionHost
from repro.topology.builder import TopologyBuilder
from repro.topology.entities import ASRole
from repro.topology.scionlab import build_scionlab_world


def build_shortcut_world():
    """core -> {ap} -> {leafA, leafB}, leafA ~peer~ leafC under core."""
    b = TopologyBuilder()
    b.add_as("1-0:0:1", "core", role=ASRole.CORE, lat=47, lon=8,
             country="CH", operator="Op")
    b.add_as("1-0:0:2", "ap", role=ASRole.ATTACHMENT_POINT, lat=47, lon=9,
             country="CH", operator="Op")
    b.add_as("1-0:0:3", "leafA", role=ASRole.NON_CORE, lat=47, lon=10,
             country="CH", operator="Op")
    b.add_as("1-0:0:4", "leafB", role=ASRole.NON_CORE, lat=47, lon=11,
             country="CH", operator="Op")
    b.add_as("1-0:0:5", "leafC", role=ASRole.NON_CORE, lat=46, lon=8,
             country="CH", operator="Op")
    b.parent_link("1-0:0:1", "1-0:0:2")
    b.parent_link("1-0:0:2", "1-0:0:3")
    b.parent_link("1-0:0:2", "1-0:0:4")
    b.parent_link("1-0:0:1", "1-0:0:5")
    b.peer_link("1-0:0:3", "1-0:0:5")
    return b.build()


@pytest.fixture(scope="module")
def beaconer():
    return Beaconer(build_shortcut_world())


class TestCommonAsShortcut:
    def test_siblings_route_via_shared_ap(self, beaconer):
        """leafA -> leafB can cross at the AP without touching the core."""
        paths = combine_paths(beaconer, "1-0:0:3", "1-0:0:4")
        best = paths[0]
        assert best.hop_count == 3
        assert [str(a) for a in best.ases()] == ["1-0:0:3", "1-0:0:2", "1-0:0:4"]

    def test_siblings_unreachable_without_shortcuts(self, beaconer):
        """The up+core+down combination would revisit the AP (a loop),
        so shortcuts are the ONLY way siblings talk — the very reason
        SCION defines them."""
        from repro.errors import NoPathError

        with pytest.raises(NoPathError):
            combine_paths(beaconer, "1-0:0:3", "1-0:0:4", use_shortcuts=False)

    def test_shortcut_has_two_segments(self, beaconer):
        best = combine_paths(beaconer, "1-0:0:3", "1-0:0:4")[0]
        assert best.n_segments == 2

    def test_core_route_listed_for_cross_branch(self, beaconer):
        """leafA -> leafC (different branches): both the 2-hop peering
        shortcut and the 4-hop core route exist."""
        paths = combine_paths(beaconer, "1-0:0:3", "1-0:0:5")
        assert any(p.transits("1-0:0:1") for p in paths)

    def test_disable_shortcuts_cross_branch(self, beaconer):
        paths = combine_paths(beaconer, "1-0:0:3", "1-0:0:5", use_shortcuts=False)
        assert all(p.transits("1-0:0:1") for p in paths)
        assert paths[0].hop_count == 4


class TestPeeringShortcut:
    def test_peer_link_used_directly(self, beaconer):
        paths = combine_paths(beaconer, "1-0:0:3", "1-0:0:5")
        best = paths[0]
        assert best.hop_count == 2
        assert [str(a) for a in best.ases()] == ["1-0:0:3", "1-0:0:5"]

    def test_peer_shortcut_traversals_resolve(self, beaconer):
        best = combine_paths(beaconer, "1-0:0:3", "1-0:0:5")[0]
        steps = best.traversals(beaconer.topology)
        assert len(steps) == 1
        assert steps[0].link.kind.value == "peer"

    def test_reverse_direction_also_works(self, beaconer):
        best = combine_paths(beaconer, "1-0:0:5", "1-0:0:3")[0]
        assert best.hop_count == 2

    def test_non_peered_pairs_unaffected(self, beaconer):
        paths = combine_paths(beaconer, "1-0:0:4", "1-0:0:5")
        assert paths[0].hop_count == 4  # leafB has no peer link


class TestShortcutsInScionlabWorld:
    def test_columbia_uw_peering(self):
        """The world's ISD-18 peer link yields a 2-hop lateral path."""
        topo = build_scionlab_world()
        host = ScionHost(topo, "18-ffaa:0:1203")
        paths = host.paths("18-ffaa:0:1204", max_paths=None)
        assert paths[0].hop_count == 2
        assert paths[0].traversals(topo)[0].link.kind.value == "peer"
        # The common-AS shortcut through CMU-AP is second.
        assert paths[1].hop_count == 3
        assert paths[1].transits("18-ffaa:0:1202")

    def test_my_as_paths_untouched_by_peering(self):
        """MY_AS's measured path sets (and thus the figures) must not
        change when shortcuts are enabled — its segments never touch
        the peered leaves."""
        topo = build_scionlab_world()
        host = ScionHost(topo, "17-ffaa:1:e01")
        with_shortcuts = host.daemon.paths("16-ffaa:0:1002", max_paths=None)
        beaconer = Beaconer(topo)
        without = combine_paths(
            beaconer, "17-ffaa:1:e01", "16-ffaa:0:1002", use_shortcuts=False
        )
        assert [p.sequence() for p in with_shortcuts] == [
            p.sequence() for p in without
        ]

    def test_ping_over_peering_shortcut(self):
        topo = build_scionlab_world()
        host = ScionHost(topo, "18-ffaa:0:1203")
        stats = host.ping("18-ffaa:0:1204", "10.18.4.1", count=5, interval_s=0.01)
        assert stats.received >= 4
        # NYC <-> Madison direct: far below any route through Pittsburgh+.
        assert stats.avg_ms < 40
