"""Tests for topology entities, graph and builder (repro.topology)."""

import pytest

from repro.errors import TopologyError, UnknownASError, ValidationError
from repro.topology.builder import TopologyBuilder, _default_ip
from repro.topology.entities import (
    ASRole,
    AutonomousSystem,
    Host,
    LinkKind,
    LinkSpec,
)
from repro.topology.graph import Topology
from repro.topology.isd_as import ISDAS
from repro.util.geo import GeoPoint

from tests.helpers import build_tiny_world


def _mk_as(text, role=ASRole.NON_CORE, **kw):
    defaults = dict(
        name=text,
        role=role,
        location=GeoPoint(0, 0),
        country="CH",
        operator="Op",
        hosts=[Host(ip="10.0.0.1")],
    )
    defaults.update(kw)
    return AutonomousSystem(isd_as=ISDAS.parse(text), **defaults)


class TestEntities:
    def test_host_requires_ip(self):
        with pytest.raises(ValidationError):
            Host(ip="")

    def test_primary_host(self):
        asys = _mk_as("1-0:0:1")
        assert asys.primary_host.ip == "10.0.0.1"

    def test_primary_host_missing_raises(self):
        asys = _mk_as("1-0:0:1", hosts=[])
        with pytest.raises(ValidationError):
            asys.primary_host

    def test_as_address(self):
        assert _mk_as("1-0:0:1").address() == "1-0:0:1,[10.0.0.1]"

    def test_tiny_mtu_rejected(self):
        with pytest.raises(ValidationError):
            _mk_as("1-0:0:1", mtu=100)

    def test_is_core(self):
        assert _mk_as("1-0:0:1", role=ASRole.CORE).is_core
        assert not _mk_as("1-0:0:1").is_core


class TestLinkSpec:
    def _link(self, **kw):
        defaults = dict(
            a=ISDAS.parse("1-0:0:1"),
            a_ifid=1,
            b=ISDAS.parse("1-0:0:2"),
            b_ifid=2,
            kind=LinkKind.CORE,
        )
        defaults.update(kw)
        return LinkSpec(**defaults)

    def test_self_link_rejected(self):
        with pytest.raises(ValidationError):
            self._link(b=ISDAS.parse("1-0:0:1"))

    def test_nonpositive_ifid_rejected(self):
        with pytest.raises(ValidationError):
            self._link(a_ifid=0)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValidationError):
            self._link(capacity_ab_mbps=0)

    def test_bad_loss_rejected(self):
        with pytest.raises(ValidationError):
            self._link(base_loss=1.0)

    def test_interface_of_and_other(self):
        link = self._link()
        a, b = link.endpoints()
        assert link.interface_of(a) == 1
        assert link.interface_of(b) == 2
        assert link.other(a) == b and link.other(b) == a

    def test_interface_of_stranger_raises(self):
        link = self._link()
        with pytest.raises(ValidationError):
            link.interface_of(ISDAS.parse("9-0:0:9"))

    def test_directional_capacity(self):
        link = self._link(capacity_ab_mbps=40, capacity_ba_mbps=16)
        a, b = link.endpoints()
        assert link.capacity_from(a) == 40
        assert link.capacity_from(b) == 16


class TestTopologyValidation:
    def test_tiny_world_builds(self):
        topo = build_tiny_world()
        assert len(topo) == 6
        assert len(topo.links()) == 7

    def test_duplicate_as_rejected(self):
        a = _mk_as("1-0:0:1")
        with pytest.raises(TopologyError):
            Topology([a, _mk_as("1-0:0:1")], [])

    def test_core_link_between_non_core_rejected(self):
        ases = [_mk_as("1-0:0:1"), _mk_as("1-0:0:2")]
        link = LinkSpec(
            a=ISDAS.parse("1-0:0:1"), a_ifid=1,
            b=ISDAS.parse("1-0:0:2"), b_ifid=1, kind=LinkKind.CORE,
        )
        with pytest.raises(TopologyError):
            Topology(ases, [link])

    def test_core_as_cannot_be_child(self):
        ases = [_mk_as("1-0:0:1", role=ASRole.CORE), _mk_as("1-0:0:2", role=ASRole.CORE)]
        link = LinkSpec(
            a=ISDAS.parse("1-0:0:1"), a_ifid=1,
            b=ISDAS.parse("1-0:0:2"), b_ifid=1, kind=LinkKind.PARENT,
        )
        with pytest.raises(TopologyError):
            Topology(ases, [link])

    def test_provider_cycle_rejected(self):
        ases = [
            _mk_as("1-0:0:1", role=ASRole.CORE),
            _mk_as("1-0:0:2"),
            _mk_as("1-0:0:3"),
        ]
        links = [
            LinkSpec(a=ISDAS.parse("1-0:0:1"), a_ifid=1,
                     b=ISDAS.parse("1-0:0:2"), b_ifid=1, kind=LinkKind.PARENT),
            LinkSpec(a=ISDAS.parse("1-0:0:2"), a_ifid=2,
                     b=ISDAS.parse("1-0:0:3"), b_ifid=1, kind=LinkKind.PARENT),
            LinkSpec(a=ISDAS.parse("1-0:0:3"), a_ifid=2,
                     b=ISDAS.parse("1-0:0:2"), b_ifid=3, kind=LinkKind.PARENT),
        ]
        with pytest.raises(TopologyError):
            Topology(ases, links)

    def test_stranded_as_rejected(self):
        """A non-core AS with no upward path to a core must be refused."""
        ases = [_mk_as("1-0:0:1", role=ASRole.CORE), _mk_as("1-0:0:2")]
        with pytest.raises(TopologyError):
            Topology(ases, [])

    def test_duplicate_interface_rejected(self):
        ases = [_mk_as("1-0:0:1", role=ASRole.CORE), _mk_as("1-0:0:2"), _mk_as("1-0:0:3")]
        links = [
            LinkSpec(a=ISDAS.parse("1-0:0:1"), a_ifid=1,
                     b=ISDAS.parse("1-0:0:2"), b_ifid=1, kind=LinkKind.PARENT),
            LinkSpec(a=ISDAS.parse("1-0:0:1"), a_ifid=1,  # reused ifid!
                     b=ISDAS.parse("1-0:0:3"), b_ifid=1, kind=LinkKind.PARENT),
        ]
        with pytest.raises(TopologyError):
            Topology(ases, links)

    def test_link_to_unknown_as_rejected(self):
        ases = [_mk_as("1-0:0:1", role=ASRole.CORE)]
        link = LinkSpec(
            a=ISDAS.parse("1-0:0:1"), a_ifid=1,
            b=ISDAS.parse("9-0:0:9"), b_ifid=1, kind=LinkKind.PARENT,
        )
        with pytest.raises(UnknownASError):
            Topology(ases, [link])


class TestTopologyQueries:
    @pytest.fixture(scope="class")
    def topo(self):
        return build_tiny_world()

    def test_as_of(self, topo):
        assert topo.as_of("1-ffaa:0:1").name == "core1a"

    def test_as_of_unknown_raises(self, topo):
        with pytest.raises(UnknownASError):
            topo.as_of("9-0:0:9")

    def test_contains(self, topo):
        assert "1-ffaa:0:1" in topo
        assert "9-0:0:9" not in topo
        assert "garbage" not in topo

    def test_core_ases(self, topo):
        assert [str(a.isd_as) for a in topo.core_ases()] == [
            "1-ffaa:0:1", "1-ffaa:0:2", "2-ffaa:0:1",
        ]
        assert [str(a.isd_as) for a in topo.core_ases(2)] == ["2-ffaa:0:1"]

    def test_isds(self, topo):
        assert topo.isds() == [1, 2]

    def test_parents_children(self, topo):
        assert [str(p) for p in sorted(topo.parents_of("1-ffaa:0:3"))] == [
            "1-ffaa:0:1", "1-ffaa:0:2",
        ]
        assert [str(c) for c in topo.children_of("1-ffaa:0:3")] == ["1-ffaa:1:1"]

    def test_core_neighbors(self, topo):
        assert sorted(str(n) for n in topo.core_neighbors_of("1-ffaa:0:1")) == [
            "1-ffaa:0:2", "2-ffaa:0:1",
        ]

    def test_link_at(self, topo):
        link = topo.links_of("1-ffaa:1:1")[0]
        ifid = link.interface_of(ISDAS.parse("1-ffaa:1:1"))
        assert topo.link_at("1-ffaa:1:1", ifid) is link

    def test_link_at_missing_raises(self, topo):
        with pytest.raises(TopologyError):
            topo.link_at("1-ffaa:1:1", 99)

    def test_link_between(self, topo):
        links = topo.link_between("1-ffaa:0:1", "1-ffaa:0:2")
        assert len(links) == 1 and links[0].kind is LinkKind.CORE

    def test_to_networkx(self, topo):
        g = topo.to_networkx()
        assert g.number_of_nodes() == 6
        assert g.number_of_edges() == 7


class TestBuilder:
    def test_duplicate_as_rejected(self):
        b = TopologyBuilder()
        b.add_as("1-0:0:1", "x", role=ASRole.CORE, lat=0, lon=0,
                 country="CH", operator="Op")
        with pytest.raises(TopologyError):
            b.add_as("1-0:0:1", "y", role=ASRole.CORE, lat=0, lon=0,
                     country="CH", operator="Op")

    def test_link_to_undeclared_as_rejected(self):
        b = TopologyBuilder()
        b.add_as("1-0:0:1", "x", role=ASRole.CORE, lat=0, lon=0,
                 country="CH", operator="Op")
        with pytest.raises(TopologyError):
            b.core_link("1-0:0:1", "1-0:0:2")

    def test_auto_ifids_monotonic_per_as(self):
        topo = build_tiny_world()
        ifids = sorted(
            l.interface_of(ISDAS.parse("1-ffaa:0:1"))
            for l in topo.links_of("1-ffaa:0:1")
        )
        assert ifids == [1, 2, 3]

    def test_default_ip_deterministic(self):
        ia = ISDAS.parse("17-ffaa:1:e01")
        assert _default_ip(ia) == _default_ip(ia)

    def test_extra_hosts(self):
        b = TopologyBuilder()
        b.add_as("1-0:0:1", "x", role=ASRole.CORE, lat=0, lon=0,
                 country="CH", operator="Op", ip="10.0.0.1",
                 extra_hosts=["10.0.0.2"])
        topo = b.build()
        assert len(topo.as_of("1-0:0:1").hosts) == 2
