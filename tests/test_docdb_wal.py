"""Tests for the crash-safe storage engine (WAL + recovery + checkpoints).

Covers the §4.2.2 durability contract end to end: record wire format,
segment rotation and garbage collection, the three disk states (clean /
torn tail / interior corruption), recovery replay, checkpoint
generations, the auto-journaling client, and the crash-fault harness
(:class:`repro.suite.faults.CrashPlan`).
"""

import json
import os
import struct

import pytest

from repro.docdb.client import DocDBClient
from repro.docdb.recovery import (
    CHECKPOINT_FILE,
    SNAPSHOT_DIR,
    WAL_DIR,
    Checkpoint,
    RecoveryManager,
    generation_name,
    list_generations,
    read_checkpoint,
    run_checkpoint,
    write_checkpoint,
)
from repro.docdb.wal import (
    FSYNC_POLICIES,
    HEADER_BYTES,
    OP_INSERT,
    OP_INSERT_MANY,
    WAL_OPS,
    WalRecord,
    WalWriter,
    encode_record,
    iter_wal,
    list_segments,
    read_segment,
    segment_name,
)
from repro.errors import StorageError, ValidationError, WalCorruptionError
from repro.suite.faults import CrashPlan, SimulatedCrash


def wal_dir(base) -> str:
    return os.path.join(str(base), WAL_DIR)


def open_client(base, **kw) -> DocDBClient:
    return DocDBClient.open(str(base), **kw)


def docs_of(client, db="upin", coll="paths"):
    return sorted(client[db][coll].find({}), key=lambda d: str(d["_id"]))


# -- wire format -------------------------------------------------------------


class TestRecordFormat:
    def test_encode_roundtrip_via_segment_read(self, tmp_path):
        with WalWriter(wal_dir(tmp_path)) as wal:
            lsn = wal.append(OP_INSERT, "upin", "paths", {"document": {"_id": 1}})
        assert lsn == 1
        records = list(iter_wal(wal_dir(tmp_path)))
        assert len(records) == 1
        rec = records[0]
        assert (rec.lsn, rec.op, rec.db, rec.coll) == (1, OP_INSERT, "upin", "paths")
        assert rec.payload == {"document": {"_id": 1}}

    def test_header_is_length_then_crc(self):
        data = encode_record(
            WalRecord(lsn=7, op=OP_INSERT, db="d", coll="c", payload={})
        )
        length, _crc = struct.Struct("<II").unpack_from(data, 0)
        assert length == len(data) - HEADER_BYTES
        body = json.loads(data[HEADER_BYTES:].decode("utf-8"))
        assert body["lsn"] == 7

    def test_segment_name_is_zero_padded(self):
        assert segment_name(1) == "wal-0000000000000001.log"
        assert segment_name(12345) == "wal-0000000000012345.log"

    def test_wal_ops_frozen(self):
        assert OP_INSERT in WAL_OPS
        assert len(WAL_OPS) == 8
        assert FSYNC_POLICIES == ("always", "batch", "never")


# -- writer ------------------------------------------------------------------


class TestWalWriter:
    def test_lsns_are_monotonic(self, tmp_path):
        with WalWriter(wal_dir(tmp_path)) as wal:
            lsns = [
                wal.append(OP_INSERT, "d", "c", {"document": {"_id": i}})
                for i in range(5)
            ]
        assert lsns == [1, 2, 3, 4, 5]
        assert [r.lsn for r in iter_wal(wal_dir(tmp_path))] == lsns

    def test_rotation_at_segment_bytes(self, tmp_path):
        with WalWriter(wal_dir(tmp_path), segment_bytes=128) as wal:
            for i in range(8):
                wal.append(OP_INSERT, "d", "c", {"document": {"_id": i}})
            assert wal.stats["rotations"] >= 2
        segments = list_segments(wal_dir(tmp_path))
        assert len(segments) >= 3
        # Segment start LSNs must be contiguous with record counts.
        expected = 1
        for i, (start, path) in enumerate(segments):
            assert start == expected
            scan = read_segment(path, start, is_last=(i == len(segments) - 1))
            expected += len(scan.records)
        assert expected == 9  # 8 records total

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="fsync"):
            WalWriter(wal_dir(tmp_path), fsync="sometimes")

    def test_unknown_op_rejected(self, tmp_path):
        with WalWriter(wal_dir(tmp_path)) as wal:
            with pytest.raises(StorageError, match="unknown WAL op"):
                wal.append("truncate", "d", "c", {})

    def test_append_after_close_raises(self, tmp_path):
        wal = WalWriter(wal_dir(tmp_path))
        wal.close()
        with pytest.raises(StorageError, match="closed"):
            wal.append(OP_INSERT, "d", "c", {"document": {}})

    def test_always_policy_fsyncs_every_append(self, tmp_path):
        with WalWriter(wal_dir(tmp_path), fsync="always") as wal:
            for i in range(3):
                wal.append(OP_INSERT, "d", "c", {"document": {"_id": i}})
            assert wal.stats["fsyncs"] == 3

    def test_batch_policy_fsyncs_every_n(self, tmp_path):
        with WalWriter(wal_dir(tmp_path), fsync="batch", batch_every=2) as wal:
            for i in range(5):
                wal.append(OP_INSERT, "d", "c", {"document": {"_id": i}})
            assert wal.stats["fsyncs"] == 2  # after #2 and #4

    def test_sync_returns_last_durable_lsn(self, tmp_path):
        with WalWriter(wal_dir(tmp_path), fsync="never") as wal:
            wal.append(OP_INSERT, "d", "c", {"document": {"_id": 1}})
            assert wal.sync() == 1
            assert wal.stats["fsyncs"] == 1

    def test_gc_never_removes_open_segment(self, tmp_path):
        with WalWriter(wal_dir(tmp_path), segment_bytes=96) as wal:
            for i in range(6):
                wal.append(OP_INSERT, "d", "c", {"document": {"_id": i}})
            # Checkpoint beyond everything: only sealed segments go.
            removed = wal.remove_segments_below(wal.last_lsn)
            assert removed >= 1
            remaining = list_segments(wal_dir(tmp_path))
            assert [p for _, p in remaining] == [wal.segment_path]

    def test_gc_keeps_segments_above_checkpoint(self, tmp_path):
        with WalWriter(wal_dir(tmp_path), segment_bytes=96) as wal:
            for i in range(6):
                wal.append(OP_INSERT, "d", "c", {"document": {"_id": i}})
            before = wal.segment_count()
            assert wal.remove_segments_below(0) == 0
            assert wal.segment_count() == before


# -- corruption detection ----------------------------------------------------


def build_segment(tmp_path, n=4):
    """A single sealed segment with ``n`` records; returns its path."""
    wal = WalWriter(wal_dir(tmp_path))
    for i in range(n):
        wal.append(OP_INSERT, "d", "c", {"document": {"_id": i}})
    wal.close()
    [(start, path)] = list_segments(wal_dir(tmp_path))
    assert start == 1
    return path


class TestCorruption:
    def test_torn_tail_in_last_segment_is_reported(self, tmp_path):
        path = build_segment(tmp_path, n=3)
        extra = encode_record(
            WalRecord(lsn=4, op=OP_INSERT, db="d", coll="c", payload={"document": {}})
        )
        with open(path, "ab") as fh:
            fh.write(extra[: len(extra) - 5])  # die mid-record
        scan = read_segment(path, 1, is_last=True)
        assert len(scan.records) == 3
        assert scan.torn_at is not None
        assert scan.torn_bytes == len(extra) - 5

    def test_torn_tail_in_interior_segment_raises(self, tmp_path):
        path = build_segment(tmp_path, n=3)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 5)
        with pytest.raises(WalCorruptionError) as err:
            read_segment(path, 1, is_last=False)
        assert err.value.lsn == 3

    def test_flipped_payload_byte_fails_checksum(self, tmp_path):
        path = build_segment(tmp_path, n=2)
        with open(path, "r+b") as fh:
            fh.seek(HEADER_BYTES + 2)  # inside record #1's payload
            byte = fh.read(1)
            fh.seek(HEADER_BYTES + 2)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WalCorruptionError) as err:
            list(iter_wal(wal_dir(tmp_path)))
        assert err.value.lsn == 1
        assert "checksum" in str(err.value)

    def test_lsn_discontinuity_detected(self, tmp_path):
        # Two records claiming the same LSN: valid CRCs, broken chain.
        rec = WalRecord(lsn=1, op=OP_INSERT, db="d", coll="c", payload={})
        os.makedirs(wal_dir(tmp_path))
        with open(os.path.join(wal_dir(tmp_path), segment_name(1)), "wb") as fh:
            fh.write(encode_record(rec))
            fh.write(encode_record(rec))
        with pytest.raises(WalCorruptionError, match="discontinuity") as err:
            list(iter_wal(wal_dir(tmp_path)))
        assert err.value.lsn == 2

    def test_repair_truncates_torn_tail(self, tmp_path):
        path = build_segment(tmp_path, n=2)
        clean_size = os.path.getsize(path)
        with open(path, "ab") as fh:
            fh.write(b"\x99" * 11)
        records = list(iter_wal(wal_dir(tmp_path), repair=True))
        assert len(records) == 2
        assert os.path.getsize(path) == clean_size


# -- checkpoint pointer ------------------------------------------------------


class TestCheckpointPointer:
    def test_missing_file_is_zero_checkpoint(self, tmp_path):
        cp = read_checkpoint(str(tmp_path))
        assert cp == Checkpoint(checkpoint_lsn=0, generation=None)

    def test_roundtrip(self, tmp_path):
        write_checkpoint(
            str(tmp_path), Checkpoint(checkpoint_lsn=42, generation=generation_name(42))
        )
        cp = read_checkpoint(str(tmp_path))
        assert cp.checkpoint_lsn == 42
        assert cp.generation == generation_name(42)
        assert not os.path.exists(os.path.join(str(tmp_path), CHECKPOINT_FILE + ".tmp"))

    def test_corrupt_pointer_raises(self, tmp_path):
        with open(os.path.join(str(tmp_path), CHECKPOINT_FILE), "w") as fh:
            fh.write("{not json")
        with pytest.raises(StorageError, match="corrupt checkpoint"):
            read_checkpoint(str(tmp_path))


# -- recovery ----------------------------------------------------------------


class TestRecovery:
    def test_empty_directory_recovers_empty(self, tmp_path):
        client, report = RecoveryManager(str(tmp_path)).recover()
        assert client.list_database_names() == []
        assert report.last_lsn == 0
        assert report.records_replayed == 0

    def test_replay_restores_documents_and_indexes(self, tmp_path):
        with open_client(tmp_path) as client:
            coll = client["upin"]["paths"]
            coll.create_index([("server_id", 1), ("loss", -1)])
            coll.insert_many([{"_id": f"p{i}", "server_id": i % 2, "loss": i}
                              for i in range(6)])
            coll.update_many({"server_id": 0}, {"$set": {"flagged": True}})
            coll.delete_many({"loss": {"$gt": 4}})
        # Process "died" (close sealed the WAL); recover from disk alone.
        client2 = open_client(tmp_path)
        coll2 = client2["upin"]["paths"]
        assert len(coll2) == 5
        assert coll2.count_documents({"flagged": True}) == 3
        assert any("server_id" in name for name in coll2.list_indexes())
        report = client2.recovery_report
        assert report.records_replayed >= 4
        assert report.torn_bytes_truncated == 0
        client2.close()

    def test_checkpoint_then_recover_uses_snapshot(self, tmp_path):
        with open_client(tmp_path) as client:
            client["upin"]["paths"].insert_many(
                [{"_id": i, "v": i} for i in range(4)]
            )
            result = client.checkpoint()
            assert not result.skipped
            # Post-checkpoint write must come from WAL replay.
            client["upin"]["paths"].insert_one({"_id": 99, "v": 99})
        client2 = open_client(tmp_path)
        assert len(client2["upin"]["paths"]) == 5
        report = client2.recovery_report
        assert report.checkpoint_lsn == result.checkpoint_lsn
        assert report.records_replayed == 1  # just the post-checkpoint insert
        client2.close()

    def test_torn_tail_is_rolled_back_and_truncated(self, tmp_path):
        with open_client(tmp_path) as client:
            client["upin"]["paths"].insert_one({"_id": "committed"})
        # Simulate a mid-write death: partial record appended to the log.
        [(_, seg_path)] = list_segments(os.path.join(str(tmp_path), WAL_DIR))
        garbage = encode_record(
            WalRecord(lsn=2, op=OP_INSERT, db="upin", coll="paths",
                      payload={"document": {"_id": "lost"}})
        )
        with open(seg_path, "ab") as fh:
            fh.write(garbage[: len(garbage) - 7])
        client2 = open_client(tmp_path)
        assert [d["_id"] for d in client2["upin"]["paths"].find({})] == ["committed"]
        assert client2.recovery_report.torn_bytes_truncated == len(garbage) - 7
        client2.close()
        # Idempotent: a third recovery finds a clean log.
        client3 = open_client(tmp_path)
        assert client3.recovery_report.torn_bytes_truncated == 0
        client3.close()

    def test_interior_corruption_names_the_lsn(self, tmp_path):
        with open_client(tmp_path) as client:
            for i in range(3):
                client["upin"]["paths"].insert_one({"_id": i})
        [(_, seg_path)] = list_segments(os.path.join(str(tmp_path), WAL_DIR))
        with open(seg_path, "r+b") as fh:
            fh.seek(HEADER_BYTES + 4)  # record #1's payload
            fh.write(b"\xff")
        with pytest.raises(WalCorruptionError) as err:
            open_client(tmp_path)
        assert err.value.lsn == 1

    def test_wal_gap_is_detected(self, tmp_path):
        with open_client(tmp_path, segment_bytes=96) as client:
            for i in range(6):
                client["upin"]["paths"].insert_one({"_id": i})
        segments = list_segments(os.path.join(str(tmp_path), WAL_DIR))
        assert len(segments) >= 3
        os.remove(segments[1][1])  # lose an interior segment
        with pytest.raises(WalCorruptionError, match="gap"):
            open_client(tmp_path)

    def test_missing_oldest_segment_without_checkpoint(self, tmp_path):
        with open_client(tmp_path, segment_bytes=96) as client:
            for i in range(6):
                client["upin"]["paths"].insert_one({"_id": i})
        segments = list_segments(os.path.join(str(tmp_path), WAL_DIR))
        os.remove(segments[0][1])
        with pytest.raises(WalCorruptionError, match="gap"):
            open_client(tmp_path)

    def test_missing_generation_dir_raises(self, tmp_path):
        write_checkpoint(
            str(tmp_path), Checkpoint(checkpoint_lsn=5, generation=generation_name(5))
        )
        with pytest.raises(StorageError, match="missing snapshot generation"):
            RecoveryManager(str(tmp_path)).recover()

    def test_recovery_clears_query_caches(self, tmp_path):
        with open_client(tmp_path) as client:
            coll = client["upin"]["paths"]
            coll.insert_many([{"_id": i, "v": i} for i in range(4)])
            coll.find({"v": {"$gte": 0}})  # warm the cache
        client2 = open_client(tmp_path)
        assert len(client2["upin"]["paths"].cache) == 0
        client2.close()


# -- checkpoint / compaction -------------------------------------------------


class TestCheckpoint:
    def test_checkpoint_gcs_generations_and_segments(self, tmp_path):
        client = open_client(tmp_path, segment_bytes=96)
        for i in range(6):
            client["upin"]["paths"].insert_one({"_id": i})
        first = client.checkpoint()
        assert not first.skipped
        assert first.segments_removed >= 1
        for i in range(6, 12):
            client["upin"]["paths"].insert_one({"_id": i})
        second = client.checkpoint()
        assert second.checkpoint_lsn > first.checkpoint_lsn
        assert second.generations_removed == 1
        assert list_generations(str(tmp_path)) == [second.generation]
        client.close()

    def test_idle_checkpoint_is_gc_only(self, tmp_path):
        client = open_client(tmp_path)
        client["upin"]["paths"].insert_one({"_id": 1})
        first = client.checkpoint()
        second = client.checkpoint()
        assert second.skipped
        assert second.checkpoint_lsn == first.checkpoint_lsn
        # The live generation must never be rewritten.
        assert second.generation == first.generation
        client.close()

    def test_checkpoint_requires_durable_client(self):
        with pytest.raises(StorageError, match="durable"):
            run_checkpoint(DocDBClient())

    def test_crashed_checkpoint_leftovers_are_cleaned(self, tmp_path):
        client = open_client(tmp_path)
        client["upin"]["paths"].insert_one({"_id": 1})
        # A generation dir written by a checkpoint that died pre-flip.
        stale = os.path.join(str(tmp_path), SNAPSHOT_DIR, generation_name(999))
        os.makedirs(stale)
        result = client.checkpoint()
        assert generation_name(999) not in list_generations(str(tmp_path))
        assert result.generations_removed >= 1
        client.close()

    def test_compaction_hook_runs_every_n_rounds(self, tmp_path):
        client = open_client(tmp_path)
        client["upin"]["paths"].insert_one({"_id": 1})
        hook = client.compaction_hook(every=2)
        for _ in range(5):
            hook(object())  # duck-typed RoundRecord
        stats = client.wal_stats()
        assert stats["compactions"] == 2
        assert stats["checkpoints"] == 1  # rounds 2 ran a real one, 4 was idle
        client.close()

    def test_compaction_hook_validates_interval(self, tmp_path):
        client = open_client(tmp_path)
        with pytest.raises(ValueError):
            client.compaction_hook(every=0)
        client.close()


# -- the auto-journaling client ---------------------------------------------


class TestDurableClient:
    def test_every_mutation_is_journalled(self, tmp_path):
        with open_client(tmp_path) as client:
            db = client["upin"]
            db["paths"].insert_one({"_id": 1})
            db["paths"].insert_many([{"_id": 2}, {"_id": 3}])
            db["paths"].update_one({"_id": 1}, {"$set": {"v": "x"}})
            db["paths"].delete_one({"_id": 3})
            db["paths"].create_index("v")
            db["paths"].drop_index("v")
            db["stats"].insert_one({"_id": "s"})
            db.drop_collection("stats")
            client["scratch"]["c"].insert_one({"_id": 0})
            client.drop_database("scratch")
        client2 = open_client(tmp_path)
        assert [d["_id"] for d in docs_of(client2)] == [1, 2]
        assert client2["upin"]["paths"].find_one({"_id": 1})["v"] == "x"
        assert "stats" not in client2["upin"].list_collection_names()
        assert "scratch" not in client2.list_database_names()
        client2.close()

    def test_reads_are_not_journalled(self, tmp_path):
        with open_client(tmp_path) as client:
            coll = client["upin"]["paths"]
            coll.insert_one({"_id": 1, "v": 5})
            before = client.wal.last_lsn
            coll.find({"v": {"$gt": 0}})
            coll.count_documents({})
            coll.find_one({"_id": 1})
            assert client.wal.last_lsn == before

    def test_noop_mutations_are_not_journalled(self, tmp_path):
        with open_client(tmp_path) as client:
            coll = client["upin"]["paths"]
            coll.insert_one({"_id": 1})
            before = client.wal.last_lsn
            coll.delete_many({"_id": "absent"})
            coll.update_many({"_id": "absent"}, {"$set": {"v": 1}})
            assert client.wal.last_lsn == before

    def test_close_detaches_and_context_manager(self, tmp_path):
        client = open_client(tmp_path)
        assert client.is_durable
        client.close()
        assert not client.is_durable
        assert client.wal_stats() == {}
        # Volatile writes after close are not journalled (and not durable).
        client["upin"]["paths"].insert_one({"_id": "volatile"})
        client2 = open_client(tmp_path)
        assert docs_of(client2) == []
        client2.close()

    def test_wal_stats_shape(self, tmp_path):
        with open_client(tmp_path, fsync="always") as client:
            client["upin"]["paths"].insert_one({"_id": 1})
            stats = client.wal_stats()
        for key in (
            "fsync_policy", "last_lsn", "checkpoint_lsn", "segments",
            "checkpoints", "compactions", "appends", "bytes_written",
            "fsyncs", "rotations", "records_replayed", "torn_bytes_truncated",
        ):
            assert key in stats
        assert stats["fsync_policy"] == "always"
        assert stats["last_lsn"] == 1

    def test_replay_helpers_reject_unknown_ids(self):
        coll = DocDBClient()["d"]["c"]
        coll.insert_one({"_id": 1})
        with pytest.raises(StorageError):
            coll.replay_update([{"_id": "ghost", "v": 1}])


# -- the crash-fault harness -------------------------------------------------


class TestCrashPlan:
    def test_validation(self):
        with pytest.raises(ValidationError):
            CrashPlan()  # no trigger
        with pytest.raises(ValidationError):
            CrashPlan(at_append=0)
        with pytest.raises(ValidationError):
            CrashPlan(at_append=1, mode="segfault")
        with pytest.raises(ValidationError):
            CrashPlan(torn_at_append=1, torn_fraction=1.0)

    def test_kill_after_nth_append_commits_exact_prefix(self, tmp_path):
        client = open_client(tmp_path)
        CrashPlan(at_append=3).install(client.wal)
        with pytest.raises(SimulatedCrash):
            for i in range(10):
                client["upin"]["paths"].insert_one({"_id": i})
        # Memory is "lost"; recover from disk.
        recovered = open_client(tmp_path)
        assert [d["_id"] for d in docs_of(recovered)] == [0, 1, 2]
        recovered.close()

    def test_torn_write_rolls_back_the_batch(self, tmp_path):
        client = open_client(tmp_path)
        CrashPlan(torn_at_append=2, torn_fraction=0.5).install(client.wal)
        client["upin"]["paths"].insert_one({"_id": "first"})
        with pytest.raises(SimulatedCrash):
            client["upin"]["paths"].insert_many(
                [{"_id": f"batch{i}"} for i in range(50)]
            )
        recovered = open_client(tmp_path)
        assert [d["_id"] for d in docs_of(recovered)] == ["first"]
        assert recovered.recovery_report.torn_bytes_truncated > 0
        recovered.close()

    def test_crash_after_rotation_before_checkpoint(self, tmp_path):
        client = open_client(tmp_path, segment_bytes=96)
        plan = CrashPlan(at_rotation=2).install(client.wal)
        with pytest.raises(SimulatedCrash):
            for i in range(100):
                client["upin"]["paths"].insert_one({"_id": i})
        assert plan.crashed
        committed = plan.appends_seen
        recovered = open_client(tmp_path)
        assert len(recovered["upin"]["paths"]) == committed
        assert recovered.recovery_report.segments_scanned >= 2
        recovered.close()

    def test_simulated_crash_is_not_an_exception(self):
        # Production `except Exception` must not swallow a machine crash.
        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(SimulatedCrash, BaseException)
