"""Tests for the scion-sim CLI multiplexer (repro.apps.cli)."""

import pytest

from repro.apps.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_showpaths_flags(self):
        args = build_parser().parse_args(
            ["showpaths", "16-ffaa:0:1002", "-m", "40", "--extended"]
        )
        assert args.max_paths == 40 and args.extended

    def test_ping_flags(self):
        args = build_parser().parse_args(
            ["ping", "16-ffaa:0:1002,[172.31.43.7]", "-c", "30", "--interval", "0.1s"]
        )
        assert args.count == 30 and args.interval == "0.1s"

    def test_bwtest_flags(self):
        args = build_parser().parse_args(
            ["bwtest", "-s", "x", "-cs", "3,64,?,12Mbps"]
        )
        assert args.cs == "3,64,?,12Mbps"


class TestMain:
    def test_address(self, capsys):
        assert main(["address"]) == 0
        assert "17-ffaa:1:e01" in capsys.readouterr().out

    def test_showpaths(self, capsys):
        assert main(["showpaths", "19-ffaa:0:1303", "-m", "3", "--extended"]) == 0
        out = capsys.readouterr().out
        assert "Available paths to 19-ffaa:0:1303" in out
        assert "MTU:" in out

    def test_ping(self, capsys):
        assert main(["ping", "19-ffaa:0:1303,[141.44.25.144]", "-c", "3"]) == 0
        assert "packets transmitted" in capsys.readouterr().out

    def test_traceroute(self, capsys):
        assert main(["traceroute", "19-ffaa:0:1303,[141.44.25.144]"]) == 0
        assert "traceroute to" in capsys.readouterr().out

    def test_bwtest(self, capsys):
        assert (
            main(
                ["bwtest", "-s", "19-ffaa:0:1303,[141.44.25.144]",
                 "-cs", "1,64,?,5Mbps"]
            )
            == 0
        )
        assert "Achieved bandwidth" in capsys.readouterr().out

    def test_error_path_returns_1(self, capsys):
        assert main(["showpaths", "99-ffaa:0:9999"]) == 1
        assert "error:" in capsys.readouterr().err
