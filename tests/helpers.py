"""Shared test helpers importable from test modules."""

from repro.topology.builder import TopologyBuilder
from repro.topology.entities import ASRole


def build_tiny_world():
    """A 6-AS two-ISD world, small enough to reason about by hand.

    ISD 1:  core1a == core1b (core link), AP under both cores, user
    under the AP.  ISD 2:  core2 (core-linked to both ISD-1 cores),
    leaf under core2.
    """
    b = TopologyBuilder()
    b.add_as("1-ffaa:0:1", "core1a", role=ASRole.CORE, lat=47.4, lon=8.5,
             country="CH", operator="OpA", ip="10.1.0.1")
    b.add_as("1-ffaa:0:2", "core1b", role=ASRole.CORE, lat=47.0, lon=7.4,
             country="CH", operator="OpB", ip="10.1.0.2")
    b.add_as("1-ffaa:0:3", "ap", role=ASRole.ATTACHMENT_POINT, lat=47.4,
             lon=8.6, country="CH", operator="OpA", ip="10.1.0.3")
    b.add_as("1-ffaa:1:1", "user", role=ASRole.USER, lat=52.4, lon=4.9,
             country="NL", operator="UvA", ip="127.0.0.1")
    b.add_as("2-ffaa:0:1", "core2", role=ASRole.CORE, lat=50.1, lon=8.7,
             country="DE", operator="OpC", ip="10.2.0.1")
    b.add_as("2-ffaa:0:2", "leaf", role=ASRole.NON_CORE, lat=53.3, lon=-6.3,
             country="IE", operator="OpC", ip="10.2.0.2")

    b.core_link("1-ffaa:0:1", "1-ffaa:0:2")
    b.core_link("1-ffaa:0:1", "2-ffaa:0:1")
    b.core_link("1-ffaa:0:2", "2-ffaa:0:1")
    b.parent_link("1-ffaa:0:1", "1-ffaa:0:3")
    b.parent_link("1-ffaa:0:2", "1-ffaa:0:3")
    b.parent_link("1-ffaa:0:3", "1-ffaa:1:1",
                  capacity_mbps=40, capacity_ba_mbps=16)
    b.parent_link("2-ffaa:0:1", "2-ffaa:0:2")
    return b.build()
