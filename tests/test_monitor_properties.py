"""Property tests for the monitor's hysteresis laws.

Three laws, stated in ``repro.monitor.health`` and pinned here:

1. a flow never alarms (transitions to VIOLATED) unless at least K of
   its last N samples breached the SLO — one bad probe never reroutes
   anybody;
2. a flow that just failed over is never rerouted again inside its
   cooldown window (unless the trigger is forced, i.e. a revocation);
3. the tracker is a pure fold over its observation stream: replaying
   the journal reconstructs the exact tracker state.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.docdb.client import DocDBClient
from repro.experiments.world import run_campaign
from repro.monitor.failover import FailoverEngine
from repro.monitor.health import (
    FlowHealth,
    FlowHealthTracker,
    HealthSample,
    replay_events,
)
from repro.monitor.journal import FlowEventJournal
from repro.monitor.revocation import RevocationStore
from repro.monitor.slo import FlowSLO
from repro.selection.engine import PathSelector
from repro.selection.request import UserRequest
from repro.upin.controller import PathController

# -- strategies ---------------------------------------------------------------

slo_shapes = st.tuples(
    st.integers(min_value=1, max_value=4),  # breach_k
    st.integers(min_value=0, max_value=3),  # window_n = k + extra
    st.floats(min_value=10.0, max_value=90.0, allow_nan=False),  # max_loss
)

loss_streams = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=40,
)


def make_slo(shape):
    k, extra, max_loss = shape
    return FlowSLO(max_loss_pct=max_loss, breach_k=k, window_n=k + extra)


def feed(tracker, key, losses, *, dt_s=10.0):
    """Lazily observe a loss stream, yielding each Observation.

    Lazy on purpose: callers assert on the tracker's state *between*
    samples, so the fold must not run ahead of the iteration.
    """
    for i, loss in enumerate(losses):
        sample = HealthSample(t_s=(i + 1) * dt_s, loss_pct=loss)
        yield tracker.observe(key, sample)


class TestKofNLaw:
    @given(slo_shapes, loss_streams)
    def test_never_violated_without_k_of_n_breaches(self, shape, losses):
        slo = make_slo(shape)
        tracker = FlowHealthTracker()
        key = ("u", 1)
        tracker.register(key, slo, "p", 0.0)
        breach_flags = []
        for obs in feed(tracker, key, losses):
            breach_flags.append(obs.breached)
            if obs.transition is not None and (
                obs.transition.to_state is FlowHealth.VIOLATED
            ):
                recent = breach_flags[-slo.window_n:]
                assert sum(recent) >= slo.breach_k, (
                    "alarmed with fewer than K of the last N breaching"
                )

    @given(slo_shapes, loss_streams)
    def test_ok_implies_window_fully_clean(self, shape, losses):
        slo = make_slo(shape)
        tracker = FlowHealthTracker()
        key = ("u", 1)
        tracker.register(key, slo, "p", 0.0)
        breach_flags = []
        for obs in feed(tracker, key, losses):
            breach_flags.append(obs.breached)
            if tracker.state_of(key) is FlowHealth.OK and breach_flags:
                assert not any(breach_flags[-slo.window_n:]), (
                    "flow reported OK with breaches still in the window"
                )

    @given(slo_shapes, loss_streams)
    def test_single_breach_never_alarms_when_k_above_one(self, shape, losses):
        k, extra, max_loss = shape
        if k < 2:
            k = 2
        slo = FlowSLO(max_loss_pct=max_loss, breach_k=k, window_n=k + extra)
        tracker = FlowHealthTracker()
        key = ("u", 1)
        tracker.register(key, slo, "p", 0.0)
        breach_flags = []
        for obs in feed(tracker, key, losses):
            breach_flags.append(obs.breached)
            if sum(breach_flags) <= 1:  # at most one breach ever seen
                assert tracker.state_of(key) is not FlowHealth.VIOLATED

    @given(slo_shapes, loss_streams)
    def test_dead_is_sticky_under_any_samples(self, shape, losses):
        slo = make_slo(shape)
        tracker = FlowHealthTracker()
        key = ("u", 1)
        tracker.register(key, slo, "p", 0.0)
        tracker.mark_dead(key, "revoked", 0.5)
        for obs in feed(tracker, key, losses):
            assert obs.transition is None
            assert tracker.state_of(key) is FlowHealth.DEAD


class TestJournalReplayLaw:
    @given(slo_shapes, loss_streams, st.booleans())
    def test_replay_reconstructs_exact_tracker_state(
        self, shape, losses, kill_midway
    ):
        """Live tracker vs journal replay: snapshots must be equal."""
        slo = make_slo(shape)
        live = FlowHealthTracker()
        journal = FlowEventJournal(DocDBClient()["j"]["flow_events"])
        key = ("user-a", 7)
        live.register(key, slo, "path-1", 0.0)
        journal.append(
            "flow_registered", 0.0, user=key[0], server_id=key[1],
            path_id="path-1", slo=slo.to_document(),
        )
        for i, loss in enumerate(losses):
            t_s = (i + 1) * 10.0
            if kill_midway and i == len(losses) // 2:
                transition = live.mark_dead(key, "revoked: test", t_s)
                if transition is not None:
                    journal.append(
                        "state_transition", t_s,
                        user=key[0], server_id=key[1], path_id="path-1",
                        **{"from": transition.from_state.value,
                           "to": transition.to_state.value},
                        cause=transition.cause,
                    )
            sample = HealthSample(t_s=t_s, loss_pct=loss)
            obs = live.observe(key, sample)
            journal.append(
                "sample", t_s, user=key[0], server_id=key[1],
                path_id="path-1", breach=obs.breached,
                **sample.to_payload(),
            )
            if obs.transition is not None:
                journal.append(
                    "state_transition", t_s,
                    user=key[0], server_id=key[1], path_id="path-1",
                    **{"from": obs.transition.from_state.value,
                       "to": obs.transition.to_state.value},
                    cause=obs.transition.cause,
                )
        replayed = replay_events(journal.events())
        assert replayed.snapshot() == live.snapshot()

    @given(slo_shapes, loss_streams)
    def test_replay_is_idempotent(self, shape, losses):
        slo = make_slo(shape)
        journal = FlowEventJournal(DocDBClient()["j"]["flow_events"])
        key = ("user-b", 3)
        journal.append(
            "flow_registered", 0.0, user=key[0], server_id=key[1],
            path_id="p", slo=slo.to_document(),
        )
        for i, loss in enumerate(losses):
            sample = HealthSample(t_s=(i + 1) * 5.0, loss_pct=loss)
            journal.append(
                "sample", sample.t_s, user=key[0], server_id=key[1],
                path_id="p", breach=False, **sample.to_payload(),
            )
        events = journal.events()
        assert replay_events(events).snapshot() == \
            replay_events(events).snapshot()


# -- cooldown law against the real engine -------------------------------------


@pytest.fixture(scope="module")
def cooldown_world():
    return run_campaign([3], iterations=1, seed=99001)


_journal_counter = itertools.count()

gap_streams = st.lists(
    st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
    min_size=1,
    max_size=8,
)


class TestCooldownLaw:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(gaps=gap_streams, force=st.booleans())
    def test_no_flap_within_cooldown_window(
        self, cooldown_world, gaps, force
    ):
        """swapped ⇒ outside cooldown; suppressed ⇒ inside (unless forced)."""
        world = cooldown_world
        selector = PathSelector(world.db, world.host.topology)
        controller = PathController(world.host, selector)
        user = f"prop-{next(_journal_counter)}"
        controller.apply_intent(user, UserRequest.make(3))
        slo = FlowSLO(cooldown_s=120.0)
        journal = FlowEventJournal(DocDBClient()["j"]["flow_events"])
        engine = FailoverEngine(
            controller, RevocationStore(world.host.topology), journal
        )
        now = 1000.0
        last_swap = None
        for gap in gaps:
            now += gap
            rule = controller.active_flow(user, 3)
            outcome = engine.try_failover(
                rule, slo, "prop test", now, force=force
            )
            in_cooldown = (
                last_swap is not None and now - last_swap < slo.cooldown_s
            )
            if force:
                assert not outcome.suppressed
            if outcome.swapped:
                assert force or not in_cooldown
                last_swap = now
            elif outcome.suppressed:
                assert in_cooldown and not force
